/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every bench prints the paper-figure data as an aligned table on stdout
 * and mirrors it to a CSV next to the binary (./<bench>.csv) for
 * plotting. All benches are deterministic: same build, same numbers.
 */

#ifndef PES_BENCH_BENCH_COMMON_HH
#define PES_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace pes {

/** Print a bench header. */
inline void
benchHeader(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n=== " << title << " ===\n"
              << "Reproduces: " << paper_ref << "\n\n";
}

/** Emit the table to stdout and CSV. */
inline void
emitTable(const Table &table, const std::string &csv_name)
{
    table.print(std::cout);
    table.writeCsvFile(csv_name);
    std::cout << "\n[csv: " << csv_name << "]\n";
}

/**
 * Run the standard evaluation sweep on the fleet runner (warm per-cell
 * drivers, evaluation population, all hardware threads) and return the
 * outcome: aggregated per-cell metrics, plus the raw ResultSet unless
 * @p collect_results is false (metrics-only benches skip the per-event
 * retention).
 */
inline FleetOutcome
runFleetEvaluation(Experiment &exp,
                   const std::vector<AppProfile> &profiles,
                   const std::vector<SchedulerKind> &kinds,
                   bool collect_results = true)
{
    return exp.runFleetSweep(profiles, kinds, collect_results);
}

/** Evaluation sweep, raw results only (fleet-backed). */
inline ResultSet
runEvaluationSweep(Experiment &exp,
                   const std::vector<AppProfile> &profiles,
                   const std::vector<SchedulerKind> &kinds)
{
    FleetOutcome outcome = exp.runFleetSweep(profiles, kinds);
    return std::move(outcome.results);
}

/** Names of all apps in a profile list. */
inline std::vector<std::string>
namesOf(const std::vector<AppProfile> &profiles)
{
    std::vector<std::string> out;
    for (const AppProfile &p : profiles)
        out.push_back(p.name);
    return out;
}

} // namespace pes

#endif // PES_BENCH_BENCH_COMMON_HH
