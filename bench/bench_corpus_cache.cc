/**
 * @file
 * Corpus-cache microbench: the perf trajectory of record-once /
 * replay-many.
 *
 * Runs one fleet sweep three ways — per-job synthesis (the historical
 * baseline), shared TraceCache (synthesize once per (device, app,
 * user)), and corpus replay off disk — asserts all three produce
 * byte-identical reports, and emits BENCH_corpus.json with the wall
 * times and speedups. The JSON carries timings, so unlike the figure
 * benches its bytes vary run to run; the report bytes it validates do
 * not.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench/bench_common.hh"
#include "corpus/corpus_store.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "util/json.hh"

using namespace pes;

namespace {

constexpr int kRepetitions = 3;

FleetConfig
sweepConfig()
{
    FleetConfig config;
    config.apps = parseAppList("cnn,amazon,social_feed");
    // Three cheap model-free schedulers: the scheduler axis is what the
    // cache amortizes synthesis across (3 replays per generated trace).
    // Oracle/PES would drown synthesis in solver/model time and hide
    // the cache effect this bench tracks.
    config.schedulers = {SchedulerKind::Interactive,
                         SchedulerKind::Ondemand, SchedulerKind::Ebs};
    config.users = 64;
    config.threads = 4;
    return config;
}

/** Best-of-N wall time of one configuration, plus its report bytes. */
double
timeSweep(const FleetConfig &config, std::string &report_bytes)
{
    double best_ms = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        FleetRunner runner(config);
        const auto start = std::chrono::steady_clock::now();
        const FleetOutcome outcome = runner.run();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        if (rep == 0 || ms < best_ms)
            best_ms = ms;
        report_bytes = JsonReporter::toString(
            makeFleetReport(runner.config(), outcome.metrics));
    }
    return best_ms;
}

} // namespace

int
main()
{
    setQuiet(true);
    benchHeader("Corpus cache microbench",
                "trace corpus subsystem (record-once / replay-many)");

    const FleetConfig base = sweepConfig();
    std::cout << base.jobCount() << " sessions per sweep ("
              << base.apps.size() << " apps x " << base.schedulers.size()
              << " schedulers x " << base.users << " users, "
              << base.threads << " threads), best of " << kRepetitions
              << "\n\n";

    // ---- Mode 1: per-job synthesis (historical baseline). ----
    FleetConfig per_job = base;
    per_job.shareTraces = false;
    std::string per_job_bytes;
    const double per_job_ms = timeSweep(per_job, per_job_bytes);

    // ---- Mode 2: shared in-process TraceCache. ----
    std::string cached_bytes;
    const double cached_ms = timeSweep(base, cached_bytes);

    // ---- Mode 3: corpus replay off disk. ----
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "pes_bench_corpus";
    std::filesystem::remove_all(dir);
    std::string error;
    auto store = CorpusStore::create(dir.string(), &error);
    fatal_if(!store, "bench: %s", error.c_str());
    {
        const AcmpPlatform platform = AcmpPlatform::exynos5410();
        TraceGenerator generator(platform);
        TraceProvenance provenance;
        provenance.device = platform.name();
        provenance.params = {{"source", "bench"}};
        for (const AppProfile &profile : base.apps) {
            for (int u = 0; u < base.users; ++u) {
                fatal_if(!store->add(generator.generate(
                                         profile,
                                         fleetUserSeed(base, u)),
                                     provenance, &error),
                         "bench: %s", error.c_str());
            }
        }
        fatal_if(!store->save(&error), "bench: %s", error.c_str());
    }
    FleetConfig replay = base;
    replay.corpus = &*store;
    std::string replay_bytes;
    const double replay_ms = timeSweep(replay, replay_bytes);
    std::filesystem::remove_all(dir);

    fatal_if(cached_bytes != per_job_bytes,
             "cached sweep diverged from per-job synthesis");
    fatal_if(replay_bytes != per_job_bytes,
             "corpus replay diverged from per-job synthesis");

    Table table({"mode", "wall(ms)", "speedup"});
    table.beginRow()
        .cell(std::string("synthesize per job"))
        .cell(per_job_ms, 1)
        .cell(1.0, 2);
    table.beginRow()
        .cell(std::string("shared trace cache"))
        .cell(cached_ms, 1)
        .cell(per_job_ms / cached_ms, 2);
    table.beginRow()
        .cell(std::string("corpus replay"))
        .cell(replay_ms, 1)
        .cell(per_job_ms / replay_ms, 2);
    table.print(std::cout);
    std::cout << "\nreports byte-identical across all three modes\n";

    std::ofstream os("BENCH_corpus.json");
    fatal_if(!os, "cannot write BENCH_corpus.json");
    os << "{\n"
       << "  \"sessions\": " << base.jobCount() << ",\n"
       << "  \"repetitions\": " << kRepetitions << ",\n"
       << "  \"synthesize_per_job_ms\": " << jsonNum(per_job_ms) << ",\n"
       << "  \"cached_ms\": " << jsonNum(cached_ms) << ",\n"
       << "  \"corpus_replay_ms\": " << jsonNum(replay_ms) << ",\n"
       << "  \"speedup_cached\": " << jsonNum(per_job_ms / cached_ms)
       << ",\n"
       << "  \"speedup_corpus_replay\": "
       << jsonNum(per_job_ms / replay_ms) << ",\n"
       << "  \"reports_identical\": true\n"
       << "}\n";
    std::cout << "[json: BENCH_corpus.json]\n";
    return 0;
}
