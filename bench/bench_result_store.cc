/**
 * @file
 * Result-store microbench: what persistence and resume cost.
 *
 * Runs one fleet sweep four ways — no store (the in-memory baseline),
 * store-attached with checkpointing, resume-from-complete-store (zero
 * sessions execute; pure reduce-from-disk), and a two-shard split plus
 * merge — asserts all four produce byte-identical reports, and emits
 * BENCH_results.json with the wall times and overheads. The JSON
 * carries timings, so unlike the figure benches its bytes vary run to
 * run; the report bytes it validates do not.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench/bench_common.hh"
#include "results/result_reduce.hh"
#include "results/result_store.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "util/json.hh"

using namespace pes;

namespace {

FleetConfig
sweepConfig()
{
    FleetConfig config;
    config.apps = parseAppList("cnn,amazon,social_feed");
    // Cheap model-free schedulers: persistence overhead is per session,
    // so the bench wants many fast sessions, not solver time.
    config.schedulers = {SchedulerKind::Interactive,
                         SchedulerKind::Ondemand, SchedulerKind::Ebs};
    config.users = 64;
    config.threads = 4;
    config.checkpointEvery = 64;
    return config;
}

double
wallMs(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

std::string
reportOf(const FleetConfig &config, const MetricsAggregator &metrics)
{
    return JsonReporter::toString(makeFleetReport(config, metrics));
}

} // namespace

int
main()
{
    setQuiet(true);
    benchHeader("Result store microbench",
                "persistent result store (checkpoint / resume / merge)");

    const FleetConfig base = sweepConfig();
    std::cout << base.jobCount() << " sessions per sweep ("
              << base.apps.size() << " apps x " << base.schedulers.size()
              << " schedulers x " << base.users << " users, "
              << base.threads << " threads, checkpoint every "
              << base.checkpointEvery << ")\n\n";

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "pes_bench_results";
    std::filesystem::remove_all(dir);
    std::string error;

    // ---- Mode 1: in-memory baseline (no store). ----
    std::string baseline_bytes;
    const double baseline_ms = wallMs([&] {
        FleetRunner runner(base);
        baseline_bytes = reportOf(runner.config(), runner.run().metrics);
    });

    // ---- Mode 2: persist with checkpoints. ----
    std::string persist_bytes;
    uint64_t flushes = 0;
    auto store = ResultStore::create((dir / "whole").string(),
                                     SweepSpec::fromConfig(base), &error);
    fatal_if(!store, "bench: %s", error.c_str());
    const double persist_ms = wallMs([&] {
        FleetConfig config = base;
        config.resultStore = &*store;
        FleetRunner runner(config);
        const FleetOutcome outcome = runner.run();
        fatal_if(!outcome.diagnostics.empty(),
                 "bench: persist run reported problems");
        flushes = outcome.checkpointFlushes;
        persist_bytes = reportOf(runner.config(), outcome.metrics);
    });

    // ---- Mode 3: resume over a complete store (pure reduce). ----
    std::string resume_bytes;
    const double resume_ms = wallMs([&] {
        FleetConfig config = base;
        config.resultStore = &*store;
        config.resume = true;
        FleetRunner runner(config);
        const FleetOutcome outcome = runner.run();
        fatal_if(outcome.jobCount != 0,
                 "bench: resume re-executed completed sessions");
        resume_bytes = reportOf(runner.config(), outcome.metrics);
    });

    // ---- Mode 4: two shards + merge. ----
    std::string merged_bytes;
    const double sharded_ms = wallMs([&] {
        for (int k = 0; k < 2; ++k) {
            FleetConfig config = base;
            config.shardIndex = k;
            config.shardCount = 2;
            auto shard = ResultStore::create(
                (dir / ("s" + std::to_string(k))).string(),
                SweepSpec::fromConfig(config), &error);
            fatal_if(!shard, "bench: %s", error.c_str());
            config.resultStore = &*shard;
            FleetRunner runner(config);
            fatal_if(!runner.run().diagnostics.empty(),
                     "bench: shard run reported problems");
        }
    });
    const double merge_ms = wallMs([&] {
        auto merged = ResultStore::create((dir / "merged").string(),
                                          SweepSpec::fromConfig(base),
                                          &error);
        fatal_if(!merged, "bench: %s", error.c_str());
        for (int k = 0; k < 2; ++k) {
            auto shard = ResultStore::open(
                (dir / ("s" + std::to_string(k))).string(), &error);
            fatal_if(!shard, "bench: %s", error.c_str());
            fatal_if(!merged->mergeFrom(*shard, &error), "bench: %s",
                     error.c_str());
        }
        StoreReduction reduction;
        fatal_if(!reduceStore(*merged, reduction, &error), "bench: %s",
                 error.c_str());
        merged_bytes =
            JsonReporter::toString(
                makeStoreReport(*merged, reduction.metrics));
    });
    std::filesystem::remove_all(dir);

    fatal_if(persist_bytes != baseline_bytes,
             "persisted sweep diverged from the in-memory baseline");
    fatal_if(resume_bytes != baseline_bytes,
             "resume reduction diverged from the in-memory baseline");
    fatal_if(merged_bytes != baseline_bytes,
             "shard+merge diverged from the in-memory baseline");

    const double overhead = baseline_ms > 0
        ? (persist_ms - baseline_ms) / baseline_ms * 100.0
        : 0.0;
    Table table({"mode", "wall(ms)", "vs baseline"});
    table.beginRow()
        .cell(std::string("in-memory sweep"))
        .cell(baseline_ms, 1)
        .cell(1.0, 2);
    table.beginRow()
        .cell(std::string("persist (checkpointed)"))
        .cell(persist_ms, 1)
        .cell(persist_ms / baseline_ms, 2);
    table.beginRow()
        .cell(std::string("resume (pure reduce)"))
        .cell(resume_ms, 1)
        .cell(resume_ms / baseline_ms, 2);
    table.beginRow()
        .cell(std::string("2 shards"))
        .cell(sharded_ms, 1)
        .cell(sharded_ms / baseline_ms, 2);
    table.beginRow()
        .cell(std::string("merge + reduce"))
        .cell(merge_ms, 1)
        .cell(merge_ms / baseline_ms, 2);
    table.print(std::cout);
    std::cout << "\npersist overhead " << formatDouble(overhead, 1)
              << "% over " << flushes
              << " checkpoint flushes; reports byte-identical across "
                 "all four modes\n";

    std::ofstream os("BENCH_results.json");
    fatal_if(!os, "cannot write BENCH_results.json");
    os << "{\n"
       << "  \"sessions\": " << base.jobCount() << ",\n"
       << "  \"checkpoint_every\": " << base.checkpointEvery << ",\n"
       << "  \"baseline_ms\": " << jsonNum(baseline_ms) << ",\n"
       << "  \"persist_ms\": " << jsonNum(persist_ms) << ",\n"
       << "  \"persist_overhead_pct\": " << jsonNum(overhead) << ",\n"
       << "  \"checkpoint_flushes\": " << flushes << ",\n"
       << "  \"resume_reduce_ms\": " << jsonNum(resume_ms) << ",\n"
       << "  \"sharded_ms\": " << jsonNum(sharded_ms) << ",\n"
       << "  \"merge_reduce_ms\": " << jsonNum(merge_ms) << ",\n"
       << "  \"reports_identical\": true\n"
       << "}\n";
    std::cout << "[json: BENCH_results.json]\n";
    return 0;
}
