/**
 * @file
 * Simulator throughput bench: sessions/sec and events/sec measured
 * through the telemetry subsystem.
 *
 * Runs one fleet sweep at several thread counts with an armed
 * TelemetryRegistry, takes the best-of-N execute-stage time, and
 * reports the rates straight from the RunTelemetry summary — the same
 * numbers `pes_fleet run --telemetry-out` emits, so the bench also
 * exercises that pipeline end to end. It asserts the telemetry-armed
 * report is byte-identical to an uninstrumented run (the no-feedback
 * contract), then writes BENCH_sim.json. The JSON carries wall-clock
 * rates, so its bytes vary machine to machine; it is committed as the
 * recorded throughput baseline of ROADMAP item 3 (raw simulator
 * speed), not as a regression golden.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_common.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "telemetry/run_telemetry.hh"
#include "telemetry/telemetry.hh"
#include "util/json.hh"

using namespace pes;

namespace {

constexpr int kRepetitions = 3;

FleetConfig
sweepConfig()
{
    FleetConfig config;
    config.apps = parseAppList("cnn,amazon,social_feed");
    // Model-free schedulers: this bench tracks raw simulator event-loop
    // speed, not training or solver time.
    config.schedulers = {SchedulerKind::Interactive,
                         SchedulerKind::Ondemand, SchedulerKind::Ebs};
    config.users = 32;
    return config;
}

/** One measured point: the best-of-N RunTelemetry at @p threads. */
RunTelemetry
measure(const FleetConfig &base, int threads)
{
    RunTelemetry best;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        FleetConfig config = base;
        config.threads = threads;
        TelemetryRegistry telemetry;
        config.telemetry = &telemetry;
        FleetRunner runner(std::move(config));
        const FleetOutcome outcome = runner.run();
        fatal_if(!outcome.diagnostics.empty(),
                 "bench: run reported problems");
        RunTelemetry t = makeRunTelemetry(runner.config(), outcome);
        t.tool = "bench";
        if (rep == 0 || t.executeMs < best.executeMs)
            best = t;
    }
    return best;
}

} // namespace

int
main()
{
    setQuiet(true);
    benchHeader("Simulator throughput bench",
                "fleet platform scaling (sessions/sec, events/sec)");

    const FleetConfig base = sweepConfig();
    std::cout << base.jobCount() << " sessions per sweep ("
              << base.apps.size() << " apps x " << base.schedulers.size()
              << " schedulers x " << base.users
              << " users), best of " << kRepetitions << "\n\n";

    // No-feedback check: the telemetry-armed report must match an
    // uninstrumented run byte for byte.
    std::string armed_bytes, plain_bytes;
    {
        FleetConfig config = base;
        config.threads = 2;
        TelemetryRegistry telemetry;
        config.telemetry = &telemetry;
        FleetRunner runner(std::move(config));
        const FleetOutcome outcome = runner.run();
        armed_bytes = JsonReporter::toString(
            makeFleetReport(runner.config(), outcome.metrics));
    }
    {
        FleetConfig config = base;
        config.threads = 2;
        FleetRunner runner(std::move(config));
        const FleetOutcome outcome = runner.run();
        plain_bytes = JsonReporter::toString(
            makeFleetReport(runner.config(), outcome.metrics));
    }
    fatal_if(armed_bytes != plain_bytes,
             "telemetry-armed report diverged from uninstrumented run");

    const std::vector<int> thread_counts = {1, 2, 4};
    std::vector<RunTelemetry> points;
    for (const int threads : thread_counts)
        points.push_back(measure(base, threads));

    Table table({"threads", "execute(ms)", "sessions/s", "events/s",
                 "cache hit%"});
    for (const RunTelemetry &t : points) {
        const uint64_t lookups = t.cacheHits + t.cacheMisses;
        table.beginRow()
            .cell(static_cast<long>(t.threads))
            .cell(t.executeMs, 1)
            .cell(t.sessionsPerSec, 1)
            .cell(t.eventsPerSec, 1)
            .cell(lookups ? 100.0 * t.cacheHits / lookups : 0.0, 1);
    }
    table.print(std::cout);
    std::cout << "\ntelemetry-armed report byte-identical to "
                 "uninstrumented run\n";

    std::ofstream os("BENCH_sim.json");
    fatal_if(!os, "cannot write BENCH_sim.json");
    os << "{\n"
       << "  \"sessions\": " << base.jobCount() << ",\n"
       << "  \"events\": " << points.front().events << ",\n"
       << "  \"repetitions\": " << kRepetitions << ",\n"
       << "  \"reports_identical\": true,\n"
       << "  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const RunTelemetry &t = points[i];
        os << "    {\"threads\": " << t.threads
           << ", \"execute_ms\": " << jsonNum(t.executeMs)
           << ", \"sessions_per_sec\": " << jsonNum(t.sessionsPerSec)
           << ", \"events_per_sec\": " << jsonNum(t.eventsPerSec)
           << ", \"cache_hits\": " << t.cacheHits
           << ", \"cache_misses\": " << t.cacheMisses << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n"
       << "}\n";
    std::cout << "[json: BENCH_sim.json]\n";
    return 0;
}
