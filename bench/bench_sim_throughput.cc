/**
 * @file
 * Simulator throughput bench: sessions/sec and events/sec measured
 * through the telemetry subsystem, recorded as a perf-history sample.
 *
 * Runs one fleet sweep at several thread counts with an armed
 * TelemetryRegistry, keeping EVERY replicate (the replicate spread is
 * what the perf-history gate estimates noise from), and reports the
 * rates straight from the RunTelemetry summary — the same numbers
 * `pes_fleet run --telemetry-out` emits, so the bench also exercises
 * that pipeline end to end. It asserts the telemetry-armed report is
 * byte-identical to an uninstrumented run (the no-feedback contract),
 * then APPENDS one PerfSample line (label "bench_sim") to
 * BENCH_sim.json in the perf-history JSONL schema — the committed file
 * is the throughput ledger of ROADMAP item 3, replayable with
 * `pes_perf report --history=BENCH_sim.json` and gateable with
 * `pes_perf gate`. Its numbers vary machine to machine (the sample
 * carries a machine fingerprint so foreign samples never gate against
 * each other).
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "telemetry/perf_history.hh"
#include "telemetry/run_telemetry.hh"
#include "telemetry/telemetry.hh"

using namespace pes;

namespace {

constexpr int kRepetitions = 3;

FleetConfig
sweepConfig()
{
    FleetConfig config;
    config.apps = parseAppList("cnn,amazon,social_feed");
    // Model-free schedulers: this bench tracks raw simulator event-loop
    // speed, not training or solver time.
    config.schedulers = {SchedulerKind::Interactive,
                         SchedulerKind::Ondemand, SchedulerKind::Ebs};
    config.users = 32;
    return config;
}

/** All kRepetitions RunTelemetry replicates at @p threads. */
std::vector<RunTelemetry>
measure(const FleetConfig &base, int threads)
{
    std::vector<RunTelemetry> replicates;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        FleetConfig config = base;
        config.threads = threads;
        TelemetryRegistry telemetry;
        config.telemetry = &telemetry;
        FleetRunner runner(std::move(config));
        const FleetOutcome outcome = runner.run();
        fatal_if(!outcome.diagnostics.empty(),
                 "bench: run reported problems");
        RunTelemetry t = makeRunTelemetry(runner.config(), outcome);
        t.tool = "bench";
        replicates.push_back(std::move(t));
    }
    return replicates;
}

} // namespace

int
main()
{
    setQuiet(true);
    benchHeader("Simulator throughput bench",
                "fleet platform scaling (sessions/sec, events/sec)");

    const FleetConfig base = sweepConfig();
    std::cout << base.jobCount() << " sessions per sweep ("
              << base.apps.size() << " apps x " << base.schedulers.size()
              << " schedulers x " << base.users << " users), "
              << kRepetitions << " replicates per thread count\n\n";

    // No-feedback check: the telemetry-armed report must match an
    // uninstrumented run byte for byte.
    std::string armed_bytes, plain_bytes;
    {
        FleetConfig config = base;
        config.threads = 2;
        TelemetryRegistry telemetry;
        config.telemetry = &telemetry;
        FleetRunner runner(std::move(config));
        const FleetOutcome outcome = runner.run();
        armed_bytes = JsonReporter::toString(
            makeFleetReport(runner.config(), outcome.metrics));
    }
    {
        FleetConfig config = base;
        config.threads = 2;
        FleetRunner runner(std::move(config));
        const FleetOutcome outcome = runner.run();
        plain_bytes = JsonReporter::toString(
            makeFleetReport(runner.config(), outcome.metrics));
    }
    fatal_if(armed_bytes != plain_bytes,
             "telemetry-armed report diverged from uninstrumented run");

    // Thread counts above the machine's core count measure scheduler
    // thrash, not simulator speed: the "t4" numbers a 2-core box
    // produces would look like regressions next to a 4-core box's.
    // Skip them (noted in the sample), but keep the REQUESTED list in
    // the config identity so samples from differently-sized machines
    // of the same fingerprint still compare.
    const int hw_threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    const std::vector<int> thread_counts = {1, 2, 4};
    std::vector<int> skipped;
    std::map<int, std::vector<RunTelemetry>> by_threads;
    for (const int threads : thread_counts) {
        if (threads > hw_threads) {
            skipped.push_back(threads);
            std::cout << "t" << threads
                      << ": skipped (hardware_concurrency = "
                      << hw_threads << ")\n";
            continue;
        }
        by_threads[threads] = measure(base, threads);
    }

    // Assemble the perf-history sample: replicate metric vectors per
    // thread point, plus derived parallel efficiency from the t1 mean.
    PerfSample sample;
    sample.label = "bench_sim";
    if (const char *env = std::getenv("PES_GIT_REV"))
        sample.rev = env;
    sample.machine = machineFingerprint();
    std::string scenario;
    for (const auto &group : by_threads) {
        PerfPoint point;
        point.threads = group.first;
        std::map<std::string, std::vector<double>> series;
        for (const RunTelemetry &t : group.second) {
            sample.sessions = std::max(sample.sessions, t.sessions);
            sample.events = std::max(sample.events, t.events);
            scenario = t.scenario;
            for (const auto &metric : perfPointMetrics(t))
                series[metric.first].push_back(metric.second);
        }
        for (auto &metric : series)
            point.set(metric.first, std::move(metric.second));
        sample.points.push_back(std::move(point));
    }
    derivePerfParallelEfficiency(sample);
    sample.config = perfConfigIdentity(sample.label, sample.sessions,
                                       sample.events, thread_counts,
                                       scenario);
    // Ledger note: how many requested thread counts this machine could
    // not measure. Deterministic per machine, so same-fingerprint
    // comparisons see identical values; a point missing entirely is a
    // note, never a gate failure.
    if (!skipped.empty())
        sample.quality.emplace_back("bench.skipped_thread_counts",
                                    static_cast<double>(skipped.size()));

    // Table: replicate means, with the scaling-attribution columns the
    // ledger gates or charts (efficiency, lock waits, dup synthesis).
    Table table({"threads", "execute(ms)", "sessions/s", "events/s",
                 "efficiency", "lock waits", "dup synth", "cache hit%"});
    for (const PerfPoint &point : sample.points) {
        const auto meanOf = [&point](const char *name) {
            const std::vector<double> *values = point.find(name);
            return values ? perfNoise(*values).mean : 0.0;
        };
        const double hits = meanOf("cache_hits");
        const double lookups = hits + meanOf("cache_misses");
        table.beginRow()
            .cell(static_cast<long>(point.threads))
            .cell(meanOf("execute_ms"), 1)
            .cell(meanOf("sessions_per_sec"), 1)
            .cell(meanOf("events_per_sec"), 1)
            .cell(meanOf("parallel_efficiency"), 3)
            .cell(meanOf("cache_lock_waits") +
                      meanOf("persist_lock_waits"),
                  1)
            .cell(meanOf("duplicate_synthesis"), 1)
            .cell(lookups > 0.0 ? 100.0 * hits / lookups : 0.0, 1);
    }
    table.print(std::cout);
    std::cout << "\ntelemetry-armed report byte-identical to "
                 "uninstrumented run\n";

    std::string error;
    fatal_if(!appendPerfSample("BENCH_sim.json", sample, &error), "%s",
             error.c_str());
    std::cout << "[perf-history sample appended: BENCH_sim.json (rev "
              << sample.rev << ", machine " << sample.machine << ")]\n";
    return 0;
}
