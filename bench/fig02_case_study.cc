/**
 * @file
 * Reproduces paper Fig. 2: a snapshot of an event sequence taken while
 * interacting with cnn.com. The snapshot is a burst around an inherently
 * heavy event (the paper's E2): under reactive schedulers the heavy
 * event misses its deadline (Type I) and drags its successors with it
 * (Type II) or forces them onto over-provisioned configurations
 * (Type III); the oracle coordinates across the burst and meets
 * everything; PES approximates the oracle through speculation.
 *
 * Like the paper, the snapshot comes from a real interaction session:
 * we replay cnn evaluation traces under all four schedulers and print
 * the window around the first heavy-tap burst.
 */

#include "bench/bench_common.hh"

using namespace pes;

namespace {

/** Find a burst window [i-1 .. i+2] around an inherently heavy tap. */
int
findBurst(const InteractionTrace &trace)
{
    for (size_t i = 1; i + 2 < trace.events.size(); ++i) {
        const TraceEvent &e = trace.events[i];
        if (interactionOf(e.type) != Interaction::Tap)
            continue;
        if (e.totalWork().ndep < 350.0)
            continue;
        // Followers arrive quickly (the interference the paper shows).
        if (trace.events[i + 1].arrival - e.arrival < 1500.0 &&
            trace.events[i + 2].arrival - e.arrival < 3000.0) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

} // namespace

int
main()
{
    setQuiet(true);
    benchHeader("Fig. 2 - cnn.com interaction snapshot",
                "PES paper Fig. 2 (Sec. 4.2): a burst around an "
                "inherently heavy event under each scheduler.");

    Experiment exp;
    exp.trainedModel();
    const AppProfile &profile = appByName("cnn");

    // Scan fresh-user sessions for the paper's scenario.
    InteractionTrace snapshot_trace;
    int heavy_idx = -1;
    for (uint64_t seed = TraceGenerator::kEvaluationSeedBase;
         seed < TraceGenerator::kEvaluationSeedBase + 40; ++seed) {
        InteractionTrace candidate =
            exp.generator().generate(profile, seed);
        const int idx = findBurst(candidate);
        if (idx >= 0) {
            snapshot_trace = std::move(candidate);
            heavy_idx = idx;
            break;
        }
    }
    fatal_if(heavy_idx < 0, "no heavy-tap burst found in 40 sessions");

    std::cout << "Session of user "
              << snapshot_trace.userSeed << ": "
              << snapshot_trace.size() << " events; snapshot window is "
              << "events " << heavy_idx - 1 << ".." << heavy_idx + 2
              << " (E2 = inherently heavy tap, "
              << formatDouble(
                     snapshot_trace.events[static_cast<size_t>(heavy_idx)]
                         .totalWork().ndep, 0)
              << " Mcycles).\n\n";

    Table table({"scheduler", "event", "type", "gap_ms", "config",
                 "latency_ms", "qos_ms", "verdict", "busy_mJ"});
    Table summary({"scheduler", "window_violations", "window_busy_mJ",
                   "trace_energy_mJ"});
    for (const SchedulerKind kind :
         {SchedulerKind::Interactive, SchedulerKind::Ebs,
          SchedulerKind::Pes, SchedulerKind::Oracle}) {
        const auto driver = exp.makeScheduler(kind);
        const SimResult r = exp.runTrace(profile, snapshot_trace,
                                         *driver);
        int violations = 0;
        double busy = 0.0;
        for (int k = -1; k <= 2; ++k) {
            const size_t i = static_cast<size_t>(heavy_idx + k);
            const EventRecord &e = r.events[i];
            const TraceEvent &ev = snapshot_trace.events[i];
            const AcmpConfig cfg =
                exp.platform().configAt(e.configIndex);
            const double gap = i > 0
                ? ev.arrival - snapshot_trace.events[i - 1].arrival
                : 0.0;
            violations += e.violated() ? 1 : 0;
            busy += e.busyEnergy;
            table.beginRow()
                .cell(r.schedulerName)
                .cell("E" + std::to_string(k + 2))
                .cell(std::string(domEventTypeName(e.type)))
                .cell(gap, 0)
                .cell(std::string(coreTypeName(cfg.core)) + "@" +
                      formatDouble(cfg.freq, 0))
                .cell(e.latency(), 1)
                .cell(e.qosTarget, 0)
                .cell(std::string(e.violated()
                                      ? "MISS"
                                      : (e.servedSpeculatively
                                             ? "meet (spec)"
                                             : "meet")))
                .cell(e.busyEnergy, 1);
        }
        summary.beginRow()
            .cell(r.schedulerName)
            .cell(static_cast<long>(violations))
            .cell(busy, 1)
            .cell(r.totalEnergy, 1);
    }

    emitTable(table, "fig02_case_study.csv");
    std::cout << "\nWindow summary:\n";
    summary.print(std::cout);
    std::cout <<
        "\nExpected narrative (paper Fig. 2): reactive schedulers miss "
        "the heavy event and/or its followers; the oracle meets all "
        "four with the least energy; PES sits between EBS and the "
        "oracle.\n";
    return 0;
}
