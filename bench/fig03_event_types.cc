/**
 * @file
 * Reproduces paper Fig. 3: the distribution of events across Type I-IV
 * under the reactive EBS scheduler for the 12 seen applications
 * (Sec. 4.3). Type I+II violate QoS; Type III meets QoS but wastes
 * energy; Type IV is benign.
 */

#include "bench/bench_common.hh"
#include "sim/classifier.hh"

using namespace pes;

int
main()
{
    setQuiet(true);
    benchHeader("Fig. 3 - Event Type I-IV distribution under EBS",
                "PES paper Fig. 3 (Sec. 4.3).");

    Experiment exp;
    exp.trainedModel();
    EventClassifier classifier(exp.platform(), exp.power());

    Table table({"app", "TypeI_pct", "TypeII_pct", "TypeIII_pct",
                 "TypeIV_pct"});
    CategoryDistribution overall;
    for (const AppProfile &p : seenApps()) {
        const auto driver = exp.makeScheduler(SchedulerKind::Ebs);
        CategoryDistribution dist;
        for (const auto &trace : exp.generator().evaluationSet(
                 p, Experiment::kEvalTracesPerApp)) {
            const SimResult r = exp.runTrace(p, trace, *driver);
            dist.merge(classifier.classifyRun(trace, r));
        }
        overall.merge(dist);
        table.beginRow()
            .cell(p.name)
            .cell(dist.fraction(EventCategory::TypeI) * 100.0, 1)
            .cell(dist.fraction(EventCategory::TypeII) * 100.0, 1)
            .cell(dist.fraction(EventCategory::TypeIII) * 100.0, 1)
            .cell(dist.fraction(EventCategory::TypeIV) * 100.0, 1);
    }
    table.beginRow()
        .cell(std::string("overall"))
        .cell(overall.fraction(EventCategory::TypeI) * 100.0, 1)
        .cell(overall.fraction(EventCategory::TypeII) * 100.0, 1)
        .cell(overall.fraction(EventCategory::TypeIII) * 100.0, 1)
        .cell(overall.fraction(EventCategory::TypeIV) * 100.0, 1);

    emitTable(table, "fig03_event_types.csv");
    const double miss = overall.fraction(EventCategory::TypeI) +
        overall.fraction(EventCategory::TypeII);
    std::cout << "Measured: " << formatPercent(miss)
              << " of events miss QoS under the reactive scheduler; "
              << formatPercent(overall.fraction(EventCategory::TypeIII))
              << " waste energy (Type III).\n"
              << "Paper:    ~21% miss QoS (Type I+II), ~14% Type III.\n";
    return 0;
}
