/**
 * @file
 * Reproduces paper Fig. 8: event-predictor accuracy per application.
 * The model is trained on training traces from the 12 seen apps; all
 * evaluation traces come from fresh users (Sec. 6.1/6.2). The paper
 * reports 91.3% (sigma 4.1%) on seen and 89.2% (sigma 4.7%) on unseen
 * applications, ranging from ~82% (google) to ~97% (slashdot).
 */

#include "bench/bench_common.hh"
#include "core/predictor_training.hh"
#include "util/stats.hh"

using namespace pes;

int
main()
{
    setQuiet(true);
    benchHeader("Fig. 8 - Event predictor accuracy",
                "PES paper Fig. 8 (Sec. 6.2).");

    Experiment exp;
    const LogisticModel &model = exp.trainedModel();

    Table table({"app", "set", "accuracy_pct", "events"});
    RunningStats seen_acc, unseen_acc;
    for (const AppProfile &p : appRegistry()) {
        const WebApp &app = exp.generator().appFor(p);
        double correct_weighted = 0.0;
        long total = 0;
        for (const auto &trace : exp.generator().evaluationSet(
                 p, Experiment::kEvalTracesPerApp)) {
            const PredictorEval eval = evaluatePredictor(model, app,
                                                         trace);
            correct_weighted +=
                eval.accuracy() * eval.confusion.total();
            total += eval.confusion.total();
        }
        const double accuracy =
            total ? correct_weighted / static_cast<double>(total) : 0.0;
        (p.seen ? seen_acc : unseen_acc).add(accuracy);
        table.beginRow()
            .cell(p.name)
            .cell(std::string(p.seen ? "seen" : "unseen"))
            .cell(accuracy * 100.0, 1)
            .cell(total);
    }
    table.beginRow().cell(std::string("avg.seen")).cell(std::string("-"))
        .cell(seen_acc.mean() * 100.0, 1).cell(0L);
    table.beginRow().cell(std::string("avg.unseen"))
        .cell(std::string("-")).cell(unseen_acc.mean() * 100.0, 1)
        .cell(0L);

    emitTable(table, "fig08_prediction_accuracy.csv");
    std::cout << "Measured: seen " << formatPercent(seen_acc.mean())
              << " (sigma " << formatPercent(seen_acc.stddev())
              << "), unseen " << formatPercent(unseen_acc.mean())
              << " (sigma " << formatPercent(unseen_acc.stddev())
              << ").\n"
              << "Paper:    seen 91.3% (sigma 4.1%), unseen 89.2% "
                 "(sigma 4.7%).\n";
    return 0;
}
