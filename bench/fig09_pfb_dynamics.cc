/**
 * @file
 * Reproduces paper Fig. 9: Pending Frame Buffer occupancy over an ebay
 * interaction (Sec. 6.2): frames committed one by one as real events
 * match, occasional squashes dropping the buffer to zero, and new
 * prediction rounds refilling it.
 */

#include "bench/bench_common.hh"

using namespace pes;

int
main()
{
    setQuiet(true);
    benchHeader("Fig. 9 - Pending Frame Buffer dynamics (ebay)",
                "PES paper Fig. 9 (Sec. 6.2).");

    Experiment exp;
    exp.trainedModel();
    const AppProfile &profile = appByName("ebay");
    const auto driver = exp.makeScheduler(SchedulerKind::Pes);
    const auto traces = exp.generator().evaluationSet(
        profile, Experiment::kEvalTracesPerApp);

    Table table({"trace", "time_s", "event_idx", "pfb_size",
                 "after_squash"});
    int max_pfb = 0;
    int squashes = 0;
    int rounds = 0;
    for (size_t t = 0; t < traces.size(); ++t) {
        const SimResult r = exp.runTrace(profile, traces[t], *driver);
        int last = 0;
        for (const PfbSample &s : r.pfbTrace) {
            table.beginRow()
                .cell(static_cast<long>(t))
                .cell(s.time / 1000.0, 2)
                .cell(static_cast<long>(s.eventIndex))
                .cell(static_cast<long>(s.pfbSize))
                .cell(std::string(s.afterSquash ? "squash" : ""));
            max_pfb = std::max(max_pfb, s.pfbSize);
            squashes += s.afterSquash ? 1 : 0;
            if (s.pfbSize > last && last == 0 && !s.afterSquash)
                ++rounds;
            last = s.pfbSize;
        }
    }

    emitTable(table, "fig09_pfb_dynamics.csv");
    std::cout << "Max PFB occupancy: " << max_pfb
              << " frames (paper plot peaks at ~9).\n"
              << "Squash events: " << squashes
              << "; new prediction rounds: " << rounds << ".\n";
    return 0;
}
