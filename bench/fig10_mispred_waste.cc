/**
 * @file
 * Reproduces paper Fig. 10: mispredict waste per application — the
 * execution time spent generating speculative frames that a squash
 * discarded, averaged per misprediction, plus the amortized per-event
 * waste and the energy overhead (Sec. 6.3).
 */

#include "bench/bench_common.hh"

using namespace pes;

int
main()
{
    setQuiet(true);
    benchHeader("Fig. 10 - Mispredict waste",
                "PES paper Fig. 10 + Sec. 6.3 overhead analysis.");

    Experiment exp;
    exp.trainedModel();

    Table table({"app", "set", "waste_per_mispredict_ms",
                 "waste_per_event_ms", "waste_energy_per_mispredict_mJ",
                 "waste_energy_pct", "mispredicts"});
    double seen_ms = 0, unseen_ms = 0, seen_pct = 0, unseen_pct = 0;
    int seen_n = 0, unseen_n = 0;
    for (const AppProfile &p : appRegistry()) {
        const auto driver = exp.makeScheduler(SchedulerKind::Pes);
        ResultSet rs;
        exp.runAppUnder(p, *driver, rs);
        const GroupSummary s = rs.summarize(p.name, "PES");

        int mispredicts = 0;
        double waste_mj = 0.0, total_mj = 0.0;
        for (const SimResult &r : rs.results()) {
            mispredicts += r.mispredictions;
            waste_mj += r.wasteEnergy - r.endOfRunWasteMj;
            total_mj += r.totalEnergy;
        }
        const double pct = total_mj > 0 ? waste_mj / total_mj : 0.0;
        table.beginRow()
            .cell(p.name)
            .cell(std::string(p.seen ? "seen" : "unseen"))
            .cell(s.wastePerMispredictMs, 1)
            .cell(s.wastePerEventMs, 2)
            .cell(s.wastePerMispredictMj, 1)
            .cell(pct * 100.0, 2)
            .cell(static_cast<long>(mispredicts));
        if (p.seen) {
            seen_ms += s.wastePerMispredictMs;
            seen_pct += pct;
            ++seen_n;
        } else {
            unseen_ms += s.wastePerMispredictMs;
            unseen_pct += pct;
            ++unseen_n;
        }
    }

    emitTable(table, "fig10_mispred_waste.csv");
    std::cout << "Measured: seen avg " << seen_ms / seen_n
              << " ms/mispredict (" << formatPercent(seen_pct / seen_n)
              << " of energy); unseen avg " << unseen_ms / unseen_n
              << " ms (" << formatPercent(unseen_pct / unseen_n)
              << ").\n"
              << "Paper:    ~20 ms per mispredict, ~2 ms amortized per "
                 "event, 1.8%/2.2% energy overhead.\n"
              << "Note: our speculative frames are often generated on "
                 "the little cluster, so per-mispredict waste times run "
                 "higher than the paper's while the energy share stays "
                 "small.\n";
    return 0;
}
