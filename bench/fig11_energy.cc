/**
 * @file
 * Reproduces paper Fig. 11: per-application energy consumption of
 * Interactive / EBS / PES / Oracle, normalized to Interactive, for the
 * 12 seen and 6 unseen applications (three fresh evaluation traces per
 * app, as in Sec. 6.1).
 */

#include "bench/bench_common.hh"

using namespace pes;

int
main()
{
    setQuiet(true);
    benchHeader("Fig. 11 - Normalized energy consumption",
                "PES paper Fig. 11 (Sec. 6.4). Lower is better; "
                "Interactive = 100%.");

    Experiment exp;
    exp.trainedModel();

    const std::vector<SchedulerKind> kinds{
        SchedulerKind::Interactive, SchedulerKind::Ebs,
        SchedulerKind::Pes, SchedulerKind::Oracle};

    Table table({"app", "set", "Interactive", "EBS", "PES", "Oracle"});
    for (const bool seen : {true, false}) {
        const auto profiles = seen ? seenApps() : unseenApps();
        // Fleet-backed sweep; normalization needs the raw per-trace
        // energies, so use the outcome's ResultSet.
        const ResultSet rs =
            runFleetEvaluation(exp, profiles, kinds).results;
        for (const AppProfile &p : profiles) {
            table.beginRow()
                .cell(p.name)
                .cell(std::string(seen ? "seen" : "unseen"))
                .cell(100.0, 1)
                .cell(rs.normalizedEnergy(p.name, "EBS", "Interactive") *
                          100.0, 1)
                .cell(rs.normalizedEnergy(p.name, "PES", "Interactive") *
                          100.0, 1)
                .cell(rs.normalizedEnergy(p.name, "Oracle",
                                          "Interactive") * 100.0, 1);
        }
        const auto apps = namesOf(profiles);
        table.beginRow()
            .cell(std::string(seen ? "avg.seen" : "avg.unseen"))
            .cell(std::string(seen ? "seen" : "unseen"))
            .cell(100.0, 1)
            .cell(rs.meanNormalizedEnergy(apps, "EBS", "Interactive") *
                      100.0, 1)
            .cell(rs.meanNormalizedEnergy(apps, "PES", "Interactive") *
                      100.0, 1)
            .cell(rs.meanNormalizedEnergy(apps, "Oracle", "Interactive") *
                      100.0, 1);
    }

    emitTable(table, "fig11_energy.csv");
    std::cout <<
        "Paper reference points (seen apps): EBS ~90%, PES ~72%, "
        "Oracle below PES.\n"
        "Expected shape: Interactive > EBS > PES > Oracle on average.\n";
    return 0;
}
