/**
 * @file
 * Reproduces paper Fig. 12: per-application QoS violation rates of
 * Interactive / EBS / PES (Oracle is zero by construction and therefore
 * omitted in the paper's figure; we print it as a sanity column).
 */

#include "bench/bench_common.hh"

using namespace pes;

int
main()
{
    setQuiet(true);
    benchHeader("Fig. 12 - QoS violation rate (%)",
                "PES paper Fig. 12 (Sec. 6.4). Lower is better; Oracle "
                "must be 0.");

    Experiment exp;
    exp.trainedModel();

    const std::vector<SchedulerKind> kinds{
        SchedulerKind::Interactive, SchedulerKind::Ebs,
        SchedulerKind::Pes, SchedulerKind::Oracle};

    const std::string device = exp.platform().name();

    Table table({"app", "set", "Interactive", "EBS", "PES", "Oracle"});
    double seen_pes = 0.0, seen_ebs = 0.0, seen_inter = 0.0;
    for (const bool seen : {true, false}) {
        const auto profiles = seen ? seenApps() : unseenApps();
        const FleetOutcome outcome = runFleetEvaluation(
            exp, profiles, kinds, /*collect_results=*/false);
        const MetricsAggregator &metrics = outcome.metrics;
        double pes_sum = 0, ebs_sum = 0, inter_sum = 0, oracle_sum = 0;
        for (const AppProfile &p : profiles) {
            const double inter =
                metrics.cell(device, p.name, "Interactive").violationRate;
            const double ebs =
                metrics.cell(device, p.name, "EBS").violationRate;
            const double pes =
                metrics.cell(device, p.name, "PES").violationRate;
            const double oracle =
                metrics.cell(device, p.name, "Oracle").violationRate;
            inter_sum += inter;
            ebs_sum += ebs;
            pes_sum += pes;
            oracle_sum += oracle;
            table.beginRow()
                .cell(p.name)
                .cell(std::string(seen ? "seen" : "unseen"))
                .cell(inter * 100.0, 1)
                .cell(ebs * 100.0, 1)
                .cell(pes * 100.0, 1)
                .cell(oracle * 100.0, 1);
        }
        const double n = static_cast<double>(profiles.size());
        table.beginRow()
            .cell(std::string(seen ? "avg.seen" : "avg.unseen"))
            .cell(std::string(seen ? "seen" : "unseen"))
            .cell(inter_sum / n * 100.0, 1)
            .cell(ebs_sum / n * 100.0, 1)
            .cell(pes_sum / n * 100.0, 1)
            .cell(oracle_sum / n * 100.0, 1);
        if (seen) {
            seen_pes = pes_sum / n;
            seen_ebs = ebs_sum / n;
            seen_inter = inter_sum / n;
        }
    }

    emitTable(table, "fig12_qos_violation.csv");
    std::cout << "Paper reference (seen): Interactive ~24.8%, EBS "
                 "~24.4%, PES ~7.5%.\n"
              << "Measured reduction of QoS violation: "
              << formatPercent(seen_inter > 0
                                   ? 1.0 - seen_pes / seen_inter : 0.0)
              << " vs Interactive, "
              << formatPercent(seen_ebs > 0 ? 1.0 - seen_pes / seen_ebs
                                            : 0.0)
              << " vs EBS.\n";
    return 0;
}
