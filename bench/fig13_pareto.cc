/**
 * @file
 * Reproduces paper Fig. 13: Pareto analysis of all scheduling schemes —
 * normalized energy vs QoS violation, aggregated over the 12 seen
 * applications, including the Ondemand governor. PES must
 * Pareto-dominate every other non-oracle scheme.
 */

#include "bench/bench_common.hh"

using namespace pes;

int
main()
{
    setQuiet(true);
    benchHeader("Fig. 13 - Pareto analysis (energy vs QoS violation)",
                "PES paper Fig. 13 (Sec. 6.4), aggregated over the 12 "
                "seen apps.");

    Experiment exp;
    exp.trainedModel();

    const std::vector<SchedulerKind> kinds{
        SchedulerKind::Interactive, SchedulerKind::Ondemand,
        SchedulerKind::Ebs, SchedulerKind::Pes, SchedulerKind::Oracle};

    const auto profiles = seenApps();
    ResultSet rs = runEvaluationSweep(exp, profiles, kinds);
    const auto apps = namesOf(profiles);

    Table table({"scheduler", "norm_energy_pct", "qos_violation_pct"});
    struct Point
    {
        std::string name;
        double energy;
        double violation;
    };
    std::vector<Point> points;
    for (const char *name :
         {"Interactive", "Ondemand", "EBS", "PES", "Oracle"}) {
        const double energy =
            rs.meanNormalizedEnergy(apps, name, "Interactive") * 100.0;
        const double violation =
            rs.summarizeScheduler(name).violationRate * 100.0;
        points.push_back({name, energy, violation});
        table.beginRow().cell(std::string(name)).cell(energy, 1)
            .cell(violation, 1);
    }
    emitTable(table, "fig13_pareto.csv");

    // Dominance check: no non-oracle scheme may beat PES on both axes.
    const Point &pes = points[3];
    bool dominated = false;
    for (size_t i = 0; i + 2 < points.size(); ++i) {
        if (points[i].energy < pes.energy &&
            points[i].violation < pes.violation) {
            dominated = true;
        }
    }
    std::cout << (dominated
                      ? "WARNING: PES is dominated by a baseline.\n"
                      : "PES Pareto-dominates all non-oracle schemes "
                        "(paper's headline claim).\n");
    return 0;
}
