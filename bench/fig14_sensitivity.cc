/**
 * @file
 * Reproduces paper Fig. 14: sensitivity of PES to the prediction
 * confidence threshold (30%..100%), normalized to EBS. The paper finds
 * the benefit flat from 70% down (mispredict penalties offset the larger
 * window) and degrading toward 100% (prediction effectively disabled).
 */

#include "bench/bench_common.hh"

using namespace pes;

int
main()
{
    setQuiet(true);
    benchHeader("Fig. 14 - Confidence-threshold sensitivity",
                "PES paper Fig. 14 (Sec. 6.5); normalized to EBS.");

    Experiment exp;
    exp.trainedModel();

    // Subset of seen apps keeps the sweep brisk while spanning behaviour
    // (bursty, shoppy, newsy, searchy).
    std::vector<AppProfile> profiles;
    for (const char *name :
         {"cnn", "ebay", "twitter", "google", "espn", "sina"})
        profiles.push_back(appByName(name));

    // EBS baselines per app, over a widened trace sample (the paper's
    // three traces per app leave the threshold sweep noisy).
    constexpr int kTraces = 6;
    ResultSet ebs_rs;
    for (const AppProfile &p : profiles) {
        const auto driver = exp.makeScheduler(SchedulerKind::Ebs);
        for (const auto &trace :
             exp.generator().evaluationSet(p, kTraces))
            ebs_rs.add(exp.runTrace(p, trace, *driver));
    }

    Table table({"confidence_threshold_pct", "norm_energy_vs_ebs_pct",
                 "qos_violation_reduction_vs_ebs_pct",
                 "mean_prediction_degree"});
    for (const double threshold :
         {0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00}) {
        ResultSet rs;
        double degree_sum = 0.0;
        long degree_n = 0;
        for (const AppProfile &p : profiles) {
            PesScheduler::Config config;
            config.predictor.confidenceThreshold = threshold;
            PesScheduler pes(exp.trainedModel(), config);
            for (const auto &trace :
                 exp.generator().evaluationSet(p, kTraces))
                rs.add(exp.runTrace(p, trace, pes));
        }
        for (const SimResult &r : rs.results()) {
            for (int d : r.predictionDegrees) {
                degree_sum += d;
                ++degree_n;
            }
        }

        double energy_ratio = 0.0;
        double violation_reduction = 0.0;
        for (const AppProfile &p : profiles) {
            const double pes_e = rs.summarize(p.name, "PES").meanEnergy;
            const double ebs_e =
                ebs_rs.summarize(p.name, "EBS").meanEnergy;
            energy_ratio += ebs_e > 0 ? pes_e / ebs_e : 1.0;
            const double pes_v =
                rs.summarize(p.name, "PES").violationRate;
            const double ebs_v =
                ebs_rs.summarize(p.name, "EBS").violationRate;
            violation_reduction += ebs_v > 0
                ? (ebs_v - pes_v) / ebs_v : 0.0;
        }
        const double n = static_cast<double>(profiles.size());
        table.beginRow()
            .cell(threshold * 100.0, 0)
            .cell(energy_ratio / n * 100.0, 1)
            .cell(violation_reduction / n * 100.0, 1)
            .cell(degree_n ? degree_sum / degree_n : 0.0, 2);
    }

    emitTable(table, "fig14_sensitivity.csv");
    std::cout <<
        "Paper shape: flat benefit from ~70% threshold downward, "
        "shrinking window (and benefit) toward 100%.\n"
        "The paper picks 70% (prediction degree ~5).\n";
    return 0;
}
