/**
 * @file
 * Reproduces the Sec. 6.3 runtime-overhead analysis with
 * google-benchmark: the latency of one predictor evaluation (paper:
 * ~2 us for the five-variable logistic model), one constrained
 * optimization (paper: ~10 ms class, amortized across a prediction
 * round), the underlying solver primitives, and the modeled DVFS /
 * migration costs (100 us / 20 us, constants of the platform model).
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "core/optimizer.hh"
#include "core/predictor.hh"
#include "core/predictor_training.hh"
#include "solver/lp.hh"
#include "util/logging.hh"
#include "web/dom_analyzer.hh"

namespace pes {
namespace {

Experiment &
experiment()
{
    static Experiment exp;
    static bool init = false;
    if (!init) {
        setQuiet(true);
        exp.trainedModel();
        init = true;
    }
    return exp;
}

/** Paper: "evaluating a simple five-variable logistic model ~2 us". */
void
BM_PredictorSingleStep(benchmark::State &state)
{
    Experiment &exp = experiment();
    const AppProfile &profile = appByName("cnn");
    const WebApp &app = exp.generator().appFor(profile);
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    FeatureWindow window;
    window.observe(DomEventType::Click, 100, 100);
    EventPredictor predictor(exp.trainedModel());
    const DomOverlay snapshot = session.snapshotState();

    for (auto _ : state) {
        auto p = predictor.predictNext(analyzer, snapshot, window);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_PredictorSingleStep);

/** A full prediction round (degree ~5 with rollouts). */
void
BM_PredictorSequence(benchmark::State &state)
{
    Experiment &exp = experiment();
    const AppProfile &profile = appByName("cnn");
    const WebApp &app = exp.generator().appFor(profile);
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    FeatureWindow window;
    window.observe(DomEventType::Click, 100, 100);
    EventPredictor predictor(exp.trainedModel());

    for (auto _ : state) {
        auto seq = predictor.predictSequence(
            analyzer, session.snapshotState(), window);
        benchmark::DoNotOptimize(seq);
    }
}
BENCHMARK(BM_PredictorSequence);

/** Paper: "solving the constrained optimization problem ~10 ms". */
void
BM_GlobalOptimizer(benchmark::State &state)
{
    Experiment &exp = experiment();
    const DvfsLatencyModel model(exp.platform());
    const VsyncClock vsync;
    GlobalOptimizer optimizer(model, exp.power(), vsync);
    std::vector<PlanEventSpec> specs(
        static_cast<size_t>(state.range(0)));
    for (size_t i = 0; i < specs.size(); ++i) {
        specs[i].work = {5.0, 60.0 + 30.0 * static_cast<double>(i)};
        specs[i].qosTarget = i % 3 == 0 ? 33.0 : 300.0;
    }
    for (auto _ : state) {
        auto sol = optimizer.planSchedule(
            0.0, exp.platform().minConfig(), specs);
        benchmark::DoNotOptimize(sol);
    }
}
BENCHMARK(BM_GlobalOptimizer)->Arg(3)->Arg(6)->Arg(10);

/** The generic branch-and-bound path on the same formulation. */
void
BM_GenericIlp(benchmark::State &state)
{
    ScheduleProblem problem;
    for (int i = 0; i < 4; ++i) {
        ScheduleEvent ev;
        for (int j = 0; j < 6; ++j) {
            ev.latency.push_back(5.0 + 3.0 * j);
            ev.energy.push_back(40.0 - 5.0 * j);
        }
        ev.deadline = 40.0 * (i + 1);
        problem.events.push_back(ev);
    }
    for (auto _ : state) {
        IntegerProgram ilp = problem.toIlp();
        auto sol = ilp.solve();
        benchmark::DoNotOptimize(sol);
    }
}
BENCHMARK(BM_GenericIlp);

/** Dense two-phase simplex on a small LP. */
void
BM_Simplex(benchmark::State &state)
{
    for (auto _ : state) {
        LinearProgram lp(2);
        lp.setObjective({3.0, 5.0});
        lp.addConstraint({1.0, 0.0}, Relation::LessEqual, 4.0);
        lp.addConstraint({0.0, 2.0}, Relation::LessEqual, 12.0);
        lp.addConstraint({3.0, 2.0}, Relation::LessEqual, 18.0);
        auto result = lp.solve();
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_Simplex);

/** One EBS per-event configuration choice (estimate + argmin sweep). */
void
BM_EbsChoice(benchmark::State &state)
{
    Experiment &exp = experiment();
    EbsPolicy policy(exp.platform(), exp.power());
    const DvfsLatencyModel model(exp.platform());
    const Workload truth{5.0, 120.0};
    policy.recordMeasurement(1, DomEventType::Click,
                             exp.platform().maxConfig(),
                             model.latency(truth,
                                           exp.platform().maxConfig()));
    policy.recordMeasurement(
        1, DomEventType::Click, {CoreType::Big, 1000.0},
        model.latency(truth, {CoreType::Big, 1000.0}));
    for (auto _ : state) {
        auto cfg = policy.chooseConfig(1, DomEventType::Click, 300.0);
        benchmark::DoNotOptimize(cfg);
    }
}
BENCHMARK(BM_EbsChoice);

/** Full end-to-end replay of one trace under PES (context). */
void
BM_FullPesReplay(benchmark::State &state)
{
    Experiment &exp = experiment();
    const AppProfile &profile = appByName("cnn");
    const auto trace =
        exp.generator().evaluationSet(profile, 1).front();
    for (auto _ : state) {
        const auto driver = exp.makeScheduler(SchedulerKind::Pes);
        auto r = exp.runTrace(profile, trace, *driver);
        benchmark::DoNotOptimize(r.totalEnergy);
    }
}
BENCHMARK(BM_FullPesReplay)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace pes

BENCHMARK_MAIN();
