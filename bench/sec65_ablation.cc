/**
 * @file
 * Reproduces the Sec. 6.5 "Predictor Design" ablation plus the design
 * knobs this reproduction makes explicit:
 *
 *   1. DOM analysis on/off (paper: accuracy drops ~5% without it);
 *   2. deadline model for predicted events (conservative QoS chaining
 *      vs expected-gap relaxation for loads vs for everything);
 *   3. commit-match granularity (type-level vs strict node matching).
 */

#include "bench/bench_common.hh"

using namespace pes;

namespace {

struct Variant
{
    std::string name;
    PesScheduler::Config config;
};

} // namespace

int
main()
{
    setQuiet(true);
    benchHeader("Sec. 6.5 - PES design ablations",
                "Predictor-design ablation (paper Sec. 6.5) + this "
                "reproduction's documented design knobs.");

    Experiment exp;
    exp.trainedModel();

    std::vector<AppProfile> profiles;
    for (const char *name :
         {"cnn", "ebay", "twitter", "google", "espn", "amazon"})
        profiles.push_back(appByName(name));

    std::vector<Variant> variants;
    {
        Variant v;
        v.name = "PES (default)";
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "no DOM analysis";
        v.config.predictor.useDomAnalysis = false;
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "conservative deadlines";
        v.config.deadlineModel =
            PesScheduler::DeadlineModel::Conservative;
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "expected-gap all events";
        v.config.deadlineModel =
            PesScheduler::DeadlineModel::ExpectedGapAll;
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "strict (node) matching";
        v.config.matchPolicy = MatchPolicy::Strict;
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "prediction disabled";
        v.config.enablePrediction = false;
        variants.push_back(v);
    }

    // EBS reference for normalization.
    ResultSet ebs_rs;
    for (const AppProfile &p : profiles) {
        const auto driver = exp.makeScheduler(SchedulerKind::Ebs);
        exp.runAppUnder(p, *driver, ebs_rs);
    }

    Table table({"variant", "norm_energy_vs_ebs_pct",
                 "qos_violation_pct", "prediction_accuracy_pct",
                 "mispredicts"});
    for (Variant &variant : variants) {
        variant.config.nameOverride = "PES-variant";
        ResultSet rs;
        for (const AppProfile &p : profiles) {
            // Strict matching requires the simulator to resolve ground
            // truth strictly as well.
            PesScheduler pes(exp.trainedModel(), variant.config);
            const WebApp &app = exp.generator().appFor(p);
            SimConfig sim_config;
            sim_config.renderScale = p.renderScale;
            sim_config.matchPolicy = variant.config.matchPolicy;
            RuntimeSimulator sim(exp.platform(), exp.power(), app,
                                 sim_config);
            for (const auto &trace : exp.generator().evaluationSet(
                     p, Experiment::kEvalTracesPerApp)) {
                rs.add(sim.run(trace, pes));
            }
        }
        double energy_ratio = 0.0;
        for (const AppProfile &p : profiles) {
            const double pes_e =
                rs.summarize(p.name, "PES-variant").meanEnergy;
            const double ebs_e =
                ebs_rs.summarize(p.name, "EBS").meanEnergy;
            energy_ratio += ebs_e > 0 ? pes_e / ebs_e : 1.0;
        }
        const GroupSummary s = rs.summarizeScheduler("PES-variant");
        int mispredicts = 0;
        for (const SimResult &r : rs.results())
            mispredicts += r.mispredictions;
        table.beginRow()
            .cell(variant.name)
            .cell(energy_ratio / profiles.size() * 100.0, 1)
            .cell(s.violationRate * 100.0, 1)
            .cell(s.predictionAccuracy * 100.0, 1)
            .cell(static_cast<long>(mispredicts));
    }

    emitTable(table, "sec65_ablation.csv");
    std::cout <<
        "Paper reference: accuracy drops ~5% without DOM analysis.\n"
        "Strict matching shows why type-level commit matters; "
        "'prediction disabled' isolates the reactive floor.\n";
    return 0;
}
