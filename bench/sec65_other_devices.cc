/**
 * @file
 * Reproduces the Sec. 6.5 "Other Devices" study: the same experiment on
 * the NVIDIA Parker (Jetson TX2) platform model. The paper reports
 * ~24.6% energy savings for PES over Interactive on the TX2, showing
 * the mechanism is not tied to the 2013-era Exynos 5410.
 */

#include "bench/bench_common.hh"

using namespace pes;

namespace {

void
runOn(const char *label, Experiment &exp, Table &table)
{
    exp.trainedModel();
    const std::vector<SchedulerKind> kinds{
        SchedulerKind::Interactive, SchedulerKind::Ebs,
        SchedulerKind::Pes, SchedulerKind::Oracle};
    const auto profiles = seenApps();
    ResultSet rs = runEvaluationSweep(exp, profiles, kinds);
    const auto apps = namesOf(profiles);
    table.beginRow()
        .cell(std::string(label))
        .cell(100.0, 1)
        .cell(rs.meanNormalizedEnergy(apps, "EBS", "Interactive") *
                  100.0, 1)
        .cell(rs.meanNormalizedEnergy(apps, "PES", "Interactive") *
                  100.0, 1)
        .cell(rs.meanNormalizedEnergy(apps, "Oracle", "Interactive") *
                  100.0, 1)
        .cell(rs.summarizeScheduler("PES").violationRate * 100.0, 1);
}

} // namespace

int
main()
{
    setQuiet(true);
    benchHeader("Sec. 6.5 - Other devices (NVIDIA Parker / TX2)",
                "PES paper Sec. 6.5: portability across SoC "
                "generations.");

    Table table({"platform", "Interactive", "EBS", "PES", "Oracle",
                 "PES_viol_pct"});
    {
        Experiment exynos(AcmpPlatform::exynos5410());
        runOn("Exynos 5410 (2013)", exynos, table);
    }
    {
        Experiment parker(AcmpPlatform::tegraParker());
        runOn("Parker / TX2 (2017)", parker, table);
    }

    emitTable(table, "sec65_other_devices.csv");
    std::cout << "Paper reference: ~24.6% PES energy saving vs "
                 "Interactive on the TX2.\n";
    return 0;
}
