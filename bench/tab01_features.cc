/**
 * @file
 * Reproduces paper Table 1: the prediction-model features. Prints the
 * feature inventory together with their empirical distributions over the
 * evaluation traces and each feature's univariate usefulness (accuracy
 * of a model trained on that feature alone), grounding the table in
 * measured data.
 */

#include "bench/bench_common.hh"
#include "core/predictor_training.hh"
#include "util/stats.hh"

using namespace pes;

int
main()
{
    setQuiet(true);
    benchHeader("Table 1 - Model features",
                "PES paper Table 1 (Sec. 5.2).");

    Experiment exp;
    exp.trainedModel();

    // Collect the feature matrix over seen-app evaluation traces.
    std::vector<TrainSample> samples;
    for (const AppProfile &p : seenApps()) {
        const WebApp &app = exp.generator().appFor(p);
        for (const auto &trace : exp.generator().evaluationSet(p, 2)) {
            const auto s = buildDataset(app, trace);
            samples.insert(samples.end(), s.begin(), s.end());
        }
    }

    const char *category[kNumFeatures] = {
        "application-inherent", "application-inherent",
        "interaction-dependent", "interaction-dependent",
        "interaction-dependent"};

    Table table({"category", "feature", "mean", "stddev", "min", "max",
                 "solo_accuracy_pct"});
    for (int f = 0; f < kNumFeatures; ++f) {
        RunningStats stats;
        for (const TrainSample &s : samples)
            stats.add(s.x.v[static_cast<size_t>(f)]);

        // Univariate usefulness: train on this feature alone.
        std::vector<TrainSample> solo = samples;
        for (TrainSample &s : solo) {
            for (int g = 0; g < kNumFeatures; ++g) {
                if (g != f)
                    s.x.v[static_cast<size_t>(g)] = 0.0;
            }
        }
        SgdTrainer trainer;
        const LogisticModel model = trainer.train(solo);
        long correct = 0;
        for (const TrainSample &s : solo) {
            const auto probs = model.probabilities(s.x);
            int best = 0;
            for (int cls = 1; cls < kNumDomEventTypes; ++cls) {
                if (probs[static_cast<size_t>(cls)] >
                    probs[static_cast<size_t>(best)])
                    best = cls;
            }
            correct += best == static_cast<int>(s.label) ? 1 : 0;
        }
        table.beginRow()
            .cell(std::string(category[f]))
            .cell(std::string(featureName(f)))
            .cell(stats.mean(), 3)
            .cell(stats.stddev(), 3)
            .cell(stats.min(), 3)
            .cell(stats.max(), 3)
            .cell(100.0 * correct / static_cast<double>(solo.size()), 1);
    }

    emitTable(table, "tab01_features.csv");
    std::cout << "Dataset: " << samples.size()
              << " (feature, next-event) samples over the 12 seen apps; "
                 "the full 5-feature model is evaluated in "
                 "fig08_prediction_accuracy.\n";
    return 0;
}
