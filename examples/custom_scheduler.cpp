/**
 * @file
 * Extending the library: writing a custom scheduler.
 *
 * The RuntimeSimulator accepts any SchedulerDriver. This example
 * implements "RaceToIdle" — a deliberately simple policy that runs every
 * event at the highest configuration the moment it arrives (race to
 * sleep) — and pits it against the built-in schedulers on the standard
 * evaluation. It is a ~30-line scheduler: a good template for research
 * on new policies.
 *
 * Run: ./build/examples/custom_scheduler
 */

#include <iostream>

#include "core/experiment.hh"
#include "sim/scheduler_driver.hh"
#include "sim/simulator_api.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pes;

namespace {

/**
 * Race-to-idle: maximum performance for every event, no QoS awareness,
 * no speculation. Energy-suboptimal but a latency upper bound among
 * reactive policies.
 */
class RaceToIdleScheduler : public SchedulerDriver
{
  public:
    std::string name() const override { return "RaceToIdle"; }

    std::optional<WorkItem>
    nextWork(SimulatorApi &api) override
    {
        const auto front = api.pendingQueue().front();
        if (!front)
            return std::nullopt;
        WorkItem item;
        item.kind = WorkItem::Kind::Real;
        item.traceIndex = front->traceIndex;
        item.config = api.platform().maxConfig();
        return item;
    }
};

} // namespace

int
main()
{
    setQuiet(true);
    Experiment exp;
    exp.trainedModel();

    std::vector<AppProfile> profiles;
    for (const char *name : {"cnn", "ebay", "twitter"})
        profiles.push_back(appByName(name));

    ResultSet rs;
    for (const AppProfile &p : profiles) {
        RaceToIdleScheduler race;
        exp.runAppUnder(p, race, rs);
        for (SchedulerKind kind :
             {SchedulerKind::Interactive, SchedulerKind::Ebs,
              SchedulerKind::Pes}) {
            const auto driver = exp.makeScheduler(kind);
            exp.runAppUnder(p, *driver, rs);
        }
    }

    const auto apps = rs.apps();
    Table table({"scheduler", "norm_energy_pct", "qos_violation_pct",
                 "mean_latency_ms"});
    for (const char *name :
         {"RaceToIdle", "Interactive", "EBS", "PES"}) {
        const GroupSummary s = rs.summarizeScheduler(name);
        table.beginRow()
            .cell(std::string(name))
            .cell(rs.meanNormalizedEnergy(apps, name, "RaceToIdle") *
                      100.0, 1)
            .cell(s.violationRate * 100.0, 1)
            .cell(s.meanLatency, 1);
    }
    table.print(std::cout);

    std::cout <<
        "\nRaceToIdle is the latency floor among reactive policies but "
        "pays for it in\nenergy; PES beats it on both axes by starting "
        "work before events arrive.\n"
        "To write your own policy, subclass SchedulerDriver (see "
        "sim/scheduler_driver.hh):\n"
        "  - nextWork() picks the next work item when the main thread "
        "goes idle;\n"
        "  - onArrival()/onWorkFinished() observe events;\n"
        "  - onSampleTick() supports governor-style policies;\n"
        "  - the speculation verbs on SimulatorApi enable proactive "
        "policies.\n";
    return 0;
}
