/**
 * @file
 * News-browsing scenario (the paper's motivating workload, Sec. 4.2).
 *
 * Replays a cnn session under PES and narrates the proactive machinery
 * event by event: what the predictor anticipated, which events were
 * served from pre-computed speculative frames, where the control unit
 * squashed, and what each event cost. Ends with the Pending Frame
 * Buffer occupancy timeline (paper Fig. 9's view of the same data).
 *
 * Run: ./build/examples/news_browsing [user-seed]
 */

#include <cstdlib>
#include <iostream>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pes;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const uint64_t seed = argc > 1
        ? std::strtoull(argv[1], nullptr, 10) : 9001ull;

    Experiment exp;
    exp.trainedModel();
    const AppProfile &profile = appByName("cnn");
    const InteractionTrace trace =
        exp.generator().generate(profile, seed);

    std::cout << "cnn session of user " << seed << ": " << trace.size()
              << " events, "
              << formatDouble(trace.duration() / 1000.0, 1) << " s.\n\n";

    const auto pes = exp.makeScheduler(SchedulerKind::Pes);
    const SimResult r = exp.runTrace(profile, trace, *pes);

    Table table({"#", "t_s", "event", "served", "config", "latency_ms",
                 "qos_ms", "ok", "busy_mJ"});
    for (size_t i = 0; i < r.events.size(); ++i) {
        const EventRecord &e = r.events[i];
        const AcmpConfig cfg = exp.platform().configAt(e.configIndex);
        table.beginRow()
            .cell(static_cast<long>(i))
            .cell(e.arrival / 1000.0, 1)
            .cell(std::string(domEventTypeName(e.type)))
            .cell(std::string(e.servedSpeculatively ? "speculative"
                                                    : "reactive"))
            .cell(std::string(coreTypeName(cfg.core)) + "@" +
                  formatDouble(cfg.freq, 0))
            .cell(e.latency(), 1)
            .cell(e.qosTarget, 0)
            .cell(std::string(e.violated() ? "MISS" : "meet"))
            .cell(e.busyEnergy, 1);
    }
    table.print(std::cout);

    int speculative = 0;
    for (const EventRecord &e : r.events)
        speculative += e.servedSpeculatively ? 1 : 0;
    std::cout << "\nSummary: " << speculative << "/" << r.events.size()
              << " events served from speculative frames; prediction "
              << "accuracy "
              << formatPercent(r.predictionAccuracy()) << " ("
              << r.mispredictions << " squashes, "
              << formatDouble(r.mispredictWasteMs, 1)
              << " ms of discarded frame work).\n"
              << "Energy: " << formatDouble(r.totalEnergy, 1)
              << " mJ total = " << formatDouble(r.busyEnergy, 1)
              << " busy + " << formatDouble(r.idleEnergy, 1)
              << " idle + " << formatDouble(r.overheadEnergy, 1)
              << " overhead + " << formatDouble(r.wasteEnergy, 1)
              << " speculative waste.\n";

    std::cout << "\nPending Frame Buffer timeline (paper Fig. 9):\n";
    std::cout << "  time_s  size  note\n";
    for (const PfbSample &s : r.pfbTrace) {
        std::cout << "  " << formatDouble(s.time / 1000.0, 2) << "\t"
                  << s.pfbSize << "   "
                  << std::string(static_cast<size_t>(s.pfbSize), '#')
                  << (s.afterSquash ? "  <- squash" : "") << "\n";
    }
    return 0;
}
