/**
 * @file
 * Quickstart: the five-minute tour of the PES library.
 *
 *   1. Pick a benchmark application and synthesize its pages.
 *   2. Generate a user interaction trace (and round-trip it to disk).
 *   3. Train the event-sequence model on the seen applications.
 *   4. Replay the trace under EBS (reactive baseline) and PES.
 *   5. Compare energy, QoS violations, and prediction quality.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [app-name]
 */

#include <cstdio>
#include <iostream>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pes;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string app_name = argc > 1 ? argv[1] : "cnn";

    // ---- 1. The application -------------------------------------------
    const AppProfile &profile = appByName(app_name);
    Experiment exp;  // Exynos 5410 platform + power table + generator
    const WebApp &app = exp.generator().appFor(profile);
    std::cout << "App '" << profile.name << "': " << app.numPages()
              << " pages, " << app.dom(0).size()
              << " DOM nodes on the landing page.\n";

    // ---- 2. A user session --------------------------------------------
    InteractionTrace trace = exp.generator().generate(profile, 12345);
    std::cout << "Generated session: " << trace.size() << " events over "
              << formatDouble(trace.duration() / 1000.0, 1) << " s.\n";

    // Traces serialize for record/replay workflows.
    const std::string path = "/tmp/pes_quickstart_trace.txt";
    trace.saveToFile(path);
    trace = *InteractionTrace::loadFromFile(path);
    std::remove(path.c_str());

    // ---- 3. Train the predictor (cached across calls) -----------------
    std::cout << "Training the event-sequence model on the 12 seen "
                 "apps...\n";
    exp.trainedModel();

    // ---- 4. Replay under both schedulers -------------------------------
    const auto ebs = exp.makeScheduler(SchedulerKind::Ebs);
    const auto pes = exp.makeScheduler(SchedulerKind::Pes);
    const SimResult ebs_result = exp.runTrace(profile, trace, *ebs);
    const SimResult pes_result = exp.runTrace(profile, trace, *pes);

    // ---- 5. Compare -----------------------------------------------------
    Table table({"metric", "EBS", "PES"});
    table.beginRow().cell(std::string("total energy (mJ)"))
        .cell(ebs_result.totalEnergy, 1).cell(pes_result.totalEnergy, 1);
    table.beginRow().cell(std::string("QoS violations"))
        .cell(formatPercent(ebs_result.violationRate()))
        .cell(formatPercent(pes_result.violationRate()));
    table.beginRow().cell(std::string("busy energy (mJ)"))
        .cell(ebs_result.busyEnergy, 1).cell(pes_result.busyEnergy, 1);
    table.beginRow().cell(std::string("events served speculatively"))
        .cell(0L)
        .cell([&] {
            long n = 0;
            for (const EventRecord &e : pes_result.events)
                n += e.servedSpeculatively ? 1 : 0;
            return n;
        }());
    table.beginRow().cell(std::string("prediction accuracy"))
        .cell(std::string("-"))
        .cell(formatPercent(pes_result.predictionAccuracy()));
    table.beginRow().cell(std::string("mispredict waste (ms)"))
        .cell(0.0, 1).cell(pes_result.mispredictWasteMs, 1);
    table.print(std::cout);

    std::cout << "\nPES speculates the user's next events, executes them "
                 "during think time on low-power configurations, and "
                 "commits the frames when the real inputs arrive.\n";
    return 0;
}
