/**
 * @file
 * Shopping/checkout scenario: a form-bearing application (amazon).
 *
 * Demonstrates two PES behaviours that matter beyond raw numbers:
 *
 *   1. Commit-gated side effects (Sec. 5.3): speculatively executed
 *      submit handlers must not issue their network requests until the
 *      prediction is confirmed — the simulator counts the suppressions.
 *   2. The commit-match policy knob: type-level matching (the paper's
 *      accuracy granularity) vs strict node-level matching, and what
 *      each costs in squashes and energy.
 *
 * Run: ./build/examples/shopping_checkout
 */

#include <iostream>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pes;

namespace {

SimResult
runWithPolicy(Experiment &exp, const AppProfile &profile,
              const InteractionTrace &trace, MatchPolicy policy)
{
    PesScheduler::Config config;
    config.matchPolicy = policy;
    PesScheduler pes(exp.trainedModel(), config);

    SimConfig sim_config;
    sim_config.renderScale = profile.renderScale;
    sim_config.matchPolicy = policy;
    RuntimeSimulator sim(exp.platform(), exp.power(),
                         exp.generator().appFor(profile), sim_config);
    return sim.run(trace, pes);
}

} // namespace

int
main()
{
    setQuiet(true);
    Experiment exp;
    exp.trainedModel();
    const AppProfile &profile = appByName("amazon");

    // Find a session that actually reaches the checkout form.
    InteractionTrace trace;
    for (uint64_t seed = TraceGenerator::kEvaluationSeedBase;
         seed < TraceGenerator::kEvaluationSeedBase + 60; ++seed) {
        InteractionTrace candidate =
            exp.generator().generate(profile, seed);
        bool has_submit = false;
        for (const TraceEvent &e : candidate.events)
            has_submit |= e.type == DomEventType::Submit;
        if (has_submit) {
            trace = std::move(candidate);
            break;
        }
    }
    if (trace.events.empty())
        trace = exp.generator().generate(
            profile, TraceGenerator::kEvaluationSeedBase);

    int submits = 0, loads = 0, taps = 0, moves = 0;
    for (const TraceEvent &e : trace.events) {
        submits += e.type == DomEventType::Submit ? 1 : 0;
        switch (interactionOf(e.type)) {
          case Interaction::Load: ++loads; break;
          case Interaction::Tap: ++taps; break;
          case Interaction::Move: ++moves; break;
        }
    }
    std::cout << "amazon session of user " << trace.userSeed << ": "
              << trace.size() << " events (" << loads << " loads, "
              << taps << " taps incl. " << submits << " submits, "
              << moves << " moves).\n\n";

    const SimResult type_level =
        runWithPolicy(exp, profile, trace, MatchPolicy::TypeLevel);
    const SimResult strict =
        runWithPolicy(exp, profile, trace, MatchPolicy::Strict);

    Table table({"metric", "type-level match", "strict match"});
    table.beginRow().cell(std::string("total energy (mJ)"))
        .cell(type_level.totalEnergy, 1).cell(strict.totalEnergy, 1);
    table.beginRow().cell(std::string("QoS violations"))
        .cell(formatPercent(type_level.violationRate()))
        .cell(formatPercent(strict.violationRate()));
    table.beginRow().cell(std::string("prediction accuracy"))
        .cell(formatPercent(type_level.predictionAccuracy()))
        .cell(formatPercent(strict.predictionAccuracy()));
    table.beginRow().cell(std::string("squashes"))
        .cell(static_cast<long>(type_level.mispredictions))
        .cell(static_cast<long>(strict.mispredictions));
    table.beginRow().cell(std::string("suppressed network requests"))
        .cell(static_cast<long>(type_level.suppressedNetworkRequests))
        .cell(static_cast<long>(strict.suppressedNetworkRequests));
    table.beginRow().cell(std::string("speculative waste (mJ)"))
        .cell(type_level.wasteEnergy, 1).cell(strict.wasteEnergy, 1);
    table.print(std::cout);

    std::cout <<
        "\nNotes:\n"
        "  - 'suppressed network requests' counts speculative submit "
        "executions whose\n    irreversible side effect was held back "
        "until the user's input confirmed the\n    prediction "
        "(Sec. 5.3's dispatcher rule).\n"
        "  - strict matching squashes whenever the predicted *node* "
        "differs, which is\n    why the paper's type-level accuracy "
        "metric is the practical choice.\n";
    return 0;
}
