#include "coordinator/coordinator.hh"

#include <algorithm>

#include "telemetry/telemetry.hh"

namespace pes {

namespace {

/** The straggler rule (see CoordinatorOptions::stealFactor). */
bool
shouldSteal(const Lease &lease, int64_t now_ms,
            const CoordinatorOptions &options,
            const std::vector<WorkerRate> &rates)
{
    double fastest = 0.0;
    std::string fastest_worker;
    double own = 0.0;
    for (const WorkerRate &rate : rates) {
        if (rate.sessionsPerSec > fastest) {
            fastest = rate.sessionsPerSec;
            fastest_worker = rate.worker;
        }
        if (rate.worker == lease.owner)
            own = rate.sessionsPerSec;
    }
    // Steal only when a clearly faster peer exists: reopening the only
    // worker's range (or flapping between near-equal workers) would
    // just re-run work without finishing sooner.
    if (fastest <= 0.0 || fastest_worker == lease.owner)
        return false;
    if (own >= fastest / 2.0)
        return false;
    const double expected_ms =
        static_cast<double>(lease.count) / fastest * 1000.0;
    const double held_ms = static_cast<double>(now_ms - lease.sinceMs);
    return held_ms >
        std::max(static_cast<double>(options.minStealMs),
                 options.stealFactor * expected_ms);
}

} // namespace

bool
coordinatorPass(LeaseQueue &queue, int64_t now_ms,
                const CoordinatorOptions &options,
                CoordinatorStats &stats, TelemetryRegistry *telemetry,
                std::string *error)
{
    std::vector<Lease> leases;
    if (!queue.loadLeases(&leases, error))
        return false;
    const std::vector<WorkerRate> rates = queue.workerRates();

    stats.open = stats.leased = stats.done = 0;
    for (const Lease &lease : leases) {
        switch (lease.state) {
        case LeaseState::Done:
            ++stats.done;
            break;
        case LeaseState::Open: {
            // A marker without a leased state means the claimant died
            // between winning the O_EXCL race and writing the lease
            // file; past a lease period, bump the epoch so the range
            // becomes claimable again under a fresh marker.
            int64_t claimed_at = 0;
            if (queue.claimPending(lease, &claimed_at) &&
                now_ms - claimed_at > queue.plan().leaseMs) {
                if (!queue.reopen(lease, error))
                    return false;
                ++stats.expired;
                if (telemetry)
                    telemetry->count("coord.leases_expired");
                ++stats.open;
                break;
            }
            ++stats.open;
            break;
        }
        case LeaseState::Leased:
            if (now_ms >= lease.expiryMs) {
                if (!queue.reopen(lease, error))
                    return false;
                ++stats.expired;
                if (telemetry)
                    telemetry->count("coord.leases_expired");
                ++stats.open;
            } else if (shouldSteal(lease, now_ms, options, rates)) {
                if (!queue.reopen(lease, error))
                    return false;
                ++stats.stolen;
                if (telemetry)
                    telemetry->count("coord.leases_stolen");
                ++stats.open;
            } else {
                ++stats.leased;
            }
            break;
        }
    }
    return true;
}

std::vector<JobRange>
partitionJobs(int job_count, int grain)
{
    std::vector<JobRange> ranges;
    if (job_count <= 0 || grain <= 0)
        return ranges;
    for (int first = 0; first < job_count; first += grain) {
        ranges.push_back(
            JobRange{first, std::min(grain, job_count - first)});
    }
    return ranges;
}

int
alignedGrain(int grain, int users_per_cell)
{
    if (users_per_cell <= 1)
        return std::max(grain, 1);
    const int cells =
        (std::max(grain, 1) + users_per_cell - 1) / users_per_cell;
    return cells * users_per_cell;
}

} // namespace pes
