/**
 * @file
 * Coordinator supervision over a LeaseQueue: expiry, straggler steal,
 * and sweep-completion detection.
 *
 * The coordinator never executes jobs and never assigns ranges — the
 * workers self-claim through O_EXCL markers. Its one job is liveness:
 * a range claimed by a worker that died (or wedged, or turned out to
 * be far slower than its peers) must return to the queue, with the
 * epoch bumped so the previous holder is fenced out of publishing.
 * Everything it does is absorbed by the canonical-order reduction:
 * reissuing a half-executed range only produces duplicate records,
 * which deduplicate first-wins (deterministic re-runs are
 * bit-identical), so the final report matches a whole single-process
 * run byte-for-byte.
 *
 * The supervision pass is a pure function of (queue state, now) so
 * tests drive it with synthetic clocks; the pes_coordinator daemon
 * loops it against wall time.
 */

#ifndef PES_COORDINATOR_COORDINATOR_HH
#define PES_COORDINATOR_COORDINATOR_HH

#include <cstdint>
#include <string>

#include "coordinator/lease_queue.hh"

namespace pes {

class TelemetryRegistry;

/** Tunables of the supervision pass. */
struct CoordinatorOptions
{
    /**
     * Straggler steal: a leased range whose owner is alive (still
     * heartbeating) is reopened anyway when a peer at least twice as
     * fast exists and the range has been held longer than
     * stealFactor x the time the fastest worker would need for it.
     */
    double stealFactor = 4.0;
    /** Never steal before this much hold time (ms) — rate estimates
     *  from the first ranges are noisy. */
    int64_t minStealMs = 2000;
};

/** What one supervision pass saw and did. */
struct CoordinatorStats
{
    /** Leases reopened because their expiry passed (dead worker), or
     *  because a claim marker was taken but the lease never moved to
     *  leased within a lease period (claimant died mid-claim). */
    uint64_t expired = 0;
    /** Leases reopened by the straggler-steal rule. */
    uint64_t stolen = 0;
    /** Range states observed by the last pass. */
    uint64_t open = 0;
    uint64_t leased = 0;
    uint64_t done = 0;
};

/**
 * One supervision pass at @p now_ms: expire dead leases, reopen wedged
 * claims, steal from stragglers. Counts accumulate INTO @p stats
 * (expired/stolen) or are overwritten (state tallies). When
 * @p telemetry is armed the same deltas land on coord.* counters.
 * Returns false only on queue I/O errors.
 */
bool coordinatorPass(LeaseQueue &queue, int64_t now_ms,
                     const CoordinatorOptions &options,
                     CoordinatorStats &stats,
                     TelemetryRegistry *telemetry, std::string *error);

/** True when every range of @p stats' last pass was done. */
inline bool
sweepDone(const CoordinatorStats &stats)
{
    return stats.open == 0 && stats.leased == 0 && stats.done > 0;
}

/**
 * Partition the @p job_count jobs of a sweep into ranges of @p grain
 * jobs (the last range takes the remainder). Warm sweeps must pass a
 * cell-aligned grain — callers round up via alignedGrain().
 */
std::vector<JobRange> partitionJobs(int job_count, int grain);

/** Round @p grain up to a multiple of @p users_per_cell (minimum one
 *  cell) — the range granularity warm-driver sweeps require. */
int alignedGrain(int grain, int users_per_cell);

} // namespace pes

#endif // PES_COORDINATOR_COORDINATOR_HH
