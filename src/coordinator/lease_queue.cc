#include "coordinator/lease_queue.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "util/binary_io.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace fs = std::filesystem;

namespace pes {

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

namespace {

void
setError(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
}

const char *
stateName(LeaseState state)
{
    switch (state) {
    case LeaseState::Open:
        return "open";
    case LeaseState::Leased:
        return "leased";
    case LeaseState::Done:
        return "done";
    }
    return "open";
}

bool
parseState(const std::string &name, LeaseState &out)
{
    if (name == "open")
        out = LeaseState::Open;
    else if (name == "leased")
        out = LeaseState::Leased;
    else if (name == "done")
        out = LeaseState::Done;
    else
        return false;
    return true;
}

std::string
leaseText(const Lease &lease)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"seq\": " << lease.seq << ",\n"
       << "  \"first\": " << lease.first << ",\n"
       << "  \"count\": " << lease.count << ",\n"
       << "  \"state\": \"" << stateName(lease.state) << "\",\n"
       << "  \"epoch\": " << lease.epoch << ",\n"
       << "  \"owner\": \"" << jsonEscape(lease.owner) << "\",\n"
       << "  \"since_ms\": " << lease.sinceMs << ",\n"
       << "  \"expiry_ms\": " << lease.expiryMs << ",\n"
       << "  \"heartbeat_ms\": " << lease.heartbeatMs << "\n"
       << "}\n";
    return os.str();
}

bool
parseLease(const std::string &text, Lease &out, std::string *error)
{
    const auto root = parseJson(text);
    if (!root || root->kind != JsonValue::Kind::Object) {
        setError(error, "malformed lease file");
        return false;
    }
    const JsonValue *state = root->find("state");
    if (!state || !parseState(state->str, out.state)) {
        setError(error, "lease file: bad state");
        return false;
    }
    if (const JsonValue *v = root->find("seq"))
        out.seq = v->number64();
    if (const JsonValue *v = root->find("first"))
        out.first = static_cast<int>(v->number());
    if (const JsonValue *v = root->find("count"))
        out.count = static_cast<int>(v->number());
    if (const JsonValue *v = root->find("epoch"))
        out.epoch = v->number64();
    if (const JsonValue *v = root->find("owner"))
        out.owner = v->str;
    if (const JsonValue *v = root->find("since_ms"))
        out.sinceMs = static_cast<int64_t>(v->number64());
    if (const JsonValue *v = root->find("expiry_ms"))
        out.expiryMs = static_cast<int64_t>(v->number64());
    if (const JsonValue *v = root->find("heartbeat_ms"))
        out.heartbeatMs = static_cast<int64_t>(v->number64());
    return true;
}

std::string
planText(const QueuePlan &plan)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"version\": " << QueuePlan::kVersion << ",\n"
       << "  \"results_dir\": \"" << jsonEscape(plan.resultsDir)
       << "\",\n"
       << "  \"lease_ms\": " << plan.leaseMs << ",\n"
       << "  \"grain\": " << plan.grain << ",\n"
       << "  \"sweep\": {\n"
       << "    \"base_seed\": " << plan.baseSeed << ",\n"
       << "    \"seed_mode\": \"" << jsonEscape(plan.seedMode)
       << "\",\n"
       << "    \"users\": " << plan.users << ",\n"
       << "    \"warm\": " << (plan.warmDrivers ? 1 : 0) << ",\n"
       << "    \"checkpoint_every\": " << plan.checkpointEvery << ",\n"
       << "    \"devices\": ";
    writeJsonStringArray(os, plan.devices);
    os << ",\n    \"apps\": ";
    writeJsonStringArray(os, plan.apps);
    os << ",\n    \"schedulers\": ";
    writeJsonStringArray(os, plan.schedulers);
    if (plan.population) {
        // The canonical spec text round-trips through the spec-file
        // grammar, so workers re-derive the identical digest.
        std::string spec = populationSpecText(*plan.population);
        while (!spec.empty() && spec.back() == '\n')
            spec.pop_back();
        os << ",\n    \"population\": " << spec;
    }
    os << "\n  },\n"
       << "  \"ranges\": [";
    for (size_t i = 0; i < plan.ranges.size(); ++i) {
        os << (i ? ",\n" : "\n");
        os << "    {\"first\": " << plan.ranges[i].first
           << ", \"count\": " << plan.ranges[i].count << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

bool
parsePlan(const std::string &text, QueuePlan &out, std::string *error)
{
    const auto root = parseJson(text);
    if (!root || root->kind != JsonValue::Kind::Object) {
        setError(error, "malformed queue.json");
        return false;
    }
    const JsonValue *version = root->find("version");
    if (!version ||
        static_cast<int>(version->number()) != QueuePlan::kVersion) {
        setError(error, "queue.json: unsupported version " +
                 (version ? version->str : std::string("<missing>")));
        return false;
    }
    if (const JsonValue *v = root->find("results_dir"))
        out.resultsDir = v->str;
    if (const JsonValue *v = root->find("lease_ms"))
        out.leaseMs = static_cast<int64_t>(v->number64());
    if (const JsonValue *v = root->find("grain"))
        out.grain = static_cast<int>(v->number());
    const JsonValue *sweep = root->find("sweep");
    if (!sweep || sweep->kind != JsonValue::Kind::Object) {
        setError(error, "queue.json: no sweep block");
        return false;
    }
    if (const JsonValue *v = sweep->find("base_seed"))
        out.baseSeed = v->number64();
    if (const JsonValue *v = sweep->find("seed_mode"))
        out.seedMode = v->str;
    if (const JsonValue *v = sweep->find("users"))
        out.users = static_cast<int>(v->number());
    if (const JsonValue *v = sweep->find("warm"))
        out.warmDrivers = v->number() != 0.0;
    if (const JsonValue *v = sweep->find("checkpoint_every"))
        out.checkpointEvery = static_cast<int>(v->number());
    if (const JsonValue *v = sweep->find("population")) {
        std::vector<IntegrityProblem> problems;
        auto spec =
            parsePopulationSpecJson(*v, "queue.json population",
                                    problems);
        if (!spec) {
            setError(error, problems.empty()
                                ? "queue.json: bad population spec"
                                : problems[0].message);
            return false;
        }
        out.population = std::move(*spec);
    }
    const JsonValue *devices = sweep->find("devices");
    const JsonValue *apps = sweep->find("apps");
    const JsonValue *schedulers = sweep->find("schedulers");
    if (!devices || !apps || !schedulers) {
        setError(error,
                 "queue.json: sweep block missing devices/apps/"
                 "schedulers");
        return false;
    }
    out.devices = jsonStringArray(*devices);
    out.apps = jsonStringArray(*apps);
    out.schedulers = jsonStringArray(*schedulers);
    const JsonValue *ranges = root->find("ranges");
    if (!ranges || ranges->kind != JsonValue::Kind::Array ||
        ranges->arr.empty()) {
        setError(error, "queue.json: no ranges");
        return false;
    }
    out.ranges.clear();
    for (const JsonValue &rv : ranges->arr) {
        JobRange range;
        if (const JsonValue *v = rv.find("first"))
            range.first = static_cast<int>(v->number());
        if (const JsonValue *v = rv.find("count"))
            range.count = static_cast<int>(v->number());
        out.ranges.push_back(range);
    }
    return true;
}

} // namespace

FleetConfig
configOf(const QueuePlan &plan)
{
    FleetConfig config;
    config.baseSeed = plan.baseSeed;
    config.seedMode = plan.seedMode == "evaluation"
        ? SeedMode::Evaluation
        : SeedMode::Fleet;
    config.users = plan.users;
    config.warmDrivers = plan.warmDrivers;
    config.checkpointEvery = plan.checkpointEvery;
    if (plan.population) {
        config.population = &*plan.population;
        config.populationTag = populationTag(*plan.population);
        config.populationDigest = populationDigest(*plan.population);
    }
    for (const std::string &name : plan.devices) {
        const auto device = deviceByPlatformName(name);
        fatal_if(!device, "queue: unknown device '%s'", name.c_str());
        config.devices.push_back(*device);
    }
    config.apps = parseAppList(join(plan.apps, ","));
    config.schedulers = parseSchedulerList(join(plan.schedulers, ","));
    return config;
}

std::optional<LeaseQueue>
LeaseQueue::create(const std::string &dir, const QueuePlan &plan,
                   std::string *error)
{
    std::error_code ec;
    fs::create_directories(fs::path(dir) / "ranges", ec);
    fs::create_directories(fs::path(dir) / "claims", ec);
    fs::create_directories(fs::path(dir) / "workers", ec);
    if (ec) {
        setError(error, "cannot create '" + dir + "': " + ec.message());
        return std::nullopt;
    }
    const std::string plan_path = (fs::path(dir) / kPlanName).string();
    if (fs::exists(plan_path, ec)) {
        setError(error, "'" + dir + "' already holds a queue; use a "
                 "fresh directory per sweep");
        return std::nullopt;
    }
    LeaseQueue queue;
    queue.dir_ = dir;
    queue.plan_ = plan;
    for (size_t i = 0; i < plan.ranges.size(); ++i) {
        Lease lease;
        lease.seq = i;
        lease.first = plan.ranges[i].first;
        lease.count = plan.ranges[i].count;
        lease.state = LeaseState::Open;
        if (!queue.saveLease(lease, error))
            return std::nullopt;
    }
    // The plan is written LAST: its presence marks a fully initialized
    // queue, so a worker never races a half-built ranges/ directory.
    if (!writeFileAtomic(plan_path, planText(plan), error))
        return std::nullopt;
    return queue;
}

std::optional<LeaseQueue>
LeaseQueue::open(const std::string &dir, std::string *error)
{
    const std::string plan_path = (fs::path(dir) / kPlanName).string();
    std::string text;
    if (!readFileBytes(plan_path, text, error)) {
        setError(error, "no queue at '" + dir + "' (missing " +
                 std::string(kPlanName) + ")");
        return std::nullopt;
    }
    LeaseQueue queue;
    queue.dir_ = dir;
    if (!parsePlan(text, queue.plan_, error))
        return std::nullopt;
    return queue;
}

std::string
LeaseQueue::leasePath(uint64_t seq) const
{
    return (fs::path(dir_) / "ranges" /
            ("range-" + std::to_string(seq) + ".json"))
        .string();
}

std::string
LeaseQueue::markerPath(uint64_t seq, uint64_t epoch) const
{
    return (fs::path(dir_) / "claims" /
            ("range-" + std::to_string(seq) + ".epoch-" +
             std::to_string(epoch)))
        .string();
}

bool
LeaseQueue::saveLease(const Lease &lease, std::string *error)
{
    return writeFileAtomic(leasePath(lease.seq), leaseText(lease),
                           error);
}

bool
LeaseQueue::loadLease(uint64_t seq, Lease *out,
                      std::string *error) const
{
    std::string text;
    if (!readFileBytes(leasePath(seq), text, error))
        return false;
    Lease lease;
    if (!parseLease(text, lease, error)) {
        setError(error, "range " + std::to_string(seq) + ": " +
                 (error ? *error : std::string("bad lease")));
        return false;
    }
    *out = lease;
    return true;
}

bool
LeaseQueue::loadLeases(std::vector<Lease> *out,
                       std::string *error) const
{
    out->clear();
    out->reserve(plan_.ranges.size());
    for (uint64_t seq = 0; seq < plan_.ranges.size(); ++seq) {
        Lease lease;
        if (!loadLease(seq, &lease, error))
            return false;
        out->push_back(std::move(lease));
    }
    return true;
}

bool
LeaseQueue::tryClaim(const Lease &snapshot, const std::string &owner,
                     int64_t now_ms, Lease *claimed, std::string *error)
{
    if (snapshot.state != LeaseState::Open)
        return false;
    // Exclusive marker per (range, epoch): the winner of the O_EXCL
    // race — and only the winner — may move the lease file to leased.
    // Markers persist, so a claimant holding a stale open(E) snapshot
    // after the range already cycled through epoch E finds it taken.
    const std::string marker =
        markerPath(snapshot.seq, snapshot.epoch);
    const int fd =
        ::open(marker.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        if (errno == EEXIST)
            return false;
        setError(error, "cannot create claim marker '" + marker +
                 "': " + std::strerror(errno));
        return false;
    }
    const std::string body =
        owner + "\n" + std::to_string(now_ms) + "\n";
    (void)!::write(fd, body.data(), body.size());
    ::close(fd);

    // Re-verify before publishing the leased state: the coordinator
    // only ever touches leased ranges, so an Open lease at our epoch
    // is immutable by anyone but the marker holder — but guard anyway
    // (a stale snapshot costs us the marker, never correctness).
    Lease current;
    if (!loadLease(snapshot.seq, &current, error))
        return false;
    if (current.state != LeaseState::Open ||
        current.epoch != snapshot.epoch)
        return false;
    current.state = LeaseState::Leased;
    current.owner = owner;
    current.sinceMs = now_ms;
    current.expiryMs = now_ms + plan_.leaseMs;
    current.heartbeatMs = now_ms;
    if (!saveLease(current, error))
        return false;
    *claimed = current;
    return true;
}

bool
LeaseQueue::heartbeat(const Lease &mine, int64_t now_ms,
                      std::string *error)
{
    Lease current;
    if (!loadLease(mine.seq, &current, error))
        return false;
    if (current.state != LeaseState::Leased ||
        current.epoch != mine.epoch || current.owner != mine.owner)
        return false;
    current.expiryMs = now_ms + plan_.leaseMs;
    current.heartbeatMs = now_ms;
    return saveLease(current, error);
}

bool
LeaseQueue::complete(const Lease &mine, std::string *error)
{
    Lease current;
    if (!loadLease(mine.seq, &current, error))
        return false;
    if (current.state != LeaseState::Leased ||
        current.epoch != mine.epoch || current.owner != mine.owner)
        return false;
    current.state = LeaseState::Done;
    return saveLease(current, error);
}

bool
LeaseQueue::stillOwned(const Lease &mine) const
{
    Lease current;
    if (!loadLease(mine.seq, &current, nullptr))
        return false;
    return current.state == LeaseState::Leased &&
        current.epoch == mine.epoch && current.owner == mine.owner;
}

bool
LeaseQueue::reopen(const Lease &stale, std::string *error)
{
    Lease lease = stale;
    lease.state = LeaseState::Open;
    lease.epoch = stale.epoch + 1;
    lease.owner.clear();
    lease.sinceMs = 0;
    lease.expiryMs = 0;
    lease.heartbeatMs = 0;
    return saveLease(lease, error);
}

bool
LeaseQueue::claimPending(const Lease &lease,
                         int64_t *claimed_at_ms) const
{
    if (lease.state != LeaseState::Open)
        return false;
    std::string text;
    if (!readFileBytes(markerPath(lease.seq, lease.epoch), text,
                       nullptr))
        return false;
    const std::vector<std::string> lines = split(text, '\n');
    int64_t at = 0;
    if (lines.size() >= 2) {
        long long parsed;
        if (parseInt64(trim(lines[1]), parsed))
            at = parsed;
    }
    if (claimed_at_ms)
        *claimed_at_ms = at;
    return true;
}

uint64_t
LeaseQueue::claimMarkers() const
{
    uint64_t count = 0;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "claims", ec)) {
        if (entry.is_regular_file(ec))
            ++count;
    }
    return count;
}

bool
LeaseQueue::writeWorkerRate(const WorkerRate &rate, std::string *error)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"worker\": \"" << jsonEscape(rate.worker) << "\",\n"
       << "  \"sessions\": " << rate.sessions << ",\n"
       << "  \"busy_ms\": " << jsonNum(rate.busyMs) << ",\n"
       << "  \"sessions_per_sec\": " << jsonNum(rate.sessionsPerSec)
       << ",\n"
       << "  \"updated_ms\": " << rate.updatedMs << "\n"
       << "}\n";
    const std::string path =
        (fs::path(dir_) / "workers" / (rate.worker + ".json")).string();
    return writeFileAtomic(path, os.str(), error);
}

std::vector<WorkerRate>
LeaseQueue::workerRates() const
{
    std::vector<WorkerRate> rates;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(fs::path(dir_) / "workers", ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        std::string text;
        if (!readFileBytes(entry.path().string(), text, nullptr))
            continue;
        const auto root = parseJson(text);
        if (!root || root->kind != JsonValue::Kind::Object)
            continue;
        WorkerRate rate;
        if (const JsonValue *v = root->find("worker"))
            rate.worker = v->str;
        if (const JsonValue *v = root->find("sessions"))
            rate.sessions = v->number64();
        if (const JsonValue *v = root->find("busy_ms"))
            rate.busyMs = v->number();
        if (const JsonValue *v = root->find("sessions_per_sec"))
            rate.sessionsPerSec = v->number();
        if (const JsonValue *v = root->find("updated_ms"))
            rate.updatedMs = static_cast<int64_t>(v->number64());
        if (!rate.worker.empty())
            rates.push_back(std::move(rate));
    }
    std::sort(rates.begin(), rates.end(),
              [](const WorkerRate &a, const WorkerRate &b) {
                  return a.worker < b.worker;
              });
    return rates;
}

} // namespace pes
