/**
 * @file
 * Filesystem-backed lease queue: the coordinator's work ledger.
 *
 * A queue directory sits next to (or anywhere near) a ResultStore and
 * owns the partition of one sweep's job index space into contiguous
 * ranges. Each range is one *lease file* under ranges/ recording the
 * range's state machine:
 *
 *     open(E) --claim--> leased(E) --complete--> done(E)
 *                          |
 *                          +--expire/steal--> open(E+1)
 *
 * E is the *epoch* — the fencing token. Claims are arbitrated with an
 * O_EXCL marker file per (range, epoch) under claims/: exactly one
 * worker can create "range-<seq>.epoch-<E>", and markers are never
 * deleted, so a worker acting on a stale open(E) snapshot after the
 * epoch moved on simply finds the marker taken. Everything mutable is
 * written with writeFileAtomic, so readers never see torn state.
 *
 * Workers publish their observed throughput (sessions/sec, from
 * RunTelemetry) under workers/ — the coordinator's straggler-steal
 * rule reads these to decide when a live-but-slow owner should lose a
 * range to a faster peer.
 *
 * Nothing here affects report bytes: any interleaving of claims,
 * expiries, steals and duplicated range executions reduces to the same
 * report, because reduction replays records in canonical order and
 * deduplicates identical re-runs first-wins (see results/).
 */

#ifndef PES_COORDINATOR_LEASE_QUEUE_HH
#define PES_COORDINATOR_LEASE_QUEUE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "population/population_spec.hh"
#include "runner/fleet_config.hh"

namespace pes {

/** Wall-clock milliseconds since the Unix epoch (cross-process time —
 *  lease expiries must be comparable between machines). */
int64_t wallClockMs();

/** Lease life-cycle states (see the file comment's state machine). */
enum class LeaseState
{
    Open,
    Leased,
    Done,
};

/** One range's lease file, decoded. */
struct Lease
{
    uint64_t seq = 0;
    /** The job range this lease covers (canonical job indices). */
    int first = 0;
    int count = 0;
    LeaseState state = LeaseState::Open;
    /** Fencing token: bumped on every expiry/steal reopen. A holder of
     *  epoch E must not publish once the file moved past E. */
    uint64_t epoch = 0;
    /** Claiming worker id (leased/done states). */
    std::string owner;
    /** When the current holder claimed (wall ms). */
    int64_t sinceMs = 0;
    /** Lease deadline (wall ms): past it the coordinator reopens. */
    int64_t expiryMs = 0;
    /** Last heartbeat renewal (wall ms). */
    int64_t heartbeatMs = 0;
};

/** A worker's published throughput estimate. */
struct WorkerRate
{
    std::string worker;
    /** Sessions completed across all of this worker's ranges. */
    uint64_t sessions = 0;
    /** Execute-stage wall time behind those sessions (ms). */
    double busyMs = 0.0;
    /** Observed sessions/sec (from RunTelemetry rates). */
    double sessionsPerSec = 0.0;
    int64_t updatedMs = 0;
};

/**
 * The immutable half of a queue (queue.json): the sweep's identity —
 * stored as the same resolved axis names the store manifest uses, so
 * workers rebuild a FleetConfig whose SweepSpec matches the store's
 * bit-for-bit — plus the range partition and lease policy.
 */
struct QueuePlan
{
    static constexpr int kVersion = 1;

    /** Result-store directory (as given to init; workers resolve it
     *  relative to their own CWD, so prefer absolute paths when
     *  workers launch elsewhere). */
    std::string resultsDir;
    /** Lease duration: a claim must heartbeat within this budget or
     *  the coordinator reopens the range. */
    int64_t leaseMs = 30000;
    /** Requested jobs per range (the last range may be short). */
    int grain = 0;

    /** Sweep identity (resolved names, manifest-compatible). */
    uint64_t baseSeed = 0;
    std::string seedMode = "fleet";
    int users = 1;
    bool warmDrivers = false;
    std::vector<std::string> devices;
    std::vector<std::string> apps;
    std::vector<std::string> schedulers;
    /** Checkpoint cadence workers run with (not identity-bearing). */
    int checkpointEvery = 1024;
    /**
     * Optional mixture population of the sweep (identity-bearing).
     * Embedded in queue.json as the canonical spec JSON, so every
     * worker reconstructs the exact spec — and therefore the exact
     * digest, tag and user seeds — from the plan alone.
     */
    std::optional<PopulationSpec> population;

    /** The partition of [0, jobCount) into ranges, in seq order. */
    std::vector<JobRange> ranges;
};

/**
 * Rebuild the FleetConfig a worker executes from the stored sweep
 * identity. Axes resolve through the same registries the CLI uses, so
 * SweepSpec::fromConfig(configOf(plan)) equals the spec the queue was
 * initialized with. Fatal on unknown axis names (a queue written by an
 * incompatible build). The config borrows the plan's embedded
 * population spec, so @p plan must outlive the returned config.
 */
FleetConfig configOf(const QueuePlan &plan);

/**
 * A lease queue rooted at one directory. All mutation is lock-free
 * multi-process safe: atomic whole-file replaces plus O_EXCL claim
 * arbitration (see the file comment).
 */
class LeaseQueue
{
  public:
    static constexpr const char *kPlanName = "queue.json";

    /** Initialize @p dir (created if needed; must not already hold a
     *  queue) with @p plan. */
    static std::optional<LeaseQueue> create(const std::string &dir,
                                            const QueuePlan &plan,
                                            std::string *error);

    /** Open an existing queue. */
    static std::optional<LeaseQueue> open(const std::string &dir,
                                          std::string *error);

    const std::string &dir() const { return dir_; }
    const QueuePlan &plan() const { return plan_; }

    /** Load one range's lease file. */
    bool loadLease(uint64_t seq, Lease *out, std::string *error) const;

    /** Load every lease, in seq order. */
    bool loadLeases(std::vector<Lease> *out, std::string *error) const;

    /**
     * Try to claim @p snapshot (which must be Open) for @p owner:
     * create the (seq, epoch) marker exclusively, then move the lease
     * file to leased. Returns false without error when someone else
     * won (or the snapshot is stale); @p claimed receives the leased
     * state on success.
     */
    bool tryClaim(const Lease &snapshot, const std::string &owner,
                  int64_t now_ms, Lease *claimed, std::string *error);

    /** Extend @p mine's expiry (owner+epoch must still match). Returns
     *  false when the lease was lost — the caller is fenced. */
    bool heartbeat(const Lease &mine, int64_t now_ms,
                   std::string *error);

    /** Mark @p mine done (owner+epoch must still match). Returns false
     *  when the lease was lost — the range will re-run elsewhere. */
    bool complete(const Lease &mine, std::string *error);

    /** Fence query: does @p mine still hold its range? */
    bool stillOwned(const Lease &mine) const;

    /** Reopen @p stale with epoch+1 (coordinator: expiry or steal). */
    bool reopen(const Lease &stale, std::string *error);

    /**
     * Detect a wedged claim: an Open lease whose current epoch's
     * marker exists (a claimant died between marker and lease write).
     * Returns true with the marker's creation time when so.
     */
    bool claimPending(const Lease &lease, int64_t *claimed_at_ms) const;

    /** Count of claim markers ever created — the queue's total leases
     *  issued (markers are never deleted, so this survives restarts). */
    uint64_t claimMarkers() const;

    /** Publish @p rate under workers/<id>.json. */
    bool writeWorkerRate(const WorkerRate &rate, std::string *error);

    /** Every published worker rate, sorted by worker id. */
    std::vector<WorkerRate> workerRates() const;

  private:
    LeaseQueue() = default;

    std::string leasePath(uint64_t seq) const;
    std::string markerPath(uint64_t seq, uint64_t epoch) const;
    bool saveLease(const Lease &lease, std::string *error);

    std::string dir_;
    QueuePlan plan_;
};

} // namespace pes

#endif // PES_COORDINATOR_LEASE_QUEUE_HH
