#include "core/ebs_policy.hh"

#include <algorithm>
#include <cmath>

namespace pes {

namespace {

/** Conservative default workloads per interaction before any data. */
Workload
defaultWorkload(Interaction interaction)
{
    switch (interaction) {
      case Interaction::Load:
        return {300.0, 3500.0};
      case Interaction::Tap:
        return {5.0, 120.0};
      case Interaction::Move:
        return {1.0, 20.0};
    }
    return {5.0, 100.0};
}

} // namespace

EbsPolicy::EbsPolicy(const AcmpPlatform &platform, const PowerModel &power,
                     double feasibility_margin)
    : model_(platform), margin_(feasibility_margin), power_(&power),
      estimator_(model_)
{
}

void
EbsPolicy::recordMeasurement(uint64_t class_key, DomEventType type,
                             const AcmpConfig &config, TimeMs exec_ms)
{
    estimator_.record(class_key, config, exec_ms);
    const auto estimate = estimator_.estimate(class_key);
    if (estimate) {
        Prior &prior =
            priors_[static_cast<size_t>(interactionOf(type))];
        prior.tmem.add(estimate->tmemMs);
        prior.ndep.add(estimate->ndep);
    }
}

bool
EbsPolicy::hasEstimate(uint64_t class_key) const
{
    return estimator_.hasEstimate(class_key);
}

Workload
EbsPolicy::estimateWorkload(uint64_t class_key, DomEventType type) const
{
    const auto estimate = estimator_.estimate(class_key);
    if (estimate)
        return *estimate;

    const Interaction interaction = interactionOf(type);
    const Prior &prior = priors_[static_cast<size_t>(interaction)];

    // One measurement: split the observed latency into memory/compute
    // with the interaction prior's memory fraction (or a nominal 15%).
    const auto first = estimator_.firstMeasurement(class_key);
    if (first) {
        const auto [k, t] = *first;
        double mem_frac = 0.15;
        if (prior.tmem.count() > 0) {
            const Workload p{prior.tmem.mean(), prior.ndep.mean()};
            const TimeMs prior_total = p.tmemMs + k * p.ndep;
            if (prior_total > 1e-9)
                mem_frac = std::clamp(p.tmemMs / prior_total, 0.0, 0.9);
        }
        Workload one_point;
        one_point.tmemMs = mem_frac * t;
        one_point.ndep = (1.0 - mem_frac) * t / k;
        return one_point;
    }

    if (prior.tmem.count() > 0)
        return {prior.tmem.mean(), prior.ndep.mean()};
    return defaultWorkload(interaction);
}

AcmpConfig
EbsPolicy::chooseConfig(uint64_t class_key, DomEventType type,
                        TimeMs budget_ms) const
{
    // Measurement protocol (Sec. 5.3): an unknown event class runs at the
    // highest configuration (deadline-safe probe). The second encounter
    // schedules from the one-point estimate; since the energy-minimal
    // choice is virtually always a different operating point, the second
    // measurement lands at a different cycle coefficient and Eqn. 1
    // becomes identifiable. ensureDistinctCoefficient() guards the
    // degenerate case.
    const int count = estimator_.measurementCount(class_key);
    if (count == 0)
        return estimator_.probeConfig(class_key);
    AcmpConfig choice =
        chooseConfigFor(estimateWorkload(class_key, type), budget_ms);
    if (count == 1 && !estimator_.hasEstimate(class_key)) {
        const auto first = estimator_.firstMeasurement(class_key);
        const double k_choice = model_.cycleCoeff(choice);
        if (first && std::abs(first->first - k_choice) < 1e-12) {
            // Same coefficient as the probe: step one frequency down
            // (or up at the ladder floor) to make Eqn. 1 solvable.
            const ClusterSpec &spec =
                model_.platform().cluster(choice.core);
            choice.freq = choice.freq - spec.fstep >= spec.fmin
                ? choice.freq - spec.fstep
                : choice.freq + spec.fstep;
        }
    }
    return choice;
}

AcmpConfig
EbsPolicy::chooseConfigFor(const Workload &work, TimeMs budget_ms) const
{
    const AcmpPlatform &platform = model_.platform();
    int best = -1;
    EnergyMj best_energy = 0.0;
    for (int j = 0; j < platform.numConfigs(); ++j) {
        const TimeMs latency = model_.latencyAt(work, j);
        // Headroom against per-instance workload noise: a choice whose
        // estimate consumes the whole budget would miss whenever the
        // instance runs long.
        if (latency * margin_ > budget_ms)
            continue;
        const EnergyMj energy =
            energyOf(power_->busyPowerAt(j), latency);
        if (best == -1 || energy < best_energy) {
            best = j;
            best_energy = energy;
        }
    }
    if (best == -1)
        return platform.maxConfig();
    return platform.configAt(best);
}

} // namespace pes
