/**
 * @file
 * Per-event QoS-aware configuration policy (EBS core, Zhu et al. HPCA'15).
 *
 * "Before executing an event EBS predicts the optimal ACMP configuration
 * that would meet the event's QoS target using the minimal energy"
 * (paper Sec. 4.2). The policy owns the online Eqn.-1 estimator: the first
 * two encounters of an event class are measured at two probe frequencies;
 * afterwards the fitted (Tmem, Ndep) drives the per-configuration latency
 * and energy estimates. Event classes without an estimate fall back to an
 * online per-interaction prior so planning (PES) can still reason about
 * them.
 *
 * Shared by EbsScheduler (reactive baseline) and PesScheduler (estimates
 * for the global optimizer, and the >3-mispredict reactive fallback).
 */

#ifndef PES_CORE_EBS_POLICY_HH
#define PES_CORE_EBS_POLICY_HH

#include <array>

#include "hw/estimator.hh"
#include "hw/power_model.hh"
#include "util/stats.hh"
#include "web/event_types.hh"

namespace pes {

/**
 * Workload estimation + minimum-energy configuration choice.
 */
class EbsPolicy
{
  public:

    /**
     * @param platform The ACMP platform (must outlive the policy).
     * @param power The power table (must outlive the policy).
     * @param feasibility_margin Multiplier on estimated latencies when
     *        testing deadlines (1.0 = the paper's margin-free EBS; > 1
     *        adds headroom against per-instance workload noise).
     *
     * The policy owns its latency model so its learned state can persist
     * across simulator instances (the device keeps its Eqn.-1
     * measurements across sessions, like the paper's warmed system).
     */
    EbsPolicy(const AcmpPlatform &platform, const PowerModel &power,
              double feasibility_margin = 1.0);

    /** The configured feasibility margin. */
    double feasibilityMargin() const { return margin_; }

    EbsPolicy(const EbsPolicy &) = delete;
    EbsPolicy &operator=(const EbsPolicy &) = delete;

    /** Record a measured execution (updates estimator and priors). */
    void recordMeasurement(uint64_t class_key, DomEventType type,
                           const AcmpConfig &config, TimeMs exec_ms);

    /** True once the class has a fitted (Tmem, Ndep). */
    bool hasEstimate(uint64_t class_key) const;

    /**
     * Workload estimate for planning: the class's two-point fit when
     * available; after a single measurement, a one-point estimate that
     * splits the measured latency into memory/compute using the
     * interaction prior's memory fraction; otherwise the per-interaction
     * prior, otherwise a conservative default.
     */
    Workload estimateWorkload(uint64_t class_key, DomEventType type) const;

    /**
     * EBS's per-event decision: the minimum-energy configuration whose
     * estimated latency fits in @p budget_ms. During the first two
     * encounters returns the measurement probe configuration; when no
     * configuration fits, returns the highest-performance one.
     */
    AcmpConfig chooseConfig(uint64_t class_key, DomEventType type,
                            TimeMs budget_ms) const;

    /** The minimum-energy feasible configuration for a known workload. */
    AcmpConfig chooseConfigFor(const Workload &work,
                               TimeMs budget_ms) const;

    /** The underlying estimator (diagnostics/tests). */
    const TwoPointEstimator &estimator() const { return estimator_; }

  private:
    DvfsLatencyModel model_;
    double margin_ = 1.0;
    const PowerModel *power_;
    TwoPointEstimator estimator_;

    struct Prior
    {
        RunningStats tmem;
        RunningStats ndep;
    };
    std::array<Prior, kNumInteractions> priors_;
};

} // namespace pes

#endif // PES_CORE_EBS_POLICY_HH
