#include "core/ebs_scheduler.hh"

#include <cmath>

namespace pes {

void
EbsScheduler::begin(SimulatorApi &api)
{
    // Measurements persist across sessions (the device keeps its Eqn.-1
    // history), so only create the policy once.
    if (!policy_)
        policy_.emplace(api.platform(), api.powerModel());
}

TimeMs
EbsScheduler::displayDeadline(SimulatorApi &api, const TraceEvent &event)
{
    const TimeMs period = api.vsync().periodMs();
    // The last VSync at or before (arrival + QoS target): a frame that
    // completes by then is displayed within the target.
    return std::floor((event.arrival + event.qosTarget()) / period) *
        period;
}

WorkItem
EbsScheduler::reactiveItem(SimulatorApi &api, EbsPolicy &policy,
                           int trace_index)
{
    const TraceEvent &event = api.arrivedEvent(trace_index);
    const TimeMs budget =
        displayDeadline(api, event) - api.now() -
        api.platform().switchCost(api.currentConfig(),
                                  api.platform().maxConfig());
    WorkItem item;
    item.kind = WorkItem::Kind::Real;
    item.traceIndex = trace_index;
    item.config = policy.chooseConfig(event.classKey, event.type,
                                      std::max(0.0, budget));
    return item;
}

std::optional<WorkItem>
EbsScheduler::nextWork(SimulatorApi &api)
{
    const auto front = api.pendingQueue().front();
    if (!front)
        return std::nullopt;
    return reactiveItem(api, *policy_, front->traceIndex);
}

void
EbsScheduler::onWorkFinished(SimulatorApi &api, const CompletedWork &work)
{
    if (work.item.kind != WorkItem::Kind::Real)
        return;
    const TraceEvent &event = api.arrivedEvent(work.item.traceIndex);
    policy_->recordMeasurement(event.classKey, event.type,
                               work.finalConfig, work.execMs);
}

} // namespace pes
