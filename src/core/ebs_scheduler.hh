/**
 * @file
 * EBS: the state-of-the-art reactive QoS-aware baseline (Sec. 6.1).
 *
 * Schedules one event at a time, at its arrival, onto the minimum-energy
 * configuration that meets the event's QoS target per the online Eqn.-1
 * estimate. Reactive by construction: it never looks past the pending
 * queue head, which is exactly the limitation PES removes.
 */

#ifndef PES_CORE_EBS_SCHEDULER_HH
#define PES_CORE_EBS_SCHEDULER_HH

#include "core/ebs_policy.hh"
#include "sim/scheduler_driver.hh"
#include "sim/simulator_api.hh"

namespace pes {

/**
 * Event-Based Scheduler driver.
 */
class EbsScheduler : public SchedulerDriver
{
  public:
    std::string name() const override { return "EBS"; }

    bool resetFresh() override
    {
        policy_.reset();
        return true;
    }

    void begin(SimulatorApi &api) override;
    std::optional<WorkItem> nextWork(SimulatorApi &api) override;
    void onWorkFinished(SimulatorApi &api,
                        const CompletedWork &work) override;

    /** The shared policy (diagnostics/tests). */
    const EbsPolicy *policy() const { return policy_ ? &*policy_ : nullptr; }

    /**
     * Latest frame-completion time that still displays within the QoS
     * target of @p event (VSync-floor of arrival + QoS).
     */
    static TimeMs displayDeadline(SimulatorApi &api,
                                  const TraceEvent &event);

    /** Build the reactive work item for the queue head (shared w/ PES). */
    static WorkItem reactiveItem(SimulatorApi &api, EbsPolicy &policy,
                                 int trace_index);

  private:
    std::optional<EbsPolicy> policy_;
};

} // namespace pes

#endif // PES_CORE_EBS_SCHEDULER_HH
