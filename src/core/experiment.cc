#include "core/experiment.hh"

#include "core/ebs_scheduler.hh"
#include "core/governors.hh"
#include "core/oracle_scheduler.hh"
#include "core/predictor_training.hh"
#include "util/logging.hh"

namespace pes {

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Interactive:
        return "Interactive";
      case SchedulerKind::Ondemand:
        return "Ondemand";
      case SchedulerKind::Ebs:
        return "EBS";
      case SchedulerKind::Pes:
        return "PES";
      case SchedulerKind::Oracle:
        return "Oracle";
    }
    panic("schedulerKindName: invalid kind");
}

Experiment::Experiment(AcmpPlatform platform)
    : platform_(std::move(platform)), power_(platform_),
      generator_(platform_)
{
}

const LogisticModel &
Experiment::trainedModel()
{
    if (!model_) {
        model_ = trainEventModel(generator_, seenApps(),
                                 kTrainingTracesPerApp);
    }
    return *model_;
}

std::unique_ptr<SchedulerDriver>
Experiment::makeScheduler(SchedulerKind kind,
                          std::optional<PesScheduler::Config> pes_config)
{
    switch (kind) {
      case SchedulerKind::Interactive:
        return std::make_unique<InteractiveGovernor>();
      case SchedulerKind::Ondemand:
        return std::make_unique<OndemandGovernor>();
      case SchedulerKind::Ebs:
        return std::make_unique<EbsScheduler>();
      case SchedulerKind::Pes:
        return std::make_unique<PesScheduler>(
            trainedModel(),
            pes_config.value_or(PesScheduler::Config{}));
      case SchedulerKind::Oracle:
        return std::make_unique<OracleScheduler>();
    }
    panic("makeScheduler: invalid kind");
}

SimResult
Experiment::runTrace(const AppProfile &profile,
                     const InteractionTrace &trace,
                     SchedulerDriver &driver)
{
    const WebApp &app = generator_.appFor(profile);
    SimConfig config;
    config.renderScale = profile.renderScale;
    RuntimeSimulator simulator(platform_, power_, app, config);
    return simulator.run(trace, driver);
}

void
Experiment::runSweep(const std::vector<AppProfile> &profiles,
                     const std::vector<SchedulerKind> &kinds,
                     ResultSet &out)
{
    for (const AppProfile &profile : profiles) {
        const auto traces =
            generator_.evaluationSet(profile, kEvalTracesPerApp);
        for (const SchedulerKind kind : kinds) {
            const auto driver = makeScheduler(kind);
            for (const InteractionTrace &trace : traces)
                out.add(runTrace(profile, trace, *driver));
        }
    }
}

void
Experiment::runAppUnder(const AppProfile &profile, SchedulerDriver &driver,
                        ResultSet &out)
{
    for (const InteractionTrace &trace :
         generator_.evaluationSet(profile, kEvalTracesPerApp)) {
        out.add(runTrace(profile, trace, driver));
    }
}

} // namespace pes
