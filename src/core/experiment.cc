#include "core/experiment.hh"

#include <algorithm>
#include <thread>

#include "core/ebs_scheduler.hh"
#include "core/governors.hh"
#include "core/oracle_scheduler.hh"
#include "core/predictor_training.hh"
#include "util/logging.hh"

namespace pes {

Experiment::Experiment(AcmpPlatform platform)
    : platform_(std::move(platform)), power_(platform_),
      generator_(platform_)
{
}

const LogisticModel &
Experiment::trainedModel()
{
    if (!model_) {
        model_ = trainEventModel(generator_, seenApps(),
                                 kTrainingTracesPerApp);
    }
    return *model_;
}

std::unique_ptr<SchedulerDriver>
Experiment::makeScheduler(SchedulerKind kind,
                          std::optional<PesScheduler::Config> pes_config)
{
    switch (kind) {
      case SchedulerKind::Interactive:
        return std::make_unique<InteractiveGovernor>();
      case SchedulerKind::Ondemand:
        return std::make_unique<OndemandGovernor>();
      case SchedulerKind::Ebs:
        return std::make_unique<EbsScheduler>();
      case SchedulerKind::Pes:
        return std::make_unique<PesScheduler>(
            trainedModel(),
            pes_config.value_or(PesScheduler::Config{}));
      case SchedulerKind::Oracle:
        return std::make_unique<OracleScheduler>();
    }
    panic("makeScheduler: invalid kind");
}

SimResult
Experiment::runTrace(const AppProfile &profile,
                     const InteractionTrace &trace,
                     SchedulerDriver &driver)
{
    const WebApp &app = generator_.appFor(profile);
    SimConfig config;
    config.renderScale = profile.renderScale;
    RuntimeSimulator simulator(platform_, power_, app, config);
    return simulator.run(trace, driver);
}

int
Experiment::defaultSweepThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

void
Experiment::setSweepThreads(int threads)
{
    sweepThreads_ = std::max(1, threads);
}

FleetOutcome
Experiment::runFleetSweep(const std::vector<AppProfile> &profiles,
                          const std::vector<SchedulerKind> &kinds,
                          bool collect_results)
{
    FleetConfig config;
    config.devices = {platform_};
    config.apps = profiles;
    config.schedulers = kinds;
    config.users = kEvalTracesPerApp;
    config.seedMode = SeedMode::Evaluation;
    config.warmDrivers = true;
    config.collectResults = collect_results;
    config.threads = sweepThreads_;
    config.trainingTracesPerApp = kTrainingTracesPerApp;
    for (const SchedulerKind kind : kinds) {
        if (kind == SchedulerKind::Pes) {
            config.pretrainedModel = &trainedModel();
            config.pretrainedModelDevice = platform_.name();
            break;
        }
    }
    FleetOutcome outcome = FleetRunner(std::move(config)).run();
    // The pool downgrades worker exceptions to diagnostics so batch
    // tools can report partial sweeps; the experiment harness (and the
    // paper-figure benches on top of it) has no partial mode — numbers
    // from an incomplete sweep must never look like results.
    panic_if(!outcome.diagnostics.empty(), "fleet sweep failed: %s",
             outcome.diagnostics.front().c_str());
    return outcome;
}

void
Experiment::runSweep(const std::vector<AppProfile> &profiles,
                     const std::vector<SchedulerKind> &kinds,
                     ResultSet &out)
{
    FleetOutcome outcome = runFleetSweep(profiles, kinds);
    for (SimResult &result : outcome.results.takeAll())
        out.add(std::move(result));
}

void
Experiment::runAppUnder(const AppProfile &profile, SchedulerDriver &driver,
                        ResultSet &out)
{
    for (const InteractionTrace &trace :
         generator_.evaluationSet(profile, kEvalTracesPerApp)) {
        out.add(runTrace(profile, trace, driver));
    }
}

} // namespace pes
