/**
 * @file
 * Shared experiment harness.
 *
 * Owns the fixed pieces every figure/table bench needs — platform, power
 * table, trace generator, the trained event model — and runs (app, trace,
 * scheduler) combinations into a ResultSet. Evaluation follows the paper:
 * 3 evaluation traces per application from users disjoint from the
 * training population, each replayed under every scheduler (Sec. 6.1).
 */

#ifndef PES_CORE_EXPERIMENT_HH
#define PES_CORE_EXPERIMENT_HH

#include <memory>
#include <optional>

#include "core/pes_scheduler.hh"
#include "core/scheduler_kind.hh"
#include "runner/fleet_runner.hh"
#include "sim/metrics.hh"
#include "sim/runtime_simulator.hh"
#include "trace/generator.hh"

namespace pes {

/**
 * Experiment harness (non-copyable: internal models hold pointers).
 */
class Experiment
{
  public:
    /** Traces per app used for training (>100 total across 12 apps). */
    static constexpr int kTrainingTracesPerApp = 9;
    /** Evaluation traces per app (paper: three). */
    static constexpr int kEvalTracesPerApp = 3;

    explicit Experiment(AcmpPlatform platform = AcmpPlatform::exynos5410());

    Experiment(const Experiment &) = delete;
    Experiment &operator=(const Experiment &) = delete;

    /** The modeled SoC. */
    const AcmpPlatform &platform() const { return platform_; }

    /** The power lookup table. */
    const PowerModel &power() const { return power_; }

    /** The trace generator (caches built apps). */
    TraceGenerator &generator() { return generator_; }

    /**
     * The event-sequence model trained on the seen applications
     * (trained once, cached).
     */
    const LogisticModel &trainedModel();

    /** Instantiate a scheduler driver. */
    std::unique_ptr<SchedulerDriver>
    makeScheduler(SchedulerKind kind,
                  std::optional<PesScheduler::Config> pes_config =
                      std::nullopt);

    /** Replay one trace of @p profile under @p driver. */
    SimResult runTrace(const AppProfile &profile,
                       const InteractionTrace &trace,
                       SchedulerDriver &driver);

    /**
     * The full evaluation sweep: for every profile, kEvalTracesPerApp
     * fresh-user traces, each replayed under every scheduler in
     * @p kinds. Results accumulate into @p out.
     *
     * Executes on the fleet runner (warm per-cell drivers, evaluation
     * user population) with sweepThreads() workers; results are
     * identical to the historical serial implementation for any thread
     * count.
     */
    void runSweep(const std::vector<AppProfile> &profiles,
                  const std::vector<SchedulerKind> &kinds, ResultSet &out);

    /**
     * The evaluation sweep as a fleet run, returning the aggregated
     * per-cell metrics next to the raw results. Metrics-only callers
     * pass collect_results = false to skip retaining per-event records.
     */
    FleetOutcome runFleetSweep(const std::vector<AppProfile> &profiles,
                               const std::vector<SchedulerKind> &kinds,
                               bool collect_results = true);

    /** Worker threads used by runSweep/runFleetSweep. */
    int sweepThreads() const { return sweepThreads_; }

    /** Override the sweep worker count (>= 1). */
    void setSweepThreads(int threads);

    /** Default sweep parallelism: the hardware concurrency. */
    static int defaultSweepThreads();

    /**
     * Replay the evaluation traces of @p profile under a caller-built
     * driver (for sweeps over PES configurations).
     */
    void runAppUnder(const AppProfile &profile, SchedulerDriver &driver,
                     ResultSet &out);

  private:
    AcmpPlatform platform_;
    PowerModel power_;
    TraceGenerator generator_;
    std::optional<LogisticModel> model_;
    int sweepThreads_ = defaultSweepThreads();
};

} // namespace pes

#endif // PES_CORE_EXPERIMENT_HH
