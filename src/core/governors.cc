#include "core/governors.hh"

#include <algorithm>

namespace pes {

std::optional<WorkItem>
SamplingGovernor::nextWork(SimulatorApi &api)
{
    const auto front = api.pendingQueue().front();
    if (!front)
        return std::nullopt;
    WorkItem item;
    item.kind = WorkItem::Kind::Real;
    item.traceIndex = front->traceIndex;
    item.config = api.currentConfig();
    return item;
}

double
SamplingGovernor::capacityOf(SimulatorApi &api, const AcmpConfig &cfg)
{
    return 1.0 / api.latencyModel().cycleCoeff(cfg);
}

AcmpConfig
SamplingGovernor::configForCapacity(SimulatorApi &api, double desired)
{
    const AcmpPlatform &platform = api.platform();
    int best = -1;
    double best_capacity = 0.0;
    for (int j = 0; j < platform.numConfigs(); ++j) {
        const double cap = capacityOf(api, platform.configAt(j));
        if (cap + 1e-9 < desired)
            continue;
        if (best == -1 || cap < best_capacity) {
            best = j;
            best_capacity = cap;
        }
    }
    if (best == -1)
        return platform.maxConfig();
    return platform.configAt(best);
}

InteractiveGovernor::InteractiveGovernor()
    : InteractiveGovernor(Params{})
{
}

InteractiveGovernor::InteractiveGovernor(Params params)
    : params_(params)
{
}

std::optional<AcmpConfig>
InteractiveGovernor::onSampleTick(SimulatorApi &api,
                                  const ExecutionStatus &status)
{
    const double load = status.utilization;
    if (load >= params_.goHispeedLoad) {
        lastHighLoad_ = api.now();
        return api.platform().maxConfig();  // hispeed_freq
    }
    // Hold the current speed for min_sample_time after high load.
    if (api.now() - lastHighLoad_ < params_.minSampleTimeMs)
        return std::nullopt;
    // Scale capacity so that utilization lands at target_load.
    const double current = capacityOf(api, status.config);
    const double desired = current * load / params_.targetLoad;
    return configForCapacity(api, desired);
}

OndemandGovernor::OndemandGovernor()
    : OndemandGovernor(Params{})
{
}

OndemandGovernor::OndemandGovernor(Params params)
    : params_(params)
{
}

std::optional<AcmpConfig>
OndemandGovernor::onSampleTick(SimulatorApi &api,
                               const ExecutionStatus &status)
{
    const double load = status.utilization;
    if (load > params_.upThreshold)
        return api.platform().maxConfig();
    const double current = capacityOf(api, status.config);
    const double desired = current * load / params_.upThreshold;
    return configForCapacity(api, desired);
}

} // namespace pes
