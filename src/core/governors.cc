#include "core/governors.hh"

#include <algorithm>

namespace pes {

std::optional<WorkItem>
SamplingGovernor::nextWork(SimulatorApi &api)
{
    const auto front = api.pendingQueue().front();
    if (!front)
        return std::nullopt;
    WorkItem item;
    item.kind = WorkItem::Kind::Real;
    item.traceIndex = front->traceIndex;
    item.config = api.currentConfig();
    return item;
}

double
SamplingGovernor::capacityOf(SimulatorApi &api, const AcmpConfig &cfg)
{
    return 1.0 / api.latencyModel().cycleCoeff(cfg);
}

AcmpConfig
SamplingGovernor::configForCapacity(SimulatorApi &api, double desired)
{
    const AcmpPlatform &platform = api.platform();
    if (capacityPlatform_ != &platform) {
        sortedCapacities_.clear();
        sortedCapacities_.reserve(
            static_cast<size_t>(platform.numConfigs()));
        for (int j = 0; j < platform.numConfigs(); ++j) {
            sortedCapacities_.emplace_back(
                capacityOf(api, platform.configAt(j)), j);
        }
        std::sort(sortedCapacities_.begin(), sortedCapacities_.end());
        capacityPlatform_ = &platform;
    }
    // A config qualifies when cap + 1e-9 >= desired; that predicate is
    // monotone in capacity, so the first qualifying entry of the sorted
    // table is the scan's winner (minimum capacity, then minimum index).
    const auto it = std::lower_bound(
        sortedCapacities_.begin(), sortedCapacities_.end(), desired,
        [](const std::pair<double, int> &entry, double want) {
            return entry.first + 1e-9 < want;
        });
    if (it == sortedCapacities_.end())
        return platform.maxConfig();
    return platform.configAt(it->second);
}

InteractiveGovernor::InteractiveGovernor()
    : InteractiveGovernor(Params{})
{
}

InteractiveGovernor::InteractiveGovernor(Params params)
    : params_(params)
{
}

std::optional<AcmpConfig>
InteractiveGovernor::onSampleTick(SimulatorApi &api,
                                  const ExecutionStatus &status)
{
    const double load = status.utilization;
    if (load >= params_.goHispeedLoad) {
        lastHighLoad_ = api.now();
        return api.platform().maxConfig();  // hispeed_freq
    }
    // Hold the current speed for min_sample_time after high load.
    if (api.now() - lastHighLoad_ < params_.minSampleTimeMs)
        return std::nullopt;
    // Scale capacity so that utilization lands at target_load.
    const double current = capacityOf(api, status.config);
    const double desired = current * load / params_.targetLoad;
    return configForCapacity(api, desired);
}

OndemandGovernor::OndemandGovernor()
    : OndemandGovernor(Params{})
{
}

OndemandGovernor::OndemandGovernor(Params params)
    : params_(params)
{
}

std::optional<AcmpConfig>
OndemandGovernor::onSampleTick(SimulatorApi &api,
                               const ExecutionStatus &status)
{
    const double load = status.utilization;
    if (load > params_.upThreshold)
        return api.platform().maxConfig();
    const double current = capacityOf(api, status.config);
    const double desired = current * load / params_.upThreshold;
    return configForCapacity(api, desired);
}

} // namespace pes
