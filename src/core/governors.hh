/**
 * @file
 * QoS-agnostic OS CPU governors (paper baselines).
 *
 * Interactive: Android's default interactive governor (Sec. 6.1) — 20 ms
 * utilization sampling, jump to the hispeed (max big) configuration when
 * load exceeds 85%, hold for min_sample_time before scaling down, then
 * scale capacity proportionally to load.
 *
 * Ondemand: the classic ondemand governor — 100 ms sampling, jump to max
 * above the up-threshold (80%), otherwise scale down proportionally. Its
 * slow ramp is why it trades QoS for energy (Fig. 13).
 *
 * Both select across clusters with a capacity-based HMP-style mapping and
 * are completely unaware of event QoS targets.
 */

#ifndef PES_CORE_GOVERNORS_HH
#define PES_CORE_GOVERNORS_HH

#include <utility>
#include <vector>

#include "sim/scheduler_driver.hh"
#include "sim/simulator_api.hh"

namespace pes {

/**
 * Base for sampling governors: dispatches FIFO work at the governor's
 * current configuration; subclasses implement the frequency policy.
 */
class SamplingGovernor : public SchedulerDriver
{
  public:
    std::optional<WorkItem> nextWork(SimulatorApi &api) override;

  protected:
    /**
     * Capacity index of a configuration: relative throughput (inverse of
     * the Eqn.-1 cycle coefficient).
     */
    static double capacityOf(SimulatorApi &api, const AcmpConfig &cfg);

    /**
     * Cheapest configuration with capacity >= @p desired (falls back to
     * the fastest configuration when none suffices). Capacities are fixed
     * per platform, so they are computed once and memoized rather than
     * re-derived from the latency model every sampling tick.
     */
    AcmpConfig configForCapacity(SimulatorApi &api, double desired);

  private:
    /** Platform the memoized capacity table belongs to. */
    const void *capacityPlatform_ = nullptr;
    /**
     * (capacity, config index) sorted ascending, so configForCapacity
     * binary-searches instead of scanning every tick. Ties sort by
     * index, making the first qualifying entry the same config the
     * min-capacity/min-index linear scan used to pick.
     */
    std::vector<std::pair<double, int>> sortedCapacities_;
};

/**
 * Android Interactive governor.
 */
class InteractiveGovernor : public SamplingGovernor
{
  public:
    /** Tunables (defaults follow the Android documentation). */
    struct Params
    {
        TimeMs timerRateMs = 20.0;
        double goHispeedLoad = 0.85;
        TimeMs minSampleTimeMs = 80.0;
        double targetLoad = 0.90;
    };

    InteractiveGovernor();
    explicit InteractiveGovernor(Params params);

    std::string name() const override { return "Interactive"; }

    bool resetFresh() override
    {
        lastHighLoad_ = -1e9;
        return true;
    }

    TimeMs sampleIntervalMs() const override { return params_.timerRateMs; }
    std::optional<AcmpConfig>
    onSampleTick(SimulatorApi &api, const ExecutionStatus &status) override;

  private:
    Params params_;
    TimeMs lastHighLoad_ = -1e9;
};

/**
 * Linux/Android Ondemand governor.
 */
class OndemandGovernor : public SamplingGovernor
{
  public:
    /** Tunables. */
    struct Params
    {
        TimeMs samplingRateMs = 100.0;
        double upThreshold = 0.80;
    };

    OndemandGovernor();
    explicit OndemandGovernor(Params params);

    std::string name() const override { return "Ondemand"; }

    bool resetFresh() override { return true; }

    TimeMs sampleIntervalMs() const override
    {
        return params_.samplingRateMs;
    }
    std::optional<AcmpConfig>
    onSampleTick(SimulatorApi &api, const ExecutionStatus &status) override;

  private:
    Params params_;
};

} // namespace pes

#endif // PES_CORE_GOVERNORS_HH
