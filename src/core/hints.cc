#include "core/hints.hh"

namespace pes {

void
PredictionHintTable::add(const PredictionHint &hint)
{
    hints_.push_back(hint);
}

std::optional<PredictionHint>
PredictionHintTable::lookup(int page_id, DomEventType last_type,
                            NodeId last_node) const
{
    for (const PredictionHint &hint : hints_) {
        if (hint.trigger != last_type)
            continue;
        if (hint.pageId >= 0 && hint.pageId != page_id)
            continue;
        if (hint.triggerNode != kInvalidNode &&
            hint.triggerNode != last_node)
            continue;
        return hint;
    }
    return std::nullopt;
}

} // namespace pes
