/**
 * @file
 * Developer prediction hints (the paper's Sec. 7 future-work item:
 * "language extensions such as hints for predicting future events that
 * could better guide PES scheduling").
 *
 * A hint declares, at application level, that after a given trigger
 * event the user will very likely produce a specific next event — e.g.
 * "after tapping the search field, a submit follows" or "opening this
 * menu leads to a navigation". The predictor consults the hint table
 * before the statistical learner; a matching hint supplies both the
 * predicted event and its confidence, and the normal cumulative-
 * confidence machinery (and the control unit's squash path) applies
 * unchanged, so a wrong hint degrades gracefully instead of breaking
 * QoS.
 */

#ifndef PES_CORE_HINTS_HH
#define PES_CORE_HINTS_HH

#include <optional>
#include <vector>

#include "sim/sim_types.hh"

namespace pes {

/**
 * One developer-declared transition hint.
 */
struct PredictionHint
{
    /** Page the trigger lives on; -1 = any page. */
    int pageId = -1;
    /** Trigger event type. */
    DomEventType trigger = DomEventType::Click;
    /** Trigger node; kInvalidNode = any node with that event type. */
    NodeId triggerNode = kInvalidNode;

    /** The event the developer expects next. */
    DomEventType next = DomEventType::Click;
    /** Its target node; kInvalidNode = let the analyzer pick. */
    NodeId nextNode = kInvalidNode;
    /** Declared confidence (drives the prediction-degree cutoff). */
    double confidence = 0.95;
};

/**
 * Ordered hint table: the first matching hint wins.
 */
class PredictionHintTable
{
  public:
    /** Register a hint (kept in registration order). */
    void add(const PredictionHint &hint);

    /**
     * The hint matching the last observed event, if any.
     * @param page_id Current page.
     * @param last_type Type of the most recent event.
     * @param last_node Its target node.
     */
    std::optional<PredictionHint>
    lookup(int page_id, DomEventType last_type, NodeId last_node) const;

    /** Number of registered hints. */
    size_t size() const { return hints_.size(); }

  private:
    std::vector<PredictionHint> hints_;
};

} // namespace pes

#endif // PES_CORE_HINTS_HH
