#include "core/optimizer.hh"

#include <algorithm>
#include <cmath>

namespace pes {

GlobalOptimizer::GlobalOptimizer(const DvfsLatencyModel &model,
                                 const PowerModel &power,
                                 const VsyncClock &vsync,
                                 double latency_margin)
    : model_(&model), power_(&power), vsync_(&vsync),
      margin_(latency_margin)
{
}

ScheduleProblem
GlobalOptimizer::buildProblem(TimeMs now, const AcmpConfig &current_config,
                              const std::vector<PlanEventSpec> &events)
    const
{
    const AcmpPlatform &platform = model_->platform();
    const int c = platform.numConfigs();

    ScheduleProblem problem;
    problem.initialConfig = platform.configIndex(current_config);

    // Switch-cost matrix.
    problem.switchCost.assign(static_cast<size_t>(c),
                              std::vector<TimeMs>(static_cast<size_t>(c),
                                                  0.0));
    for (int a = 0; a < c; ++a) {
        for (int b = 0; b < c; ++b) {
            problem.switchCost[static_cast<size_t>(a)]
                              [static_cast<size_t>(b)] =
                platform.switchCost(platform.configAt(a),
                                    platform.configAt(b));
        }
    }

    const TimeMs period = vsync_->periodMs();
    TimeMs prev_deadline = 0.0;
    for (const PlanEventSpec &spec : events) {
        ScheduleEvent ev;
        ev.latency.reserve(static_cast<size_t>(c));
        ev.energy.reserve(static_cast<size_t>(c));
        for (int j = 0; j < c; ++j) {
            const TimeMs latency = model_->latencyAt(spec.work, j);
            // Chain timing uses margin-inflated latency (headroom against
            // estimation noise); energy uses the unbiased estimate.
            ev.latency.push_back(latency * margin_);
            ev.energy.push_back(
                energyOf(power_->busyPowerAt(j), latency));
        }
        if (spec.arrival) {
            // Outstanding: display-floor of arrival + QoS.
            const TimeMs display_deadline =
                std::floor((*spec.arrival + spec.qosTarget) / period) *
                period;
            ev.deadline = display_deadline - now;
        } else if (spec.expectedArrival) {
            // Predicted with an inter-arrival model: the frame must be
            // displayable by (expected trigger + QoS). Never looser than
            // preserving chain order, never tighter than the
            // conservative bound.
            const TimeMs display_deadline =
                std::floor((*spec.expectedArrival + spec.qosTarget) /
                           period) * period;
            ev.deadline = std::max(display_deadline - now,
                                   std::max(prev_deadline, 0.0) +
                                       spec.qosTarget);
        } else {
            // Predicted: conservative chaining (may trigger immediately).
            ev.deadline = std::max(prev_deadline, 0.0) + spec.qosTarget;
        }
        prev_deadline = ev.deadline;
        problem.events.push_back(std::move(ev));
    }
    return problem;
}

ScheduleSolution
GlobalOptimizer::solve(const ScheduleProblem &problem) const
{
    return solver_.solve(problem);
}

ScheduleSolution
GlobalOptimizer::planSchedule(TimeMs now, const AcmpConfig &current_config,
                              const std::vector<PlanEventSpec> &events)
    const
{
    return solve(buildProblem(now, current_config, events));
}

} // namespace pes
