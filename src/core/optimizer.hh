/**
 * @file
 * The PES energy/QoS optimizer (paper Sec. 5.3).
 *
 * Translates a window of events — outstanding plus predicted — into the
 * Eqn. 2-5 scheduling problem (per-configuration latency from the Eqn.-1
 * estimate, per-configuration energy from the power table, chained
 * deadlines) and solves it with the specialized exact solver. Deadline
 * construction:
 *
 *   outstanding event: the last VSync at or before (arrival + QoS),
 *                      relative to the chain start "now";
 *   predicted event:   conservatively chained — it may arrive immediately
 *                      after its predecessor, so its deadline is
 *                      max(predecessor deadline, 0) + its QoS target.
 */

#ifndef PES_CORE_OPTIMIZER_HH
#define PES_CORE_OPTIMIZER_HH

#include <optional>
#include <vector>

#include "hw/dvfs_model.hh"
#include "hw/power_model.hh"
#include "solver/schedule_problem.hh"
#include "web/vsync.hh"

namespace pes {

/** One event of the optimization window. */
struct PlanEventSpec
{
    /** Estimated (or, for the oracle, true) workload. */
    Workload work;
    /** QoS target of the event. */
    TimeMs qosTarget = 300.0;
    /** Arrival time for outstanding events; unset for predicted ones. */
    std::optional<TimeMs> arrival;
    /**
     * Expected trigger time of a predicted event (from the scheduler's
     * inter-arrival model). When unset, the deadline falls back to the
     * conservative "may trigger immediately" chaining.
     */
    std::optional<TimeMs> expectedArrival;
};

/**
 * Builds and solves the global scheduling problem.
 */
class GlobalOptimizer
{
  public:
    /**
     * @param latency_margin Multiplier on estimated latencies inside the
     * chain constraints (1.0 = trust estimates; > 1 adds noise headroom).
     */
    GlobalOptimizer(const DvfsLatencyModel &model, const PowerModel &power,
                    const VsyncClock &vsync, double latency_margin = 1.0);

    /**
     * Build the Eqn. 2-5 problem for a chain starting at @p now on
     * @p current_config (switch costs included).
     */
    ScheduleProblem buildProblem(TimeMs now,
                                 const AcmpConfig &current_config,
                                 const std::vector<PlanEventSpec> &events)
        const;

    /** Solve (exact DP); see ParetoDpSolver for the objective. */
    ScheduleSolution solve(const ScheduleProblem &problem) const;

    /** Convenience: buildProblem + solve. */
    ScheduleSolution
    planSchedule(TimeMs now, const AcmpConfig &current_config,
                 const std::vector<PlanEventSpec> &events) const;

  private:
    const DvfsLatencyModel *model_;
    const PowerModel *power_;
    const VsyncClock *vsync_;
    double margin_ = 1.0;
    ParetoDpSolver solver_;
};

} // namespace pes

#endif // PES_CORE_OPTIMIZER_HH
