#include "core/oracle_scheduler.hh"

#include <cmath>

#include "core/optimizer.hh"
#include "util/logging.hh"

namespace pes {

void
OracleScheduler::begin(SimulatorApi &api)
{
    configs_.clear();
    nextToDispatch_ = 0;
    framesByPosition_.clear();
    inflightPosition_ = -1;
    inflightAdopted_ = false;

    const InteractionTrace &trace = api.fullTrace();

    // One global plan over the entire sequence with true workloads and
    // true (absolute) deadlines; the chain starts at t = now (= 0 plus
    // the scheduler-compute charge below).
    api.chargeSchedulerOverhead(2.0);

    GlobalOptimizer optimizer(api.latencyModel(), api.powerModel(),
                              api.vsync());
    std::vector<PlanEventSpec> specs;
    specs.reserve(trace.events.size());
    for (const TraceEvent &ev : trace.events) {
        PlanEventSpec spec;
        spec.work = ev.totalWork();
        spec.qosTarget = ev.qosTarget();
        spec.arrival = ev.arrival;
        specs.push_back(spec);
    }
    const ScheduleSolution solution = optimizer.planSchedule(
        api.now(), api.currentConfig(), specs);
    configs_ = solution.configOf;
    if (!solution.feasible) {
        warn("oracle: trace %s/user %llu is not oracle-feasible "
             "(tardiness %.2f ms)", trace.appName.c_str(),
             static_cast<unsigned long long>(trace.userSeed),
             solution.totalTardiness);
    }
}

void
OracleScheduler::onArrival(SimulatorApi &api, int trace_index)
{
    // A frame may already be waiting for this event.
    const auto it = framesByPosition_.find(trace_index);
    if (it != framesByPosition_.end()) {
        api.serveFromSpeculation(trace_index, it->second);
        framesByPosition_.erase(it);
        return;
    }
    if (inflightPosition_ == trace_index && !inflightAdopted_) {
        api.adoptInFlight(trace_index);
        inflightAdopted_ = true;
    }
    // Otherwise the event's execution has not started yet; it will be
    // served when its (always matching) frame completes.
}

std::optional<WorkItem>
OracleScheduler::nextWork(SimulatorApi &api)
{
    const InteractionTrace &trace = api.fullTrace();
    if (nextToDispatch_ >= static_cast<int>(trace.events.size()))
        return std::nullopt;

    const int position = nextToDispatch_++;
    const TraceEvent &ev = trace.events[static_cast<size_t>(position)];

    WorkItem work;
    work.kind = WorkItem::Kind::Speculative;
    work.targetPosition = position;
    work.predicted = {ev.type, ev.node, ev.pageId, 1.0};
    work.config = api.platform().configAt(
        configs_[static_cast<size_t>(position)]);
    inflightPosition_ = position;
    inflightAdopted_ = false;
    return work;
}

void
OracleScheduler::onWorkFinished(SimulatorApi &api,
                                const CompletedWork &work)
{
    panic_if(work.item.kind != WorkItem::Kind::Speculative,
             "oracle dispatches only speculative work");
    const int position = work.item.targetPosition;
    const bool adopted = inflightAdopted_ && inflightPosition_ == position;
    inflightPosition_ = -1;
    inflightAdopted_ = false;
    if (adopted)
        return;  // simulator already served it at completion
    if (position < api.arrivedCount()) {
        // Arrived while we were finishing but adopt was not possible
        // (the arrival predates this item's dispatch).
        api.serveFromSpeculation(position, work.workId);
        return;
    }
    framesByPosition_[position] = work.workId;
}

} // namespace pes
