/**
 * @file
 * Oracle scheduler (paper Sec. 6.1).
 *
 * Has a priori knowledge of the entire event sequence — types, targets,
 * arrival times and true workloads — which is exactly what
 * SimulatorApi::fullTrace() exposes (to this driver only). It solves the
 * global Eqn. 2-5 problem once over the whole trace with true deadlines
 * (arrival + QoS, VSync-floored) and executes every event back-to-back
 * from t = 0 as "speculation" that always commits: an infinite prediction
 * degree with perfect accuracy. By construction it maximizes energy
 * savings and (on oracle-feasible traces) incurs zero QoS violations.
 */

#ifndef PES_CORE_ORACLE_SCHEDULER_HH
#define PES_CORE_ORACLE_SCHEDULER_HH

#include <unordered_map>
#include <vector>

#include "sim/scheduler_driver.hh"
#include "sim/simulator_api.hh"

namespace pes {

/**
 * The oracle driver.
 */
class OracleScheduler : public SchedulerDriver
{
  public:
    std::string name() const override { return "Oracle"; }

    // begin() rebuilds every member from the trace, so a pooled oracle
    // needs no explicit scrubbing between sessions.
    bool resetFresh() override { return true; }

    void begin(SimulatorApi &api) override;
    void onArrival(SimulatorApi &api, int trace_index) override;
    std::optional<WorkItem> nextWork(SimulatorApi &api) override;
    void onWorkFinished(SimulatorApi &api,
                        const CompletedWork &work) override;

    /** Planned configuration per event (diagnostics). */
    const std::vector<int> &plannedConfigs() const { return configs_; }

  private:
    std::vector<int> configs_;
    int nextToDispatch_ = 0;
    /** Finished frames by position. */
    std::unordered_map<int, uint64_t> framesByPosition_;
    /** Position of the in-flight item; -1 when idle. */
    int inflightPosition_ = -1;
    bool inflightAdopted_ = false;
};

} // namespace pes

#endif // PES_CORE_ORACLE_SCHEDULER_HH
