#include "core/pes_scheduler.hh"

#include <algorithm>

#include "core/ebs_scheduler.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace pes {

PesScheduler::PesScheduler(const LogisticModel &model)
    : PesScheduler(model, Config{})
{
}

PesScheduler::PesScheduler(const LogisticModel &model, Config config)
    : model_(model), config_(std::move(config))
{
}

std::string
PesScheduler::name() const
{
    return config_.nameOverride.empty() ? "PES" : config_.nameOverride;
}

void
PesScheduler::begin(SimulatorApi &api)
{
    // predictor/optimizer bind to per-run simulator models; the EBS
    // policy (Eqn.-1 measurements) and the inter-arrival model persist
    // across sessions like a warmed device.
    predictor_.emplace(model_, config_.predictor);
    optimizer_.emplace(api.latencyModel(), api.powerModel(), api.vsync(),
                       config_.latencyMargin);
    if (!ebs_) {
        ebs_.emplace(api.platform(), api.powerModel(),
                     config_.latencyMargin);
        ewmaGap_[static_cast<size_t>(Interaction::Load)] = 7000.0;
        ewmaGap_[static_cast<size_t>(Interaction::Tap)] = 4000.0;
        ewmaGap_[static_cast<size_t>(Interaction::Move)] = 2500.0;
    }
    plan_.clear();
    planNext_ = 0;
    pfb_ = PendingFrameBuffer{};
    inflight_.reset();
    window_.clear();
    consecutiveMispredicts_ = 0;
    fallback_ = false;
    lastArrivalTime_ = 0.0;
    lastArrivalType_.reset();
}

uint64_t
PesScheduler::classKeyFor(SimulatorApi &api,
                          const PredictedEvent &predicted) const
{
    const WebApp &app = api.session().app();
    if (predicted.pageId >= 0 && predicted.pageId < app.numPages()) {
        const DomTree &dom = app.dom(predicted.pageId);
        if (predicted.node >= 0 &&
            predicted.node < static_cast<NodeId>(dom.size())) {
            const HandlerSpec *handler =
                dom.node(predicted.node).handlerFor(predicted.type);
            if (handler) {
                return eventClassKeyFor(app.name(), predicted.pageId,
                                        predicted.node, *handler);
            }
        }
    }
    return eventClassKey(app.name(), predicted.pageId, predicted.node,
                         predicted.type);
}

bool
PesScheduler::matches(const PredictedEvent &predicted,
                      const TraceEvent &actual) const
{
    if (predicted.type != actual.type)
        return false;
    if (config_.matchPolicy == MatchPolicy::Strict) {
        return predicted.node == actual.node &&
            predicted.pageId == actual.pageId;
    }
    return true;
}

void
PesScheduler::recordMeasurement(SimulatorApi &api, uint64_t class_key,
                                DomEventType type,
                                const CompletedWork &work)
{
    (void)api;
    ebs_->recordMeasurement(class_key, type, work.finalConfig, work.execMs);
}

void
PesScheduler::squash(SimulatorApi &api)
{
    api.notePrediction(false);
    ++consecutiveMispredicts_;

    // Stop the dispatcher: abort in-flight speculation (unless it is
    // already serving a matched event) and drop every buffered frame.
    if (inflight_ && !inflight_->adopted) {
        api.abortInFlight();
        inflight_.reset();
    }
    for (const PendingFrame &frame : pfb_.drain())
        api.discardSpeculativeWork(frame.workId);
    api.recordPfbSample(0, true);

    plan_.clear();
    planNext_ = 0;

    if (consecutiveMispredicts_ > config_.maxConsecutiveMispredicts &&
        !fallback_) {
        fallback_ = true;
        api.noteFallback();
    }
}

void
PesScheduler::onArrival(SimulatorApi &api, int trace_index)
{
    const TraceEvent &ev = api.arrivedEvent(trace_index);
    window_.observe(ev.type, ev.x, ev.y, ev.node);

    // Update the inter-arrival model (gap keyed by the interaction that
    // preceded it, mirroring think-time structure).
    if (lastArrivalType_) {
        const auto prev =
            static_cast<size_t>(interactionOf(*lastArrivalType_));
        const TimeMs gap = ev.arrival - lastArrivalTime_;
        ewmaGap_[prev] = 0.7 * ewmaGap_[prev] + 0.3 * gap;
    }
    lastArrivalTime_ = ev.arrival;
    lastArrivalType_ = ev.type;

    if (fallback_ || !config_.enablePrediction)
        return;

    // 1. A finished frame anticipates this position.
    if (const auto head = pfb_.head()) {
        panic_if(head->position != trace_index,
                 "PFB head position %d does not match arrival %d",
                 head->position, trace_index);
        if (matches(head->predicted, ev)) {
            api.notePrediction(true);
            consecutiveMispredicts_ = 0;
            api.serveFromSpeculation(trace_index, head->workId);
            if (head->predicted.node == ev.node &&
                head->predicted.pageId == ev.pageId) {
                ebs_->recordMeasurement(
                    ev.classKey, ev.type,
                    api.platform().configAt(head->configIndex),
                    head->execMs);
            }
            pfb_.pop();
            api.recordPfbSample(pfb_.size(), false);
        } else {
            squash(api);
        }
        return;
    }

    // 2. The in-flight speculative item anticipates this position.
    if (inflight_ && !inflight_->adopted &&
        inflight_->position == trace_index) {
        if (matches(inflight_->predicted, ev)) {
            api.notePrediction(true);
            consecutiveMispredicts_ = 0;
            api.adoptInFlight(trace_index);
            inflight_->adopted = true;
            inflight_->adoptedIndex = trace_index;
            inflight_->nodeExact =
                inflight_->predicted.node == ev.node &&
                inflight_->predicted.pageId == ev.pageId;
            // QoS safety net: the user arrived while the frame is still
            // being generated (possibly on a deep-sleep configuration);
            // raise DVFS so the frame still meets the event's deadline.
            const AcmpConfig before = api.currentConfig();
            const AcmpConfig after = api.boostInFlightToMeet(
                EbsScheduler::displayDeadline(api, ev));
            inflight_->boosted = !(before == after);
        } else {
            squash(api);
        }
        return;
    }

    // 3. A planned-but-undispatched item anticipates this position.
    for (size_t i = planNext_; i < plan_.size(); ++i) {
        PlanItem &item = plan_[i];
        if (item.position != trace_index)
            continue;
        if (item.real)
            return;  // outstanding at plan time; dispatches from queue
        if (matches(item.predicted, ev)) {
            api.notePrediction(true);
            consecutiveMispredicts_ = 0;
            item.real = true;  // dispatch as real work later
            // Its planned configuration assumed speculative slack that no
            // longer exists; rechoose against the real arrival budget.
            item.configIndex = api.platform().configIndex(
                EbsScheduler::reactiveItem(api, *ebs_, trace_index)
                    .config);
        } else {
            squash(api);
        }
        return;
    }

    // 4. Not covered: the plan has drained; nextWork will replan.
}

bool
PesScheduler::buildPlan(SimulatorApi &api)
{
    const auto outstanding = api.pendingQueue().snapshot();

    // Roll the committed state through the outstanding events, then
    // predict beyond them.
    DomAnalyzer analyzer(api.session());
    DomOverlay state = api.session().snapshotState();
    for (const QueuedEvent &qe : outstanding) {
        const TraceEvent &ev = api.arrivedEvent(qe.traceIndex);
        analyzer.applyHypothetical({ev.type, ev.node}, state);
    }

    std::vector<PredictedEvent> predicted;
    // Prediction needs history: the session-opening event is handled
    // reactively.
    if (config_.enablePrediction && !fallback_ &&
        window_.eventsInWindow() > 0) {
        predicted = predictor_->predictSequence(analyzer, state, window_);
    }

    if (outstanding.empty() && predicted.empty())
        return false;

    std::vector<PlanEventSpec> specs;
    std::vector<uint64_t> keys;
    specs.reserve(outstanding.size() + predicted.size());
    for (const QueuedEvent &qe : outstanding) {
        const TraceEvent &ev = api.arrivedEvent(qe.traceIndex);
        PlanEventSpec spec;
        spec.work = ebs_->estimateWorkload(ev.classKey, ev.type);
        spec.qosTarget = ev.qosTarget();
        spec.arrival = ev.arrival;
        specs.push_back(spec);
        keys.push_back(ev.classKey);
    }
    // Expected-arrival chain for predicted events: start from the last
    // known event and accumulate safety-scaled inter-arrival estimates.
    TimeMs expected = lastArrivalTime_;
    Interaction prev_interaction = lastArrivalType_
        ? interactionOf(*lastArrivalType_) : Interaction::Load;
    if (!outstanding.empty()) {
        const TraceEvent &last = api.arrivedEvent(
            outstanding.back().traceIndex);
        expected = last.arrival;
        prev_interaction = interactionOf(last.type);
    }
    for (const PredictedEvent &pred : predicted) {
        PlanEventSpec spec;
        const uint64_t key = classKeyFor(api, pred);
        spec.work = ebs_->estimateWorkload(key, pred.type);
        spec.qosTarget = qosTargetMs(pred.type);
        expected += config_.arrivalSafetyFactor *
            ewmaGap_[static_cast<size_t>(prev_interaction)];
        const bool relax =
            config_.deadlineModel == DeadlineModel::ExpectedGapAll ||
            (config_.deadlineModel == DeadlineModel::ExpectedGapLoads &&
             interactionOf(pred.type) == Interaction::Load);
        if (relax)
            spec.expectedArrival = std::max(expected, api.now());
        prev_interaction = interactionOf(pred.type);
        specs.push_back(spec);
        keys.push_back(key);
    }

    // Scheduler compute (prediction + constrained optimization).
    api.chargeSchedulerOverhead(config_.planOverheadMs);
    const ScheduleSolution solution = optimizer_->planSchedule(
        api.now(), api.currentConfig(), specs);

    plan_.clear();
    planNext_ = 0;
    const int next_position = api.nextUnservedPosition();
    for (size_t i = 0; i < specs.size(); ++i) {
        PlanItem item;
        item.position = next_position + static_cast<int>(i);
        item.real = i < outstanding.size();
        if (!item.real)
            item.predicted = predicted[i - outstanding.size()];
        item.configIndex = solution.configOf[i];
        // Measurement protocol: a never-seen event class runs at the
        // deadline-safe probe configuration (Sec. 5.3); from the second
        // encounter the one-point estimate feeds the optimizer.
        if (ebs_->estimator().measurementCount(keys[i]) == 0) {
            item.configIndex = api.platform().configIndex(
                ebs_->estimator().probeConfig(keys[i]));
        }
        plan_.push_back(item);
    }
    if (!predicted.empty())
        api.notePredictionRound(static_cast<int>(predicted.size()));
    return true;
}

std::optional<WorkItem>
PesScheduler::nextWork(SimulatorApi &api)
{
    if (fallback_ || !config_.enablePrediction) {
        const auto front = api.pendingQueue().front();
        if (!front)
            return std::nullopt;
        return EbsScheduler::reactiveItem(api, *ebs_, front->traceIndex);
    }

    for (;;) {
        if (planNext_ < plan_.size()) {
            PlanItem &item = plan_[planNext_];
            const bool arrived = item.position < api.arrivedCount();
            if (item.real || arrived) {
                const auto front = api.pendingQueue().front();
                if (!front || front->traceIndex != item.position) {
                    // Stale entry (event already served another way).
                    ++planNext_;
                    continue;
                }
                ++planNext_;
                item.dispatched = true;
                WorkItem work;
                work.kind = WorkItem::Kind::Real;
                work.traceIndex = item.position;
                work.config = api.platform().configAt(item.configIndex);
                // Dispatch-time repair: if earlier events overran their
                // estimates, the planned configuration may no longer
                // meet this event's deadline — rechoose reactively.
                const TraceEvent &ev = api.arrivedEvent(item.position);
                const TimeMs budget =
                    EbsScheduler::displayDeadline(api, ev) - api.now() -
                    api.platform().switchCost(api.currentConfig(),
                                              work.config);
                const Workload est =
                    ebs_->estimateWorkload(ev.classKey, ev.type);
                if (api.latencyModel().latency(est, work.config) *
                        ebs_->feasibilityMargin() > budget) {
                    work.config = ebs_->chooseConfig(
                        ev.classKey, ev.type, std::max(0.0, budget));
                }
                return work;
            }
            ++planNext_;
            item.dispatched = true;
            inflight_ = InFlight{item.position, item.predicted, false,
                                 -1, false};
            WorkItem work;
            work.kind = WorkItem::Kind::Speculative;
            work.targetPosition = item.position;
            work.predicted = item.predicted;
            work.config = api.platform().configAt(item.configIndex);
            return work;
        }

        if (!pfb_.empty()) {
            // All speculative frames generated; wait for user events to
            // commit them before predicting a new round (Sec. 5.4).
            panic_if(!api.pendingQueue().empty(),
                     "pending events while the PFB holds frames");
            return std::nullopt;
        }

        if (!buildPlan(api))
            return std::nullopt;
    }
}

void
PesScheduler::onWorkFinished(SimulatorApi &api, const CompletedWork &work)
{
    if (work.item.kind == WorkItem::Kind::Real) {
        const TraceEvent &ev = api.arrivedEvent(work.item.traceIndex);
        recordMeasurement(api, ev.classKey, ev.type, work);
        return;
    }

    panic_if(!inflight_ ||
             inflight_->position != work.item.targetPosition,
             "completed speculative work does not match in-flight state");
    const InFlight state = *inflight_;
    inflight_.reset();

    if (state.adopted) {
        // Already served by the simulator at completion time. A boosted
        // execution spans two configurations and would corrupt the
        // Eqn.-1 fit, so it is not recorded.
        if (state.nodeExact && !state.boosted) {
            const TraceEvent &ev = api.arrivedEvent(state.adoptedIndex);
            recordMeasurement(api, ev.classKey, ev.type, work);
        }
        return;
    }

    PendingFrame frame;
    frame.workId = work.workId;
    frame.position = work.item.targetPosition;
    frame.predicted = work.item.predicted;
    frame.ready = work.finishTime;
    frame.execMs = work.execMs;
    frame.configIndex = api.platform().configIndex(work.finalConfig);
    pfb_.push(frame);
    api.recordPfbSample(pfb_.size(), false);
}

} // namespace pes
