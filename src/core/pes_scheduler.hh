/**
 * @file
 * PES: the proactive event scheduler (paper Sec. 5).
 *
 * Glues the three modules of Fig. 6 behind the SchedulerDriver protocol:
 *
 *   Predictor    - recurrent logistic learner + DOM analysis (predictor.hh)
 *   Optimizer    - Eqn. 2-5 global schedule over outstanding + predicted
 *                  events (optimizer.hh)
 *   Control unit - event monitor + Pending Frame Buffer: commits matching
 *                  speculative frames, squashes on mismatch, reboots the
 *                  predictor, and falls back to the best reactive
 *                  scheduler (EBS) after >3 consecutive mispredictions.
 *
 * The driver additionally implements the event dispatcher's practical
 * rules: speculative network requests are suppressed until commit (the
 * simulator counts them), and dispatching stops on a squash.
 */

#ifndef PES_CORE_PES_SCHEDULER_HH
#define PES_CORE_PES_SCHEDULER_HH

#include <optional>
#include <vector>

#include "core/ebs_policy.hh"
#include "core/optimizer.hh"
#include "core/pfb.hh"
#include "core/predictor.hh"
#include "sim/scheduler_driver.hh"
#include "sim/simulator_api.hh"

namespace pes {

/**
 * The PES scheduler driver.
 */
class PesScheduler : public SchedulerDriver
{
  public:
    /**
     * Deadline model for predicted (not yet triggered) events. The paper
     * leaves the deadline of a predicted event implicit; we provide both
     * readings and ablate them (see DESIGN.md).
     */
    enum class DeadlineModel
    {
        /** Assume the event may trigger immediately (QoS chaining). */
        Conservative = 0,
        /**
         * Relax only predicted *navigations* with the online
         * inter-arrival estimate (scaled by arrivalSafetyFactor):
         * loads carry most of the energy, and navigation gaps are long
         * and reliable, while tap/move gaps are bursty — relaxing those
         * trades QoS for little energy (see the sec65 ablation bench).
         */
        ExpectedGapLoads,
        /** Relax every predicted event (ablation: QoS degrades). */
        ExpectedGapAll,
    };

    /** Knobs (paper defaults). */
    struct Config
    {
        /** Predictor settings (70% confidence threshold etc.). */
        EventPredictor::Config predictor;
        /** Commit-match granularity (see MatchPolicy). */
        MatchPolicy matchPolicy = MatchPolicy::TypeLevel;
        /** Consecutive mispredictions before disabling prediction. */
        int maxConsecutiveMispredicts = 3;
        /** Scheduler compute charged per planning round (Sec. 6.3). */
        TimeMs planOverheadMs = 2.0;
        /** Master switch: off = reactive only (for ablations). */
        bool enablePrediction = true;
        /** Deadline model for predicted events. */
        DeadlineModel deadlineModel = DeadlineModel::ExpectedGapLoads;
        /** Fraction of the estimated inter-arrival gap to rely on. */
        double arrivalSafetyFactor = 0.35;
        /** Latency headroom in feasibility checks (1.0 = trust estimates) */
        double latencyMargin = 1.0;
        /** Report name override (for sweeps). */
        std::string nameOverride;
    };

    /** @param model Trained event-sequence model (predictor_training). */
    explicit PesScheduler(const LogisticModel &model);
    PesScheduler(const LogisticModel &model, Config config);

    std::string name() const override;

    bool resetFresh() override
    {
        // begin() re-creates everything except the warm state: the EBS
        // policy (Eqn.-1 measurements) and the inter-arrival EWMA model.
        ebs_.reset();
        ewmaGap_.fill(0.0);
        return true;
    }

    void begin(SimulatorApi &api) override;
    void onArrival(SimulatorApi &api, int trace_index) override;
    std::optional<WorkItem> nextWork(SimulatorApi &api) override;
    void onWorkFinished(SimulatorApi &api,
                        const CompletedWork &work) override;

    /** Diagnostics. */
    const EbsPolicy *policy() const { return ebs_ ? &*ebs_ : nullptr; }
    int consecutiveMispredicts() const { return consecutiveMispredicts_; }
    bool inReactiveFallback() const { return fallback_; }

  private:
    struct PlanItem
    {
        int position = -1;
        /** True when the event had already arrived at plan time. */
        bool real = false;
        PredictedEvent predicted;
        int configIndex = 0;
        bool dispatched = false;
    };

    struct InFlight
    {
        int position = -1;
        PredictedEvent predicted;
        bool adopted = false;
        int adoptedIndex = -1;
        bool nodeExact = false;
        /** DVFS was raised mid-flight (taints the Eqn.-1 measurement). */
        bool boosted = false;
    };

    /** Does the predicted event match the actual one? */
    bool matches(const PredictedEvent &predicted,
                 const TraceEvent &actual) const;

    /** Estimator class key of a predicted event (loads key by
     *  destination page, mirroring the trace's per-URL classes). */
    uint64_t classKeyFor(SimulatorApi &api,
                         const PredictedEvent &predicted) const;

    /** Squash everything speculative and reboot prediction. */
    void squash(SimulatorApi &api);

    /** Build a fresh plan (outstanding + predicted). Returns false when
     *  there is nothing to schedule. */
    bool buildPlan(SimulatorApi &api);

    /** Record an estimator measurement for a completed execution. */
    void recordMeasurement(SimulatorApi &api, uint64_t class_key,
                           DomEventType type, const CompletedWork &work);

    LogisticModel model_;
    Config config_;

    std::optional<EventPredictor> predictor_;
    std::optional<GlobalOptimizer> optimizer_;
    std::optional<EbsPolicy> ebs_;

    std::vector<PlanItem> plan_;
    size_t planNext_ = 0;
    PendingFrameBuffer pfb_;
    std::optional<InFlight> inflight_;
    FeatureWindow window_;

    int consecutiveMispredicts_ = 0;
    bool fallback_ = false;

    /** Online inter-arrival model: EWMA gap after each interaction. */
    std::array<TimeMs, kNumInteractions> ewmaGap_{};
    TimeMs lastArrivalTime_ = 0.0;
    std::optional<DomEventType> lastArrivalType_;
};

} // namespace pes

#endif // PES_CORE_PES_SCHEDULER_HH
