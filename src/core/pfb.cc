#include "core/pfb.hh"

#include "util/logging.hh"

namespace pes {

void
PendingFrameBuffer::push(const PendingFrame &frame)
{
    panic_if(!frames_.empty() &&
             frame.position <= frames_.back().position,
             "PFB: frames must arrive in increasing position order "
             "(%d after %d)", frame.position, frames_.back().position);
    frames_.push_back(frame);
}

std::optional<PendingFrame>
PendingFrameBuffer::head() const
{
    if (frames_.empty())
        return std::nullopt;
    return frames_.front();
}

std::optional<PendingFrame>
PendingFrameBuffer::pop()
{
    if (frames_.empty())
        return std::nullopt;
    PendingFrame frame = frames_.front();
    frames_.pop_front();
    return frame;
}

std::deque<PendingFrame>
PendingFrameBuffer::drain()
{
    std::deque<PendingFrame> out;
    out.swap(frames_);
    return out;
}

} // namespace pes
