/**
 * @file
 * Pending Frame Buffer (paper Sec. 5.4).
 *
 * Holds speculative frames, in arrival-position order, until the control
 * unit commits them against actual user events or squashes them on a
 * misprediction. The buffer only stores bookkeeping — the frames' energy
 * and timing live in the simulator; commit/squash is signalled through
 * SimulatorApi verbs by the owner (PesScheduler's control unit).
 */

#ifndef PES_CORE_PFB_HH
#define PES_CORE_PFB_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "sim/sim_types.hh"

namespace pes {

/** One completed speculative frame awaiting validation. */
struct PendingFrame
{
    /** Simulator work id (for serve/discard verbs). */
    uint64_t workId = 0;
    /** Arrival position this frame anticipates. */
    int position = -1;
    /** The prediction that produced it. */
    PredictedEvent predicted;
    /** Frame-ready time. */
    TimeMs ready = 0.0;
    /** Execution time spent generating it. */
    TimeMs execMs = 0.0;
    /** Configuration it was generated on (dense index). */
    int configIndex = -1;
};

/**
 * FIFO buffer of speculative frames.
 */
class PendingFrameBuffer
{
  public:
    /** Append a frame (positions must be strictly increasing). */
    void push(const PendingFrame &frame);

    /** The oldest (next-to-commit) frame; nullopt when empty. */
    std::optional<PendingFrame> head() const;

    /** Remove and return the oldest frame. */
    std::optional<PendingFrame> pop();

    /** Remove all frames (squash); returns them for discarding. */
    std::deque<PendingFrame> drain();

    /** Number of buffered frames. */
    int size() const { return static_cast<int>(frames_.size()); }

    /** True when no frames are buffered. */
    bool empty() const { return frames_.empty(); }

  private:
    std::deque<PendingFrame> frames_;
};

} // namespace pes

#endif // PES_CORE_PFB_HH
