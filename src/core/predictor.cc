#include "core/predictor.hh"

#include <algorithm>
#include <cmath>

namespace pes {

EventPredictor::EventPredictor(const LogisticModel &model)
    : EventPredictor(model, Config{})
{
}

EventPredictor::EventPredictor(const LogisticModel &model, Config config)
    : model_(&model), config_(config)
{
}

std::optional<CandidateEvent>
EventPredictor::pickTarget(const DomAnalyzer &analyzer,
                           const DomOverlay &state,
                           const FeatureWindow &window,
                           const std::vector<CandidateEvent> &candidates,
                           DomEventType type) const
{
    const Viewport viewport = analyzer.viewportFor(state);
    const Rect view = viewport.rect();

    double last_x = view.cx();
    double last_y = view.cy();
    window.lastTapPosition(last_x, last_y);

    // Deterministic mirror of the user model's attention heuristic:
    // visible area, proximity to the previous tap, open menus first.
    std::optional<CandidateEvent> best;
    double best_score = -1.0;
    for (const CandidateEvent &cand : candidates) {
        if (cand.type != type)
            continue;
        const Rect rect = analyzer.nodeRect(state, cand.node);
        double score = std::sqrt(
            std::max(1.0, rect.intersectionArea(view)));
        const double dx = rect.cx() - last_x;
        const double dy = rect.cy() - last_y;
        const double dist = std::sqrt(dx * dx + dy * dy);
        score *= 1.0 + 2.0 / (1.0 + dist / 200.0);
        if (analyzer.nodeRole(state, cand.node) == NodeRole::MenuItem)
            score *= 6.0;
        if (cand.node == 0 && interactionOf(type) == Interaction::Load)
            score *= 0.08;  // direct reloads are rare
        if (best_score < score) {
            best_score = score;
            best = cand;
        }
    }
    return best;
}

std::optional<CandidateEvent>
EventPredictor::pickTarget(const DomAnalysis &analysis,
                           const FeatureWindow &window,
                           DomEventType type) const
{
    const Rect view = analysis.viewport.rect();

    double last_x = view.cx();
    double last_y = view.cy();
    window.lastTapPosition(last_x, last_y);

    std::optional<CandidateEvent> best;
    double best_score = -1.0;
    for (const AnalyzedCandidate &cand : analysis.candidates) {
        if (cand.event.type != type)
            continue;
        const Rect &rect = cand.rect;
        double score = std::sqrt(
            std::max(1.0, rect.intersectionArea(view)));
        const double dx = rect.cx() - last_x;
        const double dy = rect.cy() - last_y;
        const double dist = std::sqrt(dx * dx + dy * dy);
        score *= 1.0 + 2.0 / (1.0 + dist / 200.0);
        if (cand.role == NodeRole::MenuItem)
            score *= 6.0;
        if (cand.event.node == 0 &&
            interactionOf(type) == Interaction::Load)
            score *= 0.08;  // direct reloads are rare
        if (best_score < score) {
            best_score = score;
            best = cand.event;
        }
    }
    return best;
}

std::optional<PredictedEvent>
EventPredictor::predictFromAnalysis(const DomAnalysis &analysis,
                                    const DomOverlay &state,
                                    const FeatureWindow &window) const
{
    if (analysis.candidates.empty())
        return std::nullopt;

    const FeatureVector f = window.extract(analysis.stats);
    const auto probs = model_->probabilities(f);

    std::array<bool, kNumDomEventTypes> possible{};
    for (const AnalyzedCandidate &cand : analysis.candidates)
        possible[static_cast<size_t>(cand.event.type)] = true;

    int best_cls = -1;
    double mass = 0.0;
    for (int c = 0; c < kNumDomEventTypes; ++c) {
        if (!possible[static_cast<size_t>(c)])
            continue;
        mass += probs[static_cast<size_t>(c)];
        if (best_cls == -1 ||
            probs[static_cast<size_t>(c)] >
                probs[static_cast<size_t>(best_cls)]) {
            best_cls = c;
        }
    }
    if (best_cls == -1)
        return std::nullopt;
    const auto type = static_cast<DomEventType>(best_cls);

    const auto target = pickTarget(analysis, window, type);
    if (!target)
        return std::nullopt;

    PredictedEvent prediction;
    prediction.type = type;
    prediction.node = target->node;
    prediction.pageId = state.pageId;
    prediction.confidence = mass > 0.0
        ? probs[static_cast<size_t>(best_cls)] / mass
        : probs[static_cast<size_t>(best_cls)];
    return prediction;
}

std::optional<PredictedEvent>
EventPredictor::predictNext(const DomAnalyzer &analyzer,
                            const DomOverlay &state,
                            const FeatureWindow &window) const
{
    // Batched hot path: DOM analysis on and no hint table means one
    // analyze() traversal supplies the LNES, the viewport features and
    // every candidate's geometry. The hint path below keeps the lazy
    // per-method calls — a hint hit returns before features are needed.
    if (config_.useDomAnalysis && !config_.hints)
        return predictFromAnalysis(analyzer.analyze(state), state,
                                   window);

    // Without DOM analysis (Sec. 6.5 ablation) the learner predicts over
    // the full class space: nothing narrows the prediction to the events
    // the application logic can actually trigger.
    const auto candidates = config_.useDomAnalysis
        ? analyzer.likelyNextEvents(state)
        : analyzer.allPageEvents(state);
    if (config_.useDomAnalysis && candidates.empty())
        return std::nullopt;

    // Developer hints take precedence over the statistical learner
    // (Sec. 7 future work: language extensions guiding PES).
    if (config_.hints) {
        DomEventType last_type;
        NodeId last_node;
        if (window.lastEvent(last_type, last_node)) {
            const auto hint = config_.hints->lookup(state.pageId,
                                                    last_type, last_node);
            if (hint) {
                PredictedEvent prediction;
                prediction.type = hint->next;
                prediction.pageId = state.pageId;
                prediction.confidence = hint->confidence;
                if (hint->nextNode != kInvalidNode) {
                    prediction.node = hint->nextNode;
                    return prediction;
                }
                const auto target = pickTarget(analyzer, state, window,
                                               candidates, hint->next);
                if (target) {
                    prediction.node = target->node;
                    return prediction;
                }
                // No visible target for the hinted type: fall through to
                // the learner.
            }
        }
    }

    const ViewportStats stats = analyzer.viewportStats(state);
    const FeatureVector f = window.extract(stats);
    const auto probs = model_->probabilities(f);

    // Mask the learner's classes with the candidate set (DOM analysis
    // narrows the prediction space, Sec. 5.2).
    std::array<bool, kNumDomEventTypes> possible{};
    if (config_.useDomAnalysis) {
        for (const CandidateEvent &cand : candidates)
            possible[static_cast<size_t>(cand.type)] = true;
    } else {
        possible.fill(true);
    }

    int best_cls = -1;
    double mass = 0.0;
    for (int c = 0; c < kNumDomEventTypes; ++c) {
        if (!possible[static_cast<size_t>(c)])
            continue;
        mass += probs[static_cast<size_t>(c)];
        if (best_cls == -1 ||
            probs[static_cast<size_t>(c)] >
                probs[static_cast<size_t>(best_cls)]) {
            best_cls = c;
        }
    }
    if (best_cls == -1)
        return std::nullopt;
    const auto type = static_cast<DomEventType>(best_cls);

    const auto target = pickTarget(analyzer, state, window, candidates,
                                   type);
    if (config_.useDomAnalysis && !target)
        return std::nullopt;

    PredictedEvent prediction;
    prediction.type = type;
    // Learner-only mode may predict a type the page does not even
    // register; fall back to the document root as the nominal target.
    prediction.node = target ? target->node : 0;
    prediction.pageId = state.pageId;
    // Confidence: the chosen logistic model's probability, renormalized
    // over the possible (masked) classes — the probability that the next
    // event is of this type given that it is one the application logic
    // allows. Sec. 5.2's p with the LNES conditioning made explicit.
    prediction.confidence = mass > 0.0
        ? probs[static_cast<size_t>(best_cls)] / mass
        : probs[static_cast<size_t>(best_cls)];
    return prediction;
}

std::vector<PredictedEvent>
EventPredictor::predictSequence(const DomAnalyzer &analyzer,
                                DomOverlay state,
                                FeatureWindow window) const
{
    std::vector<PredictedEvent> out;
    double cumulative = 1.0;
    while (static_cast<int>(out.size()) < config_.maxDegree) {
        const auto next = predictNext(analyzer, state, window);
        if (!next)
            break;
        const double tentative = cumulative * next->confidence;
        if (tentative < config_.confidenceThreshold)
            break;
        cumulative = tentative;
        out.push_back(*next);

        // Feed the prediction back: window update + static state rollout.
        // Without DOM analysis there is no SemanticTree to roll the
        // hypothetical state forward (Sec. 6.5 ablation): the learner
        // keeps predicting against the stale state, which is what costs
        // it accuracy at higher prediction degrees.
        const Rect rect = analyzer.nodeRect(state, next->node);
        window.observe(next->type, rect.cx(), rect.cy(), next->node);
        if (config_.useDomAnalysis)
            analyzer.applyHypothetical({next->type, next->node}, state);
    }
    return out;
}

} // namespace pes
