/**
 * @file
 * The PES event predictor (paper Sec. 5.2).
 *
 * Combines statistical inference with program analysis: a set of logistic
 * models scores each possible next DOM event type from the Table-1
 * features; the DOM analyzer's Likely-Next-Event-Set masks away types the
 * application logic cannot trigger in the current (hypothetical) state,
 * and supplies the concrete target node. The predictor runs recurrently —
 * each predicted event is fed back (window update + SemanticTree rollout
 * of its effect) to predict the subsequent one — until the cumulative
 * confidence (product of per-step confidences) would fall below the
 * confidence threshold. The number of events predicted per round is the
 * prediction degree (~5 at the paper's 70% threshold).
 */

#ifndef PES_CORE_PREDICTOR_HH
#define PES_CORE_PREDICTOR_HH

#include <vector>

#include "core/hints.hh"
#include "ml/logistic.hh"
#include "sim/sim_types.hh"
#include "web/dom_analyzer.hh"

namespace pes {

/**
 * Recurrent event-sequence predictor.
 */
class EventPredictor
{
  public:
    /** Predictor knobs. */
    struct Config
    {
        /** Cumulative-confidence stopping threshold (paper: 70%). */
        double confidenceThreshold = 0.70;
        /** Hard cap on the prediction degree. */
        int maxDegree = 10;
        /**
         * Use DOM analysis (LNES masking + target selection). Disabling
         * reproduces the Sec. 6.5 "predictor design" ablation: the
         * learner alone, masked only by the handlers that exist anywhere
         * on the current page.
         */
        bool useDomAnalysis = true;
        /**
         * Optional developer hint table (paper Sec. 7 future work).
         * Consulted before the statistical learner; not owned — must
         * outlive the predictor.
         */
        const PredictionHintTable *hints = nullptr;
    };

    explicit EventPredictor(const LogisticModel &model);
    EventPredictor(const LogisticModel &model, Config config);

    /**
     * Predict the next event sequence.
     *
     * @param analyzer Analyzer over the live session.
     * @param state Hypothetical DOM state to start from (committed state
     *        rolled through any outstanding events).
     * @param window Event history window matching @p state.
     * @return Predicted events, most imminent first; empty when the first
     *         step's confidence is already below the threshold or no
     *         events are possible.
     */
    std::vector<PredictedEvent>
    predictSequence(const DomAnalyzer &analyzer, DomOverlay state,
                    FeatureWindow window) const;

    /**
     * Single-step prediction (no rollout): the most probable next event
     * in @p state, or nullopt when nothing can trigger.
     */
    std::optional<PredictedEvent>
    predictNext(const DomAnalyzer &analyzer, const DomOverlay &state,
                const FeatureWindow &window) const;

    /** The active configuration. */
    const Config &config() const { return config_; }

  private:
    /**
     * Choose the concrete target node for @p type among the candidates:
     * largest visible area with a proximity boost toward the previous
     * tap, menu items preferred (deterministic mirror of the user
     * model's attention heuristic).
     */
    std::optional<CandidateEvent>
    pickTarget(const DomAnalyzer &analyzer, const DomOverlay &state,
               const FeatureWindow &window,
               const std::vector<CandidateEvent> &candidates,
               DomEventType type) const;

    /**
     * pickTarget over an analyze() result: identical scoring, but the
     * per-candidate rect and role come precomputed from the single
     * batched DOM pass instead of one analyzer call each.
     */
    std::optional<CandidateEvent>
    pickTarget(const DomAnalysis &analysis, const FeatureWindow &window,
               DomEventType type) const;

    /** predictNext body over a batched analyze() result. */
    std::optional<PredictedEvent>
    predictFromAnalysis(const DomAnalysis &analysis,
                        const DomOverlay &state,
                        const FeatureWindow &window) const;

    const LogisticModel *model_;
    Config config_;
};

} // namespace pes

#endif // PES_CORE_PREDICTOR_HH
