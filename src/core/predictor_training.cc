#include "core/predictor_training.hh"

#include "web/dom_analyzer.hh"

namespace pes {

std::vector<TrainSample>
buildDataset(const WebApp &app, const InteractionTrace &trace)
{
    std::vector<TrainSample> samples;
    samples.reserve(trace.events.size());

    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    FeatureWindow window;

    for (const TraceEvent &ev : trace.events) {
        const DomOverlay state = session.snapshotState();
        const ViewportStats stats = analyzer.viewportStats(state);
        TrainSample sample;
        sample.x = window.extract(stats);
        sample.label = ev.type;
        samples.push_back(sample);

        window.observe(ev.type, ev.x, ev.y, ev.node);
        session.commitEvent(ev.node, ev.type);
    }
    return samples;
}

LogisticModel
trainEventModel(TraceGenerator &generator,
                const std::vector<AppProfile> &profiles,
                int traces_per_app, const TrainConfig &config)
{
    std::vector<TrainSample> dataset;
    for (const AppProfile &profile : profiles) {
        const WebApp &app = generator.appFor(profile);
        for (const InteractionTrace &trace :
             generator.trainingSet(profile, traces_per_app)) {
            const auto samples = buildDataset(app, trace);
            dataset.insert(dataset.end(), samples.begin(), samples.end());
        }
    }
    SgdTrainer trainer(config);
    return trainer.train(dataset);
}

PredictorEval
evaluatePredictor(const LogisticModel &model, const WebApp &app,
                  const InteractionTrace &trace,
                  EventPredictor::Config config)
{
    PredictorEval eval;
    EventPredictor predictor(model, config);

    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    FeatureWindow window;

    for (const TraceEvent &ev : trace.events) {
        const DomOverlay state = session.snapshotState();
        // Prediction starts once there is history to predict from; the
        // session-opening load is not a prediction target.
        const auto prediction = window.eventsInWindow() == 0
            ? std::nullopt
            : predictor.predictNext(analyzer, state, window);
        if (prediction) {
            eval.confusion.add(ev.type, prediction->type);
            eval.calibration.add(prediction->confidence,
                                 prediction->type == ev.type);
        }
        window.observe(ev.type, ev.x, ev.y, ev.node);
        session.commitEvent(ev.node, ev.type);
    }
    return eval;
}

} // namespace pes
