/**
 * @file
 * Training and offline evaluation of the event-sequence model (Sec. 5.5).
 *
 * The paper records over 100 interaction traces across the 12 seen
 * applications and trains one global logistic model (the DOM analysis
 * specializes it per application at runtime). Datasets are built by
 * replaying traces through a session: at each step the Table-1 features
 * of the current state are paired with the type of the *next* event.
 */

#ifndef PES_CORE_PREDICTOR_TRAINING_HH
#define PES_CORE_PREDICTOR_TRAINING_HH

#include <vector>

#include "core/predictor.hh"
#include "ml/metrics.hh"
#include "ml/trainer.hh"
#include "trace/generator.hh"

namespace pes {

/** Supervised samples from one trace (replayed against @p app). */
std::vector<TrainSample> buildDataset(const WebApp &app,
                                      const InteractionTrace &trace);

/**
 * Train the global event-sequence model on training traces from
 * @p profiles (@p traces_per_app sessions each; the paper uses >100
 * traces across the 12 seen applications).
 */
LogisticModel trainEventModel(TraceGenerator &generator,
                              const std::vector<AppProfile> &profiles,
                              int traces_per_app,
                              const TrainConfig &config = TrainConfig{});

/** Offline predictor-quality report for one trace. */
struct PredictorEval
{
    ConfusionMatrix confusion;
    CalibrationBins calibration{10};

    /** Single-step type-prediction accuracy. */
    double accuracy() const { return confusion.accuracy(); }
};

/**
 * Evaluate single-step predictions along @p trace: at every event the
 * predictor sees the true history and committed DOM state and predicts
 * the next event type (the Fig. 8 metric).
 */
PredictorEval evaluatePredictor(const LogisticModel &model,
                                const WebApp &app,
                                const InteractionTrace &trace,
                                EventPredictor::Config config =
                                    EventPredictor::Config{});

} // namespace pes

#endif // PES_CORE_PREDICTOR_TRAINING_HH
