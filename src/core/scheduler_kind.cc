#include "core/scheduler_kind.hh"

#include "util/logging.hh"
#include "util/strings.hh"

namespace pes {

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Interactive:
        return "Interactive";
      case SchedulerKind::Ondemand:
        return "Ondemand";
      case SchedulerKind::Ebs:
        return "EBS";
      case SchedulerKind::Pes:
        return "PES";
      case SchedulerKind::Oracle:
        return "Oracle";
    }
    panic("schedulerKindName: invalid kind");
}

std::optional<SchedulerKind>
schedulerKindFromName(const std::string &name)
{
    const std::string low = toLower(name);
    if (low == "interactive")
        return SchedulerKind::Interactive;
    if (low == "ondemand")
        return SchedulerKind::Ondemand;
    if (low == "ebs")
        return SchedulerKind::Ebs;
    if (low == "pes")
        return SchedulerKind::Pes;
    if (low == "oracle")
        return SchedulerKind::Oracle;
    return std::nullopt;
}

} // namespace pes
