/**
 * @file
 * The scheduler taxonomy of the evaluation.
 *
 * Split out of experiment.hh so lower-coupling layers (the fleet runner's
 * job enumeration) can name schedulers without pulling in the whole
 * experiment harness.
 */

#ifndef PES_CORE_SCHEDULER_KIND_HH
#define PES_CORE_SCHEDULER_KIND_HH

#include <optional>
#include <string>

namespace pes {

/** The schedulers of the evaluation (Sec. 6.1 plus Ondemand, Fig. 13). */
enum class SchedulerKind
{
    Interactive = 0,
    Ondemand,
    Ebs,
    Pes,
    Oracle,
};

/** Scheduler display name. */
const char *schedulerKindName(SchedulerKind kind);

/**
 * Parse a scheduler name (case-insensitive display name, e.g. "pes",
 * "EBS", "interactive"); nullopt when unknown.
 */
std::optional<SchedulerKind> schedulerKindFromName(const std::string &name);

} // namespace pes

#endif // PES_CORE_SCHEDULER_KIND_HH
