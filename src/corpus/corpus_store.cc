#include "corpus/corpus_store.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/json.hh"

namespace fs = std::filesystem;

namespace pes {

namespace {

void
setError(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
}

/** File-name-safe slug: lowercase alnum, everything else '-'. */
std::string
slugOf(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        out += std::isalnum(u) ? static_cast<char>(std::tolower(u)) : '-';
    }
    return out;
}

std::string
manifestText(const std::vector<CorpusEntry> &entries)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"version\": " << CorpusStore::kManifestVersion << ",\n";
    os << "  \"traces\": [";
    for (size_t i = 0; i < entries.size(); ++i) {
        const CorpusEntry &e = entries[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"file\": \"" << jsonEscape(e.file) << "\", \"app\": \""
           << jsonEscape(e.app) << "\", \"device\": \""
           << jsonEscape(e.device) << "\", \"user_seed\": " << e.userSeed
           << ", \"events\": " << e.eventCount
           << ", \"checksum\": " << e.checksum << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

bool
entryLess(const CorpusEntry &a, const CorpusEntry &b)
{
    return std::tie(a.app, a.device, a.userSeed) <
        std::tie(b.app, b.device, b.userSeed);
}

} // namespace

std::optional<CorpusStore>
CorpusStore::open(const std::string &dir, std::string *error)
{
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        setError(error, "'" + dir + "' is not a directory");
        return std::nullopt;
    }
    CorpusStore store;
    store.dir_ = dir;
    if (!store.loadManifest(error))
        return std::nullopt;
    return store;
}

std::optional<CorpusStore>
CorpusStore::create(const std::string &dir, std::string *error)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        setError(error,
                 "cannot create '" + dir + "': " + ec.message());
        return std::nullopt;
    }
    if (fs::exists(fs::path(dir) / kManifestName, ec))
        return open(dir, error);
    CorpusStore store;
    store.dir_ = dir;
    if (!store.save(error))
        return std::nullopt;
    return store;
}

bool
CorpusStore::loadManifest(std::string *error)
{
    const std::string path = (fs::path(dir_) / kManifestName).string();
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        setError(error, "no manifest: cannot open '" + path + "'");
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    const auto root = parseJson(buf.str());
    if (!root || root->kind != JsonValue::Kind::Object) {
        setError(error, "malformed manifest '" + path + "'");
        return false;
    }
    const JsonValue *version = root->find("version");
    if (!version ||
        static_cast<int>(version->number()) != kManifestVersion) {
        setError(error, "manifest '" + path + "': unsupported version " +
                 (version ? version->str : std::string("<missing>")) +
                 " (this build reads " + std::to_string(kManifestVersion) +
                 ")");
        return false;
    }
    const JsonValue *traces = root->find("traces");
    if (!traces || traces->kind != JsonValue::Kind::Array) {
        setError(error, "manifest '" + path + "': no traces array");
        return false;
    }

    entries_.clear();
    for (const JsonValue &tv : traces->arr) {
        if (tv.kind != JsonValue::Kind::Object) {
            setError(error, "manifest '" + path + "': bad trace row");
            return false;
        }
        CorpusEntry e;
        const JsonValue *file = tv.find("file");
        const JsonValue *app = tv.find("app");
        const JsonValue *device = tv.find("device");
        const JsonValue *seed = tv.find("user_seed");
        if (!file || !app || !device || !seed || file->str.empty()) {
            setError(error, "manifest '" + path +
                     "': trace row missing file/app/device/user_seed");
            return false;
        }
        e.file = file->str;
        e.app = app->str;
        e.device = device->str;
        e.userSeed = seed->number64();
        if (const JsonValue *v = tv.find("events"))
            e.eventCount = v->number64();
        if (const JsonValue *v = tv.find("checksum"))
            e.checksum = v->number64();
        entries_.push_back(std::move(e));
    }
    std::sort(entries_.begin(), entries_.end(), entryLess);
    reindex();
    return true;
}

void
CorpusStore::reindex()
{
    index_.clear();
    for (size_t i = 0; i < entries_.size(); ++i) {
        const CorpusEntry &e = entries_[i];
        index_[Key{e.app, e.device, e.userSeed}] = i;
    }
}

std::string
CorpusStore::pathOf(const CorpusEntry &entry) const
{
    return (fs::path(dir_) / entry.file).string();
}

const CorpusEntry *
CorpusStore::find(const std::string &app, const std::string &device,
                  uint64_t user_seed) const
{
    const auto it = index_.find(Key{app, device, user_seed});
    return it == index_.end() ? nullptr : &entries_[it->second];
}

bool
CorpusStore::add(const InteractionTrace &trace,
                 const TraceProvenance &provenance, std::string *error)
{
    CorpusEntry entry;
    entry.app = trace.appName;
    entry.device = provenance.device;
    entry.userSeed = trace.userSeed;
    entry.eventCount = trace.events.size();
    entry.checksum = traceChecksum(trace);
    entry.file = slugOf(trace.appName) + "-" + slugOf(provenance.device) +
        "-u" + std::to_string(trace.userSeed) + ".ptrc";

    if (!TraceWriter::writeFile(trace, provenance, pathOf(entry), error))
        return false;

    const Key key{entry.app, entry.device, entry.userSeed};
    const auto it = index_.find(key);
    if (it != index_.end()) {
        entries_[it->second] = std::move(entry);
    } else {
        entries_.push_back(std::move(entry));
        std::sort(entries_.begin(), entries_.end(), entryLess);
        reindex();
    }
    return true;
}

bool
CorpusStore::save(std::string *error) const
{
    const fs::path final_path = fs::path(dir_) / kManifestName;
    const fs::path tmp_path = fs::path(dir_) / (std::string(kManifestName) +
                                                ".tmp");
    {
        std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
        if (!os) {
            setError(error,
                     "cannot write '" + tmp_path.string() + "'");
            return false;
        }
        os << manifestText(entries_);
        os.flush();
        if (!os) {
            setError(error, "short write to '" + tmp_path.string() + "'");
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        setError(error, "cannot replace manifest: " + ec.message());
        return false;
    }
    return true;
}

std::optional<InteractionTrace>
CorpusStore::load(const CorpusEntry &entry, std::string *error) const
{
    TraceReader reader;
    if (!reader.open(pathOf(entry))) {
        setError(error, entry.file + ": " + reader.error());
        return std::nullopt;
    }
    const PtrcHeader &h = reader.header();
    if (h.app != entry.app || h.userSeed != entry.userSeed ||
        h.provenance.device != entry.device) {
        setError(error, entry.file +
                 ": header does not match the manifest row (app/device/"
                 "seed)");
        return std::nullopt;
    }
    if (h.eventsChecksum != entry.checksum) {
        setError(error, entry.file +
                 ": checksum differs from the manifest (stale or "
                 "swapped file)");
        return std::nullopt;
    }
    auto trace = reader.readTrace();
    if (!trace) {
        setError(error, entry.file + ": " + reader.error());
        return std::nullopt;
    }
    return trace;
}

bool
CorpusStore::forEach(
    const std::function<bool(const CorpusEntry &,
                             const InteractionTrace &)> &fn,
    std::string *error) const
{
    for (const CorpusEntry &entry : entries_) {
        const auto trace = load(entry, error);
        if (!trace)
            return false;
        if (!fn(entry, *trace))
            return true;
    }
    return true;
}

bool
CorpusStore::validate(std::vector<std::string> &problems) const
{
    const size_t before = problems.size();
    for (const CorpusEntry &entry : entries_) {
        std::error_code ec;
        if (!fs::exists(pathOf(entry), ec)) {
            problems.push_back(entry.file +
                               ": referenced by the manifest but missing "
                               "on disk");
            continue;
        }
        std::string error;
        const auto trace = load(entry, &error);
        if (!trace) {
            problems.push_back(error);
            continue;
        }
        if (trace->events.size() != entry.eventCount) {
            problems.push_back(entry.file + ": manifest says " +
                               std::to_string(entry.eventCount) +
                               " events, file holds " +
                               std::to_string(trace->events.size()));
        }
    }
    return problems.size() == before;
}

} // namespace pes
