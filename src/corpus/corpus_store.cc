#include "corpus/corpus_store.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/binary_io.hh"
#include "util/json.hh"
#include "util/rng.hh"

namespace fs = std::filesystem;

namespace pes {

namespace {

/** Salt decorrelating the segment split from every other consumer of
 *  the user seed (job hashing, trait sampling, ...). */
constexpr uint64_t kSegmentSalt = 0x5e60c047'ed5eed5ull;

void
setError(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
}

/** Parse "manifest.seg-<k>-of-<n>.json"; false for any other name. */
bool
parseSegmentName(const std::string &name, int *k, int *n)
{
    int pk = -1, pn = -1;
    char tail = '\0';
    if (std::sscanf(name.c_str(), "manifest.seg-%d-of-%d.jso%c", &pk,
                    &pn, &tail) != 3 ||
        tail != 'n' || pk < 0 || pn < 1 || pk >= pn)
        return false;
    if (name != CorpusStore::segmentManifestName(pk, pn))
        return false;  // reject zero-padded / suffixed variants
    *k = pk;
    *n = pn;
    return true;
}

/** File-name-safe slug: lowercase alnum, everything else '-'. */
std::string
slugOf(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        out += std::isalnum(u) ? static_cast<char>(std::tolower(u)) : '-';
    }
    return out;
}

std::string
manifestText(const std::vector<CorpusEntry> &entries)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"version\": " << CorpusStore::kManifestVersion << ",\n";
    os << "  \"traces\": [";
    for (size_t i = 0; i < entries.size(); ++i) {
        const CorpusEntry &e = entries[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"file\": \"" << jsonEscape(e.file) << "\", \"app\": \""
           << jsonEscape(e.app) << "\", \"device\": \""
           << jsonEscape(e.device) << "\", \"user_seed\": " << e.userSeed
           << ", \"events\": " << e.eventCount
           << ", \"checksum\": " << e.checksum << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

/**
 * The single source of the header-vs-manifest-row checks (and their
 * diagnostics) shared by load(), verifyHeader() and validate(): a
 * mismatch one path detects must be the mismatch every path detects.
 */
std::optional<CorpusProblem>
headerProblem(const PtrcHeader &h, const CorpusEntry &entry)
{
    if (h.app != entry.app || h.userSeed != entry.userSeed ||
        h.provenance.device != entry.device) {
        return CorpusProblem{CorpusProblem::Kind::Mismatch,
                             entry.file +
                                 ": header does not match the manifest "
                                 "row (app/device/seed)"};
    }
    if (h.eventsChecksum != entry.checksum) {
        return CorpusProblem{CorpusProblem::Kind::Mismatch,
                             entry.file +
                                 ": checksum differs from the manifest "
                                 "(stale or swapped file)"};
    }
    return std::nullopt;
}

} // namespace

std::optional<CorpusStore>
CorpusStore::open(const std::string &dir, std::string *error)
{
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        setError(error, "'" + dir + "' is not a directory");
        return std::nullopt;
    }
    CorpusStore store;
    store.dir_ = dir;
    if (fs::exists(fs::path(dir) / kManifestName, ec)) {
        if (!store.loadManifest(error))
            return std::nullopt;
        return store;
    }

    // No whole manifest: discover a segment set. All segment files must
    // agree on one n and cover 0..n-1 — a partial copy must fail here,
    // not silently replay a fraction of the corpus.
    std::vector<bool> seen;
    int seg_count = 0;
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        int k = 0, n = 0;
        if (!parseSegmentName(de.path().filename().string(), &k, &n))
            continue;
        if (seg_count == 0) {
            seg_count = n;
            seen.assign(static_cast<size_t>(n), false);
        } else if (n != seg_count) {
            setError(error, "'" + dir + "' mixes segment sets (" +
                     std::to_string(seg_count) + "-way and " +
                     std::to_string(n) + "-way manifests)");
            return std::nullopt;
        }
        seen[static_cast<size_t>(k)] = true;
    }
    if (seg_count == 0) {
        setError(error, "no manifest: '" + dir + "' holds neither " +
                 kManifestName + " nor a manifest segment set");
        return std::nullopt;
    }
    for (int k = 0; k < seg_count; ++k) {
        if (!seen[static_cast<size_t>(k)]) {
            setError(error, "'" + dir + "' segment set is incomplete: " +
                     segmentManifestName(k, seg_count) + " is missing");
            return std::nullopt;
        }
    }
    for (int k = 0; k < seg_count; ++k) {
        const std::string path =
            (fs::path(dir) / segmentManifestName(k, seg_count)).string();
        if (!store.loadManifestFile(path, k, seg_count, error))
            return std::nullopt;
    }
    store.segCount_ = seg_count;
    return store;
}

std::optional<CorpusStore>
CorpusStore::openSegment(const std::string &dir, int k, int n,
                         std::string *error)
{
    if (n < 1 || k < 0 || k >= n) {
        setError(error, "segment " + std::to_string(k) + "/" +
                 std::to_string(n) + " is out of range");
        return std::nullopt;
    }
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        setError(error, "'" + dir + "' is not a directory");
        return std::nullopt;
    }
    CorpusStore store;
    store.dir_ = dir;
    const std::string path =
        (fs::path(dir) / segmentManifestName(k, n)).string();
    if (!store.loadManifestFile(path, -1, 0, error))
        return std::nullopt;
    store.segIndex_ = k;
    store.segCount_ = n;
    return store;
}

std::string
CorpusStore::segmentManifestName(int k, int n)
{
    return "manifest.seg-" + std::to_string(k) + "-of-" +
        std::to_string(n) + ".json";
}

int
CorpusStore::segmentOf(uint64_t user_seed, int segments)
{
    return static_cast<int>(hashCombine(user_seed, kSegmentSalt) %
                            static_cast<uint64_t>(segments));
}

bool
CorpusStore::shard(int segments, std::string *error)
{
    if (segments < 1 || segments > 1000000) {
        setError(error, "--segments must be in [1, 1e6]");
        return false;
    }
    std::vector<std::vector<CorpusEntry>> buckets(
        static_cast<size_t>(segments));
    for (const auto &[key, entry] : entries_) {
        (void)key;
        buckets[static_cast<size_t>(segmentOf(entry.userSeed, segments))]
            .push_back(entry);
    }
    for (int k = 0; k < segments; ++k) {
        const std::string path =
            (fs::path(dir_) / segmentManifestName(k, segments)).string();
        if (!writeFileAtomic(path,
                             manifestText(buckets[static_cast<size_t>(k)]),
                             error))
            return false;
    }
    // Retire the whole manifest last: open() prefers it, so a crash
    // before this point leaves the corpus whole and consistent.
    std::error_code ec;
    fs::remove(fs::path(dir_) / kManifestName, ec);
    if (ec) {
        setError(error, "cannot remove " + std::string(kManifestName) +
                 ": " + ec.message());
        return false;
    }
    return true;
}

std::optional<CorpusStore>
CorpusStore::create(const std::string &dir, std::string *error)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        setError(error,
                 "cannot create '" + dir + "': " + ec.message());
        return std::nullopt;
    }
    if (fs::exists(fs::path(dir) / kManifestName, ec))
        return open(dir, error);
    CorpusStore store;
    store.dir_ = dir;
    if (!store.save(error))
        return std::nullopt;
    return store;
}

bool
CorpusStore::loadManifest(std::string *error)
{
    entries_.clear();
    fileToKey_.clear();
    return loadManifestFile((fs::path(dir_) / kManifestName).string(),
                            -1, 0, error);
}

/**
 * Parse one manifest file and append its rows. When @p seg_n > 0 the
 * file is segment @p seg_k of an @p seg_n-way split, and every row's
 * seed must hash into that segment — a wrong-segment entry means the
 * split and this build's hash disagree, so fail loudly instead of
 * desynchronizing shard-local validation.
 */
bool
CorpusStore::loadManifestFile(const std::string &path, int seg_k,
                              int seg_n, std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        setError(error, "no manifest: cannot open '" + path + "'");
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    const auto root = parseJson(buf.str());
    if (!root || root->kind != JsonValue::Kind::Object) {
        setError(error, "malformed manifest '" + path + "'");
        return false;
    }
    const JsonValue *version = root->find("version");
    if (!version ||
        static_cast<int>(version->number()) != kManifestVersion) {
        setError(error, "manifest '" + path + "': unsupported version " +
                 (version ? version->str : std::string("<missing>")) +
                 " (this build reads " + std::to_string(kManifestVersion) +
                 ")");
        return false;
    }
    const JsonValue *traces = root->find("traces");
    if (!traces || traces->kind != JsonValue::Kind::Array) {
        setError(error, "manifest '" + path + "': no traces array");
        return false;
    }

    for (const JsonValue &tv : traces->arr) {
        if (tv.kind != JsonValue::Kind::Object) {
            setError(error, "manifest '" + path + "': bad trace row");
            return false;
        }
        CorpusEntry e;
        const JsonValue *file = tv.find("file");
        const JsonValue *app = tv.find("app");
        const JsonValue *device = tv.find("device");
        const JsonValue *seed = tv.find("user_seed");
        if (!file || !app || !device || !seed || file->str.empty()) {
            setError(error, "manifest '" + path +
                     "': trace row missing file/app/device/user_seed");
            return false;
        }
        e.file = file->str;
        e.app = app->str;
        e.device = device->str;
        e.userSeed = seed->number64();
        if (const JsonValue *v = tv.find("events"))
            e.eventCount = v->number64();
        if (const JsonValue *v = tv.find("checksum"))
            e.checksum = v->number64();
        if (seg_n > 0 && segmentOf(e.userSeed, seg_n) != seg_k) {
            setError(error, "manifest '" + path + "': " + e.file +
                     " (seed " + std::to_string(e.userSeed) +
                     ") belongs in segment " +
                     std::to_string(segmentOf(e.userSeed, seg_n)) +
                     ", not " + std::to_string(seg_k));
            return false;
        }
        Key key{e.app, e.device, e.userSeed};
        fileToKey_[e.file] = key;
        entries_[std::move(key)] = std::move(e);
    }
    return true;
}

std::string
CorpusStore::pathOf(const CorpusEntry &entry) const
{
    return (fs::path(dir_) / entry.file).string();
}

std::vector<CorpusEntry>
CorpusStore::entries() const
{
    std::vector<CorpusEntry> out;
    out.reserve(entries_.size());
    for (const auto &[key, entry] : entries_) {
        (void)key;
        out.push_back(entry);
    }
    return out;
}

const CorpusEntry *
CorpusStore::find(const std::string &app, const std::string &device,
                  uint64_t user_seed) const
{
    // Map nodes are stable: the pointer survives later adds.
    const auto it = entries_.find(Key{app, device, user_seed});
    return it == entries_.end() ? nullptr : &it->second;
}

bool
CorpusStore::add(const InteractionTrace &trace,
                 const TraceProvenance &provenance, std::string *error)
{
    CorpusEntry entry;
    entry.app = trace.appName;
    entry.device = provenance.device;
    entry.userSeed = trace.userSeed;
    entry.eventCount = trace.events.size();
    entry.checksum = traceChecksum(trace);
    entry.file = slugOf(trace.appName) + "-" + slugOf(provenance.device) +
        "-u" + std::to_string(trace.userSeed) + ".ptrc";

    // Slugs are lossy ("social_feed" and "social-feed" share one):
    // refuse to let a different key overwrite this file, BEFORE the
    // write — the caller renames, nothing is clobbered.
    Key key{entry.app, entry.device, entry.userSeed};
    const auto fit = fileToKey_.find(entry.file);
    if (fit != fileToKey_.end() && fit->second != key) {
        const auto &[app, device, seed] = fit->second;
        setError(error, "'" + entry.file +
                 "': file name collision with the recording of (" + app +
                 ", " + device + ", seed " + std::to_string(seed) +
                 ") — app/device names must have distinct slugs");
        return false;
    }

    if (!TraceWriter::writeFile(trace, provenance, pathOf(entry), error))
        return false;

    fileToKey_[entry.file] = key;
    entries_[std::move(key)] = std::move(entry);
    return true;
}

bool
CorpusStore::save(std::string *error) const
{
    if (segIndex_ >= 0) {
        // A one-segment view must not write manifest.json: open()
        // prefers the whole manifest, so saving would shadow the other
        // segments' entries for every future reader.
        setError(error, "cannot save a single-segment corpus view");
        return false;
    }
    const std::string path = (fs::path(dir_) / kManifestName).string();
    return writeFileAtomic(path, manifestText(entries()), error);
}

std::optional<InteractionTrace>
CorpusStore::load(const CorpusEntry &entry, std::string *error) const
{
    TraceReader reader;
    if (!reader.open(pathOf(entry))) {
        setError(error, entry.file + ": " + reader.error());
        return std::nullopt;
    }
    if (const auto problem = headerProblem(reader.header(), entry)) {
        setError(error, problem->message);
        return std::nullopt;
    }
    auto trace = reader.readTrace();
    if (!trace) {
        setError(error, entry.file + ": " + reader.error());
        return std::nullopt;
    }
    return trace;
}

bool
CorpusStore::verifyHeader(const CorpusEntry &entry,
                          std::string *error) const
{
    TraceReader reader;
    if (!reader.open(pathOf(entry))) {
        setError(error, entry.file + ": " + reader.error());
        return false;
    }
    if (const auto problem = headerProblem(reader.header(), entry)) {
        setError(error, problem->message);
        return false;
    }
    return true;
}

bool
CorpusStore::forEach(
    const std::function<bool(const CorpusEntry &,
                             const InteractionTrace &)> &fn,
    std::string *error) const
{
    for (const auto &[key, entry] : entries_) {
        (void)key;
        const auto trace = load(entry, error);
        if (!trace)
            return false;
        if (!fn(entry, *trace))
            return true;
    }
    return true;
}

bool
CorpusStore::validate(std::vector<CorpusProblem> &problems) const
{
    const size_t before = problems.size();
    for (const auto &[key, entry] : entries_) {
        (void)key;
        if (segIndex_ >= 0 &&
            segmentOf(entry.userSeed, segCount_) != segIndex_) {
            problems.push_back(
                {CorpusProblem::Kind::Mismatch,
                 entry.file + ": seed " + std::to_string(entry.userSeed) +
                     " belongs in segment " +
                     std::to_string(segmentOf(entry.userSeed, segCount_)) +
                     ", not " + std::to_string(segIndex_)});
        }
        std::error_code ec;
        if (!fs::exists(pathOf(entry), ec)) {
            problems.push_back(
                {CorpusProblem::Kind::MissingFile,
                 entry.file + ": referenced by the manifest but missing "
                              "on disk"});
            continue;
        }
        TraceReader reader;
        if (!reader.open(pathOf(entry))) {
            problems.push_back({CorpusProblem::Kind::Corrupt,
                                entry.file + ": " + reader.error()});
            continue;
        }
        if (auto problem = headerProblem(reader.header(), entry)) {
            problems.push_back(std::move(*problem));
            continue;
        }
        const auto trace = reader.readTrace();
        if (!trace) {
            problems.push_back({CorpusProblem::Kind::Corrupt,
                                entry.file + ": " + reader.error()});
            continue;
        }
        if (trace->events.size() != entry.eventCount) {
            problems.push_back(
                {CorpusProblem::Kind::Mismatch,
                 entry.file + ": manifest says " +
                     std::to_string(entry.eventCount) +
                     " events, file holds " +
                     std::to_string(trace->events.size())});
        }
    }
    return problems.size() == before;
}

bool
CorpusStore::validate(std::vector<std::string> &problems) const
{
    std::vector<CorpusProblem> classified;
    const bool clean = validate(classified);
    for (CorpusProblem &p : classified)
        problems.push_back(std::move(p.message));
    return clean;
}

} // namespace pes
