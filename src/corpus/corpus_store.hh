/**
 * @file
 * On-disk trace corpus: a directory of .ptrc files plus a JSON manifest.
 *
 * The manifest (manifest.json) indexes every trace by (app, device,
 * user seed) and carries the events-section checksum, so a corpus can be
 * validated without trusting file names. Iteration is streaming: one
 * trace is resident at a time, so million-session corpora never fully
 * load into memory. All failure paths return diagnostics instead of
 * crashing — a corpus fetched from another machine (or a truncated
 * download) must degrade to a readable error, not UB.
 *
 * Mutating calls (add/save) are single-threaded by design; concurrent
 * readers of an opened store are safe because lookups never touch disk
 * and loads open independent file handles.
 */

#ifndef PES_CORPUS_CORPUS_STORE_HH
#define PES_CORPUS_CORPUS_STORE_HH

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "corpus/trace_format.hh"
#include "util/integrity.hh"

namespace pes {

/** Corpus validation finding (shared classification, see
 *  util/integrity.hh). */
using CorpusProblem = IntegrityProblem;

/** One manifest row: where a recorded trace lives and what it holds. */
struct CorpusEntry
{
    /** File name relative to the corpus directory. */
    std::string file;
    std::string app;
    /** Platform name the trace was synthesized against. */
    std::string device;
    uint64_t userSeed = 0;
    uint64_t eventCount = 0;
    /** Events-section checksum (see traceChecksum). */
    uint64_t checksum = 0;
};

/**
 * A directory of recorded traces with a manifest index.
 *
 * A corpus is either *whole* (one manifest.json) or *segmented*: the
 * manifest split into "manifest.seg-<k>-of-<n>.json" files, each
 * holding the entries whose hashed user seed lands in segment k (see
 * segmentOf). Segmentation is pure manifest bookkeeping — the .ptrc
 * files never move — so shard() is O(manifest), and open() presents a
 * complete segment set as one logical corpus, byte-identical to the
 * whole manifest for every reader.
 */
class CorpusStore
{
  public:
    /** Manifest schema version. */
    static constexpr int kManifestVersion = 1;
    /** Manifest file name inside the corpus directory. */
    static constexpr const char *kManifestName = "manifest.json";

    /**
     * Open an existing corpus. Reads manifest.json when present;
     * otherwise discovers a complete "manifest.seg-<k>-of-<n>.json"
     * segment set and merges it into one logical corpus (an incomplete
     * or mixed set is an error). nullopt with @p error set when the
     * directory or manifest is unusable.
     */
    static std::optional<CorpusStore> open(const std::string &dir,
                                          std::string *error);

    /**
     * Open exactly one segment manifest of an @p n-way split —
     * streaming per-segment validation opens segments one at a time so
     * memory stays bounded by the largest segment, not the corpus.
     * Entries in the wrong segment are reported by validate() as
     * Mismatch problems, not here.
     */
    static std::optional<CorpusStore> openSegment(const std::string &dir,
                                                  int k, int n,
                                                  std::string *error);

    /** Segment manifest file name: "manifest.seg-<k>-of-<n>.json". */
    static std::string segmentManifestName(int k, int n);

    /**
     * The segment of an @p segments-way split that @p user_seed belongs
     * to. Hashed (not modulo the raw seed) so structured seed sequences
     * still spread evenly; deterministic, so any machine re-derives the
     * same split.
     */
    static int segmentOf(uint64_t user_seed, int segments);

    /**
     * Split this corpus's manifest into @p segments hashed-seed segment
     * manifests and retire manifest.json (each segment written
     * atomically, the whole-manifest removal last — a crash part-way
     * leaves manifest.json intact and open() still sees the whole
     * corpus). The in-memory store keeps serving all entries.
     */
    bool shard(int segments, std::string *error);

    /**
     * Create a new corpus directory (parents included) with an empty
     * manifest; opening an existing corpus this way keeps its entries.
     */
    static std::optional<CorpusStore> create(const std::string &dir,
                                             std::string *error);

    /** The corpus directory. */
    const std::string &dir() const { return dir_; }

    /** Manifest rows, materialized in canonical (app, device, seed)
     *  order. By value: adds never invalidate a snapshot. */
    std::vector<CorpusEntry> entries() const;

    /** Entry lookup; nullptr when the corpus has no such trace. */
    const CorpusEntry *find(const std::string &app,
                            const std::string &device,
                            uint64_t user_seed) const;

    /**
     * Record @p trace: writes the .ptrc file and upserts the manifest
     * row keyed on (app, provenance.device, trace.userSeed). The
     * manifest itself is persisted by save().
     */
    bool add(const InteractionTrace &trace,
             const TraceProvenance &provenance, std::string *error);

    /** Persist the manifest (atomically via a temp file + rename). */
    bool save(std::string *error) const;

    /** Load one entry's trace; header must match the manifest row. */
    std::optional<InteractionTrace> load(const CorpusEntry &entry,
                                         std::string *error) const;

    /**
     * Cheap integrity check of one entry: the file must open and its
     * header must match the manifest row — the events payload is never
     * decoded or checksummed. What capped-cache corpus replay uses to
     * fail early on every planned trace without thrashing the cache.
     */
    bool verifyHeader(const CorpusEntry &entry, std::string *error) const;

    /**
     * Streaming iteration in canonical order: @p fn gets each entry with
     * its freshly-loaded trace; return false from @p fn to stop early.
     * Returns false (with @p error) on the first unreadable entry.
     */
    bool forEach(
        const std::function<bool(const CorpusEntry &,
                                 const InteractionTrace &)> &fn,
        std::string *error) const;

    /**
     * Full integrity pass: every manifest row's file must exist, parse,
     * match the row (app/device/seed/count/checksum), and decode with a
     * valid checksum. Appends one classified problem per finding —
     * missing files, corrupt content, and manifest mismatches are told
     * apart so CI can gate on distinct exit codes. Returns true when
     * the corpus is clean.
     */
    bool validate(std::vector<CorpusProblem> &problems) const;

    /** Message-only convenience overload of validate(). */
    bool validate(std::vector<std::string> &problems) const;

    /** Segment index when opened via openSegment(), -1 otherwise. */
    int segmentIndex() const { return segIndex_; }
    /** Segment count when opened from segments (openSegment or a
     *  discovered set), 0 for a whole-manifest corpus. */
    int segmentCount() const { return segCount_; }

  private:
    /** (app, device, seed): tuple order IS the canonical entry order,
     *  so the map keeps entries sorted with O(log N) adds and find()
     *  pointers that stay valid across later adds (node stability). */
    using Key = std::tuple<std::string, std::string, uint64_t>;

    CorpusStore() = default;

    bool loadManifest(std::string *error);
    bool loadManifestFile(const std::string &path, int seg_k, int seg_n,
                          std::string *error);
    std::string pathOf(const CorpusEntry &entry) const;

    std::string dir_;
    std::map<Key, CorpusEntry> entries_;
    /** File name -> owning key: detects slug collisions between
     *  distinct keys before one overwrites the other's recording. */
    std::map<std::string, Key> fileToKey_;
    int segIndex_ = -1;
    int segCount_ = 0;
};

} // namespace pes

#endif // PES_CORPUS_CORPUS_STORE_HH
