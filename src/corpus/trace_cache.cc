#include "corpus/trace_cache.hh"

namespace pes {

const InteractionTrace *
TraceCache::lookup(const std::string &device, const std::string &app,
                   uint64_t user_seed) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = traces_.find(Key{device, app, user_seed});
    return it == traces_.end() ? nullptr : it->second.get();
}

const InteractionTrace &
TraceCache::getOrGenerate(const std::string &device,
                          const AppProfile &profile, uint64_t user_seed,
                          TraceGenerator &generator)
{
    const Key key{device, profile.name, user_seed};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = traces_.find(key);
        if (it != traces_.end()) {
            ++hits_;
            return *it->second;
        }
    }
    // Synthesize outside the lock: workers racing on the same key each
    // produce an identical trace (deterministic generator); the first
    // insert wins and the rest adopt it.
    auto trace = std::make_unique<InteractionTrace>(
        generator.generate(profile, user_seed));
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = traces_.emplace(key, std::move(trace)).first;
    ++misses_;
    return *it->second;
}

bool
TraceCache::insert(const std::string &device, InteractionTrace trace)
{
    Key key{device, trace.appName, trace.userSeed};
    auto owned = std::make_unique<InteractionTrace>(std::move(trace));
    std::lock_guard<std::mutex> lock(mutex_);
    // First insert wins, like getOrGenerate: replacing would destroy a
    // trace another thread may already hold a reference to.
    return traces_.emplace(std::move(key), std::move(owned)).second;
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return traces_.size();
}

uint64_t
TraceCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

uint64_t
TraceCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    traces_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace pes
