#include "corpus/trace_cache.hh"

namespace pes {

size_t
traceFootprintBytes(const InteractionTrace &trace)
{
    return sizeof(InteractionTrace) + trace.appName.capacity() +
        trace.events.capacity() * sizeof(TraceEvent);
}

void
TraceCache::setCapacity(size_t max_entries, size_t max_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    maxEntries_ = max_entries;
    maxBytes_ = max_bytes;
    enforceCapacity(lru_.empty() ? Key{} : lru_.front());
}

void
TraceCache::touch(std::map<Key, Entry>::iterator it) const
{
    lru_.splice(lru_.begin(), lru_, it->second.lruPos);
}

void
TraceCache::enforceCapacity(const Key &keep)
{
    const auto over = [this] {
        return (maxEntries_ > 0 && traces_.size() > maxEntries_) ||
            (maxBytes_ > 0 && residentBytes_ > maxBytes_);
    };
    while (over() && !lru_.empty()) {
        const Key victim = lru_.back();
        if (victim == keep)
            break;  // never evict the entry being handed out
        const auto it = traces_.find(victim);
        residentBytes_ -= it->second.bytes;
        traces_.erase(it);
        lru_.pop_back();
        ++evictions_;
        if (evictionHook_)
            evictionHook_();
    }
}

void
TraceCache::setEvictionHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(mutex_);
    evictionHook_ = std::move(hook);
}

TraceHandle
TraceCache::adopt(Key key, TraceHandle trace)
{
    ContentionGuard lock(mutex_, contention_);
    return adoptLocked(std::move(key), std::move(trace));
}

TraceHandle
TraceCache::adoptLocked(Key key, TraceHandle trace)
{
    const auto it = traces_.find(key);
    if (it != traces_.end()) {
        // Another worker won the race; its copy is identical
        // (deterministic loader) — adopt it. The materialization this
        // caller just paid for is discarded: wasted duplicate work.
        ++duplicateSynthesis_;
        touch(it);
        return it->second.trace;
    }
    Entry entry;
    entry.trace = std::move(trace);
    entry.bytes = traceFootprintBytes(*entry.trace);
    lru_.push_front(key);
    entry.lruPos = lru_.begin();
    residentBytes_ += entry.bytes;
    const auto inserted =
        traces_.emplace(std::move(key), std::move(entry)).first;
    enforceCapacity(inserted->first);
    return inserted->second.trace;
}

TraceHandle
TraceCache::lookup(const std::string &device, const std::string &app,
                   uint64_t user_seed) const
{
    ContentionGuard lock(mutex_, contention_);
    const auto it = traces_.find(Key{device, app, user_seed});
    if (it == traces_.end())
        return nullptr;
    touch(it);
    return it->second.trace;
}

TraceHandle
TraceCache::getOrLoad(const std::string &device, const std::string &app,
                      uint64_t user_seed,
                      const std::function<InteractionTrace()> &loader)
{
    Key key{device, app, user_seed};
    std::shared_ptr<InFlightLoad> flight;
    bool winner = false;
    {
        ContentionGuard lock(mutex_, contention_);
        const auto it = traces_.find(key);
        if (it != traces_.end()) {
            ++hits_;
            touch(it);
            return it->second.trace;
        }
        const auto in_flight = inFlight_.find(key);
        if (in_flight != inFlight_.end()) {
            flight = in_flight->second;
        } else {
            ++misses_;
            flight = std::make_shared<InFlightLoad>();
            inFlight_.emplace(key, flight);
            winner = true;
        }
    }

    if (!winner) {
        // Single-flight: another worker is materializing this key right
        // now. Wait for its latch instead of duplicating the synthesis.
        std::unique_lock<std::mutex> lock(mutex_);
        inFlightCv_.wait(lock, [&] { return flight->done; });
        if (flight->error)
            std::rethrow_exception(flight->error);
        ++hits_;
        // The winner's entry may already have been evicted; the handle
        // in the latch stays valid regardless (shared ownership).
        const auto it = traces_.find(key);
        if (it != traces_.end())
            touch(it);
        return flight->trace;
    }

    // Materialize outside the lock, then publish through the latch.
    try {
        auto trace = std::make_shared<const InteractionTrace>(loader());
        TraceHandle out;
        {
            ContentionGuard lock(mutex_, contention_);
            out = adoptLocked(key, std::move(trace));
            flight->trace = out;
            flight->done = true;
            inFlight_.erase(key);
        }
        inFlightCv_.notify_all();
        return out;
    } catch (...) {
        {
            ContentionGuard lock(mutex_, contention_);
            flight->error = std::current_exception();
            flight->done = true;
            inFlight_.erase(key);
        }
        inFlightCv_.notify_all();
        throw;
    }
}

TraceHandle
TraceCache::getOrGenerate(const std::string &device,
                          const AppProfile &profile, uint64_t user_seed,
                          TraceGenerator &generator)
{
    return getOrLoad(device, profile.name, user_seed, [&] {
        return generator.generate(profile, user_seed);
    });
}

bool
TraceCache::insert(const std::string &device, InteractionTrace trace)
{
    Key key{device, trace.appName, trace.userSeed};
    // First insert wins, like getOrLoad: replacing would let one key
    // alias two different payloads within a single run. adopt() hands
    // back whichever trace the key resolves to, so pointer identity
    // tells whether this call's copy was the one inserted.
    auto owned = std::make_shared<const InteractionTrace>(std::move(trace));
    return adopt(std::move(key), owned) == owned;
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return traces_.size();
}

size_t
TraceCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return residentBytes_;
}

uint64_t
TraceCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

uint64_t
TraceCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

uint64_t
TraceCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

uint64_t
TraceCache::duplicateSynthesis() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return duplicateSynthesis_;
}

LockContention
TraceCache::lockContention() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return contention_;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    traces_.clear();
    lru_.clear();
    residentBytes_ = 0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    duplicateSynthesis_ = 0;
    contention_.reset();
}

} // namespace pes
