/**
 * @file
 * In-process trace cache: synthesize once, replay many.
 *
 * A fleet sweep replays the same (device, app, user) trace under every
 * scheduler, yet historically each job re-synthesized it. The cache
 * keys traces on (device, app, userSeed) — device included because the
 * generator's oracle-feasibility repair pass consults the platform — and
 * hands out stable read-only pointers, so one synthesis (or one corpus
 * load) serves the whole scheduler axis.
 *
 * Thread model: lookups and inserts take a mutex; generation runs
 * OUTSIDE the lock, so concurrent workers may race to synthesize the
 * same trace — the first insert wins and losers adopt it. Synthesis is
 * deterministic, both copies are identical, and results stay bit-exact
 * for any thread count. Entries are unique_ptr-owned, so pointers stay
 * valid across rehashes for the cache's lifetime.
 */

#ifndef PES_CORPUS_TRACE_CACHE_HH
#define PES_CORPUS_TRACE_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "trace/generator.hh"

namespace pes {

/**
 * Shared read-only trace storage for fleet runs.
 */
class TraceCache
{
  public:
    TraceCache() = default;
    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The cached trace, or nullptr. Never counts toward hit/miss stats
     * (those track getOrGenerate traffic only).
     */
    const InteractionTrace *lookup(const std::string &device,
                                   const std::string &app,
                                   uint64_t user_seed) const;

    /**
     * The cached trace for (device, profile.name, user_seed),
     * synthesizing through @p generator on first use. The returned
     * reference lives as long as the cache.
     */
    const InteractionTrace &getOrGenerate(const std::string &device,
                                          const AppProfile &profile,
                                          uint64_t user_seed,
                                          TraceGenerator &generator);

    /**
     * Insert a trace (e.g. loaded from a corpus) unless the key is
     * already present — first insert wins, so references handed out
     * earlier are never invalidated. Returns whether it was inserted.
     */
    bool insert(const std::string &device, InteractionTrace trace);

    /** Number of cached traces. */
    size_t size() const;

    /** getOrGenerate calls served from the cache. */
    uint64_t hits() const;

    /** getOrGenerate calls that synthesized. */
    uint64_t misses() const;

    /** Drop all entries and reset the counters. */
    void clear();

  private:
    using Key = std::tuple<std::string, std::string, uint64_t>;

    mutable std::mutex mutex_;
    std::map<Key, std::unique_ptr<InteractionTrace>> traces_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace pes

#endif // PES_CORPUS_TRACE_CACHE_HH
