/**
 * @file
 * In-process trace cache: synthesize once, replay many — now bounded.
 *
 * A fleet sweep replays the same (device, app, user) trace under every
 * scheduler, yet historically each job re-synthesized it. The cache
 * keys traces on (device, app, userSeed) — device included because the
 * generator's oracle-feasibility repair pass consults the platform —
 * and hands out shared_ptr handles, so one synthesis (or one corpus
 * load) serves the whole scheduler axis.
 *
 * Capacity: setCapacity() arms an LRU bound on entries and/or resident
 * bytes, so a million-user fresh fleet is no longer memory-bounded by
 * the cache (ROADMAP follow-on). Eviction never invalidates a handle a
 * worker already holds — entries are shared_ptr-owned and die with
 * their last reference — and never changes results: an evicted key
 * simply re-materializes through its deterministic loader on the next
 * miss, producing byte-identical traces.
 *
 * Thread model: lookups, inserts and recency updates take a mutex;
 * generation/loading runs OUTSIDE the lock. getOrLoad is single-flight:
 * the first worker to miss a key registers an in-progress latch and
 * materializes; workers arriving meanwhile wait on the latch and adopt
 * the winner's trace instead of re-synthesizing it, so concurrent
 * getOrLoad traffic never duplicates a synthesis (duplicate_synthesis
 * stays 0 by construction for that path — only insert() races can
 * still discard a materialization).
 */

#ifndef PES_CORPUS_TRACE_CACHE_HH
#define PES_CORPUS_TRACE_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "trace/generator.hh"
#include "util/contention.hh"

namespace pes {

/** Shared read-only handle to a cached trace. */
using TraceHandle = std::shared_ptr<const InteractionTrace>;

/** Resident-set estimate of one trace (events + strings + bookkeeping). */
size_t traceFootprintBytes(const InteractionTrace &trace);

/**
 * Shared read-only trace storage for fleet runs.
 */
class TraceCache
{
  public:
    TraceCache() = default;
    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * Bound the cache: at most @p max_entries traces and @p max_bytes
     * estimated resident bytes (0 = unlimited for either). The newest
     * entry is never evicted, so a single oversized trace still
     * materializes. Shrinking an armed cache evicts immediately.
     */
    void setCapacity(size_t max_entries, size_t max_bytes);

    /**
     * The cached trace, or nullptr. Refreshes recency but never counts
     * toward hit/miss stats (those track getOrLoad traffic only).
     */
    TraceHandle lookup(const std::string &device, const std::string &app,
                       uint64_t user_seed) const;

    /**
     * The cached trace for (device, app, user_seed), materializing it
     * through @p loader on first use (or after eviction). The loader
     * MUST be deterministic — re-materialized entries must be
     * byte-identical, or capped and uncapped runs would diverge.
     */
    TraceHandle getOrLoad(const std::string &device,
                          const std::string &app, uint64_t user_seed,
                          const std::function<InteractionTrace()> &loader);

    /** getOrLoad with synthesis through @p generator as the loader. */
    TraceHandle getOrGenerate(const std::string &device,
                              const AppProfile &profile,
                              uint64_t user_seed,
                              TraceGenerator &generator);

    /**
     * Insert a trace (e.g. preloaded from a corpus) unless the key is
     * already present — first insert wins, so handles given out earlier
     * always match later lookups. Returns whether it was inserted.
     */
    bool insert(const std::string &device, InteractionTrace trace);

    /** Number of cached traces. */
    size_t size() const;

    /** Estimated resident bytes of all cached traces. */
    size_t residentBytes() const;

    /** getOrLoad calls served from the cache. */
    uint64_t hits() const;

    /** getOrLoad calls that materialized. */
    uint64_t misses() const;

    /** Entries evicted by the LRU bound. */
    uint64_t evictions() const;

    /**
     * Materializations thrown away because another worker inserted the
     * same key first (the getOrLoad race documented above, and insert()
     * calls that found the key present). Each one is a whole synthesis
     * or corpus load whose result was discarded — wasted work that only
     * exists under contention, so it is deterministically 0 at one
     * thread. This is also why a t4 bench run can show one more cache
     * miss than t1: the miss was real, the work was duplicated.
     */
    uint64_t duplicateSynthesis() const;

    /** Contended acquisitions of the cache mutex (scaling telemetry). */
    LockContention lockContention() const;

    /**
     * Observe evictions (telemetry): @p hook runs once per evicted
     * entry, while the cache mutex is held — it must be cheap and must
     * never call back into this cache. An empty function detaches.
     */
    void setEvictionHook(std::function<void()> hook);

    /** Drop all entries and reset the counters (keeps the capacity). */
    void clear();

  private:
    using Key = std::tuple<std::string, std::string, uint64_t>;

    struct Entry
    {
        TraceHandle trace;
        size_t bytes = 0;
        /** Position in lru_ (front = most recently used). */
        std::list<Key>::iterator lruPos;
    };

    /** One in-progress materialization other workers can wait on. */
    struct InFlightLoad
    {
        TraceHandle trace;
        std::exception_ptr error;
        bool done = false;
    };

    /** Move @p it to the recency front. Caller holds mutex_. */
    void touch(std::map<Key, Entry>::iterator it) const;

    /** Insert under the lock; evicts past-capacity LRU entries. */
    TraceHandle adopt(Key key, TraceHandle trace);

    /** adopt() body; caller holds mutex_. */
    TraceHandle adoptLocked(Key key, TraceHandle trace);

    /** Evict LRU entries until within capacity, sparing @p keep. */
    void enforceCapacity(const Key &keep);

    mutable std::mutex mutex_;
    /** Keys being materialized right now; guarded by mutex_. */
    std::map<Key, std::shared_ptr<InFlightLoad>> inFlight_;
    /** Signaled when an in-flight materialization completes. */
    std::condition_variable inFlightCv_;
    mutable std::map<Key, Entry> traces_;
    /** Recency order, front = most recent. */
    mutable std::list<Key> lru_;
    std::function<void()> evictionHook_;
    size_t maxEntries_ = 0;
    size_t maxBytes_ = 0;
    size_t residentBytes_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t duplicateSynthesis_ = 0;
    /** Contended mutex_ acquisitions; guarded by mutex_ itself. */
    mutable LockContention contention_;
};

} // namespace pes

#endif // PES_CORPUS_TRACE_CACHE_HH
