#include "corpus/trace_format.hh"

#include "util/binary_io.hh"
#include "util/rng.hh"

namespace pes {

namespace {

constexpr char kMagic[4] = {'P', 'T', 'R', 'C'};
constexpr uint64_t kMaxEventCount = 1ull << 32;  // sanity bound
/** Fixed width of one v1 event record (see the header layout doc). */
constexpr uint64_t kEventRecordBytes =
    8 + 1 + 4 + 4 + 8 + 8 + 2 * 8 + 4 * 2 * 8 + 1 + 8;

std::string
provenancePayload(const InteractionTrace &trace,
                  const TraceProvenance &provenance)
{
    std::string out;
    putStr(out, trace.appName);
    putU64(out, trace.userSeed);
    putStr(out, provenance.device);
    putU32(out, static_cast<uint32_t>(provenance.params.size()));
    for (const auto &[key, value] : provenance.params) {
        putStr(out, key);
        putStr(out, value);
    }
    return out;
}

std::string
eventsPayload(const InteractionTrace &trace)
{
    std::string out;
    out.reserve(8 + trace.events.size() * kEventRecordBytes);
    putU64(out, trace.events.size());
    for (const TraceEvent &e : trace.events) {
        putF64(out, e.arrival);
        putU8(out, static_cast<uint8_t>(e.type));
        putI32(out, e.node);
        putI32(out, e.pageId);
        putF64(out, e.x);
        putF64(out, e.y);
        putF64(out, e.callbackWork.tmemMs);
        putF64(out, e.callbackWork.ndep);
        for (const Workload &stage : e.renderWork.stages) {
            putF64(out, stage.tmemMs);
            putF64(out, stage.ndep);
        }
        putU8(out, e.issuesNetwork ? 1 : 0);
        putU64(out, e.classKey);
    }
    return out;
}

} // namespace

// ------------------------------------------------------------ TraceWriter

std::string
TraceWriter::toBytes(const InteractionTrace &trace,
                     const TraceProvenance &provenance)
{
    const std::string prov = provenancePayload(trace, provenance);
    const std::string events = eventsPayload(trace);

    std::string out;
    out.reserve(4 + 4 + 4 + prov.size() + 8 + 8 + events.size() + 8);
    putMagicHeader(out, kMagic, kPtrcVersion);
    putSection32(out, prov);
    putSection64(out, events);
    return out;
}

bool
TraceWriter::writeFile(const InteractionTrace &trace,
                       const TraceProvenance &provenance,
                       const std::string &path, std::string *error)
{
    return writeFileBytes(path, toBytes(trace, provenance), error);
}

// ------------------------------------------------------------ TraceReader

bool
TraceReader::fail(const std::string &why)
{
    error_ = why;
    opened_ = false;
    return false;
}

bool
TraceReader::open(const std::string &path)
{
    std::string bytes;
    std::string error;
    if (!readFileBytes(path, bytes, &error))
        return fail(error);
    return openBytes(std::move(bytes));
}

bool
TraceReader::openBytes(std::string bytes)
{
    bytes_ = std::move(bytes);
    error_.clear();
    header_ = PtrcHeader{};
    opened_ = parseHeader();
    return opened_;
}

bool
TraceReader::parseHeader()
{
    ByteReader r(bytes_);
    std::string error;
    if (!readMagicHeader(r, kMagic, kPtrcVersion, "a .ptrc trace",
                         ".ptrc", &error)) {
        return fail(error);
    }
    header_.version = kPtrcVersion;

    BinarySection prov;
    if (!readSection32(r, prov))
        return fail("truncated file: provenance section cut short");
    ByteReader p = sectionReader(bytes_, prov);
    if (!p.getStr(header_.app) || !p.getU64(header_.userSeed) ||
        !p.getStr(header_.provenance.device)) {
        return fail("malformed provenance block");
    }
    uint32_t nparams;
    if (!p.getU32(nparams))
        return fail("malformed provenance block");
    for (uint32_t i = 0; i < nparams; ++i) {
        std::string key, value;
        if (!p.getStr(key) || !p.getStr(value))
            return fail("malformed provenance parameter list");
        header_.provenance.params.emplace_back(std::move(key),
                                               std::move(value));
    }
    if (!p.atEnd())
        return fail("provenance section has trailing bytes");
    if (!sectionChecksumOk(bytes_, prov))
        return fail("provenance checksum mismatch (corrupt file)");

    BinarySection events;
    if (!readSection64(r, events))
        return fail("truncated file: events section cut short");
    events_ = events;
    header_.eventsChecksum = events.storedChecksum;
    if (!r.atEnd())
        return fail("trailing bytes after events checksum");

    // Peek the event count so header-only consumers (manifest listing)
    // never decode the payload. v1 records are fixed-width, so the
    // count must account for the payload exactly — this also stops a
    // corrupt count from driving a huge allocation in readTrace().
    ByteReader e = sectionReader(bytes_, events);
    if (!e.getU64(header_.eventCount) ||
        header_.eventCount > kMaxEventCount) {
        return fail("malformed events section: bad event count");
    }
    if (events.payloadLen != 8 + header_.eventCount * kEventRecordBytes) {
        return fail("malformed events section: length does not "
                    "match the event count");
    }
    return true;
}

std::optional<InteractionTrace>
TraceReader::readTrace()
{
    if (!opened_) {
        if (error_.empty())
            error_ = "readTrace() before a successful open()";
        return std::nullopt;
    }
    if (!sectionChecksumOk(bytes_, events_)) {
        fail("events checksum mismatch (corrupt file)");
        return std::nullopt;
    }

    InteractionTrace trace;
    trace.appName = header_.app;
    trace.userSeed = header_.userSeed;

    ByteReader r = sectionReader(bytes_, events_);
    uint64_t count;
    if (!r.getU64(count)) {
        fail("malformed events section: bad event count");
        return std::nullopt;
    }
    trace.events.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        TraceEvent e;
        uint8_t type, network;
        if (!r.getF64(e.arrival) || !r.getU8(type) || !r.getI32(e.node) ||
            !r.getI32(e.pageId) || !r.getF64(e.x) || !r.getF64(e.y) ||
            !r.getF64(e.callbackWork.tmemMs) ||
            !r.getF64(e.callbackWork.ndep)) {
            fail("truncated event record " + std::to_string(i));
            return std::nullopt;
        }
        if (type >= kNumDomEventTypes) {
            fail("event " + std::to_string(i) + ": invalid type " +
                 std::to_string(type));
            return std::nullopt;
        }
        e.type = static_cast<DomEventType>(type);
        for (Workload &stage : e.renderWork.stages) {
            if (!r.getF64(stage.tmemMs) || !r.getF64(stage.ndep)) {
                fail("truncated event record " + std::to_string(i));
                return std::nullopt;
            }
        }
        if (!r.getU8(network) || !r.getU64(e.classKey)) {
            fail("truncated event record " + std::to_string(i));
            return std::nullopt;
        }
        e.issuesNetwork = network != 0;
        trace.events.push_back(e);
    }
    if (!r.atEnd()) {
        fail("events section has trailing bytes");
        return std::nullopt;
    }
    return trace;
}

uint64_t
traceChecksum(const InteractionTrace &trace)
{
    const std::string payload = eventsPayload(trace);
    return hashBytes(payload.data(), payload.size());
}

} // namespace pes
