#include "corpus/trace_format.hh"

#include <cstring>
#include <fstream>

#include "util/rng.hh"

namespace pes {

namespace {

constexpr char kMagic[4] = {'P', 'T', 'R', 'C'};
constexpr size_t kMaxStringLen = 1u << 20;       // 1 MiB per string
constexpr uint64_t kMaxEventCount = 1ull << 32;  // sanity bound
/** Fixed width of one v1 event record (see the header layout doc). */
constexpr uint64_t kEventRecordBytes =
    8 + 1 + 4 + 4 + 8 + 8 + 2 * 8 + 4 * 2 * 8 + 1 + 8;

// ------------------------------------------------------------- encoding

void
putU8(std::string &out, uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putI32(std::string &out, int32_t v)
{
    putU32(out, static_cast<uint32_t>(v));
}

void
putF64(std::string &out, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out += s;
}

// ------------------------------------------------------------- decoding

bool
getU8(const std::string &in, size_t &pos, size_t end, uint8_t &v)
{
    if (pos + 1 > end)
        return false;
    v = static_cast<uint8_t>(in[pos++]);
    return true;
}

bool
getU32(const std::string &in, size_t &pos, size_t end, uint32_t &v)
{
    if (pos + 4 > end)
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(static_cast<uint8_t>(in[pos + i]))
            << (8 * i);
    pos += 4;
    return true;
}

bool
getU64(const std::string &in, size_t &pos, size_t end, uint64_t &v)
{
    if (pos + 8 > end)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<uint8_t>(in[pos + i]))
            << (8 * i);
    pos += 8;
    return true;
}

bool
getI32(const std::string &in, size_t &pos, size_t end, int32_t &v)
{
    uint32_t u;
    if (!getU32(in, pos, end, u))
        return false;
    v = static_cast<int32_t>(u);
    return true;
}

bool
getF64(const std::string &in, size_t &pos, size_t end, double &v)
{
    uint64_t bits;
    if (!getU64(in, pos, end, bits))
        return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

bool
getStr(const std::string &in, size_t &pos, size_t end, std::string &s)
{
    uint32_t len;
    if (!getU32(in, pos, end, len) || len > kMaxStringLen ||
        pos + len > end)
        return false;
    s.assign(in, pos, len);
    pos += len;
    return true;
}

std::string
provenancePayload(const InteractionTrace &trace,
                  const TraceProvenance &provenance)
{
    std::string out;
    putStr(out, trace.appName);
    putU64(out, trace.userSeed);
    putStr(out, provenance.device);
    putU32(out, static_cast<uint32_t>(provenance.params.size()));
    for (const auto &[key, value] : provenance.params) {
        putStr(out, key);
        putStr(out, value);
    }
    return out;
}

std::string
eventsPayload(const InteractionTrace &trace)
{
    std::string out;
    out.reserve(8 + trace.events.size() * kEventRecordBytes);
    putU64(out, trace.events.size());
    for (const TraceEvent &e : trace.events) {
        putF64(out, e.arrival);
        putU8(out, static_cast<uint8_t>(e.type));
        putI32(out, e.node);
        putI32(out, e.pageId);
        putF64(out, e.x);
        putF64(out, e.y);
        putF64(out, e.callbackWork.tmemMs);
        putF64(out, e.callbackWork.ndep);
        for (const Workload &stage : e.renderWork.stages) {
            putF64(out, stage.tmemMs);
            putF64(out, stage.ndep);
        }
        putU8(out, e.issuesNetwork ? 1 : 0);
        putU64(out, e.classKey);
    }
    return out;
}

} // namespace

// ------------------------------------------------------------ TraceWriter

std::string
TraceWriter::toBytes(const InteractionTrace &trace,
                     const TraceProvenance &provenance)
{
    const std::string prov = provenancePayload(trace, provenance);
    const std::string events = eventsPayload(trace);

    std::string out;
    out.reserve(4 + 4 + 4 + prov.size() + 8 + 8 + events.size() + 8);
    out.append(kMagic, sizeof(kMagic));
    putU32(out, kPtrcVersion);
    putU32(out, static_cast<uint32_t>(prov.size()));
    out += prov;
    putU64(out, hashBytes(prov.data(), prov.size()));
    putU64(out, events.size());
    out += events;
    putU64(out, hashBytes(events.data(), events.size()));
    return out;
}

bool
TraceWriter::writeFile(const InteractionTrace &trace,
                       const TraceProvenance &provenance,
                       const std::string &path, std::string *error)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    const std::string bytes = toBytes(trace, provenance);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
        if (error)
            *error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

// ------------------------------------------------------------ TraceReader

bool
TraceReader::fail(const std::string &why)
{
    error_ = why;
    opened_ = false;
    return false;
}

bool
TraceReader::open(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return fail("cannot open '" + path + "'");
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    if (is.bad())
        return fail("read error on '" + path + "'");
    return openBytes(std::move(bytes));
}

bool
TraceReader::openBytes(std::string bytes)
{
    bytes_ = std::move(bytes);
    error_.clear();
    header_ = PtrcHeader{};
    opened_ = parseHeader();
    return opened_;
}

bool
TraceReader::parseHeader()
{
    size_t pos = 0;
    const size_t end = bytes_.size();
    if (end < sizeof(kMagic) + 4)
        return fail("truncated file: no header");
    if (std::memcmp(bytes_.data(), kMagic, sizeof(kMagic)) != 0)
        return fail("bad magic (not a .ptrc trace)");
    pos = sizeof(kMagic);

    uint32_t version;
    if (!getU32(bytes_, pos, end, version))
        return fail("truncated file: no version");
    if (version != kPtrcVersion) {
        return fail("unsupported .ptrc version " +
                    std::to_string(version) + " (this build reads " +
                    std::to_string(kPtrcVersion) + ")");
    }
    header_.version = version;

    uint32_t prov_len;
    if (!getU32(bytes_, pos, end, prov_len))
        return fail("truncated file: no provenance length");
    if (pos + prov_len + 8 > end)
        return fail("truncated file: provenance section cut short");
    const size_t prov_start = pos;
    const size_t prov_end = pos + prov_len;

    if (!getStr(bytes_, pos, prov_end, header_.app) ||
        !getU64(bytes_, pos, prov_end, header_.userSeed) ||
        !getStr(bytes_, pos, prov_end, header_.provenance.device)) {
        return fail("malformed provenance block");
    }
    uint32_t nparams;
    if (!getU32(bytes_, pos, prov_end, nparams))
        return fail("malformed provenance block");
    for (uint32_t i = 0; i < nparams; ++i) {
        std::string key, value;
        if (!getStr(bytes_, pos, prov_end, key) ||
            !getStr(bytes_, pos, prov_end, value)) {
            return fail("malformed provenance parameter list");
        }
        header_.provenance.params.emplace_back(std::move(key),
                                               std::move(value));
    }
    if (pos != prov_end)
        return fail("provenance section has trailing bytes");

    uint64_t prov_checksum;
    if (!getU64(bytes_, pos, end, prov_checksum))
        return fail("truncated file: no provenance checksum");
    if (prov_checksum !=
        hashBytes(bytes_.data() + prov_start, prov_len)) {
        return fail("provenance checksum mismatch (corrupt file)");
    }

    if (!getU64(bytes_, pos, end, eventsPayloadLen_))
        return fail("truncated file: no events length");
    if (pos + eventsPayloadLen_ + 8 > end ||
        pos + eventsPayloadLen_ + 8 < pos) {
        return fail("truncated file: events section cut short");
    }
    eventsPayloadPos_ = pos;

    // Peek the event count so header-only consumers (manifest listing)
    // never decode the payload. v1 records are fixed-width, so the
    // count must account for the payload exactly — this also stops a
    // corrupt count from driving a huge allocation in readTrace().
    {
        size_t p = pos;
        if (!getU64(bytes_, p, pos + eventsPayloadLen_,
                    header_.eventCount) ||
            header_.eventCount > kMaxEventCount) {
            return fail("malformed events section: bad event count");
        }
        if (eventsPayloadLen_ !=
            8 + header_.eventCount * kEventRecordBytes) {
            return fail("malformed events section: length does not "
                        "match the event count");
        }
    }
    size_t cpos = pos + eventsPayloadLen_;
    if (!getU64(bytes_, cpos, end, header_.eventsChecksum))
        return fail("truncated file: no events checksum");
    if (cpos != end)
        return fail("trailing bytes after events checksum");
    return true;
}

std::optional<InteractionTrace>
TraceReader::readTrace()
{
    if (!opened_) {
        if (error_.empty())
            error_ = "readTrace() before a successful open()";
        return std::nullopt;
    }
    const size_t payload_end = eventsPayloadPos_ +
        static_cast<size_t>(eventsPayloadLen_);
    if (header_.eventsChecksum !=
        hashBytes(bytes_.data() + eventsPayloadPos_,
                  static_cast<size_t>(eventsPayloadLen_))) {
        fail("events checksum mismatch (corrupt file)");
        return std::nullopt;
    }

    InteractionTrace trace;
    trace.appName = header_.app;
    trace.userSeed = header_.userSeed;

    size_t pos = eventsPayloadPos_;
    uint64_t count;
    if (!getU64(bytes_, pos, payload_end, count)) {
        fail("malformed events section: bad event count");
        return std::nullopt;
    }
    trace.events.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        TraceEvent e;
        uint8_t type, network;
        if (!getF64(bytes_, pos, payload_end, e.arrival) ||
            !getU8(bytes_, pos, payload_end, type) ||
            !getI32(bytes_, pos, payload_end, e.node) ||
            !getI32(bytes_, pos, payload_end, e.pageId) ||
            !getF64(bytes_, pos, payload_end, e.x) ||
            !getF64(bytes_, pos, payload_end, e.y) ||
            !getF64(bytes_, pos, payload_end, e.callbackWork.tmemMs) ||
            !getF64(bytes_, pos, payload_end, e.callbackWork.ndep)) {
            fail("truncated event record " + std::to_string(i));
            return std::nullopt;
        }
        if (type >= kNumDomEventTypes) {
            fail("event " + std::to_string(i) + ": invalid type " +
                 std::to_string(type));
            return std::nullopt;
        }
        e.type = static_cast<DomEventType>(type);
        for (Workload &stage : e.renderWork.stages) {
            if (!getF64(bytes_, pos, payload_end, stage.tmemMs) ||
                !getF64(bytes_, pos, payload_end, stage.ndep)) {
                fail("truncated event record " + std::to_string(i));
                return std::nullopt;
            }
        }
        if (!getU8(bytes_, pos, payload_end, network) ||
            !getU64(bytes_, pos, payload_end, e.classKey)) {
            fail("truncated event record " + std::to_string(i));
            return std::nullopt;
        }
        e.issuesNetwork = network != 0;
        trace.events.push_back(e);
    }
    if (pos != payload_end) {
        fail("events section has trailing bytes");
        return std::nullopt;
    }
    return trace;
}

uint64_t
traceChecksum(const InteractionTrace &trace)
{
    const std::string payload = eventsPayload(trace);
    return hashBytes(payload.data(), payload.size());
}

} // namespace pes
