/**
 * @file
 * The .ptrc on-disk trace format (versioned, checksummed).
 *
 * A .ptrc file persists one InteractionTrace exactly — every double is
 * stored as its IEEE-754 bit pattern, so record -> replay is bit-for-bit
 * identical to live synthesis. Layout (all integers little-endian):
 *
 *   "PTRC"                     4-byte magic
 *   u32  version               format version (kPtrcVersion)
 *   u32  provLen               provenance payload byte length
 *        provenance payload:   str app, u64 userSeed, str device,
 *                              u32 n, n x (str key, str value)
 *   u64  provChecksum          FNV-1a over the provenance payload
 *   u64  eventsLen             events payload byte length
 *        events payload:       u64 count, count x event record
 *   u64  eventsChecksum        FNV-1a over the events payload
 *
 * The encoding primitives and the length+checksum section framing are
 * the shared machinery of util/binary_io (also used by .psum result
 * summaries). Strings are u32 length + raw bytes. An event record is:
 * f64 arrival,
 * u8 type, i32 node, i32 pageId, f64 x, f64 y, f64x2 callback workload,
 * 4 x f64x2 render-stage workloads, u8 issuesNetwork, u64 classKey.
 *
 * TraceReader is two-phase: open() validates magic/version/provenance
 * only (cheap; what CorpusStore iteration uses to stream a manifest
 * without decoding every event), readTrace() decodes and checks the
 * events section. All failures produce a diagnostic via error(), never
 * a crash.
 */

#ifndef PES_CORPUS_TRACE_FORMAT_HH
#define PES_CORPUS_TRACE_FORMAT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.hh"
#include "util/binary_io.hh"

namespace pes {

/** The .ptrc version this build writes (readers reject anything else). */
constexpr uint32_t kPtrcVersion = 1;

/** Where a recorded trace came from (stored in the provenance block). */
struct TraceProvenance
{
    /** Platform the trace was synthesized/repaired against. */
    std::string device;
    /** Free-form key/value pairs (generator, mutation op, ...). */
    std::vector<std::pair<std::string, std::string>> params;
};

/** Decoded .ptrc header: everything except the event payload. */
struct PtrcHeader
{
    uint32_t version = kPtrcVersion;
    std::string app;
    uint64_t userSeed = 0;
    TraceProvenance provenance;
    uint64_t eventCount = 0;
    /** Events-section checksum as stored in the file. */
    uint64_t eventsChecksum = 0;
};

/**
 * Serializer: InteractionTrace -> .ptrc bytes.
 */
class TraceWriter
{
  public:
    /** Encode to a byte string. */
    static std::string toBytes(const InteractionTrace &trace,
                               const TraceProvenance &provenance);

    /** Write to @p path; on failure returns false and sets @p error. */
    static bool writeFile(const InteractionTrace &trace,
                          const TraceProvenance &provenance,
                          const std::string &path, std::string *error);
};

/**
 * Deserializer with section validation and diagnostics.
 */
class TraceReader
{
  public:
    /** Open @p path and validate magic/version/provenance. */
    bool open(const std::string &path);

    /** Same, from an in-memory byte string (takes ownership). */
    bool openBytes(std::string bytes);

    /** Header of the opened file (valid after a successful open). */
    const PtrcHeader &header() const { return header_; }

    /**
     * Decode the events section and verify its checksum; nullopt (with
     * error() set) on truncation or corruption.
     */
    std::optional<InteractionTrace> readTrace();

    /** Human-readable reason of the last failure. */
    const std::string &error() const { return error_; }

  private:
    bool fail(const std::string &why);
    bool parseHeader();

    std::string bytes_;
    /** Events-section frame (decoded lazily by readTrace). */
    BinarySection events_;
    PtrcHeader header_;
    std::string error_;
    bool opened_ = false;
};

/**
 * Events-section checksum of a trace: the corpus-manifest fingerprint.
 * Matches the eventsChecksum a TraceWriter would store.
 */
uint64_t traceChecksum(const InteractionTrace &trace);

} // namespace pes

#endif // PES_CORPUS_TRACE_FORMAT_HH
