#include "corpus/trace_mutator.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hh"
#include "util/rng.hh"

namespace pes {

namespace {

/** Operator tags keep each mutation's derived seeds disjoint. */
enum : uint64_t
{
    kTagTimeScale = 0x7501,
    kTagEventDrop = 0x7502,
    kTagBurst = 0x7503,
    kTagConcat = 0x7504,
    kTagJitter = 0x7505,
};

/** Log-space spread of jitterWorkloads at magnitude 1. Calibrated so a
 *  full-magnitude jitter spans roughly 0.5x-2x of the recorded work —
 *  the same order as the per-instance noise the generator synthesizes,
 *  but decorrelated from the event-class structure the estimators key
 *  on. */
constexpr double kJitterSigmaAtFull = 0.35;

uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Mutation randomness: a pure function of (mutator, trace, op, param). */
Rng
mutationRng(uint64_t mutator_seed, const InteractionTrace &trace,
            uint64_t tag, uint64_t param)
{
    return Rng(hashCombine(hashCombine(mutator_seed, trace.userSeed),
                           hashCombine(tag, param)));
}

uint64_t
derivedUserSeed(uint64_t mutator_seed, uint64_t source_seed, uint64_t tag,
                uint64_t param)
{
    return hashCombine(hashCombine(mutator_seed, source_seed),
                       hashCombine(tag, ~param));
}

} // namespace

InteractionTrace
TraceMutator::timeScale(const InteractionTrace &trace, double factor) const
{
    panic_if(!(factor > 0.0), "timeScale: factor must be > 0");
    InteractionTrace out = trace;
    out.userSeed = derivedUserSeed(seed_, trace.userSeed, kTagTimeScale,
                                   doubleBits(factor));
    for (TraceEvent &e : out.events)
        e.arrival *= factor;
    return out;
}

InteractionTrace
TraceMutator::dropEvents(const InteractionTrace &trace,
                         double probability) const
{
    panic_if(probability < 0.0 || probability > 1.0,
             "dropEvents: probability must be in [0, 1]");
    Rng rng = mutationRng(seed_, trace, kTagEventDrop,
                          doubleBits(probability));
    InteractionTrace out;
    out.appName = trace.appName;
    out.userSeed = derivedUserSeed(seed_, trace.userSeed, kTagEventDrop,
                                   doubleBits(probability));
    out.events.reserve(trace.events.size());
    for (size_t i = 0; i < trace.events.size(); ++i) {
        // Draw for every event (not just kept ones) so the stream stays
        // aligned regardless of outcomes.
        const bool drop = rng.bernoulli(probability);
        if (i == 0 || !drop)
            out.events.push_back(trace.events[i]);
    }
    return out;
}

InteractionTrace
TraceMutator::injectBursts(const InteractionTrace &trace, double rate,
                           int burst_len) const
{
    panic_if(rate < 0.0 || rate > 1.0,
             "injectBursts: rate must be in [0, 1]");
    panic_if(burst_len < 1, "injectBursts: burst length must be >= 1");
    Rng rng = mutationRng(seed_, trace, kTagBurst,
                          hashCombine(doubleBits(rate),
                                      static_cast<uint64_t>(burst_len)));
    constexpr TimeMs kEchoSpacingMs = 80.0;

    InteractionTrace out;
    out.appName = trace.appName;
    out.userSeed = derivedUserSeed(seed_, trace.userSeed, kTagBurst,
                                   hashCombine(doubleBits(rate),
                                               static_cast<uint64_t>(
                                                   burst_len)));
    out.events.reserve(trace.events.size());
    for (const TraceEvent &e : trace.events) {
        out.events.push_back(e);
        const Interaction kind = interactionOf(e.type);
        if (kind != Interaction::Tap && kind != Interaction::Move)
            continue;
        if (!rng.bernoulli(rate))
            continue;
        for (int k = 1; k <= burst_len; ++k) {
            TraceEvent echo = e;
            echo.arrival = e.arrival + kEchoSpacingMs * k;
            // Repeated inputs hit warm caches; jitter around a slightly
            // lighter replay of the anchor's workload.
            const double scale = rng.uniform(0.7, 1.1);
            echo.callbackWork = e.callbackWork.scaled(scale);
            echo.renderWork = e.renderWork.scaled(scale);
            // Only the first submission of a handler issues the network
            // request; echoes are pure recomputation.
            echo.issuesNetwork = false;
            out.events.push_back(echo);
        }
    }
    // Echoes can overtake later recorded events; restore time order.
    // stable_sort keeps the record/echo order of equal arrivals, so the
    // result is deterministic.
    std::stable_sort(out.events.begin(), out.events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.arrival < b.arrival;
                     });
    return out;
}

InteractionTrace
TraceMutator::concatenate(const InteractionTrace &first,
                          const InteractionTrace &second,
                          TimeMs gap_ms) const
{
    panic_if(first.appName != second.appName,
             "concatenate: traces belong to different apps ('%s' vs '%s')",
             first.appName.c_str(), second.appName.c_str());
    panic_if(gap_ms < 0.0, "concatenate: gap must be >= 0");

    InteractionTrace out;
    out.appName = first.appName;
    out.userSeed = derivedUserSeed(seed_, first.userSeed, kTagConcat,
                                   second.userSeed);
    out.events = first.events;
    out.events.reserve(first.events.size() + second.events.size());
    const TimeMs shift = first.duration() + gap_ms;
    for (TraceEvent e : second.events) {
        e.arrival += shift;
        out.events.push_back(e);
    }
    return out;
}

InteractionTrace
TraceMutator::jitterWorkloads(const InteractionTrace &trace,
                              double magnitude) const
{
    panic_if(magnitude < 0.0 || magnitude > 1.0,
             "jitterWorkloads: magnitude must be in [0, 1]");
    Rng rng = mutationRng(seed_, trace, kTagJitter,
                          doubleBits(magnitude));
    InteractionTrace out = trace;
    out.userSeed = derivedUserSeed(seed_, trace.userSeed, kTagJitter,
                                   doubleBits(magnitude));
    const double sigma = magnitude * kJitterSigmaAtFull;
    for (TraceEvent &e : out.events) {
        // Two independent draws per event — callback and render noise
        // are decorrelated in real pages (handler work vs paint size).
        // At magnitude 0 both factors are exactly exp(0) == 1.0, so the
        // scaled workloads stay bit-identical to the input.
        const double callback_scale = std::exp(rng.normal() * sigma);
        const double render_scale = std::exp(rng.normal() * sigma);
        e.callbackWork = e.callbackWork.scaled(callback_scale);
        e.renderWork = e.renderWork.scaled(render_scale);
    }
    return out;
}

} // namespace pes
