/**
 * @file
 * Deterministic scenario mutation over recorded traces.
 *
 * The 18 paper profiles bound what synthesis can express; mutation opens
 * workloads beyond them by deriving new sessions from recorded ones:
 * compressed/stretched think time (time-scale), flaky-input sessions
 * (event-drop), rage-tap storms (burst-injection), marathon sessions
 * (concatenation), and estimator-hostile workload noise
 * (workload-jitter). Every operator is a pure function of
 * (input trace, parameters, mutator seed): the derived randomness is
 * hashed from the mutator seed and the input's user seed, so the same
 * call always yields byte-identical output — mutated corpora are as
 * reproducible as recorded ones.
 *
 * Each output gets a fresh userSeed derived from the inputs and the
 * operator tag, so mutants never collide with their sources in a
 * CorpusStore.
 */

#ifndef PES_CORPUS_TRACE_MUTATOR_HH
#define PES_CORPUS_TRACE_MUTATOR_HH

#include <cstdint>

#include "trace/trace.hh"

namespace pes {

/**
 * Derives deterministic trace variants.
 */
class TraceMutator
{
  public:
    /** @p seed selects the mutation randomness stream. */
    explicit TraceMutator(uint64_t seed = 0) : seed_(seed) {}

    /** The mutation stream seed. */
    uint64_t seed() const { return seed_; }

    /**
     * Scale every arrival time by @p factor (> 0): < 1 compresses think
     * time (a hurried user), > 1 stretches it. Workloads are untouched.
     */
    InteractionTrace timeScale(const InteractionTrace &trace,
                               double factor) const;

    /**
     * Drop each event independently with probability @p probability in
     * [0, 1]. The first event (the session's initial load) is always
     * kept so the session still opens on a page.
     */
    InteractionTrace dropEvents(const InteractionTrace &trace,
                                double probability) const;

    /**
     * After each tap/move event, with probability @p rate, inject
     * @p burst_len echoes of it at ~80 ms spacing with jittered
     * workloads — the "rage tap" / frantic-scroll stress shape. Echoes
     * keep the anchor's class key (same node, same handler).
     */
    InteractionTrace injectBursts(const InteractionTrace &trace,
                                  double rate, int burst_len) const;

    /**
     * Splice @p second after @p first (same app required), shifting its
     * arrivals past the end of @p first plus @p gap_ms of idle time.
     */
    InteractionTrace concatenate(const InteractionTrace &first,
                                 const InteractionTrace &second,
                                 TimeMs gap_ms) const;

    /**
     * Multiply every event's workload terms (callback and each render
     * stage) by deterministic log-normal noise. @p magnitude in [0, 1]
     * sets the log-space spread (0 leaves every workload bit-exact);
     * arrivals, ordering, event types and network flags are untouched,
     * so this stresses exactly what the Eqn.-1 estimators measure —
     * per-class workload stability — without moving the input timeline.
     */
    InteractionTrace jitterWorkloads(const InteractionTrace &trace,
                                     double magnitude) const;

  private:
    uint64_t seed_;
};

} // namespace pes

#endif // PES_CORPUS_TRACE_MUTATOR_HH
