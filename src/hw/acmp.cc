#include "hw/acmp.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pes {

const char *
coreTypeName(CoreType type)
{
    return type == CoreType::Big ? "big" : "little";
}

std::vector<FreqMhz>
ClusterSpec::frequencies() const
{
    std::vector<FreqMhz> out;
    for (FreqMhz f = fmin; f <= fmax + 1e-9; f += fstep)
        out.push_back(f);
    return out;
}

double
ClusterSpec::voltageAt(FreqMhz f) const
{
    if (fmax <= fmin)
        return vmin;
    const double t = (f - fmin) / (fmax - fmin);
    return vmin + (vmax - vmin) * std::clamp(t, 0.0, 1.0);
}

AcmpPlatform::AcmpPlatform(std::string name, ClusterSpec little,
                           ClusterSpec big, TimeMs dvfs_switch_ms,
                           TimeMs migration_ms)
    : name_(std::move(name)), little_(std::move(little)),
      big_(std::move(big)), dvfsSwitchMs_(dvfs_switch_ms),
      migrationMs_(migration_ms)
{
    panic_if(little_.type != CoreType::Little,
             "little cluster must have type Little");
    panic_if(big_.type != CoreType::Big, "big cluster must have type Big");
    for (FreqMhz f : little_.frequencies())
        configs_.push_back({CoreType::Little, f});
    for (FreqMhz f : big_.frequencies())
        configs_.push_back({CoreType::Big, f});
}

AcmpPlatform
AcmpPlatform::exynos5410()
{
    ClusterSpec a7;
    a7.name = "Cortex-A7";
    a7.type = CoreType::Little;
    a7.fmin = 350.0;
    a7.fmax = 600.0;
    a7.fstep = 50.0;
    a7.cpiFactor = 2.1;   // in-order 2-wide vs. out-of-order 3-wide
    a7.vmin = 0.90;
    a7.vmax = 1.05;
    a7.dynCoeff = 0.16;
    a7.leakCoeff = 30.0;

    ClusterSpec a15;
    a15.name = "Cortex-A15";
    a15.type = CoreType::Big;
    a15.fmin = 800.0;
    a15.fmax = 1800.0;
    a15.fstep = 100.0;
    a15.cpiFactor = 1.0;
    a15.vmin = 0.92;
    a15.vmax = 1.25;
    a15.dynCoeff = 0.56;
    a15.leakCoeff = 160.0;

    // Paper Sec. 6.3: frequency switch ~100 us, core migration ~20 us.
    return AcmpPlatform("Exynos 5410", a7, a15, 0.1, 0.02);
}

AcmpPlatform
AcmpPlatform::tegraParker()
{
    // Jetson TX2: Denver2 (big-class) + Cortex-A57. We expose the A57
    // quad as the efficiency cluster and Denver2 as the performance
    // cluster; ladders follow the TX2's published operating points
    // (coarsened to a uniform step).
    ClusterSpec a57;
    a57.name = "Cortex-A57";
    a57.type = CoreType::Little;
    a57.fmin = 345.0;
    a57.fmax = 1113.0;
    a57.fstep = 96.0;
    a57.cpiFactor = 1.35;
    a57.vmin = 0.80;
    a57.vmax = 1.00;
    a57.dynCoeff = 0.30;
    a57.leakCoeff = 60.0;

    ClusterSpec denver;
    denver.name = "Denver2";
    denver.type = CoreType::Big;
    denver.fmin = 1113.0;
    denver.fmax = 2035.0;
    denver.fstep = 115.25;
    denver.cpiFactor = 1.0;
    denver.vmin = 0.85;
    denver.vmax = 1.15;
    denver.dynCoeff = 0.42;
    denver.leakCoeff = 110.0;

    return AcmpPlatform("NVIDIA Parker (TX2)", a57, denver, 0.1, 0.02);
}

int
AcmpPlatform::configIndex(const AcmpConfig &cfg) const
{
    for (size_t i = 0; i < configs_.size(); ++i) {
        if (configs_[i].core == cfg.core &&
            std::abs(configs_[i].freq - cfg.freq) < 1e-6) {
            return static_cast<int>(i);
        }
    }
    panic("configIndex: <%s, %.0f MHz> is not a valid configuration",
          coreTypeName(cfg.core), cfg.freq);
}

TimeMs
AcmpPlatform::switchCost(const AcmpConfig &from, const AcmpConfig &to) const
{
    TimeMs cost = 0.0;
    if (from.core != to.core)
        cost += migrationMs_;
    if (std::abs(from.freq - to.freq) > 1e-9)
        cost += dvfsSwitchMs_;
    return cost;
}

} // namespace pes
