/**
 * @file
 * Asymmetric chip-multiprocessor (ACMP) platform model.
 *
 * Models the scheduling-visible aspects of a big.LITTLE SoC: two core
 * clusters with distinct frequency ladders and microarchitectural strength,
 * the set of <core, frequency> execution configurations exposed to the
 * scheduler, and the cost of moving between configurations (DVFS transition
 * and core migration).
 *
 * The default preset mirrors the paper's evaluation platform, the Samsung
 * Exynos 5410 (ODROID XU+E): four out-of-order Cortex-A15 cores at
 * 800 MHz..1.8 GHz in 100 MHz steps and four in-order Cortex-A7 cores at
 * 350..600 MHz in 50 MHz steps — 17 configurations in total. A second preset
 * models NVIDIA's Parker SoC (Jetson TX2) for the paper's "other devices"
 * sensitivity study (Sec. 6.5).
 */

#ifndef PES_HW_ACMP_HH
#define PES_HW_ACMP_HH

#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace pes {

/** Which cluster a configuration runs on. */
enum class CoreType { Little = 0, Big = 1 };

/** Human-readable name of a core type. */
const char *coreTypeName(CoreType type);

/**
 * One ACMP execution configuration: a <core, frequency> tuple
 * (the scheduling knob of the paper, Sec. 4.1).
 */
struct AcmpConfig
{
    CoreType core = CoreType::Little;
    FreqMhz freq = 0.0;

    bool operator==(const AcmpConfig &other) const
    {
        return core == other.core && freq == other.freq;
    }
    bool operator!=(const AcmpConfig &other) const
    {
        return !(*this == other);
    }
};

/**
 * Static description of one core cluster.
 */
struct ClusterSpec
{
    /** Marketing name, e.g. "Cortex-A15". */
    std::string name;
    /** Cluster type. */
    CoreType type = CoreType::Little;
    /** Lowest operating frequency (MHz). */
    FreqMhz fmin = 0.0;
    /** Highest operating frequency (MHz). */
    FreqMhz fmax = 0.0;
    /** DVFS step (MHz). */
    FreqMhz fstep = 0.0;
    /**
     * Cycle inflation relative to the reference (big) core: an event that
     * needs Ndep cycles on the big core needs cpiFactor * Ndep cycles here.
     * The big cluster has cpiFactor 1.0 by definition.
     */
    double cpiFactor = 1.0;
    /** Supply voltage at fmin (V). */
    double vmin = 0.9;
    /** Supply voltage at fmax (V). */
    double vmax = 1.2;
    /** Dynamic power coefficient (mW per V^2 per MHz). */
    double dynCoeff = 0.5;
    /** Leakage coefficient (mW per V). */
    double leakCoeff = 100.0;

    /** All operating frequencies, ascending. */
    std::vector<FreqMhz> frequencies() const;

    /** Supply voltage at frequency @p f (linear fmin..fmax interpolation). */
    double voltageAt(FreqMhz f) const;
};

/**
 * The ACMP platform: two clusters plus configuration-transition costs.
 */
class AcmpPlatform
{
  public:
    /**
     * @param name Platform name for reports.
     * @param little Little-cluster description.
     * @param big Big-cluster description.
     * @param dvfs_switch_ms Cost of a frequency change within a cluster.
     * @param migration_ms Cost of migrating the thread across clusters.
     */
    AcmpPlatform(std::string name, ClusterSpec little, ClusterSpec big,
                 TimeMs dvfs_switch_ms, TimeMs migration_ms);

    /** The paper's evaluation SoC (Exynos 5410 / ODROID XU+E). */
    static AcmpPlatform exynos5410();

    /** NVIDIA Parker (Jetson TX2) for the Sec. 6.5 portability study. */
    static AcmpPlatform tegraParker();

    /** Platform name. */
    const std::string &name() const { return name_; }

    /** Cluster description for @p type. */
    const ClusterSpec &cluster(CoreType type) const
    {
        return type == CoreType::Big ? big_ : little_;
    }

    /** All <core, frequency> configurations (little ascending, then big). */
    const std::vector<AcmpConfig> &configs() const { return configs_; }

    /** Number of configurations. */
    int numConfigs() const { return static_cast<int>(configs_.size()); }

    /** Dense index of @p cfg in configs(); panics when @p cfg is invalid. */
    int configIndex(const AcmpConfig &cfg) const;

    /** Configuration at dense index @p idx. */
    const AcmpConfig &configAt(int idx) const
    {
        panic_if(idx < 0 || idx >= numConfigs(),
                 "configAt: index %d out of range [0, %d)", idx,
                 numConfigs());
        return configs_[static_cast<size_t>(idx)];
    }

    /** Highest-performance configuration (big @ fmax). */
    AcmpConfig maxConfig() const { return {CoreType::Big, big_.fmax}; }

    /** Lowest-power configuration (little @ fmin). */
    AcmpConfig minConfig() const
    {
        return {CoreType::Little, little_.fmin};
    }

    /**
     * Time cost of switching from @p from to @p to: cluster migration plus a
     * DVFS transition when the target frequency differs. Zero when equal.
     */
    TimeMs switchCost(const AcmpConfig &from, const AcmpConfig &to) const;

    /** DVFS transition cost (paper: ~100 us). */
    TimeMs dvfsSwitchMs() const { return dvfsSwitchMs_; }

    /** Cross-cluster migration cost (paper: ~20 us). */
    TimeMs migrationMs() const { return migrationMs_; }

  private:
    std::string name_;
    ClusterSpec little_;
    ClusterSpec big_;
    TimeMs dvfsSwitchMs_;
    TimeMs migrationMs_;
    std::vector<AcmpConfig> configs_;
};

} // namespace pes

#endif // PES_HW_ACMP_HH
