#include "hw/dvfs_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pes {

DvfsLatencyModel::DvfsLatencyModel(const AcmpPlatform &platform)
    : platform_(&platform)
{
}

Workload
DvfsLatencyModel::solveTwoPoint(const AcmpConfig &cfg1, TimeMs t1,
                                const AcmpConfig &cfg2, TimeMs t2) const
{
    const double k1 = cycleCoeff(cfg1);
    const double k2 = cycleCoeff(cfg2);
    panic_if(std::abs(k1 - k2) < 1e-12,
             "solveTwoPoint: configurations have equal cycle coefficients");
    // t1 = tmem + k1 * ndep; t2 = tmem + k2 * ndep.
    const double ndep = (t1 - t2) / (k1 - k2);
    const double tmem = t1 - k1 * ndep;
    Workload work;
    work.ndep = std::max(0.0, ndep);
    work.tmemMs = std::max(0.0, tmem);
    return work;
}

} // namespace pes
