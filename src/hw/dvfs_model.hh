/**
 * @file
 * Classical DVFS analytical latency model (paper Eqn. 1).
 *
 * Event latency is modeled as T = Tmem + Ndep / f, where Tmem is the
 * frequency-independent memory time and Ndep is the number of CPU cycles
 * not overlapped with memory accesses (Xie et al., PLDI'03; used by the
 * paper and its baselines). Ndep is expressed in cycles of the reference
 * (big) core; the little cluster inflates it by its cpiFactor.
 */

#ifndef PES_HW_DVFS_MODEL_HH
#define PES_HW_DVFS_MODEL_HH

#include "hw/acmp.hh"
#include "util/types.hh"

namespace pes {

/**
 * The frequency-invariant description of one piece of work.
 */
struct Workload
{
    /** Memory-bound time, independent of core/frequency (ms). */
    TimeMs tmemMs = 0.0;
    /** Compute cycles on the reference (big) core (mega-cycles). */
    MegaCycles ndep = 0.0;

    /** Elementwise sum. */
    Workload operator+(const Workload &other) const
    {
        return {tmemMs + other.tmemMs, ndep + other.ndep};
    }
    /** Elementwise scale. */
    Workload scaled(double factor) const
    {
        return {tmemMs * factor, ndep * factor};
    }

    bool operator==(const Workload &other) const
    {
        return tmemMs == other.tmemMs && ndep == other.ndep;
    }
    bool operator!=(const Workload &other) const
    {
        return !(*this == other);
    }
};

/**
 * Evaluates Eqn. 1 over a platform's configurations and inverts it from
 * measurements (the "solve the system of equations" step of Sec. 5.3).
 */
class DvfsLatencyModel
{
  public:
    explicit DvfsLatencyModel(const AcmpPlatform &platform);

    /** Latency of @p work on configuration @p cfg (Eqn. 1). */
    TimeMs latency(const Workload &work, const AcmpConfig &cfg) const
    {
        return work.tmemMs + cycleCoeff(cfg) * work.ndep;
    }

    /** Latency by dense configuration index. */
    TimeMs latencyAt(const Workload &work, int config_index) const
    {
        return latency(work, platform_->configAt(config_index));
    }

    /**
     * The "cycle time" coefficient k such that latency = tmem + k * ndep
     * for configuration @p cfg (ms per mega-cycle).
     */
    double cycleCoeff(const AcmpConfig &cfg) const
    {
        // ms per mega-cycle: 1000 * cpi / f[MHz].
        return 1000.0 * platform_->cluster(cfg.core).cpiFactor /
               cfg.freq;
    }

    /**
     * Recover (Tmem, Ndep) from two latency measurements on distinct
     * configurations. Exact when the measurements obey Eqn. 1; results are
     * clamped to be non-negative. Panics when the two configurations have
     * identical cycle coefficients (singular system).
     */
    Workload solveTwoPoint(const AcmpConfig &cfg1, TimeMs t1,
                           const AcmpConfig &cfg2, TimeMs t2) const;

    /** The platform the model evaluates against. */
    const AcmpPlatform &platform() const { return *platform_; }

  private:
    const AcmpPlatform *platform_;
};

} // namespace pes

#endif // PES_HW_DVFS_MODEL_HH
