#include "hw/energy_meter.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pes {

EnergyMj
EnergyMeter::totalEnergy() const
{
    EnergyMj total = 0.0;
    for (const Segment &s : segments_)
        total += energyOf(s.power, s.t1 - s.t0);
    return total;
}

EnergyMj
EnergyMeter::energyOfTag(EnergyTag tag) const
{
    EnergyMj total = 0.0;
    for (const Segment &s : segments_) {
        if (s.tag == tag)
            total += energyOf(s.power, s.t1 - s.t0);
    }
    return total;
}

EnergyTotals
EnergyMeter::tagTotals() const
{
    EnergyTotals totals;
    for (const Segment &s : segments_) {
        const EnergyMj e = energyOf(s.power, s.t1 - s.t0);
        totals.total += e;
        totals.byTag[static_cast<int>(s.tag)] += e;
    }
    return totals;
}

EnergyMj
EnergyMeter::energyOfSegment(uint64_t id) const
{
    panic_if(id >= segments_.size(), "energyOfSegment: unknown id");
    const Segment &s = segments_[id];
    return energyOf(s.power, s.t1 - s.t0);
}

PowerMw
EnergyMeter::averagePower() const
{
    if (duration_ <= 0.0)
        return 0.0;
    return totalEnergy() / duration_ * 1000.0;
}

std::vector<PowerMw>
EnergyMeter::sampleTrace(double rate_hz) const
{
    panic_if(rate_hz <= 0.0, "EnergyMeter: sample rate must be positive");
    const TimeMs step = 1000.0 / rate_hz;
    const auto samples = static_cast<size_t>(duration_ / step) + 1;
    std::vector<PowerMw> trace(samples, 0.0);
    for (const Segment &s : segments_) {
        auto first = static_cast<size_t>(std::ceil(s.t0 / step));
        for (size_t i = first; i < samples; ++i) {
            const TimeMs t = static_cast<double>(i) * step;
            if (t >= s.t1)
                break;
            trace[i] += s.power;
        }
    }
    return trace;
}

} // namespace pes
