#include "hw/energy_meter.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pes {

uint64_t
EnergyMeter::addSegment(TimeMs t0, TimeMs t1, PowerMw power, EnergyTag tag)
{
    panic_if(t1 < t0 - 1e-9, "EnergyMeter: segment ends before it starts "
             "(t0=%.6f, t1=%.6f)", t0, t1);
    segments_.push_back({t0, std::max(t0, t1), power, tag});
    duration_ = std::max(duration_, t1);
    return segments_.size() - 1;
}

void
EnergyMeter::retag(uint64_t id, EnergyTag tag)
{
    panic_if(id >= segments_.size(), "EnergyMeter: retag of unknown id");
    segments_[id].tag = tag;
}

EnergyMj
EnergyMeter::totalEnergy() const
{
    EnergyMj total = 0.0;
    for (const Segment &s : segments_)
        total += energyOf(s.power, s.t1 - s.t0);
    return total;
}

EnergyMj
EnergyMeter::energyOfTag(EnergyTag tag) const
{
    EnergyMj total = 0.0;
    for (const Segment &s : segments_) {
        if (s.tag == tag)
            total += energyOf(s.power, s.t1 - s.t0);
    }
    return total;
}

EnergyMj
EnergyMeter::energyOfSegment(uint64_t id) const
{
    panic_if(id >= segments_.size(), "energyOfSegment: unknown id");
    const Segment &s = segments_[id];
    return energyOf(s.power, s.t1 - s.t0);
}

PowerMw
EnergyMeter::averagePower() const
{
    if (duration_ <= 0.0)
        return 0.0;
    return totalEnergy() / duration_ * 1000.0;
}

std::vector<PowerMw>
EnergyMeter::sampleTrace(double rate_hz) const
{
    panic_if(rate_hz <= 0.0, "EnergyMeter: sample rate must be positive");
    const TimeMs step = 1000.0 / rate_hz;
    const auto samples = static_cast<size_t>(duration_ / step) + 1;
    std::vector<PowerMw> trace(samples, 0.0);
    for (const Segment &s : segments_) {
        auto first = static_cast<size_t>(std::ceil(s.t0 / step));
        for (size_t i = first; i < samples; ++i) {
            const TimeMs t = static_cast<double>(i) * step;
            if (t >= s.t1)
                break;
            trace[i] += s.power;
        }
    }
    return trace;
}

} // namespace pes
