/**
 * @file
 * Energy accounting for a simulation run.
 *
 * Stand-in for the paper's NI DAQ X-6366 measurement setup: the simulator
 * reports piecewise-constant power segments; the meter integrates them into
 * energy, keeps per-purpose tags (busy / idle / transition overhead /
 * squashed speculative work), and can materialize a fixed-rate sample trace
 * like the 1 kHz waveform the DAQ captures.
 *
 * Segments carry ids so speculative work can be re-tagged once its fate
 * (commit vs. squash) is known — exactly how mispredict waste is accounted.
 */

#ifndef PES_HW_ENERGY_METER_HH
#define PES_HW_ENERGY_METER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace pes {

/** Purpose of an energy segment. */
enum class EnergyTag
{
    Busy = 0,           ///< committed useful execution
    Idle,               ///< main thread idle
    Overhead,           ///< DVFS switches, migrations, scheduler compute
    SpeculativeWaste,   ///< squashed speculative frame generation
};

/** Number of EnergyTag values. */
constexpr int kNumEnergyTags = 4;

/**
 * Integrates a piecewise-constant power waveform.
 */
class EnergyMeter
{
  public:
    /**
     * Record that the platform drew @p power over [t0, t1).
     * Returns a segment id usable with retag(). Zero-length segments are
     * accepted and return an id but contribute no energy.
     */
    uint64_t addSegment(TimeMs t0, TimeMs t1, PowerMw power, EnergyTag tag);

    /** Change the tag of segment @p id (e.g. Busy -> SpeculativeWaste). */
    void retag(uint64_t id, EnergyTag tag);

    /** Total integrated energy. */
    EnergyMj totalEnergy() const;

    /** Energy attributed to @p tag. */
    EnergyMj energyOfTag(EnergyTag tag) const;

    /** Energy of one segment by id. */
    EnergyMj energyOfSegment(uint64_t id) const;

    /** Latest segment end time seen (the waveform duration). */
    TimeMs duration() const { return duration_; }

    /** Average power over the waveform duration (0 when empty). */
    PowerMw averagePower() const;

    /**
     * Emulate the DAQ: sample the power waveform at @p rate_hz and return
     * one power value per sample instant from t=0 to duration().
     * Instants not covered by any segment read 0.
     */
    std::vector<PowerMw> sampleTrace(double rate_hz) const;

    /** Number of recorded segments. */
    size_t segmentCount() const { return segments_.size(); }

  private:
    struct Segment
    {
        TimeMs t0;
        TimeMs t1;
        PowerMw power;
        EnergyTag tag;
    };

    std::vector<Segment> segments_;
    TimeMs duration_ = 0.0;
};

} // namespace pes

#endif // PES_HW_ENERGY_METER_HH
