/**
 * @file
 * Energy accounting for a simulation run.
 *
 * Stand-in for the paper's NI DAQ X-6366 measurement setup: the simulator
 * reports piecewise-constant power segments; the meter integrates them into
 * energy, keeps per-purpose tags (busy / idle / transition overhead /
 * squashed speculative work), and can materialize a fixed-rate sample trace
 * like the 1 kHz waveform the DAQ captures.
 *
 * Segments carry ids so speculative work can be re-tagged once its fate
 * (commit vs. squash) is known — exactly how mispredict waste is accounted.
 */

#ifndef PES_HW_ENERGY_METER_HH
#define PES_HW_ENERGY_METER_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace pes {

/** Purpose of an energy segment. */
enum class EnergyTag
{
    Busy = 0,           ///< committed useful execution
    Idle,               ///< main thread idle
    Overhead,           ///< DVFS switches, migrations, scheduler compute
    SpeculativeWaste,   ///< squashed speculative frame generation
};

/** Number of EnergyTag values. */
constexpr int kNumEnergyTags = 4;

/**
 * One-pass totals over a meter's segments: the whole-waveform energy
 * plus the per-tag attribution, each accumulated in segment-id order —
 * bit-identical to calling totalEnergy() and energyOfTag() separately,
 * but with a single traversal.
 */
struct EnergyTotals
{
    EnergyMj total = 0.0;
    EnergyMj byTag[kNumEnergyTags] = {0.0, 0.0, 0.0, 0.0};

    EnergyMj of(EnergyTag tag) const
    {
        return byTag[static_cast<int>(tag)];
    }
};

/**
 * Integrates a piecewise-constant power waveform.
 */
class EnergyMeter
{
  public:
    /**
     * Record that the platform drew @p power over [t0, t1).
     * Returns a segment id usable with retag(). Zero-length segments are
     * accepted and return an id but contribute no energy.
     */
    uint64_t addSegment(TimeMs t0, TimeMs t1, PowerMw power, EnergyTag tag)
    {
        panic_if(t1 < t0 - 1e-9,
                 "EnergyMeter: segment ends before it starts "
                 "(t0=%.6f, t1=%.6f)", t0, t1);
        segments_.push_back({t0, std::max(t0, t1), power, tag});
        duration_ = std::max(duration_, t1);
        return segments_.size() - 1;
    }

    /** Change the tag of segment @p id (e.g. Busy -> SpeculativeWaste). */
    void retag(uint64_t id, EnergyTag tag)
    {
        panic_if(id >= segments_.size(),
                 "EnergyMeter: retag of unknown id");
        segments_[id].tag = tag;
    }

    /** Total integrated energy. */
    EnergyMj totalEnergy() const;

    /** Energy attributed to @p tag. */
    EnergyMj energyOfTag(EnergyTag tag) const;

    /** Total and per-tag energy in one traversal (see EnergyTotals). */
    EnergyTotals tagTotals() const;

    /** Energy of one segment by id. */
    EnergyMj energyOfSegment(uint64_t id) const;

    /** Latest segment end time seen (the waveform duration). */
    TimeMs duration() const { return duration_; }

    /** Average power over the waveform duration (0 when empty). */
    PowerMw averagePower() const;

    /**
     * Emulate the DAQ: sample the power waveform at @p rate_hz and return
     * one power value per sample instant from t=0 to duration().
     * Instants not covered by any segment read 0.
     */
    std::vector<PowerMw> sampleTrace(double rate_hz) const;

    /** Number of recorded segments. */
    size_t segmentCount() const { return segments_.size(); }

    /**
     * Forget every segment, keeping the allocated storage so a reused
     * meter does not re-grow its segment vector run after run.
     */
    void reset()
    {
        segments_.clear();
        duration_ = 0.0;
    }

  private:
    struct Segment
    {
        TimeMs t0;
        TimeMs t1;
        PowerMw power;
        EnergyTag tag;
    };

    std::vector<Segment> segments_;
    TimeMs duration_ = 0.0;
};

} // namespace pes

#endif // PES_HW_ENERGY_METER_HH
