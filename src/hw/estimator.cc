#include "hw/estimator.hh"

#include <algorithm>
#include <cmath>

namespace pes {

TwoPointEstimator::TwoPointEstimator(const DvfsLatencyModel &model)
    : model_(&model)
{
}

bool
TwoPointEstimator::hasEstimate(uint64_t key) const
{
    const auto it = entries_.find(key);
    return it != entries_.end() && it->second.fit.has_value();
}

std::optional<Workload>
TwoPointEstimator::estimate(uint64_t key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second.fit;
}

void
TwoPointEstimator::record(uint64_t key, const AcmpConfig &cfg,
                          TimeMs latency)
{
    if (!(latency > 0.0) || !std::isfinite(latency))
        return;
    Entry &entry = entries_[key];
    entry.points.emplace_back(model_->cycleCoeff(cfg), latency);
    refit(entry);
}

void
TwoPointEstimator::refit(Entry &entry) const
{
    // Least squares of t = tmem + k * ndep over all (k, t) points.
    // Needs at least two distinct k values to be identifiable.
    const size_t n = entry.points.size();
    if (n < 2)
        return;

    double sum_k = 0.0, sum_t = 0.0, sum_kk = 0.0, sum_kt = 0.0;
    for (const auto &[k, t] : entry.points) {
        sum_k += k;
        sum_t += t;
        sum_kk += k * k;
        sum_kt += k * t;
    }
    const double nd = static_cast<double>(n);
    const double denom = nd * sum_kk - sum_k * sum_k;
    if (std::abs(denom) < 1e-12)
        return;  // all measurements at the same coefficient

    const double ndep = (nd * sum_kt - sum_k * sum_t) / denom;
    const double tmem = (sum_t - ndep * sum_k) / nd;
    Workload fit;
    fit.ndep = std::max(0.0, ndep);
    fit.tmemMs = std::max(0.0, tmem);
    entry.fit = fit;
}

AcmpConfig
TwoPointEstimator::probeConfig(uint64_t key) const
{
    const AcmpPlatform &platform = model_->platform();
    const int count = measurementCount(key);
    if (count == 0)
        return platform.maxConfig();
    // Second probe: big cluster at a clearly different frequency so the
    // two-point system is well conditioned, but still fast enough that an
    // unknown deadline is unlikely to be blown.
    const ClusterSpec &big = platform.cluster(CoreType::Big);
    const FreqMhz mid =
        big.fmin + big.fstep *
        std::round((big.fmax - big.fmin) * 0.6 / big.fstep);
    return {CoreType::Big, mid};
}

std::optional<std::pair<double, TimeMs>>
TwoPointEstimator::firstMeasurement(uint64_t key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end() || it->second.points.empty())
        return std::nullopt;
    return it->second.points.front();
}

int
TwoPointEstimator::measurementCount(uint64_t key) const
{
    const auto it = entries_.find(key);
    return it == entries_.end()
        ? 0 : static_cast<int>(it->second.points.size());
}

} // namespace pes
