/**
 * @file
 * Online per-event-class workload estimator.
 *
 * Paper Sec. 5.3: "For the first two times an event is encountered, we
 * measure its latency under two different frequencies and solve the system
 * of equations as formulated by Eqn. 1 to obtain the values of Tmem and
 * Ndep." This class implements that protocol: it stores measurements per
 * event class (keyed by a caller-chosen 64-bit id), proposes probe
 * configurations for the first two encounters, and afterwards answers
 * workload estimates via a least-squares fit of all measurements (which
 * degenerates to the exact two-point solution when exactly two are known).
 */

#ifndef PES_HW_ESTIMATOR_HH
#define PES_HW_ESTIMATOR_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hw/dvfs_model.hh"

namespace pes {

/**
 * Two-point (and beyond) Tmem/Ndep estimator keyed by event class.
 */
class TwoPointEstimator
{
  public:
    explicit TwoPointEstimator(const DvfsLatencyModel &model);

    /** True once at least two distinct-coefficient measurements exist. */
    bool hasEstimate(uint64_t key) const;

    /** Current workload estimate; nullopt before two measurements. */
    std::optional<Workload> estimate(uint64_t key) const;

    /**
     * Record an observed latency of event class @p key on @p cfg.
     * Non-positive or non-finite latencies are ignored.
     */
    void record(uint64_t key, const AcmpConfig &cfg, TimeMs latency);

    /**
     * Configuration to use for a measurement probe. First encounter: big @
     * fmax (safe for unknown deadlines). Second: big @ a mid frequency so
     * the two-point system is well conditioned.
     */
    AcmpConfig probeConfig(uint64_t key) const;

    /** Number of recorded measurements for @p key. */
    int measurementCount(uint64_t key) const;

    /**
     * The first recorded (cycle coefficient, latency) measurement of
     * @p key, when one exists (for one-point estimation).
     */
    std::optional<std::pair<double, TimeMs>>
    firstMeasurement(uint64_t key) const;

    /** Number of event classes with at least one measurement. */
    size_t knownClasses() const { return entries_.size(); }

  private:
    struct Entry
    {
        // (cycle coefficient, latency) pairs.
        std::vector<std::pair<double, TimeMs>> points;
        std::optional<Workload> fit;
    };

    void refit(Entry &entry) const;

    const DvfsLatencyModel *model_;
    std::unordered_map<uint64_t, Entry> entries_;
};

} // namespace pes

#endif // PES_HW_ESTIMATOR_HH
