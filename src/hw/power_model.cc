#include "hw/power_model.hh"

#include <cmath>
#include <fstream>

#include "util/logging.hh"
#include "util/strings.hh"

namespace pes {

namespace {

/** Always-on domain charged to each cluster while idle (mW). */
constexpr PowerMw kIdleFloorMw = 6.0;
/** Fraction of leakage that survives clock gating while idle. */
constexpr double kIdleLeakFraction = 0.35;

PowerMw
clusterBusyPower(const ClusterSpec &spec, FreqMhz f)
{
    const double v = spec.voltageAt(f);
    const double dynamic = spec.dynCoeff * v * v * f;
    const double leak = spec.leakCoeff * v;
    return dynamic + leak;
}

PowerMw
clusterIdlePower(const ClusterSpec &spec)
{
    const double v = spec.voltageAt(spec.fmin);
    return kIdleLeakFraction * spec.leakCoeff * v + kIdleFloorMw;
}

} // namespace

PowerModel::PowerModel(const AcmpPlatform &platform)
    : platform_(&platform)
{
    busy_.reserve(platform.configs().size());
    for (const AcmpConfig &cfg : platform.configs())
        busy_.push_back(clusterBusyPower(platform.cluster(cfg.core),
                                         cfg.freq));
    idleLittle_ = clusterIdlePower(platform.cluster(CoreType::Little));
    idleBig_ = clusterIdlePower(platform.cluster(CoreType::Big));
}

PowerMw
PowerModel::busyPower(const AcmpConfig &cfg) const
{
    return busyPowerAt(platform_->configIndex(cfg));
}

PowerMw
PowerModel::busyPowerAt(int config_index) const
{
    panic_if(config_index < 0 ||
             config_index >= static_cast<int>(busy_.size()),
             "busyPowerAt: bad config index %d", config_index);
    return busy_[static_cast<size_t>(config_index)];
}

EnergyMj
PowerModel::busyEnergy(const AcmpConfig &cfg, TimeMs duration) const
{
    return energyOf(busyPower(cfg), duration);
}

bool
PowerModel::saveToFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out.precision(17);
    out << "# PES power LUT v1: <core> <freq_mhz> <busy_mw>\n";
    out << "platform " << platform_->name() << "\n";
    out << "idle little " << idleLittle_ << "\n";
    out << "idle big " << idleBig_ << "\n";
    for (int i = 0; i < platform_->numConfigs(); ++i) {
        const AcmpConfig &cfg = platform_->configAt(i);
        out << coreTypeName(cfg.core) << " " << cfg.freq << " "
            << busy_[static_cast<size_t>(i)] << "\n";
    }
    return static_cast<bool>(out);
}

std::optional<PowerModel>
PowerModel::loadFromFile(const std::string &path,
                         const AcmpPlatform &platform)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;

    PowerModel model;
    model.platform_ = &platform;
    model.busy_.assign(platform.configs().size(), -1.0);

    std::string line;
    while (std::getline(in, line)) {
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        const auto fields = split(line, ' ');
        if (fields[0] == "platform") {
            continue;
        } else if (fields[0] == "idle" && fields.size() == 3) {
            const double value = std::strtod(fields[2].c_str(), nullptr);
            if (fields[1] == "little")
                model.idleLittle_ = value;
            else if (fields[1] == "big")
                model.idleBig_ = value;
            else
                return std::nullopt;
        } else if (fields.size() == 3) {
            AcmpConfig cfg;
            if (fields[0] == "big")
                cfg.core = CoreType::Big;
            else if (fields[0] == "little")
                cfg.core = CoreType::Little;
            else
                return std::nullopt;
            cfg.freq = std::strtod(fields[1].c_str(), nullptr);
            bool found = false;
            for (int i = 0; i < platform.numConfigs(); ++i) {
                const AcmpConfig &candidate = platform.configAt(i);
                if (candidate.core == cfg.core &&
                    std::abs(candidate.freq - cfg.freq) < 1e-6) {
                    model.busy_[static_cast<size_t>(i)] =
                        std::strtod(fields[2].c_str(), nullptr);
                    found = true;
                    break;
                }
            }
            if (!found)
                return std::nullopt;  // config not on this platform
        } else {
            return std::nullopt;
        }
    }
    for (double p : model.busy_) {
        if (p < 0.0)
            return std::nullopt;  // incomplete table
    }
    return model;
}

} // namespace pes
