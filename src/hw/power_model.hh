/**
 * @file
 * Per-configuration power lookup table.
 *
 * The paper measures the power of every <core, frequency> combination
 * offline, persists the table to a local file and loads it when the
 * application boots (Sec. 5.3). This class reproduces that workflow: the
 * table is built from the platform's voltage/frequency curves (our stand-in
 * for the offline measurement), can be saved to and re-loaded from a plain
 * text file, and answers busy/idle power queries at runtime.
 */

#ifndef PES_HW_POWER_MODEL_HH
#define PES_HW_POWER_MODEL_HH

#include <optional>
#include <string>
#include <vector>

#include "hw/acmp.hh"
#include "util/types.hh"

namespace pes {

/**
 * Power lookup table over the platform's configurations.
 */
class PowerModel
{
  public:
    /** Build the table analytically from the platform's V/f curves. */
    explicit PowerModel(const AcmpPlatform &platform);

    /**
     * Power while the web runtime executes on @p cfg: dynamic switching
     * power plus cluster leakage at the operating voltage.
     */
    PowerMw busyPower(const AcmpConfig &cfg) const;

    /** Busy power by dense configuration index. */
    PowerMw busyPowerAt(int config_index) const;

    /**
     * Idle (clock-gated) power of the @p type cluster. Idle clusters retain
     * leakage at their floor voltage plus a small always-on component.
     */
    PowerMw idlePower(CoreType type) const
    {
        return type == CoreType::Big ? idleBig_ : idleLittle_;
    }

    /** Total platform idle power (both clusters idle). */
    PowerMw platformIdlePower() const { return idleLittle_ + idleBig_; }

    /**
     * Energy of running for @p duration on @p cfg
     * (busy power integrated over the interval).
     */
    EnergyMj busyEnergy(const AcmpConfig &cfg, TimeMs duration) const;

    /** Persist the table; returns false on I/O failure. */
    bool saveToFile(const std::string &path) const;

    /**
     * Load a previously saved table. Returns nullopt when the file is
     * missing/corrupt or does not match @p platform's configuration list.
     */
    static std::optional<PowerModel>
    loadFromFile(const std::string &path, const AcmpPlatform &platform);

  private:
    PowerModel() = default;

    std::vector<PowerMw> busy_;     // indexed by config index
    PowerMw idleLittle_ = 0.0;
    PowerMw idleBig_ = 0.0;
    const AcmpPlatform *platform_ = nullptr;
};

} // namespace pes

#endif // PES_HW_POWER_MODEL_HH
