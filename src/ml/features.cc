#include "ml/features.hh"

#include <cmath>

#include "util/logging.hh"

namespace pes {

const char *
featureName(int index)
{
    switch (index) {
      case 0:
        return "clickable_region_pct";
      case 1:
        return "visible_link_pct";
      case 2:
        return "dist_to_prev_click";
      case 3:
        return "navigations_in_window";
      case 4:
        return "scrolls_in_window";
      default:
        panic("featureName: bad index %d", index);
    }
}

void
FeatureWindow::observe(DomEventType type, double x, double y, NodeId node)
{
    window_.push_back({type, x, y, node});
    while (window_.size() > static_cast<size_t>(kWindowSize))
        window_.pop_front();
}

bool
FeatureWindow::lastEvent(DomEventType &type, NodeId &node) const
{
    if (window_.empty())
        return false;
    type = window_.back().type;
    node = window_.back().node;
    return true;
}

void
FeatureWindow::clear()
{
    window_.clear();
}

bool
FeatureWindow::lastTapPosition(double &x, double &y) const
{
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        if (interactionOf(it->type) == Interaction::Tap) {
            x = it->x;
            y = it->y;
            return true;
        }
    }
    return false;
}

FeatureVector
FeatureWindow::extract(const ViewportStats &stats) const
{
    FeatureVector f;
    f.v[0] = stats.clickableFrac;
    f.v[1] = stats.visibleLinkFrac;

    // Distance between the two most recent tap-class events in the window,
    // normalized by a nominal mobile viewport diagonal so the feature is
    // O(1). Zero when fewer than two taps have been seen.
    constexpr double kDiag = 734.0;  // sqrt(360^2 + 640^2)
    const PastEvent *last_tap = nullptr;
    const PastEvent *prev_tap = nullptr;
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        if (interactionOf(it->type) != Interaction::Tap)
            continue;
        if (!last_tap) {
            last_tap = &*it;
        } else {
            prev_tap = &*it;
            break;
        }
    }
    if (last_tap && prev_tap) {
        const double dx = last_tap->x - prev_tap->x;
        const double dy = last_tap->y - prev_tap->y;
        f.v[2] = std::sqrt(dx * dx + dy * dy) / kDiag;
    }

    int navs = 0;
    int scrolls = 0;
    for (const PastEvent &e : window_) {
        if (interactionOf(e.type) == Interaction::Load)
            ++navs;
        if (interactionOf(e.type) == Interaction::Move)
            ++scrolls;
    }
    // Normalize counts by the window size.
    f.v[3] = static_cast<double>(navs) / kWindowSize;
    f.v[4] = static_cast<double>(scrolls) / kWindowSize;
    return f;
}

} // namespace pes
