/**
 * @file
 * Prediction features (paper Table 1).
 *
 * The event-sequence learner predicts from five features combining
 * application-inherent information with runtime information about the
 * current interaction sequence, computed over a window of the five most
 * recent events:
 *
 *   Application-inherent:  clickable-region % in the viewport,
 *                          visible-link % in the viewport.
 *   Interaction-dependent: distance to the previous click in the window,
 *                          number of navigations in the window,
 *                          number of scrolls in the window.
 *
 * FeatureWindow maintains the rolling event history and materializes the
 * feature vector; it is shared by the runtime predictor and (by design) by
 * the synthetic user model, so the learnability of the traces comes from
 * the same feature family the paper's learner uses.
 */

#ifndef PES_ML_FEATURES_HH
#define PES_ML_FEATURES_HH

#include <array>
#include <deque>

#include "web/dom_analyzer.hh"
#include "web/event_types.hh"

namespace pes {

/** Number of model features (Table 1). */
constexpr int kNumFeatures = 5;

/** Dense feature vector; values are normalized to O(1) ranges. */
struct FeatureVector
{
    std::array<double, kNumFeatures> v{};

    /** Named accessors (indices are part of the serialized model). */
    double clickableFrac() const { return v[0]; }
    double visibleLinkFrac() const { return v[1]; }
    double distToPrevClick() const { return v[2]; }
    double navsInWindow() const { return v[3]; }
    double scrollsInWindow() const { return v[4]; }
};

/** Feature names, aligned with FeatureVector indices. */
const char *featureName(int index);

/**
 * Rolling window over the most recent events of an interaction session.
 */
class FeatureWindow
{
  public:
    /** Window length (the paper uses the five most recent events). */
    static constexpr int kWindowSize = 5;

    /** Record an executed event and the page position it occurred at.
     *  @param node Target node when known (enables hint lookups). */
    void observe(DomEventType type, double x, double y,
                 NodeId node = kInvalidNode);

    /** Reset the window (e.g. at session start). */
    void clear();

    /**
     * Materialize the feature vector given the current viewport statistics
     * (the application-inherent half of Table 1).
     */
    FeatureVector extract(const ViewportStats &stats) const;

    /** Number of events currently in the window. */
    int eventsInWindow() const { return static_cast<int>(window_.size()); }

    /**
     * Position of the most recent tap-class event in the window, if any
     * (used for proximity heuristics and the distance feature).
     */
    bool lastTapPosition(double &x, double &y) const;

    /** Type and node of the most recent event (false when empty). */
    bool lastEvent(DomEventType &type, NodeId &node) const;

  private:
    struct PastEvent
    {
        DomEventType type;
        double x;
        double y;
        NodeId node;
    };

    std::deque<PastEvent> window_;
};

} // namespace pes

#endif // PES_ML_FEATURES_HH
