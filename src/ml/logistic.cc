#include "ml/logistic.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/strings.hh"

namespace pes {

double
sigmoid(double z)
{
    if (z >= 0.0) {
        const double e = std::exp(-z);
        return 1.0 / (1.0 + e);
    }
    const double e = std::exp(z);
    return e / (1.0 + e);
}

LogisticModel::LogisticModel()
{
    for (auto &row : w_)
        row.fill(0.0);
}

double
LogisticModel::logit(int cls, const FeatureVector &x) const
{
    panic_if(cls < 0 || cls >= kNumDomEventTypes,
             "logit: bad class %d", cls);
    const auto &row = w_[static_cast<size_t>(cls)];
    double z = row[kNumFeatures];  // bias
    for (int i = 0; i < kNumFeatures; ++i)
        z += row[static_cast<size_t>(i)] * x.v[static_cast<size_t>(i)];
    return z;
}

double
LogisticModel::probability(int cls, const FeatureVector &x) const
{
    return sigmoid(logit(cls, x));
}

std::array<double, kNumDomEventTypes>
LogisticModel::probabilities(const FeatureVector &x) const
{
    std::array<double, kNumDomEventTypes> out;
    for (int c = 0; c < kNumDomEventTypes; ++c)
        out[static_cast<size_t>(c)] = probability(c, x);
    return out;
}

double &
LogisticModel::weight(int cls, int feature)
{
    panic_if(cls < 0 || cls >= kNumDomEventTypes, "weight: bad class");
    panic_if(feature < 0 || feature >= kWeightsPerClass,
             "weight: bad feature index");
    return w_[static_cast<size_t>(cls)][static_cast<size_t>(feature)];
}

double
LogisticModel::weight(int cls, int feature) const
{
    return const_cast<LogisticModel *>(this)->weight(cls, feature);
}

std::string
LogisticModel::serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "pes-logistic-v1 " << kNumDomEventTypes << " "
        << kWeightsPerClass << "\n";
    for (const auto &row : w_) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << " ";
            out << row[i];
        }
        out << "\n";
    }
    return out.str();
}

std::optional<LogisticModel>
LogisticModel::deserialize(const std::string &blob)
{
    std::istringstream in(blob);
    std::string magic;
    int classes = 0;
    int weights = 0;
    in >> magic >> classes >> weights;
    if (magic != "pes-logistic-v1" || classes != kNumDomEventTypes ||
        weights != kWeightsPerClass) {
        return std::nullopt;
    }
    LogisticModel model;
    for (int c = 0; c < classes; ++c) {
        for (int i = 0; i < weights; ++i) {
            double value = 0.0;
            if (!(in >> value))
                return std::nullopt;
            model.weight(c, i) = value;
        }
    }
    return model;
}

} // namespace pes
