/**
 * @file
 * Logistic event-sequence model (paper Sec. 5.2).
 *
 * "The event sequence learner employs a set of logistic models, each of
 * which estimates the probability of one possible next event through
 * ln(p/(1-p)) = x*beta." One independent sigmoid per DOM event type; the
 * chosen prediction is the (LNES-masked) class with the highest
 * probability, and that probability is the prediction's confidence.
 */

#ifndef PES_ML_LOGISTIC_HH
#define PES_ML_LOGISTIC_HH

#include <array>
#include <optional>
#include <string>

#include "ml/features.hh"
#include "web/event_types.hh"

namespace pes {

/**
 * One-vs-rest logistic model over the DOM event types.
 */
class LogisticModel
{
  public:
    /** Weights per class: one per feature plus a bias term. */
    static constexpr int kWeightsPerClass = kNumFeatures + 1;

    /** Zero-initialized model (all probabilities 0.5). */
    LogisticModel();

    /** Probability that class @p cls is the next event, given @p x. */
    double probability(int cls, const FeatureVector &x) const;

    /** All class probabilities (independent sigmoids, not normalized). */
    std::array<double, kNumDomEventTypes>
    probabilities(const FeatureVector &x) const;

    /** Raw logit of class @p cls. */
    double logit(int cls, const FeatureVector &x) const;

    /** Mutable weight (feature index kNumFeatures is the bias). */
    double &weight(int cls, int feature);
    /** Immutable weight. */
    double weight(int cls, int feature) const;

    /** Serialize into a text blob (versioned). */
    std::string serialize() const;

    /** Parse a serialized model; nullopt on malformed input. */
    static std::optional<LogisticModel> deserialize(const std::string &blob);

    bool operator==(const LogisticModel &other) const
    {
        return w_ == other.w_;
    }
    bool operator!=(const LogisticModel &other) const
    {
        return !(*this == other);
    }

  private:
    std::array<std::array<double, kWeightsPerClass>, kNumDomEventTypes> w_;
};

/** Numerically stable sigmoid. */
double sigmoid(double z);

} // namespace pes

#endif // PES_ML_LOGISTIC_HH
