#include "ml/metrics.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pes {

void
ConfusionMatrix::add(DomEventType actual, DomEventType predicted)
{
    counts_[static_cast<size_t>(actual)][static_cast<size_t>(predicted)]++;
    ++total_;
}

long
ConfusionMatrix::count(DomEventType actual, DomEventType predicted) const
{
    return counts_[static_cast<size_t>(actual)]
                  [static_cast<size_t>(predicted)];
}

double
ConfusionMatrix::accuracy() const
{
    if (total_ == 0)
        return 0.0;
    long correct = 0;
    for (int c = 0; c < kNumDomEventTypes; ++c)
        correct += counts_[static_cast<size_t>(c)][static_cast<size_t>(c)];
    return static_cast<double>(correct) / static_cast<double>(total_);
}

double
ConfusionMatrix::recall(DomEventType cls) const
{
    const auto c = static_cast<size_t>(cls);
    long row = 0;
    for (int p = 0; p < kNumDomEventTypes; ++p)
        row += counts_[c][static_cast<size_t>(p)];
    if (row == 0)
        return 0.0;
    return static_cast<double>(counts_[c][c]) / static_cast<double>(row);
}

CalibrationBins::CalibrationBins(int bins)
    : sumConf_(static_cast<size_t>(bins), 0.0),
      correct_(static_cast<size_t>(bins), 0),
      counts_(static_cast<size_t>(bins), 0)
{
    panic_if(bins <= 0, "CalibrationBins: bins must be positive");
}

void
CalibrationBins::add(double confidence, bool correct)
{
    const double clamped = std::clamp(confidence, 0.0, 1.0);
    auto bin = static_cast<size_t>(clamped *
                                   static_cast<double>(bins()));
    bin = std::min(bin, sumConf_.size() - 1);
    sumConf_[bin] += clamped;
    correct_[bin] += correct ? 1 : 0;
    counts_[bin] += 1;
}

double
CalibrationBins::binConfidence(int i) const
{
    const auto idx = static_cast<size_t>(i);
    return counts_[idx] ? sumConf_[idx] /
        static_cast<double>(counts_[idx]) : 0.0;
}

double
CalibrationBins::binAccuracy(int i) const
{
    const auto idx = static_cast<size_t>(i);
    return counts_[idx] ? static_cast<double>(correct_[idx]) /
        static_cast<double>(counts_[idx]) : 0.0;
}

long
CalibrationBins::binCount(int i) const
{
    return counts_[static_cast<size_t>(i)];
}

double
CalibrationBins::expectedCalibrationError() const
{
    long total = 0;
    for (long c : counts_)
        total += c;
    if (total == 0)
        return 0.0;
    double ece = 0.0;
    for (int i = 0; i < bins(); ++i) {
        if (!binCount(i))
            continue;
        const double w = static_cast<double>(binCount(i)) /
            static_cast<double>(total);
        ece += w * std::abs(binConfidence(i) - binAccuracy(i));
    }
    return ece;
}

} // namespace pes
