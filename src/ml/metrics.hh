/**
 * @file
 * Classification quality metrics for the event predictor.
 */

#ifndef PES_ML_METRICS_HH
#define PES_ML_METRICS_HH

#include <array>
#include <vector>

#include "ml/trainer.hh"

namespace pes {

/**
 * Confusion matrix and derived metrics over the event-type classes.
 */
class ConfusionMatrix
{
  public:
    /** Record one (actual, predicted) pair. */
    void add(DomEventType actual, DomEventType predicted);

    /** Count at (actual, predicted). */
    long count(DomEventType actual, DomEventType predicted) const;

    /** Overall accuracy (0 when empty). */
    double accuracy() const;

    /** Per-class recall (0 when the class never occurs). */
    double recall(DomEventType cls) const;

    /** Total number of recorded pairs. */
    long total() const { return total_; }

  private:
    std::array<std::array<long, kNumDomEventTypes>, kNumDomEventTypes>
        counts_{};
    long total_ = 0;
};

/**
 * Reliability diagram: do confidences match empirical accuracy? Used to
 * validate the cumulative-confidence stopping rule of the predictor.
 */
class CalibrationBins
{
  public:
    /** @param bins Number of equal-width confidence bins over [0, 1]. */
    explicit CalibrationBins(int bins = 10);

    /** Record a prediction made with @p confidence that was @p correct. */
    void add(double confidence, bool correct);

    /** Mean confidence of bin @p i (0 when empty). */
    double binConfidence(int i) const;
    /** Empirical accuracy of bin @p i (0 when empty). */
    double binAccuracy(int i) const;
    /** Samples in bin @p i. */
    long binCount(int i) const;
    /** Number of bins. */
    int bins() const { return static_cast<int>(sumConf_.size()); }

    /** Expected calibration error (confidence-weighted |conf - acc|). */
    double expectedCalibrationError() const;

  private:
    std::vector<double> sumConf_;
    std::vector<long> correct_;
    std::vector<long> counts_;
};

} // namespace pes

#endif // PES_ML_METRICS_HH
