#include "ml/trainer.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pes {

SgdTrainer::SgdTrainer(TrainConfig config)
    : config_(config)
{
}

LogisticModel
SgdTrainer::train(const std::vector<TrainSample> &samples) const
{
    LogisticModel model;
    if (samples.empty())
        return model;

    Rng rng(config_.shuffleSeed);
    std::vector<size_t> order(samples.size());
    std::iota(order.begin(), order.end(), 0);

    double lr = config_.learningRate;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        // Fisher-Yates shuffle with our deterministic generator.
        for (size_t i = order.size(); i > 1; --i) {
            const size_t j = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int>(i) - 1));
            std::swap(order[i - 1], order[j]);
        }
        for (size_t idx : order) {
            const TrainSample &s = samples[idx];
            for (int c = 0; c < kNumDomEventTypes; ++c) {
                const double y =
                    (static_cast<int>(s.label) == c) ? 1.0 : 0.0;
                const double p = model.probability(c, s.x);
                const double err = p - y;
                for (int f = 0; f < kNumFeatures; ++f) {
                    double &w = model.weight(c, f);
                    w -= lr * (err * s.x.v[static_cast<size_t>(f)] +
                               config_.l2 * w);
                }
                double &bias = model.weight(c, kNumFeatures);
                bias -= lr * err;
            }
        }
        lr *= config_.learningRateDecay;
    }
    return model;
}

double
SgdTrainer::loss(const LogisticModel &model,
                 const std::vector<TrainSample> &samples)
{
    if (samples.empty())
        return 0.0;
    double total = 0.0;
    for (const TrainSample &s : samples) {
        for (int c = 0; c < kNumDomEventTypes; ++c) {
            const double y = (static_cast<int>(s.label) == c) ? 1.0 : 0.0;
            const double p =
                std::clamp(model.probability(c, s.x), 1e-12, 1.0 - 1e-12);
            total += -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
        }
    }
    return total / static_cast<double>(samples.size());
}

} // namespace pes
