/**
 * @file
 * Mini-batch SGD trainer for the logistic event-sequence model.
 *
 * Training is cheap by design (the paper reports ~3 s on a desktop CPU,
 * motivating easy re-training); our datasets are tens of thousands of
 * samples and train in well under a second.
 */

#ifndef PES_ML_TRAINER_HH
#define PES_ML_TRAINER_HH

#include <vector>

#include "ml/logistic.hh"
#include "util/rng.hh"

namespace pes {

/** One supervised sample: features at time t, the event type at t+1. */
struct TrainSample
{
    FeatureVector x;
    DomEventType label = DomEventType::Click;
};

/** Trainer hyper-parameters. */
struct TrainConfig
{
    int epochs = 60;
    double learningRate = 0.5;
    double learningRateDecay = 0.97;
    double l2 = 1e-5;
    uint64_t shuffleSeed = 7;
};

/**
 * Trains a one-vs-rest LogisticModel by SGD on the logistic loss.
 */
class SgdTrainer
{
  public:
    explicit SgdTrainer(TrainConfig config = TrainConfig{});

    /** Train a fresh model on @p samples. */
    LogisticModel train(const std::vector<TrainSample> &samples) const;

    /** Mean logistic loss of @p model on @p samples (all classes). */
    static double loss(const LogisticModel &model,
                       const std::vector<TrainSample> &samples);

    /** The active configuration. */
    const TrainConfig &config() const { return config_; }

  private:
    TrainConfig config_;
};

} // namespace pes

#endif // PES_ML_TRAINER_HH
