#include "population/population_spec.hh"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "util/binary_io.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace pes {

namespace {

/** Domain salt of the per-user trait stream (disjoint from the
 *  user-model and scenario-mutator streams). */
constexpr uint64_t kTraitsSalt = 0x9a71c0de5a1full;

/** Domain salt of cohort-scenario mutation streams. */
constexpr uint64_t kCohortScenarioSalt = 0xc0047a65ce9a110ull;

/** Legal bounds of the trait multiplier ranges: wide enough for any
 *  plausible behaviour shift, tight enough to keep synthesized
 *  sessions well-formed (a 0 or negative multiplier would degenerate
 *  the softmax weights / think times). */
constexpr double kMinTraitScale = 0.05;
constexpr double kMaxTraitScale = 8.0;

uint64_t
doubleBits(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

uint64_t
hashParam(uint64_t h, const SeverityParam &param)
{
    h = hashCombine(h, doubleBits(param.at0));
    return hashCombine(h, doubleBits(param.at1));
}

/** Lower-case hex spelling of a 64-bit digest, fixed 16 digits. */
std::string
digestHex(uint64_t digest)
{
    static const char *kDigits = "0123456789abcdef";
    std::string hex(16, '0');
    for (int i = 15; i >= 0; --i) {
        hex[static_cast<size_t>(i)] = kDigits[digest & 0xf];
        digest >>= 4;
    }
    return hex;
}

void
writeParamJson(std::ostringstream &os, const char *key,
               const SeverityParam &param)
{
    os << "\"" << key << "\": [" << jsonNum(param.at0) << ", "
       << jsonNum(param.at1) << "]";
}

} // namespace

uint64_t
populationDigest(const PopulationSpec &spec)
{
    uint64_t h = hashString(spec.name.c_str());
    h = hashCombine(h, spec.cohorts.size());
    for (const CohortSpec &cohort : spec.cohorts) {
        h = hashCombine(h, hashString(cohort.name.c_str()));
        h = hashCombine(h, doubleBits(cohort.weight));
        h = hashParam(h, cohort.thinkScale);
        h = hashParam(h, cohort.moveAffinity);
        h = hashParam(h, cohort.tapAffinity);
        h = hashParam(h, cohort.navAffinity);
        h = hashCombine(h, hashString(cohort.scenario.c_str()));
        h = hashParam(h, cohort.severity);
    }
    return h;
}

std::string
populationTag(const PopulationSpec &spec)
{
    return spec.name + "#" + digestHex(populationDigest(spec));
}

bool
parsePopulationTag(const std::string &tag, std::string *name,
                   uint64_t *digest)
{
    const size_t hash_at = tag.rfind('#');
    if (hash_at == std::string::npos || hash_at == 0 ||
        tag.size() - hash_at - 1 != 16)
        return false;
    uint64_t value = 0;
    for (size_t i = hash_at + 1; i < tag.size(); ++i) {
        const char c = tag[i];
        int nibble;
        if (c >= '0' && c <= '9')
            nibble = c - '0';
        else if (c >= 'a' && c <= 'f')
            nibble = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | static_cast<uint64_t>(nibble);
    }
    if (name)
        *name = tag.substr(0, hash_at);
    if (digest)
        *digest = value;
    return true;
}

uint64_t
populationUserSeed(uint64_t digest, uint64_t base_seed, int user_index)
{
    return hashCombine(hashCombine(digest, base_seed),
                       static_cast<uint64_t>(user_index));
}

UserTraits
samplePopulationTraits(const PopulationSpec &spec, uint64_t user_seed)
{
    panic_if(spec.cohorts.empty(),
             "population '%s' has no cohorts", spec.name.c_str());
    Rng rng(hashCombine(user_seed, kTraitsSalt));
    std::vector<double> weights;
    weights.reserve(spec.cohorts.size());
    for (const CohortSpec &cohort : spec.cohorts)
        weights.push_back(cohort.weight);
    UserTraits traits;
    traits.cohort = rng.categorical(weights);
    const CohortSpec &cohort =
        spec.cohorts[static_cast<size_t>(traits.cohort)];
    // Fixed draw order — the trait vector is part of the determinism
    // contract (same seed, same user, on any worker).
    traits.scale.thinkScale = cohort.thinkScale.at(rng.uniform());
    traits.scale.moveAffinity = cohort.moveAffinity.at(rng.uniform());
    traits.scale.tapAffinity = cohort.tapAffinity.at(rng.uniform());
    traits.scale.navAffinity = cohort.navAffinity.at(rng.uniform());
    traits.scenario = cohort.scenario;
    traits.severity = cohort.severity.at(rng.uniform());
    return traits;
}

InteractionTrace
applyCohortScenario(const UserTraits &traits,
                    const InteractionTrace &trace, uint64_t user_seed)
{
    if (traits.scenario.empty())
        return trace;
    const ScenarioFamily *family = findScenarioFamily(traits.scenario);
    panic_if(!family, "population cohort references unknown scenario "
             "family '%s'", traits.scenario.c_str());
    return family->derive(trace, traits.severity,
                          hashCombine(user_seed, kCohortScenarioSalt));
}

const std::vector<PopulationSpec> &
populationRegistry()
{
    static const std::vector<PopulationSpec> registry = [] {
        std::vector<PopulationSpec> specs;

        // Rush-hour mix: mostly on-the-move users with flaky input and
        // compressed think times, leavened with calm baseline users.
        PopulationSpec commuters;
        commuters.name = "commuter_mix";
        commuters.description =
            "rush-hour fleet: flaky commuters and hurried users over a "
            "steady minority";
        {
            CohortSpec c;
            c.name = "commuter";
            c.weight = 0.5;
            c.thinkScale = rampParam(0.7, 1.1);
            c.moveAffinity = rampParam(1.1, 1.6);
            c.scenario = "flaky_input_commuter";
            c.severity = rampParam(0.1, 0.5);
            commuters.cohorts.push_back(c);
        }
        {
            CohortSpec c;
            c.name = "hurried";
            c.weight = 0.3;
            c.thinkScale = rampParam(0.5, 0.9);
            c.tapAffinity = rampParam(1.1, 1.5);
            c.scenario = "hurried_user";
            c.severity = rampParam(0.2, 0.6);
            commuters.cohorts.push_back(c);
        }
        {
            CohortSpec c;
            c.name = "steady";
            c.weight = 0.2;
            commuters.cohorts.push_back(c);
        }
        specs.push_back(std::move(commuters));

        // Evening mix: long-session bingers dominate, with a casual
        // tail of short, tap-happy sessions.
        PopulationSpec evening;
        evening.name = "evening_binge";
        evening.description =
            "evening fleet: marathon bingers with a casual tap-happy "
            "tail";
        {
            CohortSpec c;
            c.name = "binger";
            c.weight = 0.6;
            c.thinkScale = rampParam(1.0, 1.5);
            c.navAffinity = rampParam(0.7, 1.0);
            c.scenario = "marathon_binge";
            c.severity = rampParam(0.2, 0.7);
            evening.cohorts.push_back(c);
        }
        {
            CohortSpec c;
            c.name = "casual";
            c.weight = 0.4;
            c.thinkScale = rampParam(0.8, 1.2);
            c.tapAffinity = rampParam(1.0, 1.4);
            evening.cohorts.push_back(c);
        }
        specs.push_back(std::move(evening));

        // Broad city blend: every built-in behaviour shape at once —
        // the default heterogeneous-fleet population.
        PopulationSpec city;
        city.name = "city_blend";
        city.description =
            "heterogeneous city fleet: commuters, bingers, hurried and "
            "steady users blended";
        {
            CohortSpec c;
            c.name = "commuter";
            c.weight = 0.3;
            c.thinkScale = rampParam(0.7, 1.1);
            c.moveAffinity = rampParam(1.1, 1.5);
            c.scenario = "flaky_input_commuter";
            c.severity = rampParam(0.1, 0.4);
            city.cohorts.push_back(c);
        }
        {
            CohortSpec c;
            c.name = "binger";
            c.weight = 0.25;
            c.thinkScale = rampParam(1.0, 1.4);
            c.scenario = "marathon_binge";
            c.severity = rampParam(0.1, 0.5);
            city.cohorts.push_back(c);
        }
        {
            CohortSpec c;
            c.name = "hurried";
            c.weight = 0.25;
            c.thinkScale = rampParam(0.5, 0.9);
            c.tapAffinity = rampParam(1.1, 1.6);
            c.scenario = "hurried_user";
            c.severity = rampParam(0.2, 0.5);
            city.cohorts.push_back(c);
        }
        {
            CohortSpec c;
            c.name = "steady";
            c.weight = 0.2;
            c.thinkScale = rampParam(0.9, 1.1);
            city.cohorts.push_back(c);
        }
        specs.push_back(std::move(city));

        for (const PopulationSpec &spec : specs) {
            std::vector<IntegrityProblem> problems;
            panic_if(!validatePopulationSpec(spec, problems),
                     "built-in population '%s' fails validation: %s",
                     spec.name.c_str(),
                     problems.empty() ? "?"
                                      : problems[0].message.c_str());
        }
        return specs;
    }();
    return registry;
}

const PopulationSpec *
findPopulation(const std::string &name)
{
    for (const PopulationSpec &spec : populationRegistry()) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

bool
validatePopulationSpec(const PopulationSpec &spec,
                       std::vector<IntegrityProblem> &problems)
{
    const size_t before = problems.size();
    const auto fail = [&](const std::string &message) {
        problems.push_back({IntegrityProblem::Kind::Mismatch,
                            "population '" + spec.name + "': " +
                                message});
    };
    if (!validScenarioName(spec.name))
        fail("illegal name (want [a-z0-9_]+, <= 64 chars)");
    if (spec.cohorts.empty())
        fail("no cohorts");

    const auto checkRange = [&](const std::string &where,
                                const char *param,
                                const SeverityParam &range, double lo,
                                double hi) {
        if (!std::isfinite(range.at0) || !std::isfinite(range.at1) ||
            range.at0 < lo || range.at0 > hi || range.at1 < lo ||
            range.at1 > hi || range.at0 > range.at1) {
            std::ostringstream os;
            os << where << ": " << param << " range [" << range.at0
               << ", " << range.at1 << "] outside [" << lo << ", "
               << hi << "] (or lo > hi)";
            fail(os.str());
        }
    };

    for (size_t i = 0; i < spec.cohorts.size(); ++i) {
        const CohortSpec &cohort = spec.cohorts[i];
        const std::string where =
            "cohort " + std::to_string(i) + " ('" + cohort.name + "')";
        if (!validScenarioName(cohort.name))
            fail(where + ": illegal cohort name");
        if (!std::isfinite(cohort.weight) || cohort.weight <= 0.0)
            fail(where + ": weight must be finite and > 0");
        checkRange(where, "think_scale", cohort.thinkScale,
                   kMinTraitScale, kMaxTraitScale);
        checkRange(where, "move_affinity", cohort.moveAffinity,
                   kMinTraitScale, kMaxTraitScale);
        checkRange(where, "tap_affinity", cohort.tapAffinity,
                   kMinTraitScale, kMaxTraitScale);
        checkRange(where, "nav_affinity", cohort.navAffinity,
                   kMinTraitScale, kMaxTraitScale);
        checkRange(where, "severity", cohort.severity, 0.0, 1.0);
        if (!cohort.scenario.empty() &&
            !findScenarioFamily(cohort.scenario))
            fail(where + ": unknown scenario family '" +
                 cohort.scenario + "'");
    }
    return problems.size() == before;
}

std::optional<PopulationSpec>
parsePopulationSpecJson(const JsonValue &root, const std::string &where,
                        std::vector<IntegrityProblem> &problems)
{
    const size_t before = problems.size();
    const auto fail = [&](IntegrityProblem::Kind kind,
                          const std::string &message) {
        problems.push_back({kind, where + ": " + message});
    };
    if (root.kind != JsonValue::Kind::Object) {
        fail(IntegrityProblem::Kind::Corrupt,
             "not a JSON object (malformed population spec)");
        return std::nullopt;
    }
    const JsonValue *version = root.find("version");
    if (!version ||
        static_cast<int>(version->number()) != PopulationSpec::kVersion) {
        fail(IntegrityProblem::Kind::Mismatch,
             "unsupported spec version " +
                 (version ? version->str : std::string("<missing>")) +
                 " (this build reads " +
                 std::to_string(PopulationSpec::kVersion) + ")");
    }

    PopulationSpec spec;
    const JsonValue *name = root.find("name");
    if (!name || name->kind != JsonValue::Kind::String) {
        fail(IntegrityProblem::Kind::Mismatch, "missing \"name\"");
    } else {
        spec.name = name->str;
    }
    if (const JsonValue *desc = root.find("description"))
        spec.description = desc->str;

    /** A trait parameter: a bare number (constant) or [lo, hi]. */
    const auto parseParam = [&](const JsonValue &v, SeverityParam &out,
                                const std::string &at) {
        if (v.kind == JsonValue::Kind::Number) {
            out = constantParam(v.number());
            return true;
        }
        if (v.kind == JsonValue::Kind::Array && v.arr.size() == 2 &&
            v.arr[0].kind == JsonValue::Kind::Number &&
            v.arr[1].kind == JsonValue::Kind::Number) {
            out = rampParam(v.arr[0].number(), v.arr[1].number());
            return true;
        }
        fail(IntegrityProblem::Kind::Mismatch,
             at + ": parameter must be a number or a two-element "
                  "[lo, hi] range");
        return false;
    };

    const JsonValue *cohorts = root.find("cohorts");
    if (!cohorts || cohorts->kind != JsonValue::Kind::Array) {
        fail(IntegrityProblem::Kind::Mismatch,
             "missing \"cohorts\" array");
    } else {
        for (size_t i = 0; i < cohorts->arr.size(); ++i) {
            const JsonValue &row = cohorts->arr[i];
            const std::string at = "cohort " + std::to_string(i);
            if (row.kind != JsonValue::Kind::Object) {
                fail(IntegrityProblem::Kind::Mismatch,
                     at + ": not a JSON object");
                continue;
            }
            CohortSpec cohort;
            const JsonValue *cname = row.find("name");
            if (!cname || cname->kind != JsonValue::Kind::String) {
                fail(IntegrityProblem::Kind::Mismatch,
                     at + ": missing \"name\"");
                continue;
            }
            cohort.name = cname->str;
            if (const JsonValue *v = row.find("weight")) {
                if (v->kind != JsonValue::Kind::Number) {
                    fail(IntegrityProblem::Kind::Mismatch,
                         at + ": \"weight\" must be a number");
                    continue;
                }
                cohort.weight = v->number();
            }
            if (const JsonValue *v = row.find("think_scale"))
                parseParam(*v, cohort.thinkScale, at + " think_scale");
            if (const JsonValue *v = row.find("move_affinity"))
                parseParam(*v, cohort.moveAffinity,
                           at + " move_affinity");
            if (const JsonValue *v = row.find("tap_affinity"))
                parseParam(*v, cohort.tapAffinity,
                           at + " tap_affinity");
            if (const JsonValue *v = row.find("nav_affinity"))
                parseParam(*v, cohort.navAffinity,
                           at + " nav_affinity");
            if (const JsonValue *v = row.find("scenario")) {
                if (v->kind != JsonValue::Kind::String) {
                    fail(IntegrityProblem::Kind::Mismatch,
                         at + ": \"scenario\" must be a string");
                    continue;
                }
                cohort.scenario = v->str;
            }
            if (const JsonValue *v = row.find("severity"))
                parseParam(*v, cohort.severity, at + " severity");
            spec.cohorts.push_back(std::move(cohort));
        }
    }
    if (problems.size() != before)
        return std::nullopt;

    std::vector<IntegrityProblem> structural;
    if (!validatePopulationSpec(spec, structural)) {
        for (const IntegrityProblem &p : structural)
            problems.push_back(
                {IntegrityProblem::Kind::Mismatch,
                 where + ": " + p.message});
        return std::nullopt;
    }
    return spec;
}

std::optional<PopulationSpec>
loadPopulationSpec(const std::string &path,
                   std::vector<IntegrityProblem> &problems)
{
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        problems.push_back({IntegrityProblem::Kind::MissingFile,
                            path + ": no such population spec file"});
        return std::nullopt;
    }
    std::string text, error;
    if (!readFileBytes(path, text, &error)) {
        problems.push_back(
            {IntegrityProblem::Kind::Corrupt, path + ": " + error});
        return std::nullopt;
    }
    const auto root = parseJson(text);
    if (!root) {
        problems.push_back(
            {IntegrityProblem::Kind::Corrupt,
             path + ": not a JSON object (malformed population spec)"});
        return std::nullopt;
    }
    return parsePopulationSpecJson(*root, path, problems);
}

std::string
populationSpecText(const PopulationSpec &spec)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"version\": " << PopulationSpec::kVersion << ",\n"
       << "  \"name\": \"" << jsonEscape(spec.name) << "\",\n"
       << "  \"description\": \"" << jsonEscape(spec.description)
       << "\",\n"
       << "  \"cohorts\": [";
    for (size_t i = 0; i < spec.cohorts.size(); ++i) {
        const CohortSpec &cohort = spec.cohorts[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"name\": \"" << jsonEscape(cohort.name)
           << "\", \"weight\": " << jsonNum(cohort.weight) << ",\n"
           << "     ";
        writeParamJson(os, "think_scale", cohort.thinkScale);
        os << ", ";
        writeParamJson(os, "move_affinity", cohort.moveAffinity);
        os << ",\n     ";
        writeParamJson(os, "tap_affinity", cohort.tapAffinity);
        os << ", ";
        writeParamJson(os, "nav_affinity", cohort.navAffinity);
        os << ",\n     \"scenario\": \"" << jsonEscape(cohort.scenario)
           << "\", ";
        writeParamJson(os, "severity", cohort.severity);
        os << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

std::optional<PopulationSpec>
resolvePopulation(const std::string &ref,
                  std::vector<IntegrityProblem> &problems)
{
    const bool is_path = ref.size() > 5 &&
        ref.compare(ref.size() - 5, 5, ".json") == 0;
    if (is_path)
        return loadPopulationSpec(ref, problems);
    if (const PopulationSpec *spec = findPopulation(ref))
        return *spec;
    problems.push_back(
        {IntegrityProblem::Kind::Mismatch,
         "unknown population '" + ref +
             "' (not a built-in; spec files end in .json)"});
    return std::nullopt;
}

} // namespace pes
