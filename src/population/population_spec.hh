/**
 * @file
 * Mixture-model user populations: the million-user axis, generated
 * rather than stored.
 *
 * A PopulationSpec names a heterogeneous user population as a mixture
 * of cohorts. Each cohort carries a mixture weight, uniform ranges over
 * the UserModel behavioural multipliers (think-time scale and the
 * move/tap/nav affinities — the SeverityParam [at0, at1] ramp machinery
 * reused as distribution bounds), and optionally a scenario family plus
 * a severity range, so "commuter", "binger" and "hurried" users are
 * composed from the existing stress vocabulary.
 *
 * The sampler is the scaling trick: user @c i of a population is a pure
 * function of (population digest, base seed, i) — a per-user seed plus
 * per-user trait draws — so a 10M-user axis costs zero storage and any
 * worker can materialize any slice independently. Determinism contract:
 *
 *  - populationUserSeed() needs only the spec DIGEST, which travels
 *    inside the population tag ("<name>#<16-hex-digest>") through sweep
 *    specs, store manifests and report meta — result reduction can
 *    verify record seeds without the full spec in hand;
 *  - samplePopulationTraits() derives every draw from the user seed via
 *    util/rng hashing, so traits are recomputable wherever the trace
 *    loader runs (cache refills, corpus-less workers, resumed runs);
 *  - two specs are byte-for-byte interchangeable iff their digests
 *    match: stores and diffs refuse to mix tags, exactly like
 *    scenarios.
 *
 * Spec files load like scenario specs: versioned JSON, every failure a
 * classified IntegrityProblem (MissingFile / Corrupt / Mismatch), never
 * a crash.
 */

#ifndef PES_POPULATION_POPULATION_SPEC_HH
#define PES_POPULATION_POPULATION_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario_family.hh"
#include "trace/trace.hh"
#include "trace/user_model.hh"
#include "util/integrity.hh"

namespace pes {

/**
 * One cohort of a mixture population. Trait parameters are uniform
 * ranges [at0, at1] (a constant when at0 == at1); each user sampled
 * into the cohort draws once from every range.
 */
struct CohortSpec
{
    /** Identifier ([a-z0-9_]+, <= 64 chars). */
    std::string name;
    /** Mixture weight (> 0; weights need not sum to 1). */
    double weight = 1.0;
    /** Think-time multiplier range (UserParams::thinkScale). */
    SeverityParam thinkScale = constantParam(1.0);
    /** Move-class affinity multiplier range. */
    SeverityParam moveAffinity = constantParam(1.0);
    /** Tap-class affinity multiplier range. */
    SeverityParam tapAffinity = constantParam(1.0);
    /** Navigation-class affinity multiplier range. */
    SeverityParam navAffinity = constantParam(1.0);
    /** Optional built-in scenario family stressing this cohort's
     *  traces (empty = unstressed). */
    std::string scenario;
    /** Severity range of that family, endpoints in [0, 1]. */
    SeverityParam severity = constantParam(0.0);
};

/** A named, versioned mixture population. */
struct PopulationSpec
{
    /** Spec-file format version this build reads. */
    static constexpr int kVersion = 1;

    /** Identifier ([a-z0-9_]+, <= 64 chars): carried into sweep specs,
     *  store manifests and report meta as "<name>#<digest>". */
    std::string name;
    /** One-line human description (--list-populations). */
    std::string description;
    /** Mixture components (at least one). */
    std::vector<CohortSpec> cohorts;
};

/** Per-user draw from a population: the cohort, the UserModel
 *  multipliers, and the cohort's scenario at the drawn severity. */
struct UserTraits
{
    /** Index into PopulationSpec::cohorts. */
    int cohort = 0;
    /** Multipliers applied on top of the seed-sampled UserParams. */
    UserParams scale;
    /** Scenario family name (empty = none). */
    std::string scenario;
    /** Severity of that family for this user. */
    double severity = 0.0;
};

/**
 * Content digest of @p spec: equal iff every identity-relevant field
 * (name, cohorts, weights, ranges, scenarios) is equal. This is the
 * population identity that sweep seeds and store manifests key on.
 */
uint64_t populationDigest(const PopulationSpec &spec);

/** The canonical identity tag "<name>#<16-hex-digest>". */
std::string populationTag(const PopulationSpec &spec);

/**
 * Split a tag back into name and digest. False when @p tag is not of
 * the canonical "<name>#<16-hex-digest>" form.
 */
bool parsePopulationTag(const std::string &tag, std::string *name,
                        uint64_t *digest);

/**
 * Trace seed of user @p user_index in a population sweep: a pure
 * function of (digest, base_seed, user_index), so the user axis of a
 * million-user sweep is generated, never stored, and record seeds are
 * verifiable from the tag alone.
 */
uint64_t populationUserSeed(uint64_t digest, uint64_t base_seed,
                            int user_index);

/**
 * Draw the traits of the user behind @p user_seed: cohort pick by
 * mixture weight, then one uniform draw per trait range. Pure in
 * (spec, user_seed) — recomputable wherever the seed is known.
 */
UserTraits samplePopulationTraits(const PopulationSpec &spec,
                                  uint64_t user_seed);

/**
 * Apply @p traits' cohort scenario to a synthesized trace (identity
 * when the cohort has none). The mutation stream derives from
 * @p user_seed, so derived traces are byte-stable across cache refills
 * and workers.
 */
InteractionTrace applyCohortScenario(const UserTraits &traits,
                                     const InteractionTrace &trace,
                                     uint64_t user_seed);

/** The built-in mixture populations (commuter/binger/hurried blends
 *  over the scenario-family registry). */
const std::vector<PopulationSpec> &populationRegistry();

/** Registry lookup by name; nullptr when unknown. */
const PopulationSpec *findPopulation(const std::string &name);

/**
 * Validate @p spec structurally: legal names, at least one cohort,
 * positive finite weights, trait ranges inside their legal bounds over
 * the whole interval, severities in [0, 1], and every referenced
 * scenario present in the built-in registry. Appends one classified
 * Mismatch per finding; true when clean.
 */
bool validatePopulationSpec(const PopulationSpec &spec,
                            std::vector<IntegrityProblem> &problems);

/**
 * Load a population from a JSON spec file:
 *
 *   {
 *     "version": 1,
 *     "name": "city_mix",
 *     "description": "optional free text",
 *     "cohorts": [
 *       {"name": "commuter", "weight": 0.5,
 *        "think_scale": [0.7, 1.1], "tap_affinity": 1.2,
 *        "scenario": "flaky_input_commuter", "severity": [0.1, 0.5]},
 *       {"name": "steady", "weight": 0.5}
 *     ]
 *   }
 *
 * Trait parameters are a number (constant) or a two-element [lo, hi]
 * range. All failures are classified into @p problems (MissingFile /
 * Corrupt / Mismatch) and yield nullopt — never a crash.
 */
std::optional<PopulationSpec>
loadPopulationSpec(const std::string &path,
                   std::vector<IntegrityProblem> &problems);

/**
 * Canonical JSON serialization of @p spec (always full fields, ramps
 * as two-element arrays): embedded verbatim in coordinator queue plans
 * so `pes_fleet work` reconstructs the exact spec, and round-trips
 * through loadPopulationSpec's grammar.
 */
std::string populationSpecText(const PopulationSpec &spec);

/**
 * Resolve a CLI `--population=SPEC` value: a path ending in ".json"
 * loads a spec file (classified MissingFile/Corrupt/Mismatch), any
 * other value looks up the built-in registry (unknown names classify
 * as Mismatch). nullopt on failure with @p problems explaining why.
 */
std::optional<PopulationSpec>
resolvePopulation(const std::string &ref,
                  std::vector<IntegrityProblem> &problems);

/**
 * Parse a spec from already-parsed JSON (the spec-file grammar without
 * the file I/O) — the queue-plan embedding reuses this. @p where
 * prefixes diagnostics.
 */
std::optional<PopulationSpec>
parsePopulationSpecJson(const struct JsonValue &root,
                        const std::string &where,
                        std::vector<IntegrityProblem> &problems);

} // namespace pes

#endif // PES_POPULATION_POPULATION_SPEC_HH
