#include "results/report_diff.hh"

#include <array>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <ostream>
#include <set>

#include "results/result_reduce.hh"
#include "results/result_store.hh"
#include "util/binary_io.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/json.hh"

namespace pes {

namespace {

/** Bit-pattern equality, with every NaN equal to every NaN: payload
 *  bits are formatting noise, not drift. */
bool
bitIdentical(double a, double b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    return ba == bb;
}

/** Severity order for folding metric outcomes into a cell outcome. */
int
severity(DiffOutcome outcome)
{
    switch (outcome) {
      case DiffOutcome::Identical:
        return 0;
      case DiffOutcome::WithinTolerance:
        return 1;
      case DiffOutcome::Improved:
        return 2;
      default:
        return 3;
    }
}

/** Classify one metric value pair under @p options. */
MetricDelta
compareMetric(const std::string &metric, double base, double test,
              const DiffOptions &options)
{
    MetricDelta d;
    d.metric = metric;
    d.base = base;
    d.test = test;
    const bool finite = std::isfinite(base) && std::isfinite(test);
    d.absDelta = finite ? std::fabs(test - base)
                        : std::numeric_limits<double>::quiet_NaN();
    d.relDelta = finite && base != 0.0
        ? d.absDelta / std::fabs(base)
        : std::numeric_limits<double>::quiet_NaN();

    if (bitIdentical(base, test)) {
        d.outcome = DiffOutcome::Identical;
        return d;
    }
    if (options.exact || !finite) {
        // Exact mode: any non-identical value is a determinism failure.
        // Mixed finiteness (NaN vs number, inf vs -inf) has no
        // meaningful delta and can never be "within tolerance".
        d.outcome = DiffOutcome::Regressed;
        return d;
    }
    double rel_band = options.relTolerance;
    double abs_band = options.absTolerance;
    if (options.tolerance) {
        if (const MetricTolerance *t = options.tolerance->find(metric)) {
            // A calibrated band replaces the global knobs (the abs
            // floor survives: it covers float noise, not measurement
            // noise).
            rel_band = t->rel;
            abs_band = std::max(t->abs, options.absTolerance);
        }
    }
    const bool within = d.absDelta <= abs_band ||
        (base != 0.0 && d.relDelta <= rel_band);
    if (within) {
        d.outcome = DiffOutcome::WithinTolerance;
        return d;
    }
    switch (metricDirection(metric)) {
      case MetricDirection::LowerIsBetter:
        d.outcome = test < base ? DiffOutcome::Improved
                                : DiffOutcome::Regressed;
        break;
      case MetricDirection::HigherIsBetter:
        d.outcome = test > base ? DiffOutcome::Improved
                                : DiffOutcome::Regressed;
        break;
      case MetricDirection::Structural:
        d.outcome = DiffOutcome::Regressed;
        break;
    }
    return d;
}

void
countOutcome(DiffSummary &summary, DiffOutcome outcome)
{
    switch (outcome) {
      case DiffOutcome::Identical:
        ++summary.identical;
        break;
      case DiffOutcome::WithinTolerance:
        ++summary.withinTolerance;
        break;
      case DiffOutcome::Improved:
        ++summary.improved;
        break;
      case DiffOutcome::Regressed:
        ++summary.regressed;
        break;
      case DiffOutcome::Missing:
        ++summary.missing;
        break;
      case DiffOutcome::Extra:
        ++summary.extra;
        break;
    }
}

} // namespace

const char *
diffOutcomeName(DiffOutcome outcome)
{
    switch (outcome) {
      case DiffOutcome::Identical:
        return "identical";
      case DiffOutcome::WithinTolerance:
        return "within_tolerance";
      case DiffOutcome::Improved:
        return "improved";
      case DiffOutcome::Regressed:
        return "regressed";
      case DiffOutcome::Missing:
        return "missing";
      case DiffOutcome::Extra:
        return "extra";
    }
    return "unknown";
}

MetricDirection
metricDirection(const std::string &metric)
{
    // Everything the reports serialize is a cost (energy, latency,
    // violations, waste, queueing, fallbacks) except prediction
    // accuracy; sessions/events define the sweep shape — a change
    // there is structural, never an improvement.
    if (metric == "prediction_accuracy")
        return MetricDirection::HigherIsBetter;
    if (metric == "sessions" || metric == "events")
        return MetricDirection::Structural;
    return MetricDirection::LowerIsBetter;
}

DiffSummary
diffReports(const FleetReport &base, const FleetReport &test,
            const DiffOptions &options)
{
    DiffSummary summary;
    const auto mismatch = [&](const std::string &message) {
        summary.comparable = false;
        summary.problems.push_back(
            {IntegrityProblem::Kind::Mismatch, message});
    };

    // The two sides must describe the same sweep; deltas between
    // different populations/axes are meaningless.
    if (base.baseSeed != test.baseSeed) {
        mismatch("base seeds differ: " + std::to_string(base.baseSeed) +
                 " vs " + std::to_string(test.baseSeed));
    }
    if (base.seedMode != test.seedMode) {
        mismatch("seed modes differ: " + base.seedMode + " vs " +
                 test.seedMode);
    }
    if (base.warmDrivers != test.warmDrivers) {
        mismatch(std::string("driver modes differ: ") +
                 (base.warmDrivers ? "warm" : "fresh") + " vs " +
                 (test.warmDrivers ? "warm" : "fresh"));
    }
    if (base.scenario != test.scenario) {
        // Different stress families — or different severities of one
        // family — are different user populations; their deltas are the
        // robustness curve's job, not the regression gate's.
        const auto spell = [](const std::string &s) {
            return s.empty() ? std::string("(baseline)") : "'" + s + "'";
        };
        mismatch("scenarios differ: " + spell(base.scenario) + " vs " +
                 spell(test.scenario));
    }
    if (base.population != test.population) {
        // Same rule as scenarios: two mixture populations (or a mixture
        // vs the homogeneous axis) are different user axes — comparing
        // their metrics is an experiment, not a regression check.
        const auto spell = [](const std::string &s) {
            return s.empty() ? std::string("(homogeneous)") : "'" + s + "'";
        };
        mismatch("populations differ: " + spell(base.population) +
                 " vs " + spell(test.population));
    }
    if (base.users != test.users) {
        mismatch("user axes differ: " + std::to_string(base.users) +
                 " vs " + std::to_string(test.users));
    }
    const auto checkAxis = [&](const char *name,
                               const std::vector<std::string> &a,
                               const std::vector<std::string> &b) {
        if (a != b) {
            mismatch(std::string(name) + " axes differ: [" +
                     join(a, ", ") + "] vs [" + join(b, ", ") + "]");
        }
    };
    checkAxis("device", base.devices, test.devices);
    checkAxis("app", base.apps, test.apps);
    checkAxis("scheduler", base.schedulers, test.schedulers);

    // Resolve the metric filter against the serialized schema.
    std::vector<std::string> metrics = options.metrics;
    if (metrics.empty())
        metrics = cellMetricNames();
    const std::vector<std::string> &known = cellMetricNames();
    std::vector<size_t> indices;
    for (const std::string &m : metrics) {
        bool found = false;
        for (size_t i = 0; i < known.size(); ++i) {
            if (known[i] == m) {
                indices.push_back(i);
                found = true;
                break;
            }
        }
        if (!found)
            mismatch("unknown metric '" + m + "'");
    }
    if (!summary.comparable)
        return summary;

    // Align cells by (device, app, scheduler). A repeated key on
    // either side means the report is malformed (deterministic runs
    // emit each cell once) — refuse rather than silently compare one
    // duplicate and drop the rest, which would let a conflicting
    // duplicate pass an --exact gate clean.
    using Key = std::array<std::string, 3>;
    std::map<Key, const CellSummary *> testCells;
    for (const CellSummary &c : test.cells) {
        if (!testCells.emplace(Key{c.device, c.app, c.scheduler}, &c)
                 .second) {
            mismatch("test report repeats cell (" + c.device + ", " +
                     c.app + ", " + c.scheduler + ")");
        }
    }
    std::set<Key> baseKeys;
    for (const CellSummary &c : base.cells) {
        if (!baseKeys.insert(Key{c.device, c.app, c.scheduler})
                 .second) {
            mismatch("base report repeats cell (" + c.device + ", " +
                     c.app + ", " + c.scheduler + ")");
        }
    }
    if (!summary.comparable)
        return summary;

    std::set<Key> matched;
    for (const CellSummary &b : base.cells) {
        const Key key{b.device, b.app, b.scheduler};
        CellDiff cell;
        cell.device = b.device;
        cell.app = b.app;
        cell.scheduler = b.scheduler;

        const auto it = testCells.find(key);
        if (it == testCells.end()) {
            cell.outcome = DiffOutcome::Missing;
        } else {
            matched.insert(key);
            const std::vector<double> bx = cellMetricValues(b);
            const std::vector<double> tx = cellMetricValues(*it->second);
            cell.outcome = DiffOutcome::Identical;
            for (const size_t i : indices) {
                MetricDelta d =
                    compareMetric(known[i], bx[i], tx[i], options);
                if (severity(d.outcome) > severity(cell.outcome))
                    cell.outcome = d.outcome;
                if (d.outcome != DiffOutcome::Identical)
                    cell.metrics.push_back(std::move(d));
            }
        }
        countOutcome(summary, cell.outcome);
        summary.cells.push_back(std::move(cell));
    }
    for (const CellSummary &t : test.cells) {
        if (matched.count(Key{t.device, t.app, t.scheduler}))
            continue;
        CellDiff cell;
        cell.device = t.device;
        cell.app = t.app;
        cell.scheduler = t.scheduler;
        cell.outcome = DiffOutcome::Extra;
        countOutcome(summary, cell.outcome);
        summary.cells.push_back(std::move(cell));
    }
    return summary;
}

int
diffExitCode(const DiffSummary &summary)
{
    if (!summary.comparable)
        return integrityExitCode(summary.problems);
    return summary.clean() ? 0 : kExitDrift;
}

DiffInput
loadDiffInput(const std::string &path)
{
    namespace fs = std::filesystem;
    DiffInput input;
    const auto fail = [&](IntegrityProblem::Kind kind,
                          const std::string &message) {
        input.problems.push_back({kind, path + ": " + message});
    };

    std::error_code ec;
    if (!fs::exists(path, ec)) {
        fail(IntegrityProblem::Kind::MissingFile,
             "no such file or directory");
        return input;
    }

    if (fs::is_directory(path, ec)) {
        // A result store: open, validate, reduce, report.
        std::string error;
        auto store = ResultStore::open(path, &error);
        if (!store) {
            fail(IntegrityProblem::Kind::Corrupt, error);
            return input;
        }
        std::vector<StoreProblem> problems;
        if (!store->validate(problems)) {
            for (StoreProblem &p : problems) {
                input.problems.push_back(
                    {p.kind, path + ": " + p.message});
            }
            return input;
        }
        StoreReduction reduction;
        if (!reduceStore(*store, reduction, &error)) {
            fail(IntegrityProblem::Kind::Corrupt, error);
            return input;
        }
        // Content anomalies (foreign records, conflicting duplicates)
        // mean the store does not cleanly describe its sweep — refuse
        // to diff it rather than diff a fabricated report.
        if (!reduction.problems.empty()) {
            for (const std::string &p : reduction.problems)
                fail(IntegrityProblem::Kind::Corrupt, p);
            return input;
        }
        input.report = makeStoreReport(*store, reduction.metrics);
        return input;
    }

    std::string bytes, error;
    if (!readFileBytes(path, bytes, &error)) {
        fail(IntegrityProblem::Kind::Corrupt, error);
        return input;
    }
    const std::string head = trim(bytes.substr(0, 64));
    std::optional<FleetReport> report;
    if (!head.empty() && head[0] == '#')
        report = CsvReporter::parseReport(bytes);
    else
        report = JsonReporter::parse(bytes);
    if (!report) {
        fail(IntegrityProblem::Kind::Corrupt,
             "not a parseable pes_fleet report (JSON or CSV)");
        return input;
    }
    input.report = std::move(*report);
    return input;
}

void
printDiffSummary(const DiffSummary &summary, std::ostream &os)
{
    if (!summary.comparable) {
        os << "not comparable:\n";
        for (const IntegrityProblem &p : summary.problems)
            os << "  " << p.message << "\n";
        return;
    }
    // One row per drifted metric; Missing/Extra cells get one row.
    Table table({"device", "app", "scheduler", "outcome", "metric",
                 "base", "test", "delta", "rel"});
    int rows = 0;
    for (const CellDiff &cell : summary.cells) {
        if (cell.outcome == DiffOutcome::Identical ||
            cell.outcome == DiffOutcome::WithinTolerance)
            continue;
        if (cell.metrics.empty()) {
            table.beginRow()
                .cell(cell.device)
                .cell(cell.app)
                .cell(cell.scheduler)
                .cell(std::string(diffOutcomeName(cell.outcome)))
                .cell(std::string("-"))
                .cell(std::string("-"))
                .cell(std::string("-"))
                .cell(std::string("-"))
                .cell(std::string("-"));
            ++rows;
            continue;
        }
        for (const MetricDelta &d : cell.metrics) {
            if (d.outcome == DiffOutcome::WithinTolerance)
                continue;
            table.beginRow()
                .cell(cell.device)
                .cell(cell.app)
                .cell(cell.scheduler)
                .cell(std::string(diffOutcomeName(d.outcome)))
                .cell(d.metric)
                .cell(csvNum(d.base))
                .cell(csvNum(d.test))
                .cell(std::isnan(d.absDelta) ? std::string("-")
                                             : csvNum(d.test - d.base))
                .cell(std::isnan(d.relDelta)
                          ? std::string("-")
                          : formatPercent(d.relDelta));
            ++rows;
        }
    }
    if (rows > 0)
        table.print(os);
    os << summary.cells.size() << " cells: " << summary.identical
       << " identical, " << summary.withinTolerance
       << " within tolerance, " << summary.improved << " improved, "
       << summary.regressed << " regressed, " << summary.missing
       << " missing, " << summary.extra << " extra\n";
}

void
writeDiffJson(const DiffSummary &summary, const DiffOptions &options,
              std::ostream &os)
{
    os << "{\n";
    os << "  \"diff_version\": 1,\n";
    os << "  \"mode\": \"" << (options.exact ? "exact" : "tolerance")
       << "\",\n";
    os << "  \"rel_tolerance\": " << jsonNum(options.relTolerance)
       << ",\n";
    os << "  \"abs_tolerance\": " << jsonNum(options.absTolerance)
       << ",\n";
    os << "  \"comparable\": " << (summary.comparable ? 1 : 0) << ",\n";
    os << "  \"exit_code\": " << diffExitCode(summary) << ",\n";
    os << "  \"summary\": {\"identical\": " << summary.identical
       << ", \"within_tolerance\": " << summary.withinTolerance
       << ", \"improved\": " << summary.improved
       << ", \"regressed\": " << summary.regressed
       << ", \"missing\": " << summary.missing
       << ", \"extra\": " << summary.extra << "},\n";
    os << "  \"problems\": ";
    std::vector<std::string> problems;
    for (const IntegrityProblem &p : summary.problems)
        problems.push_back(p.message);
    writeJsonStringArray(os, problems);
    os << ",\n";
    os << "  \"cells\": [";
    bool first_cell = true;
    for (const CellDiff &cell : summary.cells) {
        if (cell.outcome == DiffOutcome::Identical)
            continue;
        os << (first_cell ? "\n" : ",\n");
        first_cell = false;
        os << "    {\"device\": \"" << jsonEscape(cell.device)
           << "\", \"app\": \"" << jsonEscape(cell.app)
           << "\", \"scheduler\": \"" << jsonEscape(cell.scheduler)
           << "\", \"outcome\": \"" << diffOutcomeName(cell.outcome)
           << "\", \"metrics\": [";
        for (size_t i = 0; i < cell.metrics.size(); ++i) {
            const MetricDelta &d = cell.metrics[i];
            os << (i ? ",\n      " : "\n      ");
            os << "{\"metric\": \"" << d.metric << "\", \"outcome\": \""
               << diffOutcomeName(d.outcome)
               << "\", \"base\": " << jsonNum(d.base)
               << ", \"test\": " << jsonNum(d.test)
               << ", \"abs_delta\": " << jsonNum(d.absDelta)
               << ", \"rel_delta\": " << jsonNum(d.relDelta) << "}";
        }
        os << "]}";
    }
    os << "\n  ]\n}\n";
}

} // namespace pes
