/**
 * @file
 * Noise-aware diffing of fleet reports and result stores.
 *
 * PES's claims are quantitative — energy savings at a QoS-violation
 * budget — so a scheduler change that silently shifts a cell's energy
 * or p95 latency is a correctness bug, not noise. This module turns
 * "did anything drift?" from a hand-rolled `cmp` into a first-class,
 * explainable comparison: two FleetReports (from report JSON/CSV files
 * or reduced ResultStores) are aligned cell-by-cell on
 * (device, app, scheduler), every serialized metric is compared under
 * per-metric absolute/relative thresholds (or bit-exactly in exact
 * mode, the determinism gate), and each cell is classified as
 * Identical / WithinTolerance / Improved / Regressed / Missing / Extra.
 *
 * Two reports are only comparable when they describe the same sweep:
 * base seed, seed mode, warm flag, scenario identity, user count and
 * all three axis lists must match, otherwise the diff refuses with a
 * classified Mismatch
 * problem (comparing different populations yields meaningless deltas).
 * Missing/Extra capture partial sweeps WITHIN a matching sweep — a
 * cell present on one side only.
 *
 * Exit-code contract (pes_fleet diff, CI-gateable):
 *   0            identical or within tolerance
 *   kExitDrift   (2) any Regressed/Improved/Missing/Extra cell — the
 *                baseline no longer describes this build
 *   kExitMissing (3) an input file/store part is absent
 *   kExitCorrupt (4) an input fails to parse/checksum, or the two
 *                sides are not comparable (axis/population mismatch)
 */

#ifndef PES_RESULTS_REPORT_DIFF_HH
#define PES_RESULTS_REPORT_DIFF_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "results/tolerance.hh"
#include "runner/reporters.hh"
#include "util/integrity.hh"

namespace pes {

/** Exit code when cells drifted beyond tolerance. */
constexpr int kExitDrift = 2;

/** Classified outcome of one metric, one cell, or a whole diff. */
enum class DiffOutcome
{
    /** Bit-identical (NaN counts as equal to NaN). */
    Identical,
    /** Differs, but inside the absolute/relative noise band. */
    WithinTolerance,
    /** Beyond tolerance in the metric's "better" direction. Still
     *  drift: the baseline is stale and must be re-recorded. */
    Improved,
    /** Beyond tolerance in the "worse" direction (or any beyond-
     *  tolerance change of a direction-less metric, or any non-
     *  identical value in exact mode). */
    Regressed,
    /** Cell present in the baseline only. */
    Missing,
    /** Cell present in the candidate only. */
    Extra,
};

/** Stable lower-case name ("identical", "regressed", ...). */
const char *diffOutcomeName(DiffOutcome outcome);

/** What a "better" change of a metric looks like. */
enum class MetricDirection
{
    /** Energy, latency, violations, ... */
    LowerIsBetter,
    /** Prediction accuracy. */
    HigherIsBetter,
    /** Counts that define the sweep shape (sessions, events): any
     *  beyond-tolerance change is a regression, never an improvement. */
    Structural,
};

/** Direction of a serialized cell metric (see cellMetricNames()). */
MetricDirection metricDirection(const std::string &metric);

/** Comparison knobs. */
struct DiffOptions
{
    /** Relative noise band: |test - base| / |base| <= relTolerance
     *  passes (checked when base != 0). */
    double relTolerance = 0.01;
    /** Absolute floor for near-zero metrics: |test - base| <=
     *  absTolerance always passes. */
    double absTolerance = 1e-9;
    /** Bit-exact mode: any non-identical double is Regressed. The
     *  determinism gate — catches 1-ulp drift. */
    bool exact = false;
    /** Compare only these metrics (empty = every serialized metric).
     *  Unknown names make the diff refuse as not comparable. */
    std::vector<std::string> metrics;
    /** Calibrated per-metric bands (pes_fleet diff --calibrate output);
     *  a listed metric's band replaces relTolerance/absTolerance.
     *  Ignored in exact mode. Not owned. */
    const ToleranceSpec *tolerance = nullptr;
};

/** One metric's comparison within a cell (non-Identical only). */
struct MetricDelta
{
    std::string metric;
    double base = 0.0;
    double test = 0.0;
    /** |test - base|; NaN when either side is non-finite. */
    double absDelta = 0.0;
    /** absDelta / |base|; NaN when base == 0 or non-finite. */
    double relDelta = 0.0;
    DiffOutcome outcome = DiffOutcome::Identical;
};

/** One aligned cell's classification. */
struct CellDiff
{
    std::string device;
    std::string app;
    std::string scheduler;
    /** Worst metric outcome (Regressed > Improved > WithinTolerance >
     *  Identical), or Missing/Extra for unaligned cells. */
    DiffOutcome outcome = DiffOutcome::Identical;
    /** Every non-Identical metric, in schema order. Empty for
     *  Identical/Missing/Extra cells. */
    std::vector<MetricDelta> metrics;
};

/** Outcome of diffing two reports. */
struct DiffSummary
{
    /** False when the sweeps don't align (see problems). */
    bool comparable = true;
    /** Mismatch findings when not comparable. */
    std::vector<IntegrityProblem> problems;

    /** Per-outcome cell counts. */
    int identical = 0;
    int withinTolerance = 0;
    int improved = 0;
    int regressed = 0;
    int missing = 0;
    int extra = 0;

    /** Every compared cell in baseline order (Extra cells last), with
     *  Identical cells included so the summary is auditable. */
    std::vector<CellDiff> cells;

    /** True when nothing drifted: comparable and every cell Identical
     *  or WithinTolerance. */
    bool clean() const
    {
        return comparable && regressed == 0 && improved == 0 &&
            missing == 0 && extra == 0;
    }
};

/**
 * Compare @p test against the @p base baseline. Never fails — an
 * incomparable pair returns comparable == false with Mismatch
 * problems.
 */
DiffSummary diffReports(const FleetReport &base, const FleetReport &test,
                        const DiffOptions &options);

/** The CI-gateable exit code of a finished diff (see file header). */
int diffExitCode(const DiffSummary &summary);

/**
 * One side of a diff, loaded and classified. Exactly one of report /
 * problems is non-empty: any load problem (missing file, corrupt
 * store part, unparseable report, store content anomaly) leaves
 * report unset.
 */
struct DiffInput
{
    std::optional<FleetReport> report;
    std::vector<IntegrityProblem> problems;
};

/**
 * Load a diff input from @p path, which may be a result-store
 * directory (validated, then reduced via makeStoreReport), a report
 * JSON file, or a report CSV file (detected by content). All failure
 * paths produce classified problems, never a crash.
 */
DiffInput loadDiffInput(const std::string &path);

/**
 * Human summary: one table row per non-Identical cell (or a "no
 * drift" line), plus outcome totals. Reuses util/table alignment.
 */
void printDiffSummary(const DiffSummary &summary, std::ostream &os);

/**
 * Machine-readable JSON rendering of a diff: options, outcome counts,
 * exit code, and every non-Identical cell with its metric deltas.
 */
void writeDiffJson(const DiffSummary &summary, const DiffOptions &options,
                   std::ostream &os);

} // namespace pes

#endif // PES_RESULTS_REPORT_DIFF_HH
