#include "results/result_format.hh"

#include "util/rng.hh"

namespace pes {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'U', 'M'};

/** Fixed-width tail of one record: everything after the three strings.
 *  u32 userIndex + u64 userSeed + the SessionStats scalars. */
constexpr uint64_t kRecordScalarBytes =
    4 + 8 +                  // userIndex, userSeed
    4 + 4 +                  // events, violations
    5 * 8 +                  // total/busy/idle/overhead/waste energy
    8 +                      // durationMs
    3 * 8 +                  // mean/p95/max latency
    3 * 4 +                  // predictions made/correct, mispredictions
    8 + 8 +                  // mispredictWasteMs, avgQueueLength
    1;                       // fellBackToReactive
/** Smallest possible latency sketch (empty: version, count, zero,
 *  min, max, bin count — no bins). */
constexpr uint64_t kMinSketchBytes = 4 + 8 + 8 + 8 + 8 + 4;
/** Smallest possible record (three empty strings): allocation bound. */
constexpr uint64_t kMinRecordBytes =
    3 * 4 + kRecordScalarBytes + kMinSketchBytes;

std::string
headPayload(const PsumParams &params)
{
    std::string out;
    putU32(out, static_cast<uint32_t>(params.size()));
    for (const auto &[key, value] : params) {
        putStr(out, key);
        putStr(out, value);
    }
    return out;
}

void
putStats(std::string &out, const SessionStats &s)
{
    putI32(out, s.events);
    putI32(out, s.violations);
    putF64(out, s.totalEnergyMj);
    putF64(out, s.busyEnergyMj);
    putF64(out, s.idleEnergyMj);
    putF64(out, s.overheadEnergyMj);
    putF64(out, s.wasteEnergyMj);
    putF64(out, s.durationMs);
    putF64(out, s.meanLatencyMs);
    putF64(out, s.p95LatencyMs);
    putF64(out, s.maxLatencyMs);
    putI32(out, s.predictionsMade);
    putI32(out, s.predictionsCorrect);
    putI32(out, s.mispredictions);
    putF64(out, s.mispredictWasteMs);
    putF64(out, s.avgQueueLength);
    putU8(out, s.fellBackToReactive ? 1 : 0);
    s.latencySketch.appendTo(out);
}

bool
getStats(ByteReader &r, SessionStats &s)
{
    uint8_t fell;
    if (!r.getI32(s.events) || !r.getI32(s.violations) ||
        !r.getF64(s.totalEnergyMj) || !r.getF64(s.busyEnergyMj) ||
        !r.getF64(s.idleEnergyMj) || !r.getF64(s.overheadEnergyMj) ||
        !r.getF64(s.wasteEnergyMj) || !r.getF64(s.durationMs) ||
        !r.getF64(s.meanLatencyMs) || !r.getF64(s.p95LatencyMs) ||
        !r.getF64(s.maxLatencyMs) || !r.getI32(s.predictionsMade) ||
        !r.getI32(s.predictionsCorrect) || !r.getI32(s.mispredictions) ||
        !r.getF64(s.mispredictWasteMs) || !r.getF64(s.avgQueueLength) ||
        !r.getU8(fell)) {
        return false;
    }
    s.fellBackToReactive = fell != 0;
    return PercentileSketch::readFrom(r, s.latencySketch);
}

std::string
recordsPayload(const std::vector<SessionRecord> &records)
{
    std::string out;
    out.reserve(8 + records.size() * (kMinRecordBytes + 32));
    putU64(out, records.size());
    for (const SessionRecord &rec : records) {
        putStr(out, rec.device);
        putStr(out, rec.app);
        putStr(out, rec.scheduler);
        putU32(out, rec.userIndex);
        putU64(out, rec.userSeed);
        putStats(out, rec.stats);
    }
    return out;
}

} // namespace

bool
sessionStatsEqual(const SessionStats &a, const SessionStats &b)
{
    return a.events == b.events && a.violations == b.violations &&
        a.totalEnergyMj == b.totalEnergyMj &&
        a.busyEnergyMj == b.busyEnergyMj &&
        a.idleEnergyMj == b.idleEnergyMj &&
        a.overheadEnergyMj == b.overheadEnergyMj &&
        a.wasteEnergyMj == b.wasteEnergyMj &&
        a.durationMs == b.durationMs &&
        a.meanLatencyMs == b.meanLatencyMs &&
        a.p95LatencyMs == b.p95LatencyMs &&
        a.maxLatencyMs == b.maxLatencyMs &&
        a.predictionsMade == b.predictionsMade &&
        a.predictionsCorrect == b.predictionsCorrect &&
        a.mispredictions == b.mispredictions &&
        a.mispredictWasteMs == b.mispredictWasteMs &&
        a.avgQueueLength == b.avgQueueLength &&
        a.fellBackToReactive == b.fellBackToReactive &&
        a.latencySketch == b.latencySketch;
}

bool
operator==(const SessionRecord &a, const SessionRecord &b)
{
    return a.device == b.device && a.app == b.app &&
        a.scheduler == b.scheduler && a.userIndex == b.userIndex &&
        a.userSeed == b.userSeed && sessionStatsEqual(a.stats, b.stats);
}

bool
operator!=(const SessionRecord &a, const SessionRecord &b)
{
    return !(a == b);
}

// ------------------------------------------------------------- PsumWriter

std::string
PsumWriter::toBytes(const std::vector<SessionRecord> &records,
                    const PsumParams &params)
{
    const std::string head = headPayload(params);
    const std::string payload = recordsPayload(records);

    std::string out;
    out.reserve(4 + 4 + 4 + head.size() + 8 + 8 + payload.size() + 8);
    putMagicHeader(out, kMagic, kPsumVersion);
    putSection32(out, head);
    putSection64(out, payload);
    return out;
}

bool
PsumWriter::writeFile(const std::vector<SessionRecord> &records,
                      const PsumParams &params, const std::string &path,
                      std::string *error)
{
    return writeFileBytes(path, toBytes(records, params), error);
}

// ------------------------------------------------------------- PsumReader

bool
PsumReader::fail(const std::string &why)
{
    error_ = why;
    opened_ = false;
    return false;
}

bool
PsumReader::open(const std::string &path)
{
    std::string bytes;
    std::string error;
    if (!readFileBytes(path, bytes, &error))
        return fail(error);
    return openBytes(std::move(bytes));
}

bool
PsumReader::openBytes(std::string bytes)
{
    bytes_ = std::move(bytes);
    error_.clear();
    header_ = PsumHeader{};
    opened_ = parseHeader();
    return opened_;
}

bool
PsumReader::parseHeader()
{
    ByteReader r(bytes_);
    std::string error;
    if (!readMagicHeader(r, kMagic, kPsumVersion, "a .psum result summary",
                         ".psum", &error)) {
        return fail(error);
    }
    header_.version = kPsumVersion;

    BinarySection head;
    if (!readSection32(r, head))
        return fail("truncated file: head section cut short");
    ByteReader h = sectionReader(bytes_, head);
    uint32_t nparams;
    if (!h.getU32(nparams))
        return fail("malformed head block");
    for (uint32_t i = 0; i < nparams; ++i) {
        std::string key, value;
        if (!h.getStr(key) || !h.getStr(value))
            return fail("malformed head parameter list");
        header_.params.emplace_back(std::move(key), std::move(value));
    }
    if (!h.atEnd())
        return fail("head section has trailing bytes");
    if (!sectionChecksumOk(bytes_, head))
        return fail("head checksum mismatch (corrupt file)");

    BinarySection records;
    if (!readSection64(r, records))
        return fail("truncated file: records section cut short");
    records_ = records;
    header_.recordsChecksum = records.storedChecksum;
    if (!r.atEnd())
        return fail("trailing bytes after records checksum");

    // Peek the record count so header-only consumers (manifest
    // validation) never decode the payload. Records are variable-width
    // (three strings), so only a lower bound pins the count — still
    // enough to stop a corrupt count from driving a huge allocation.
    ByteReader p = sectionReader(bytes_, records);
    if (!p.getU64(header_.recordCount))
        return fail("malformed records section: bad record count");
    if (records.payloadLen < 8 ||
        header_.recordCount > (records.payloadLen - 8) / kMinRecordBytes) {
        return fail("malformed records section: count does not fit "
                    "the payload");
    }
    return true;
}

bool
PsumReader::recordsSectionOk() const
{
    return opened_ && sectionChecksumOk(bytes_, records_);
}

std::optional<std::vector<SessionRecord>>
PsumReader::readRecords()
{
    if (!opened_) {
        if (error_.empty())
            error_ = "readRecords() before a successful open()";
        return std::nullopt;
    }
    if (!sectionChecksumOk(bytes_, records_)) {
        fail("records checksum mismatch (corrupt file)");
        return std::nullopt;
    }

    ByteReader r = sectionReader(bytes_, records_);
    uint64_t count;
    if (!r.getU64(count)) {
        fail("malformed records section: bad record count");
        return std::nullopt;
    }
    std::vector<SessionRecord> records;
    records.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        SessionRecord rec;
        if (!r.getStr(rec.device) || !r.getStr(rec.app) ||
            !r.getStr(rec.scheduler) || !r.getU32(rec.userIndex) ||
            !r.getU64(rec.userSeed) || !getStats(r, rec.stats)) {
            fail("truncated session record " + std::to_string(i));
            return std::nullopt;
        }
        records.push_back(std::move(rec));
    }
    if (!r.atEnd()) {
        fail("records section has trailing bytes");
        return std::nullopt;
    }
    return records;
}

uint64_t
recordsChecksum(const std::vector<SessionRecord> &records)
{
    const std::string payload = recordsPayload(records);
    return hashBytes(payload.data(), payload.size());
}

} // namespace pes
