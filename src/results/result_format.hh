/**
 * @file
 * The .psum on-disk result-summary format (versioned, checksummed).
 *
 * A .psum file persists a batch of per-session SessionStats reductions
 * keyed by their JobSpec provenance, so sweep outputs survive the
 * process the way .ptrc made traces survive it: a killed million-user
 * sweep resumes from its last checkpoint instead of restarting, and a
 * sweep split across machines merges back into one auditable artifact.
 * Layout (shared util/binary_io discipline — little-endian integers,
 * doubles as IEEE-754 bit patterns, FNV-1a section checksums):
 *
 *   "PSUM"                     4-byte magic
 *   u32  version               format version (kPsumVersion)
 *   u32  headLen               head payload byte length
 *        head payload:         u32 n, n x (str key, str value)
 *   u64  headChecksum          FNV-1a over the head payload
 *   u64  recordsLen            records payload byte length
 *        records payload:      u64 count, count x session record
 *   u64  recordsChecksum       FNV-1a over the records payload
 *
 * A session record is: str device, str app, str scheduler,
 * u32 userIndex, u64 userSeed, then the SessionStats scalars in
 * declaration order (i32 events, i32 violations, f64 energies x5,
 * f64 duration, f64 latency mean/p95/max, i32 predictions made/correct/
 * mispredictions, f64 mispredictWasteMs, f64 avgQueueLength,
 * u8 fellBackToReactive), then (since version 2) the session's
 * PercentileSketch in its canonical serialization — the per-event
 * latency sketch that merges bin-wise at reduction. Doubles round-trip
 * bit-exactly and the sketch serializes canonically, so a report
 * reduced from a store is byte-identical to one reduced in memory.
 *
 * PsumReader is two-phase like TraceReader: open() validates magic,
 * version and the head section only; readRecords() decodes and
 * checksums the records payload. All failures produce a diagnostic via
 * error(), never a crash.
 */

#ifndef PES_RESULTS_RESULT_FORMAT_HH
#define PES_RESULTS_RESULT_FORMAT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runner/metrics_aggregator.hh"
#include "util/binary_io.hh"

namespace pes {

/** The .psum version this build writes (readers reject anything else).
 *  v2 appended the per-record latency sketch. */
constexpr uint32_t kPsumVersion = 2;

/** One persisted session: JobSpec provenance plus its reduction. */
struct SessionRecord
{
    /** Platform name the session ran on. */
    std::string device;
    std::string app;
    std::string scheduler;
    /** User shard within the cell — the canonical within-cell order. */
    uint32_t userIndex = 0;
    /** Trace-generation seed of the session. */
    uint64_t userSeed = 0;
    SessionStats stats;
};

bool operator==(const SessionRecord &a, const SessionRecord &b);
bool operator!=(const SessionRecord &a, const SessionRecord &b);

/** Bit-exact SessionStats comparison (deterministic re-runs reproduce
 *  every double exactly; serialization stores bit patterns). */
bool sessionStatsEqual(const SessionStats &a, const SessionStats &b);

/** Free-form key/value pairs stored in the head section (writer tool,
 *  shard id, ...). Never affects reduction — provenance only. */
using PsumParams = std::vector<std::pair<std::string, std::string>>;

/** Decoded .psum header: everything except the records payload. */
struct PsumHeader
{
    uint32_t version = kPsumVersion;
    PsumParams params;
    uint64_t recordCount = 0;
    /** Records-section checksum as stored in the file. */
    uint64_t recordsChecksum = 0;
};

/**
 * Serializer: session records -> .psum bytes.
 */
class PsumWriter
{
  public:
    /** Encode to a byte string. */
    static std::string toBytes(const std::vector<SessionRecord> &records,
                               const PsumParams &params);

    /** Write to @p path; on failure returns false and sets @p error. */
    static bool writeFile(const std::vector<SessionRecord> &records,
                          const PsumParams &params,
                          const std::string &path, std::string *error);
};

/**
 * Deserializer with section validation and diagnostics.
 */
class PsumReader
{
  public:
    /** Open @p path and validate magic/version/head. */
    bool open(const std::string &path);

    /** Same, from an in-memory byte string (takes ownership). */
    bool openBytes(std::string bytes);

    /** Header of the opened file (valid after a successful open). */
    const PsumHeader &header() const { return header_; }

    /** Raw bytes of the opened file (valid after a successful open);
     *  what ResultStore::mergeFrom copies verbatim. */
    const std::string &bytes() const { return bytes_; }

    /**
     * Verify the records-section checksum WITHOUT decoding the records
     * — hashing is linear in bytes where decoding also allocates every
     * string; enough integrity for a verbatim part copy.
     */
    bool recordsSectionOk() const;

    /**
     * Decode the records section and verify its checksum; nullopt (with
     * error() set) on truncation or corruption.
     */
    std::optional<std::vector<SessionRecord>> readRecords();

    /** Human-readable reason of the last failure. */
    const std::string &error() const { return error_; }

  private:
    bool fail(const std::string &why);
    bool parseHeader();

    std::string bytes_;
    /** Records-section frame (decoded lazily by readRecords). */
    BinarySection records_;
    PsumHeader header_;
    std::string error_;
    bool opened_ = false;
};

/**
 * Records-section checksum of a batch: the store-manifest fingerprint.
 * Matches the recordsChecksum a PsumWriter would store.
 */
uint64_t recordsChecksum(const std::vector<SessionRecord> &records);

} // namespace pes

#endif // PES_RESULTS_RESULT_FORMAT_HH
