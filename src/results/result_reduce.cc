#include "results/result_reduce.hh"

#include <algorithm>
#include <map>

#include "population/population_spec.hh"
#include "runner/fleet_config.hh"

namespace pes {

namespace {

/** Cell ordinal of a record inside the sweep's cross-product, or -1.
 *  Matches the CompletedSessions ordinal formula (see the header). */
long
cellIdOf(const SweepSpec &sweep, const SessionRecord &rec)
{
    const auto indexOf = [](const std::vector<std::string> &xs,
                            const std::string &x) -> long {
        for (size_t i = 0; i < xs.size(); ++i)
            if (xs[i] == x)
                return static_cast<long>(i);
        return -1;
    };
    const long d = indexOf(sweep.devices, rec.device);
    const long a = indexOf(sweep.apps, rec.app);
    const long s = indexOf(sweep.schedulers, rec.scheduler);
    if (d < 0 || a < 0 || s < 0)
        return -1;
    return (d * static_cast<long>(sweep.apps.size()) + a) *
        static_cast<long>(sweep.schedulers.size()) + s;
}

/** Seed-derivation view of a sweep spec (reuses fleetUserSeed). */
FleetConfig
seedConfigOf(const SweepSpec &sweep)
{
    FleetConfig config;
    config.baseSeed = sweep.baseSeed;
    config.seedMode = sweep.seedMode == "evaluation"
        ? SeedMode::Evaluation
        : SeedMode::Fleet;
    config.userSeeds = sweep.userSeeds;
    config.users = sweep.users;
    // The digest inside the population tag is all seed derivation
    // needs — record seeds verify without the full population spec.
    std::string name;
    uint64_t digest = 0;
    if (parsePopulationTag(sweep.population, &name, &digest))
        config.populationDigest = digest;
    return config;
}

/** "(device, app, scheduler" prefix of a cell's diagnostics. */
std::string
cellLabel(const SweepSpec &sweep, long cell)
{
    const long scheds = static_cast<long>(sweep.schedulers.size());
    const long apps = static_cast<long>(sweep.apps.size());
    const long s = cell % scheds;
    const long a = (cell / scheds) % apps;
    const long d = cell / (scheds * apps);
    return "(" + sweep.devices[static_cast<size_t>(d)] + ", " +
        sweep.apps[static_cast<size_t>(a)] + ", " +
        sweep.schedulers[static_cast<size_t>(s)];
}

/**
 * Classify one record against the sweep: its cell ordinal on success,
 * a problem string otherwise. Shared by reduction and the resume
 * skip-set so "counts as completed" and "counts toward the report"
 * can never disagree.
 */
long
classifyRecord(const SweepSpec &sweep, const FleetConfig &seed_config,
               const SessionRecord &rec, std::string *problem)
{
    const long cell = cellIdOf(sweep, rec);
    if (cell < 0) {
        *problem = "record (" + rec.device + ", " + rec.app + ", " +
            rec.scheduler + ", user " + std::to_string(rec.userIndex) +
            ") is outside the sweep's cross-product";
        return -1;
    }
    if (rec.userIndex >= static_cast<uint32_t>(std::max(sweep.users, 0))) {
        *problem = "record " + cellLabel(sweep, cell) + "): user index " +
            std::to_string(rec.userIndex) + " exceeds the " +
            std::to_string(sweep.users) + "-user axis";
        return -1;
    }
    if (rec.userSeed !=
        fleetUserSeed(seed_config, static_cast<int>(rec.userIndex))) {
        *problem = "record " + cellLabel(sweep, cell) + ", user " +
            std::to_string(rec.userIndex) +
            "): seed does not match the sweep population";
        return -1;
    }
    return cell;
}

} // namespace

bool
loadCompletedSessions(const ResultStore &store, CompletedSessions &done,
                      std::string *error)
{
    const SweepSpec &sweep = store.sweep();
    const FleetConfig seed_config = seedConfigOf(sweep);
    return store.forEachRecord(
        [&](const SessionRecord &rec) {
            std::string problem;
            const long cell =
                classifyRecord(sweep, seed_config, rec, &problem);
            if (cell >= 0)
                done.insert({cell, rec.userIndex});
            return true;
        },
        error);
}

bool
storeCoversSweep(const ResultStore &store, uint64_t *missing,
                 std::string *error)
{
    // Plan coverage via the completed-sessions set: decode once, no
    // stat aggregation — the coordinator polls this while workers are
    // still writing, before paying for the final reduce.
    CompletedSessions done;
    if (!loadCompletedSessions(store, done, error))
        return false;
    const uint64_t expected = store.sweep().expectedSessions();
    const uint64_t have = static_cast<uint64_t>(done.size());
    if (missing)
        *missing = expected > have ? expected - have : 0;
    return have >= expected;
}

bool
reduceStore(const ResultStore &store, StoreReduction &out,
            std::string *error)
{
    const SweepSpec &sweep = store.sweep();
    const FleetConfig seed_config = seedConfigOf(sweep);

    // Bucket (userIndex, stats) per cell — no strings per record; the
    // stable sort keeps duplicates adjacent for a linear first-wins
    // dedup pass.
    std::map<long, std::vector<std::pair<uint32_t, SessionStats>>> cells;
    const bool ok = store.forEachRecord(
        [&](const SessionRecord &rec) {
            std::string problem;
            const long cell =
                classifyRecord(sweep, seed_config, rec, &problem);
            if (cell < 0) {
                out.problems.push_back(std::move(problem));
                return true;
            }
            cells[cell].emplace_back(rec.userIndex, rec.stats);
            return true;
        },
        error);
    if (!ok)
        return false;

    // Replay each cell in ascending userIndex — the canonical order the
    // runner aggregates in — deduplicating identical re-runs.
    for (auto &[cell, sessions] : cells) {
        std::stable_sort(sessions.begin(), sessions.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        const long scheds = static_cast<long>(sweep.schedulers.size());
        const long apps = static_cast<long>(sweep.apps.size());
        const std::string &device =
            sweep.devices[static_cast<size_t>(cell / (scheds * apps))];
        const std::string &app =
            sweep.apps[static_cast<size_t>((cell / scheds) % apps)];
        const std::string &scheduler =
            sweep.schedulers[static_cast<size_t>(cell % scheds)];

        uint32_t seen = 0;
        const std::pair<uint32_t, SessionStats> *prev = nullptr;
        for (const auto &session : sessions) {
            if (prev && session.first == prev->first) {
                ++out.duplicates;
                if (!sessionStatsEqual(session.second, prev->second)) {
                    out.problems.push_back(
                        "conflicting duplicates for " +
                        cellLabel(sweep, cell) + ", user " +
                        std::to_string(session.first) +
                        "): re-runs of a deterministic sweep must be "
                        "identical");
                }
                continue;
            }
            out.metrics.add(device, app, scheduler, session.second);
            ++out.sessions;
            ++seen;
            prev = &session;
        }
        if (seen < static_cast<uint32_t>(std::max(sweep.users, 0))) {
            out.missing += static_cast<uint64_t>(sweep.users) - seen;
        }
    }
    // Cells with no records at all are entirely missing.
    const uint64_t expected_cells = static_cast<uint64_t>(
        sweep.devices.size() * sweep.apps.size() *
        sweep.schedulers.size());
    out.missing += (expected_cells - cells.size()) *
        static_cast<uint64_t>(std::max(sweep.users, 0));
    return true;
}

FleetReport
makeStoreReport(const ResultStore &store, const MetricsAggregator &metrics)
{
    const SweepSpec &sweep = store.sweep();
    FleetReport report;
    report.baseSeed = sweep.baseSeed;
    report.seedMode = sweep.seedMode;
    report.warmDrivers = sweep.warmDrivers;
    report.scenario = sweep.scenario;
    report.population = sweep.population;
    report.users = sweep.users;
    report.sessions = metrics.sessions();
    report.events = metrics.events();
    report.devices = sweep.devices;
    report.apps = sweep.apps;
    report.schedulers = sweep.schedulers;
    report.cells = metrics.cells();
    return report;
}

} // namespace pes
