/**
 * @file
 * Deterministic reduction of a ResultStore into per-cell summaries.
 *
 * The whole point of persisting SessionStats is that a report built
 * from the store is byte-identical to one built in memory by a single
 * whole run. Aggregation order matters (RunningStats is a streaming
 * Welford accumulator), so reduction reconstructs the canonical order:
 * records are bucketed per (device, app, scheduler) cell and replayed
 * in ascending userIndex — exactly the order FleetRunner feeds its
 * in-memory aggregator. Duplicate sessions (a killed run re-executed
 * after a partial checkpoint, or an un-resumed re-run into the same
 * store) deduplicate first-wins; a duplicate whose stats differ is
 * reported as a conflict, because deterministic re-runs can never
 * produce one.
 *
 * Memory: buckets hold (userIndex, SessionStats) pairs only — cell
 * names resolve through the SweepSpec axes once per cell, so reducing
 * a million-session store costs ~0.1 KB per session, not three heap
 * strings each.
 */

#ifndef PES_RESULTS_RESULT_REDUCE_HH
#define PES_RESULTS_RESULT_REDUCE_HH

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "results/result_store.hh"
#include "runner/reporters.hh"

namespace pes {

/**
 * Compact identity of a completed session inside a sweep: the cell
 * ordinal plus the user index. The ordinal is
 *
 *   (deviceIndex * apps + appIndex) * schedulers + schedulerIndex
 *
 * over the SweepSpec axis order — which equals the same arithmetic
 * over FleetConfig indices, because SweepSpec::fromConfig preserves
 * axis order. Records outside the sweep's cross-product (or with
 * population-mismatched seeds) have no ordinal and are ignored.
 */
using CompletedSessions = std::set<std::pair<long, uint32_t>>;

/**
 * Collect the completed sessions of @p store — the resume skip-set.
 * Only records that belong to the sweep (cell found, user index in
 * range, seed matching the population) count as completed.
 */
bool loadCompletedSessions(const ResultStore &store,
                           CompletedSessions &done, std::string *error);

/**
 * Plan coverage: does @p store hold a record for every session of its
 * sweep's cross-product? Cheaper than a full reduce (no aggregation,
 * no duplicate/conflict analysis) — the coordinator polls it to decide
 * when the sweep is done. @p missing (optional) receives how many
 * expected sessions are still absent. Returns true only when every
 * expected session is present; false either for a partial store
 * (@p error untouched) or an unreadable part (@p error set).
 */
bool storeCoversSweep(const ResultStore &store, uint64_t *missing,
                      std::string *error);

/** Outcome of reducing one store. */
struct StoreReduction
{
    /** Per-cell aggregation in canonical order. */
    MetricsAggregator metrics;
    /** Distinct sessions reduced. */
    uint64_t sessions = 0;
    /** Identical duplicate records ignored (first occurrence wins). */
    uint64_t duplicates = 0;
    /** Expected sessions absent from the store (partial sweep). */
    uint64_t missing = 0;
    /** Content anomalies: records outside the sweep's cross-product,
     *  seed mismatches, conflicting duplicates. Empty on a clean store. */
    std::vector<std::string> problems;
};

/**
 * Reduce every record of @p store into @p out. Returns false (with
 * @p error) only on an unreadable part; content anomalies land in
 * @c out.problems instead. A complete, clean store yields
 * sessions == sweep().expectedSessions(), missing == 0, no problems.
 */
bool reduceStore(const ResultStore &store, StoreReduction &out,
                 std::string *error);

/**
 * Assemble the serializable report for a reduced store. Byte-compatible
 * with makeFleetReport for the run that produced the store: the sweep
 * meta comes from the stored SweepSpec, the cells from @p metrics.
 */
FleetReport makeStoreReport(const ResultStore &store,
                            const MetricsAggregator &metrics);

} // namespace pes

#endif // PES_RESULTS_RESULT_REDUCE_HH
