#include "results/result_store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "hw/acmp.hh"
#include "runner/fleet_config.hh"
#include "util/binary_io.hh"
#include "util/json.hh"

namespace fs = std::filesystem;

namespace pes {

namespace {

void
setError(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
}

/**
 * RAII advisory lock on "<dir>/.store.lock". flock, not fcntl: the
 * lock belongs to the open file description, so it survives fork-free
 * threading and releases on process death — a crashed worker never
 * wedges the store.
 */
class StoreLock
{
  public:
    StoreLock(const std::string &dir, std::string *error)
    {
        const std::string path =
            (fs::path(dir) / ResultStore::kLockName).string();
        fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
        if (fd_ < 0) {
            setError(error, "cannot open store lock '" + path + "': " +
                     std::strerror(errno));
            return;
        }
        while (::flock(fd_, LOCK_EX) != 0) {
            if (errno == EINTR)
                continue;
            setError(error, "cannot lock '" + path + "': " +
                     std::strerror(errno));
            ::close(fd_);
            fd_ = -1;
            return;
        }
    }

    ~StoreLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    StoreLock(const StoreLock &) = delete;
    StoreLock &operator=(const StoreLock &) = delete;

    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

std::string
manifestText(const SweepSpec &sweep,
             const std::vector<ResultPart> &parts)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"version\": " << ResultStore::kManifestVersion << ",\n";
    os << "  \"sweep\": {\n";
    os << "    \"base_seed\": " << sweep.baseSeed << ",\n";
    os << "    \"seed_mode\": \"" << jsonEscape(sweep.seedMode) << "\",\n";
    os << "    \"users\": " << sweep.users << ",\n";
    os << "    \"warm\": " << (sweep.warmDrivers ? 1 : 0) << ",\n";
    os << "    \"scenario\": \"" << jsonEscape(sweep.scenario)
       << "\",\n";
    os << "    \"population\": \"" << jsonEscape(sweep.population)
       << "\",\n";
    if (!sweep.userSeeds.empty()) {
        os << "    \"user_seeds\": [";
        for (size_t i = 0; i < sweep.userSeeds.size(); ++i)
            os << (i ? ", " : "") << sweep.userSeeds[i];
        os << "],\n";
    }
    os << "    \"devices\": ";
    writeJsonStringArray(os, sweep.devices);
    os << ",\n    \"apps\": ";
    writeJsonStringArray(os, sweep.apps);
    os << ",\n    \"schedulers\": ";
    writeJsonStringArray(os, sweep.schedulers);
    os << "\n  },\n";
    os << "  \"parts\": [";
    for (size_t i = 0; i < parts.size(); ++i) {
        const ResultPart &p = parts[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"file\": \"" << jsonEscape(p.file)
           << "\", \"records\": " << p.records
           << ", \"checksum\": " << p.checksum << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

} // namespace

// --------------------------------------------------------------- SweepSpec

SweepSpec
SweepSpec::fromConfig(const FleetConfig &config)
{
    SweepSpec spec;
    spec.baseSeed = config.baseSeed;
    spec.seedMode =
        config.seedMode == SeedMode::Fleet ? "fleet" : "evaluation";
    spec.users = config.effectiveUsers();
    spec.userSeeds = config.userSeeds;
    spec.warmDrivers = config.warmDrivers;
    spec.scenario = config.scenario;
    spec.population = config.populationTag;
    if (config.devices.empty()) {
        spec.devices.push_back(AcmpPlatform::exynos5410().name());
    } else {
        for (const AcmpPlatform &d : config.devices)
            spec.devices.push_back(d.name());
    }
    for (const AppProfile &p : config.apps)
        spec.apps.push_back(p.name);
    for (const SchedulerKind k : config.schedulers)
        spec.schedulers.push_back(schedulerKindName(k));
    return spec;
}

uint64_t
SweepSpec::expectedSessions() const
{
    return static_cast<uint64_t>(devices.size()) * apps.size() *
        schedulers.size() * static_cast<uint64_t>(users > 0 ? users : 0);
}

bool
operator==(const SweepSpec &a, const SweepSpec &b)
{
    return a.baseSeed == b.baseSeed && a.seedMode == b.seedMode &&
        a.users == b.users && a.userSeeds == b.userSeeds &&
        a.warmDrivers == b.warmDrivers && a.devices == b.devices &&
        a.apps == b.apps && a.schedulers == b.schedulers &&
        a.scenario == b.scenario && a.population == b.population;
}

bool
operator!=(const SweepSpec &a, const SweepSpec &b)
{
    return !(a == b);
}

// ------------------------------------------------------------- ResultStore

std::optional<ResultStore>
ResultStore::open(const std::string &dir, std::string *error)
{
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        setError(error, "'" + dir + "' is not a directory");
        return std::nullopt;
    }
    ResultStore store;
    store.dir_ = dir;
    StoreLock lock(dir, error);
    if (!lock.held())
        return std::nullopt;
    if (!store.openLocked(error))
        return std::nullopt;
    return store;
}

std::optional<ResultStore>
ResultStore::create(const std::string &dir, const SweepSpec &sweep,
                    std::string *error)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        setError(error, "cannot create '" + dir + "': " + ec.message());
        return std::nullopt;
    }
    // Lock before probing for the manifest: two workers create()-ing
    // one store race to write the first manifest, and the loser must
    // observe the winner's rather than clobber it.
    StoreLock lock(dir, error);
    if (!lock.held())
        return std::nullopt;
    if (fs::exists(fs::path(dir) / kManifestName, ec)) {
        ResultStore store;
        store.dir_ = dir;
        if (!store.openLocked(error))
            return std::nullopt;
        if (store.sweep_ != sweep) {
            setError(error, "'" + dir + "' already holds a different "
                     "sweep (axes, seeds, mode, scenario or population "
                     "differ); use a fresh results directory");
            return std::nullopt;
        }
        return store;
    }
    ResultStore store;
    store.dir_ = dir;
    store.sweep_ = sweep;
    if (!store.saveManifest(error))
        return std::nullopt;
    return store;
}

bool
ResultStore::openLocked(std::string *error)
{
    if (!loadManifest(error))
        return false;
    return reconcileOrphans(error);
}

bool
ResultStore::loadManifest(std::string *error)
{
    const std::string path = (fs::path(dir_) / kManifestName).string();
    std::string text;
    if (!readFileBytes(path, text, error)) {
        setError(error, "no manifest: cannot open '" + path + "'");
        return false;
    }

    const auto root = parseJson(text);
    if (!root || root->kind != JsonValue::Kind::Object) {
        setError(error, "malformed manifest '" + path + "'");
        return false;
    }
    const JsonValue *version = root->find("version");
    if (!version ||
        static_cast<int>(version->number()) != kManifestVersion) {
        setError(error, "manifest '" + path + "': unsupported version " +
                 (version ? version->str : std::string("<missing>")) +
                 " (this build reads " + std::to_string(kManifestVersion) +
                 ")");
        return false;
    }

    const JsonValue *sweep = root->find("sweep");
    if (!sweep || sweep->kind != JsonValue::Kind::Object) {
        setError(error, "manifest '" + path + "': no sweep block");
        return false;
    }
    sweep_ = SweepSpec{};
    if (const JsonValue *v = sweep->find("base_seed"))
        sweep_.baseSeed = v->number64();
    if (const JsonValue *v = sweep->find("seed_mode"))
        sweep_.seedMode = v->str;
    if (const JsonValue *v = sweep->find("users"))
        sweep_.users = static_cast<int>(v->number());
    if (const JsonValue *v = sweep->find("warm"))
        sweep_.warmDrivers = v->number() != 0.0;
    if (const JsonValue *v = sweep->find("scenario"))
        sweep_.scenario = v->str;
    if (const JsonValue *v = sweep->find("population"))
        sweep_.population = v->str;
    if (const JsonValue *v = sweep->find("user_seeds")) {
        for (const JsonValue &s : v->arr)
            sweep_.userSeeds.push_back(s.number64());
    }
    const JsonValue *devices = sweep->find("devices");
    const JsonValue *apps = sweep->find("apps");
    const JsonValue *schedulers = sweep->find("schedulers");
    if (!devices || devices->kind != JsonValue::Kind::Array || !apps ||
        apps->kind != JsonValue::Kind::Array || !schedulers ||
        schedulers->kind != JsonValue::Kind::Array) {
        setError(error, "manifest '" + path +
                 "': sweep block missing devices/apps/schedulers");
        return false;
    }
    sweep_.devices = jsonStringArray(*devices);
    sweep_.apps = jsonStringArray(*apps);
    sweep_.schedulers = jsonStringArray(*schedulers);

    const JsonValue *parts = root->find("parts");
    if (!parts || parts->kind != JsonValue::Kind::Array) {
        setError(error, "manifest '" + path + "': no parts array");
        return false;
    }
    parts_.clear();
    nextSeq_.clear();
    for (const JsonValue &pv : parts->arr) {
        if (pv.kind != JsonValue::Kind::Object) {
            setError(error, "manifest '" + path + "': bad part row");
            return false;
        }
        ResultPart part;
        const JsonValue *file = pv.find("file");
        if (!file || file->str.empty()) {
            setError(error,
                     "manifest '" + path + "': part row missing file");
            return false;
        }
        part.file = file->str;
        if (const JsonValue *v = pv.find("records"))
            part.records = v->number64();
        if (const JsonValue *v = pv.find("checksum"))
            part.checksum = v->number64();
        notePartName(part.file);
        parts_.push_back(std::move(part));
    }
    return true;
}

bool
ResultStore::saveManifest(std::string *error) const
{
    const std::string path = (fs::path(dir_) / kManifestName).string();
    return writeFileAtomic(path, manifestText(sweep_, parts_), error);
}

std::string
ResultStore::pathOf(const ResultPart &part) const
{
    return (fs::path(dir_) / part.file).string();
}

void
ResultStore::notePartName(const std::string &file)
{
    // Parse "part-<label>-<seq>.psum" and bump the label's next free
    // sequence number past it; foreign names are simply ignored.
    const std::string prefix = "part-";
    const std::string suffix = ".psum";
    if (file.size() <= prefix.size() + suffix.size() ||
        file.compare(0, prefix.size(), prefix) != 0 ||
        file.compare(file.size() - suffix.size(), suffix.size(),
                     suffix) != 0) {
        return;
    }
    const std::string stem = file.substr(
        prefix.size(), file.size() - prefix.size() - suffix.size());
    const size_t dash = stem.rfind('-');
    if (dash == std::string::npos || dash + 1 >= stem.size())
        return;
    const std::string digits = stem.substr(dash + 1);
    uint64_t seq = 0;
    for (const char c : digits) {
        if (c < '0' || c > '9')
            return;
        seq = seq * 10 + static_cast<uint64_t>(c - '0');
    }
    uint64_t &next = nextSeq_[stem.substr(0, dash)];
    next = std::max(next, seq + 1);
}

std::string
ResultStore::nextPartName(const std::string &label)
{
    // First unused sequence number for this label (tracked, not
    // re-scanned): resume runs and merges keep appending without ever
    // clobbering an existing part.
    const uint64_t seq = nextSeq_[label]++;
    return "part-" + label + "-" + std::to_string(seq) + ".psum";
}

std::vector<std::string>
ResultStore::orphanFiles() const
{
    // Every .psum in the directory that no manifest row indexes,
    // sorted for deterministic reconcile/validate order.
    std::vector<std::string> orphans;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (name.size() < 5 ||
            name.compare(name.size() - 5, 5, ".psum") != 0)
            continue;
        const bool indexed =
            std::any_of(parts_.begin(), parts_.end(),
                        [&](const ResultPart &p) { return p.file == name; });
        if (!indexed)
            orphans.push_back(name);
    }
    std::sort(orphans.begin(), orphans.end());
    return orphans;
}

bool
ResultStore::reconcileOrphans(std::string *error)
{
    // A crash between a part write and the manifest save leaves the
    // part on disk unindexed. Adopt it when it reads back clean (its
    // records were fully flushed — dropping them would lose work);
    // remove it when torn (a re-run will regenerate the range).
    bool adopted = false;
    for (const std::string &name : orphanFiles()) {
        const std::string path = (fs::path(dir_) / name).string();
        PsumReader reader;
        std::error_code ec;
        if (!reader.open(path) || !reader.recordsSectionOk()) {
            fs::remove(path, ec);
            continue;
        }
        ResultPart part;
        part.file = name;
        part.records = reader.header().recordCount;
        part.checksum = reader.header().recordsChecksum;
        notePartName(part.file);
        parts_.push_back(std::move(part));
        adopted = true;
    }
    if (adopted && !saveManifest(error))
        return false;
    return true;
}

uint64_t
ResultStore::recordCount() const
{
    uint64_t total = 0;
    for (const ResultPart &p : parts_)
        total += p.records;
    return total;
}

bool
ResultStore::appendPart(const std::vector<SessionRecord> &records,
                        const std::string &label, const PsumParams &params,
                        std::string *error, uint64_t *bytes_written)
{
    if (records.empty())
        return true;
    // Serialize once: the records-section checksum is the file's
    // trailing u64 (see the .psum layout), so the manifest row reads
    // it out of the encoded bytes instead of re-encoding the payload.
    const std::string bytes = PsumWriter::toBytes(records, params);
    StoreLock lock(dir_, error);
    if (!lock.held())
        return false;
    // Reload under the lock: concurrent workers append into this
    // manifest too, and re-saving a stale copy would drop their rows.
    if (!loadManifest(error))
        return false;
    ResultPart part;
    part.file = nextPartName(label);
    part.records = records.size();
    ByteReader tail(bytes, bytes.size() - 8, bytes.size());
    tail.getU64(part.checksum);
    if (!writeFileBytes(pathOf(part), bytes, error))
        return false;
    if (fence_) {
        std::string why;
        if (!fence_(&why)) {
            std::error_code ec;
            fs::remove(pathOf(part), ec);
            setError(error, "lease fenced: " +
                     (why.empty() ? std::string("publish refused") : why));
            return false;
        }
    }
    if (bytes_written)
        *bytes_written = bytes.size();
    parts_.push_back(std::move(part));
    if (!saveManifest(error)) {
        parts_.pop_back();
        return false;
    }
    return true;
}

bool
ResultStore::forEachRecord(
    const std::function<bool(const SessionRecord &)> &fn,
    std::string *error) const
{
    for (const ResultPart &part : parts_) {
        PsumReader reader;
        if (!reader.open(pathOf(part))) {
            setError(error, part.file + ": " + reader.error());
            return false;
        }
        auto records = reader.readRecords();
        if (!records) {
            setError(error, part.file + ": " + reader.error());
            return false;
        }
        for (const SessionRecord &rec : *records) {
            if (!fn(rec))
                return true;
        }
    }
    return true;
}

bool
ResultStore::mergeFrom(const ResultStore &src, std::string *error)
{
    if (src.sweep_ != sweep_) {
        setError(error, "'" + src.dir_ + "' holds a different sweep "
                 "than '" + dir_ + "' (axes, seeds, mode, scenario or "
                 "population differ)");
        return false;
    }
    StoreLock lock(dir_, error);
    if (!lock.held())
        return false;
    if (!loadManifest(error))
        return false;
    for (const ResultPart &part : src.parts_) {
        // Copy the part's bytes verbatim under a fresh name: the head
        // validates at open and the records section checksums without
        // decoding, so merging is file copies plus manifest appends —
        // and the source's provenance params survive untouched.
        PsumReader reader;
        if (!reader.open(src.pathOf(part))) {
            setError(error, part.file + ": " + reader.error());
            return false;
        }
        if (!reader.recordsSectionOk()) {
            setError(error, part.file +
                     ": records checksum mismatch (corrupt file)");
            return false;
        }
        ResultPart copy;
        copy.file = nextPartName("merged");
        copy.records = reader.header().recordCount;
        copy.checksum = reader.header().recordsChecksum;
        if (!writeFileBytes(pathOf(copy), reader.bytes(), error))
            return false;
        parts_.push_back(std::move(copy));
        if (!saveManifest(error)) {
            parts_.pop_back();
            return false;
        }
    }
    return true;
}

bool
ResultStore::validate(std::vector<StoreProblem> &problems) const
{
    const size_t before = problems.size();
    for (const ResultPart &part : parts_) {
        std::error_code ec;
        if (!fs::exists(pathOf(part), ec)) {
            problems.push_back(
                {StoreProblem::Kind::MissingFile,
                 part.file + ": referenced by the manifest but missing "
                             "on disk"});
            continue;
        }
        PsumReader reader;
        if (!reader.open(pathOf(part))) {
            problems.push_back({StoreProblem::Kind::Corrupt,
                                part.file + ": " + reader.error()});
            continue;
        }
        if (reader.header().recordsChecksum != part.checksum) {
            problems.push_back(
                {StoreProblem::Kind::Mismatch,
                 part.file + ": checksum differs from the manifest "
                             "(stale or swapped file)"});
            continue;
        }
        const auto records = reader.readRecords();
        if (!records) {
            problems.push_back({StoreProblem::Kind::Corrupt,
                                part.file + ": " + reader.error()});
            continue;
        }
        if (records->size() != part.records) {
            problems.push_back(
                {StoreProblem::Kind::Mismatch,
                 part.file + ": manifest says " +
                     std::to_string(part.records) + " records, file "
                     "holds " + std::to_string(records->size())});
        }
    }
    for (const std::string &name : orphanFiles()) {
        problems.push_back(
            {StoreProblem::Kind::Orphaned,
             name + ": on disk but not indexed by the manifest (crash "
                    "between part write and manifest save?); re-open "
                    "the store to adopt or remove it"});
    }
    return problems.size() == before;
}

} // namespace pes
