/**
 * @file
 * On-disk result store: a directory of .psum part files plus a JSON
 * manifest carrying the sweep identity.
 *
 * A ResultStore is the persistent output of one fleet sweep. The
 * manifest records (a) the SweepSpec — every axis value, seed and mode
 * that defines the sweep, so partial stores from different machines can
 * be verified to belong together before merging — and (b) one row per
 * .psum part file with its record count and records-section checksum,
 * so a store can be validated without trusting file names.
 *
 * Parts are append-only checkpoints: a running sweep flushes completed
 * sessions as new parts and re-saves the manifest atomically, so a
 * killed run leaves a valid store holding everything flushed so far.
 * Iteration is streaming — one part resident at a time — and all
 * failure paths return diagnostics instead of crashing.
 *
 * Multiple processes may append into one store concurrently (the
 * coordinator's workers do): every append takes an advisory flock on
 * ".store.lock" in the store directory, reloads the manifest under the
 * lock so other writers' rows survive the re-save, and only then
 * publishes its own row. A part file written but never indexed — a
 * crash between the part write and the manifest save — is an *orphan*:
 * validate() classifies it explicitly, and open()/create() reconcile
 * orphans by adopting the readable ones into the manifest and removing
 * the torn ones.
 */

#ifndef PES_RESULTS_RESULT_STORE_HH
#define PES_RESULTS_RESULT_STORE_HH

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "results/result_format.hh"
#include "util/integrity.hh"

namespace pes {

struct FleetConfig;

/**
 * The identity of one sweep: everything that determines its job
 * cross-product. Two stores merge only when their specs are equal.
 */
struct SweepSpec
{
    uint64_t baseSeed = 0;
    /** "fleet" or "evaluation" (see SeedMode). */
    std::string seedMode = "fleet";
    /** Users per cell (the effective user-axis length). */
    int users = 0;
    /** Explicit per-user seed list, when the sweep used one. */
    std::vector<uint64_t> userSeeds;
    /** Warm per-cell drivers (sessions of a cell depend on order). */
    bool warmDrivers = false;
    /** Axis values in sweep order (platform names / app names /
     *  scheduler names) — also the report-meta order. */
    std::vector<std::string> devices;
    std::vector<std::string> apps;
    std::vector<std::string> schedulers;
    /** Scenario identity ("<family>@<severity>"; empty = baseline).
     *  Part of the sweep identity: a store never mixes scenario and
     *  baseline sessions, or two severities of one family. */
    std::string scenario;
    /** Population identity ("<name>#<digest>"; empty = homogeneous).
     *  Part of the sweep identity for the same reason as scenario: two
     *  populations are different user axes. The digest inside the tag
     *  also lets reduction re-derive and verify record seeds without
     *  the full population spec. */
    std::string population;

    /** The spec of a fleet configuration (resolving default devices). */
    static SweepSpec fromConfig(const FleetConfig &config);

    /** Expected session count of the full sweep. */
    uint64_t expectedSessions() const;
};

bool operator==(const SweepSpec &a, const SweepSpec &b);
bool operator!=(const SweepSpec &a, const SweepSpec &b);

/** One manifest row: a .psum part file and what it holds. */
struct ResultPart
{
    /** File name relative to the store directory. */
    std::string file;
    uint64_t records = 0;
    /** Records-section checksum (see recordsChecksum). */
    uint64_t checksum = 0;
};

/** Result-store validation finding (shared classification, see
 *  util/integrity.hh). */
using StoreProblem = IntegrityProblem;

/**
 * A directory of .psum parts with a manifest index.
 */
class ResultStore
{
  public:
    /** Manifest schema version. */
    static constexpr int kManifestVersion = 1;
    /** Manifest file name inside the store directory. */
    static constexpr const char *kManifestName = "manifest.json";
    /** Advisory lock file serializing multi-process manifest updates. */
    static constexpr const char *kLockName = ".store.lock";

    /**
     * Publish fence: called under the store lock after a part's bytes
     * hit disk but before its manifest row is saved. Returning false
     * aborts the append (the part file is removed) — the coordinator's
     * workers use this to stop a zombie whose lease was reissued from
     * publishing into the store.
     */
    using PublishFence = std::function<bool(std::string *why)>;

    /**
     * Open an existing store (reads + parses the manifest); nullopt
     * with @p error set when the directory or manifest is unusable.
     */
    static std::optional<ResultStore> open(const std::string &dir,
                                          std::string *error);

    /**
     * Create a store for @p sweep (directory and parents included).
     * Opening an existing store this way keeps its parts but fails when
     * the stored spec differs from @p sweep — a results directory never
     * silently mixes two different sweeps.
     */
    static std::optional<ResultStore> create(const std::string &dir,
                                             const SweepSpec &sweep,
                                             std::string *error);

    /** The store directory. */
    const std::string &dir() const { return dir_; }

    /** The sweep this store belongs to. */
    const SweepSpec &sweep() const { return sweep_; }

    /** Manifest rows in append order. */
    const std::vector<ResultPart> &parts() const { return parts_; }

    /** Total records across all parts (manifest counts). */
    uint64_t recordCount() const;

    /** Arm (or clear, with an empty function) the publish fence run by
     *  appendPart before every manifest save. */
    void setPublishFence(PublishFence fence) { fence_ = std::move(fence); }

    /**
     * Append @p records as a new part file and persist the manifest
     * atomically — the checkpoint primitive. @p label tags the part
     * file name (e.g. "s0" for shard 0); @p params go into the .psum
     * head section. Empty batches are ignored (returns true). When
     * @p bytes_written is non-null it receives the encoded part size
     * (telemetry: checkpoint cost in bytes).
     */
    bool appendPart(const std::vector<SessionRecord> &records,
                    const std::string &label, const PsumParams &params,
                    std::string *error,
                    uint64_t *bytes_written = nullptr);

    /**
     * Streaming iteration in manifest order: @p fn gets every record of
     * every part, one part resident at a time; return false from @p fn
     * to stop early. Returns false (with @p error) on the first
     * unreadable part.
     */
    bool forEachRecord(
        const std::function<bool(const SessionRecord &)> &fn,
        std::string *error) const;

    /**
     * Merge @p src into this store: verifies the sweep specs match,
     * then copies every source part verbatim under a fresh name
     * (checksum-verified, never decoded — merging is file copies plus
     * manifest appends, and source provenance params survive).
     * Duplicate sessions are allowed — reduction deduplicates
     * deterministically.
     */
    bool mergeFrom(const ResultStore &src, std::string *error);

    /**
     * Full integrity pass: every manifest row's file must exist, parse,
     * and match the row (record count + checksum), and every .psum on
     * disk must be indexed by a row (orphans classify as
     * Kind::Orphaned). Appends one classified problem per finding;
     * returns true when clean.
     */
    bool validate(std::vector<StoreProblem> &problems) const;

  private:
    ResultStore() = default;

    bool openLocked(std::string *error);
    bool loadManifest(std::string *error);
    bool saveManifest(std::string *error) const;
    bool reconcileOrphans(std::string *error);
    std::vector<std::string> orphanFiles() const;
    std::string pathOf(const ResultPart &part) const;
    std::string nextPartName(const std::string &label);
    void notePartName(const std::string &file);

    std::string dir_;
    SweepSpec sweep_;
    std::vector<ResultPart> parts_;
    PublishFence fence_;
    /** Next unused sequence number per part label — keeps appendPart
     *  O(1) in the part count (a checkpoint-heavy sweep writes many). */
    std::map<std::string, uint64_t> nextSeq_;
};

} // namespace pes

#endif // PES_RESULTS_RESULT_STORE_HH
