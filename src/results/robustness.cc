#include "results/robustness.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <ostream>

#include "results/report_diff.hh"
#include "scenario/scenario_family.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace pes {

namespace {

/** Direction-adjusted relative worsening of @p v vs anchor @p b,
 *  clamped at 0. Zero anchors fall back to absolute deltas. */
double
degradationOf(MetricDirection direction, double b, double v)
{
    const double denom = std::fabs(b) > 0.0 ? std::fabs(b) : 1.0;
    double raw = 0.0;
    switch (direction) {
      case MetricDirection::LowerIsBetter:
        raw = (v - b) / denom;
        break;
      case MetricDirection::HigherIsBetter:
        raw = (b - v) / denom;
        break;
      case MetricDirection::Structural:
        // Structural counts are excluded from the metric set; treat
        // any change as degradation if one ever lands here.
        raw = std::fabs(v - b) / denom;
        break;
    }
    return std::fmax(0.0, raw);
}

/** Least-squares slope of value over severity (0 for < 2 points). */
double
slopeOf(const std::vector<CurvePoint> &points)
{
    if (points.size() < 2)
        return 0.0;
    double mean_s = 0.0, mean_v = 0.0;
    for (const CurvePoint &p : points) {
        mean_s += p.severity;
        mean_v += p.value;
    }
    mean_s /= static_cast<double>(points.size());
    mean_v /= static_cast<double>(points.size());
    double num = 0.0, den = 0.0;
    for (const CurvePoint &p : points) {
        num += (p.severity - mean_s) * (p.value - mean_v);
        den += (p.severity - mean_s) * (p.severity - mean_s);
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace

const std::vector<std::string> &
robustnessMetricNames()
{
    /** The headline claims: QoS violations, energy (total + waste),
     *  responsiveness (mean + tail), and predictor health. Structural
     *  counts (sessions/events) are deliberately absent — stress
     *  families legitimately change them. */
    static const std::vector<std::string> kMetrics = {
        "violation_rate",          "mean_energy_mj",
        "mean_waste_energy_mj",    "mean_latency_ms",
        "p95_session_latency_ms",  "prediction_accuracy",
    };
    return kMetrics;
}

std::optional<RobustnessReport>
makeRobustnessReport(const std::string &family,
                     std::vector<std::pair<double, FleetReport>> cells,
                     std::vector<IntegrityProblem> &problems)
{
    const size_t before = problems.size();
    const auto bad = [&](const std::string &message) {
        problems.push_back({IntegrityProblem::Kind::Mismatch,
                            "robustness: " + message});
    };
    if (cells.empty()) {
        bad("no severity cells");
        return std::nullopt;
    }
    std::sort(cells.begin(), cells.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (size_t i = 1; i < cells.size(); ++i) {
        if (cells[i].first == cells[i - 1].first)
            bad("duplicate severity " + jsonNum(cells[i].first));
    }

    // Every cell must describe the same sweep, and carry the scenario
    // tag of ITS severity — a report from the wrong family or severity
    // would silently bend the curve.
    const FleetReport &head = cells.front().second;
    for (const auto &[severity, report] : cells) {
        const std::string expected = scenarioTag(family, severity);
        if (report.scenario != expected) {
            bad("severity " + jsonNum(severity) +
                ": report carries scenario '" + report.scenario +
                "', expected '" + expected + "'");
        }
        if (report.baseSeed != head.baseSeed ||
            report.seedMode != head.seedMode ||
            report.warmDrivers != head.warmDrivers ||
            report.users != head.users ||
            report.devices != head.devices ||
            report.apps != head.apps ||
            report.schedulers != head.schedulers) {
            bad("severity " + jsonNum(severity) +
                ": sweep identity (seeds, mode, users or axes) differs "
                "from the rest of the grid");
        }
    }
    if (problems.size() != before)
        return std::nullopt;

    // Index every cell's summaries; a hole in any severity's
    // cross-product makes its curves unanchored.
    using Key = std::array<std::string, 3>;
    std::vector<std::map<Key, const CellSummary *>> by_severity;
    for (const auto &[severity, report] : cells) {
        by_severity.emplace_back();
        for (const CellSummary &c : report.cells) {
            by_severity.back().emplace(Key{c.device, c.app, c.scheduler},
                                       &c);
        }
        for (const std::string &device : head.devices) {
            for (const std::string &app : head.apps) {
                for (const std::string &scheduler : head.schedulers) {
                    if (!by_severity.back().count(
                            Key{device, app, scheduler})) {
                        bad("severity " + jsonNum(severity) +
                            ": cell (" + device + ", " + app + ", " +
                            scheduler + ") is missing (partial sweep?)");
                    }
                }
            }
        }
    }
    if (problems.size() != before)
        return std::nullopt;

    RobustnessReport out;
    out.family = family;
    out.baseSeed = head.baseSeed;
    out.seedMode = head.seedMode;
    out.warmDrivers = head.warmDrivers;
    out.users = head.users;
    out.devices = head.devices;
    out.apps = head.apps;
    out.schedulers = head.schedulers;
    for (const auto &[severity, report] : cells) {
        (void)report;
        out.severities.push_back(severity);
        out.severityTags.push_back(jsonNum(severity));
    }

    // Resolve the robustness metrics against the serialized schema
    // once, up front; a name that ever drifts out of cellMetricNames()
    // must fail loudly, not silently curve the wrong column.
    const std::vector<std::string> &metric_names = cellMetricNames();
    std::map<std::string, size_t> metric_index;
    for (const std::string &metric : robustnessMetricNames()) {
        for (size_t i = 0; i < metric_names.size(); ++i) {
            if (metric_names[i] == metric)
                metric_index[metric] = i;
        }
        panic_if(!metric_index.count(metric),
                 "robustness metric '%s' is not a serialized cell "
                 "metric",
                 metric.c_str());
    }

    // Canonical curve order: cell-major over the axis lists, metric-
    // minor — matches the reports' own cell order, so curve bytes are
    // reproducible from any execution layout.
    for (const std::string &device : out.devices) {
        for (const std::string &app : out.apps) {
            for (const std::string &scheduler : out.schedulers) {
                const Key key{device, app, scheduler};
                for (const std::string &metric :
                     robustnessMetricNames()) {
                    RobustnessCurve curve;
                    curve.device = device;
                    curve.app = app;
                    curve.scheduler = scheduler;
                    curve.metric = metric;
                    for (size_t s = 0; s < cells.size(); ++s) {
                        const CellSummary &c =
                            *by_severity[s].at(key);
                        curve.points.push_back(
                            {cells[s].first,
                             cellMetricValues(
                                 c)[metric_index.at(metric)]});
                    }
                    curve.baseline = curve.points.front().value;
                    curve.slope = slopeOf(curve.points);
                    const MetricDirection direction =
                        metricDirection(metric);
                    double sum = 0.0;
                    int counted = 0;
                    for (size_t s = 1; s < curve.points.size(); ++s) {
                        const double d = degradationOf(
                            direction, curve.baseline,
                            curve.points[s].value);
                        curve.worstDegradation =
                            std::fmax(curve.worstDegradation, d);
                        sum += d;
                        ++counted;
                    }
                    curve.robustness = counted > 0
                        ? 1.0 / (1.0 + sum / counted)
                        : 1.0;
                    out.curves.push_back(std::move(curve));
                }
            }
        }
    }

    for (const std::string &scheduler : out.schedulers) {
        SchedulerRobustness score;
        score.scheduler = scheduler;
        double sum = 0.0;
        int counted = 0;
        for (const RobustnessCurve &curve : out.curves) {
            if (curve.scheduler != scheduler)
                continue;
            sum += curve.robustness;
            score.worstDegradation = std::fmax(score.worstDegradation,
                                               curve.worstDegradation);
            ++counted;
        }
        score.score = counted > 0 ? sum / counted : 1.0;
        out.schedulers_summary.push_back(std::move(score));
    }
    return out;
}

void
writeRobustnessJson(const RobustnessReport &report, std::ostream &os)
{
    os << "{\n";
    os << "  \"curve_version\": " << RobustnessReport::kVersion << ",\n";
    os << "  \"meta\": {\n";
    os << "    \"family\": \"" << jsonEscape(report.family) << "\",\n";
    os << "    \"base_seed\": " << report.baseSeed << ",\n";
    os << "    \"seed_mode\": \"" << jsonEscape(report.seedMode)
       << "\",\n";
    os << "    \"warm\": " << (report.warmDrivers ? 1 : 0) << ",\n";
    os << "    \"users\": " << report.users << ",\n";
    os << "    \"severities\": [";
    for (size_t i = 0; i < report.severities.size(); ++i)
        os << (i ? ", " : "") << jsonNum(report.severities[i]);
    os << "],\n";
    os << "    \"devices\": ";
    writeJsonStringArray(os, report.devices);
    os << ",\n    \"apps\": ";
    writeJsonStringArray(os, report.apps);
    os << ",\n    \"schedulers\": ";
    writeJsonStringArray(os, report.schedulers);
    os << ",\n    \"metrics\": ";
    writeJsonStringArray(os, robustnessMetricNames());
    os << "\n  },\n";
    os << "  \"schedulers\": [";
    for (size_t i = 0; i < report.schedulers_summary.size(); ++i) {
        const SchedulerRobustness &s = report.schedulers_summary[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"scheduler\": \"" << jsonEscape(s.scheduler)
           << "\", \"robustness_score\": " << jsonNum(s.score)
           << ", \"worst_degradation\": " << jsonNum(s.worstDegradation)
           << "}";
    }
    os << "\n  ],\n";
    os << "  \"curves\": [";
    for (size_t i = 0; i < report.curves.size(); ++i) {
        const RobustnessCurve &c = report.curves[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"device\": \"" << jsonEscape(c.device)
           << "\", \"app\": \"" << jsonEscape(c.app)
           << "\", \"scheduler\": \"" << jsonEscape(c.scheduler)
           << "\", \"metric\": \"" << jsonEscape(c.metric) << "\",\n";
        os << "     \"baseline\": " << jsonNum(c.baseline)
           << ", \"slope\": " << jsonNum(c.slope)
           << ", \"worst_degradation\": " << jsonNum(c.worstDegradation)
           << ", \"robustness\": " << jsonNum(c.robustness) << ",\n";
        os << "     \"points\": [";
        for (size_t k = 0; k < c.points.size(); ++k) {
            os << (k ? ", " : "")
               << "{\"severity\": " << jsonNum(c.points[k].severity)
               << ", \"value\": " << jsonNum(c.points[k].value) << "}";
        }
        os << "]}";
    }
    os << "\n  ]\n}\n";
}

void
writeRobustnessCsv(const RobustnessReport &report, std::ostream &os)
{
    os << "# pes_fleet stress curves v" << RobustnessReport::kVersion
       << "\n";
    os << "# family=" << report.family << " base_seed=" << report.baseSeed
       << " seed_mode=" << report.seedMode
       << " warm=" << (report.warmDrivers ? 1 : 0)
       << " users=" << report.users << "\n";
    os << "device,app,scheduler,metric";
    for (const std::string &tag : report.severityTags)
        os << ",sev_" << tag;
    os << ",baseline,slope,worst_degradation,robustness\n";
    for (const RobustnessCurve &c : report.curves) {
        os << c.device << ',' << c.app << ',' << c.scheduler << ','
           << c.metric;
        for (const CurvePoint &p : c.points)
            os << ',' << csvNum(p.value);
        os << ',' << csvNum(c.baseline) << ',' << csvNum(c.slope) << ','
           << csvNum(c.worstDegradation) << ',' << csvNum(c.robustness)
           << "\n";
    }
}

} // namespace pes
