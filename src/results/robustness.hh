/**
 * @file
 * Robustness reduction: per-severity fleet reports -> scheduler
 * degradation curves.
 *
 * A scenario sweep produces one FleetReport per severity cell. This
 * module folds them into per-(device, app, scheduler, metric) curves —
 * metric value vs severity — plus two scalar summaries per curve and a
 * normalized robustness score per scheduler:
 *
 *  - slope: the least-squares slope of value over severity, in metric
 *    units per unit severity. Sign follows the raw value (an energy
 *    slope of +800 means ~800 mJ more per full severity).
 *  - degradation d(s): the direction-adjusted relative worsening vs
 *    the curve's lowest-severity anchor b — (v-b)/|b| for lower-better
 *    metrics, (b-v)/|b| for higher-better — clamped at 0 (a metric
 *    that improves under stress does not earn robustness credit).
 *    Anchors at exactly 0 fall back to absolute deltas (|b| -> 1).
 *  - robustness: 1 / (1 + mean of d(s) over the non-anchor grid
 *    points), in (0, 1]: 1.0 = the metric never degrades, 0.5 = it
 *    doubles on average across the grid.
 *
 * A scheduler's score is the mean robustness over every (device, app,
 * metric) curve it owns — the headline "who survives hostile users"
 * number. All arithmetic replays in canonical cell/metric order over
 * reports that are themselves byte-deterministic, so the JSON and CSV
 * curve reports are byte-identical for any thread count, shard split,
 * or resume boundary of the underlying sweeps.
 */

#ifndef PES_RESULTS_ROBUSTNESS_HH
#define PES_RESULTS_ROBUSTNESS_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runner/reporters.hh"
#include "util/integrity.hh"

namespace pes {

/** The metrics robustness curves track: the paper's headline QoS /
 *  energy / prediction claims (a subset of cellMetricNames()). */
const std::vector<std::string> &robustnessMetricNames();

/** One (severity, value) sample of a curve. */
struct CurvePoint
{
    double severity = 0.0;
    double value = 0.0;
};

/** One metric's trajectory across the severity grid for one cell. */
struct RobustnessCurve
{
    std::string device;
    std::string app;
    std::string scheduler;
    std::string metric;
    /** Samples in ascending-severity order (one per grid point). */
    std::vector<CurvePoint> points;
    /** Value at the lowest severity (the degradation anchor). */
    double baseline = 0.0;
    /** Least-squares slope of value over severity. */
    double slope = 0.0;
    /** Max direction-adjusted relative degradation vs baseline. */
    double worstDegradation = 0.0;
    /** 1 / (1 + mean degradation) in (0, 1]. */
    double robustness = 1.0;
};

/** A scheduler's aggregate across all its curves. */
struct SchedulerRobustness
{
    std::string scheduler;
    /** Mean robustness over every (device, app, metric) curve. */
    double score = 1.0;
    /** Worst single-curve degradation this scheduler exhibited. */
    double worstDegradation = 0.0;
};

/** The serializable outcome of one scenario sweep. */
struct RobustnessReport
{
    /** Curve-report schema version. */
    static constexpr int kVersion = 1;

    /** Stress family name. */
    std::string family;
    /** Sweep identity (shared by every severity cell). */
    uint64_t baseSeed = 0;
    std::string seedMode = "fleet";
    bool warmDrivers = false;
    int users = 0;
    std::vector<std::string> devices;
    std::vector<std::string> apps;
    std::vector<std::string> schedulers;
    /** The severity grid, ascending, with canonical spellings. */
    std::vector<double> severities;
    std::vector<std::string> severityTags;
    /** Curves in canonical order: cell-major (device, app, scheduler),
     *  metric-minor (robustnessMetricNames() order). */
    std::vector<RobustnessCurve> curves;
    /** Per-scheduler aggregates, in scheduler-axis order. */
    std::vector<SchedulerRobustness> schedulers_summary;
};

/**
 * Fold per-severity reports into a RobustnessReport. @p cells pairs
 * each severity with its (store-reduced or in-memory) FleetReport, in
 * any order; they are validated to (a) share one sweep identity, (b)
 * carry the scenario tag "<family>@<severity>" matching their severity,
 * and (c) form a duplicate-free grid with every cell's cross-product
 * complete. Violations append classified Mismatch problems and yield
 * nullopt — curves over mismatched sweeps would be fiction.
 */
std::optional<RobustnessReport>
makeRobustnessReport(const std::string &family,
                     std::vector<std::pair<double, FleetReport>> cells,
                     std::vector<IntegrityProblem> &problems);

/** JSON curve sink (deterministic bytes; meta + curves + scores). */
void writeRobustnessJson(const RobustnessReport &report,
                         std::ostream &os);

/** CSV curve sink: one row per (cell, metric) with per-severity value
 *  columns, slope, degradation and robustness. */
void writeRobustnessCsv(const RobustnessReport &report, std::ostream &os);

} // namespace pes

#endif // PES_RESULTS_ROBUSTNESS_HH
