#include "results/tolerance.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/json.hh"
#include "util/stats.hh"

namespace pes {

namespace {

/** Below this magnitude a mean is "zero" and rel bands are undefined. */
constexpr double kZeroMean = 1e-12;

} // namespace

const MetricTolerance *
ToleranceSpec::find(const std::string &name) const
{
    const auto it = std::lower_bound(
        metrics.begin(), metrics.end(), name,
        [](const MetricTolerance &t, const std::string &n) {
            return t.name < n;
        });
    if (it == metrics.end() || it->name != name)
        return nullptr;
    return &*it;
}

void
ToleranceSpec::widen(const std::string &name, double rel, double abs)
{
    const auto it = std::lower_bound(
        metrics.begin(), metrics.end(), name,
        [](const MetricTolerance &t, const std::string &n) {
            return t.name < n;
        });
    if (it != metrics.end() && it->name == name) {
        it->rel = std::max(it->rel, rel);
        it->abs = std::max(it->abs, abs);
        return;
    }
    MetricTolerance t;
    t.name = name;
    t.rel = rel;
    t.abs = abs;
    metrics.insert(it, std::move(t));
}

std::string
toleranceSpecToJson(const ToleranceSpec &spec)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"tolerance_version\": " << ToleranceSpec::kVersion << ",\n"
       << "  \"sigmas\": " << jsonNum(spec.sigmas) << ",\n"
       << "  \"replicates\": " << spec.replicates << ",\n"
       << "  \"metrics\": [";
    for (size_t i = 0; i < spec.metrics.size(); ++i) {
        const MetricTolerance &t = spec.metrics[i];
        os << (i ? "," : "") << "\n    {\"name\": \""
           << jsonEscape(t.name) << "\", \"rel\": " << jsonNum(t.rel)
           << ", \"abs\": " << jsonNum(t.abs) << "}";
    }
    os << (spec.metrics.empty() ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

std::optional<ToleranceSpec>
parseToleranceSpec(const std::string &text)
{
    const auto doc = parseJson(text);
    if (!doc || doc->kind != JsonValue::Kind::Object)
        return std::nullopt;
    const JsonValue *version = doc->find("tolerance_version");
    if (!version ||
        version->number() !=
            static_cast<double>(ToleranceSpec::kVersion))
        return std::nullopt;

    ToleranceSpec spec;
    if (const JsonValue *sigmas = doc->find("sigmas"))
        spec.sigmas = sigmas->number();
    if (const JsonValue *replicates = doc->find("replicates"))
        spec.replicates = static_cast<int>(replicates->number());
    if (const JsonValue *metrics = doc->find("metrics")) {
        for (const JsonValue &row : metrics->arr) {
            MetricTolerance t;
            if (const JsonValue *name = row.find("name"))
                t.name = name->str;
            if (const JsonValue *rel = row.find("rel"))
                t.rel = rel->number();
            if (const JsonValue *abs = row.find("abs"))
                t.abs = abs->number();
            if (!t.name.empty())
                spec.metrics.push_back(std::move(t));
        }
    }
    std::sort(spec.metrics.begin(), spec.metrics.end(),
              [](const MetricTolerance &a, const MetricTolerance &b) {
                  return a.name < b.name;
              });
    return spec;
}

std::optional<ToleranceSpec>
loadToleranceSpec(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open tolerance file: " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto spec = parseToleranceSpec(buf.str());
    if (!spec && error)
        *error = "unparseable tolerance file (or version skew): " + path;
    return spec;
}

ToleranceSpec
calibrateTolerances(const std::vector<FleetReport> &replicates,
                    double sigmas, std::vector<std::string> *notes)
{
    ToleranceSpec spec;
    spec.sigmas = sigmas;
    spec.replicates = static_cast<int>(replicates.size());

    const std::vector<std::string> &names = cellMetricNames();

    // Align cells on (device, app, scheduler) across every replicate.
    using CellKey = std::tuple<std::string, std::string, std::string>;
    std::map<CellKey, std::vector<const CellSummary *>> aligned;
    for (const FleetReport &report : replicates) {
        for (const CellSummary &cell : report.cells)
            aligned[CellKey{cell.device, cell.app, cell.scheduler}]
                .push_back(&cell);
    }

    for (const auto &entry : aligned) {
        if (entry.second.size() != replicates.size()) {
            if (notes) {
                notes->push_back(
                    "calibrate: cell (" + std::get<0>(entry.first) +
                    ", " + std::get<1>(entry.first) + ", " +
                    std::get<2>(entry.first) + ") present in " +
                    std::to_string(entry.second.size()) + "/" +
                    std::to_string(replicates.size()) +
                    " replicates; skipped");
            }
            continue;
        }
        std::vector<std::vector<double>> values;
        values.reserve(entry.second.size());
        for (const CellSummary *cell : entry.second)
            values.push_back(cellMetricValues(*cell));
        for (size_t m = 0; m < names.size(); ++m) {
            RunningStats stats;
            for (const std::vector<double> &row : values)
                stats.add(row[m]);
            const double stddev = stats.stddev();
            if (!(std::isfinite(stddev)) || stddev == 0.0)
                continue;
            const double mean = std::fabs(stats.mean());
            if (mean > kZeroMean)
                spec.widen(names[m], sigmas * stddev / mean, 0.0);
            else
                spec.widen(names[m], 0.0, sigmas * stddev);
        }
    }
    return spec;
}

} // namespace pes
