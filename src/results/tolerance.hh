/**
 * @file
 * Calibrated per-metric diff tolerances.
 *
 * PR 4's diff gate uses one global rel/abs tolerance pair, which forces
 * a trade-off: tight enough to catch drift in stable metrics, loose
 * enough not to false-alarm on noisy ones. A ToleranceSpec replaces the
 * global knobs with a per-metric band DERIVED from observed variation:
 * give `pes_fleet diff --calibrate=N` N replicate reports (same sweep
 * shape, different replication axis — seeds, severities, machines) and
 * it emits tolerance = sigmas x the worst per-cell variation seen for
 * each metric. Both consumers honor it: `pes_fleet diff
 * --tolerance-file` for report cells, `pes_perf gate` for history
 * metrics (which strips its "quality.<scheduler>." qualifier before
 * lookup, so one calibration file serves both gates).
 *
 * The JSON document is versioned and self-describing; parse rejects
 * version skew rather than guessing.
 */

#ifndef PES_RESULTS_TOLERANCE_HH
#define PES_RESULTS_TOLERANCE_HH

#include <optional>
#include <string>
#include <vector>

#include "runner/reporters.hh"

namespace pes {

/** Calibrated noise band of one metric. */
struct MetricTolerance
{
    std::string name;
    /** Relative band: |test - base| / |base| <= rel passes. */
    double rel = 0.0;
    /** Absolute floor (covers near-zero means, where rel is undefined). */
    double abs = 0.0;
};

/** A calibrated tolerance table (name-sorted). */
struct ToleranceSpec
{
    /** Schema version (bumped on layout changes). */
    static constexpr int kVersion = 1;

    /** Band width in standard deviations used at calibration time. */
    double sigmas = 3.0;
    /** Replicate count the bands were derived from. */
    int replicates = 0;
    std::vector<MetricTolerance> metrics;

    /** Exact-name lookup; nullptr when the metric was not calibrated. */
    const MetricTolerance *find(const std::string &name) const;

    /** Insert or widen (never narrow) the band for @p name. */
    void widen(const std::string &name, double rel, double abs);
};

/** Serialize as a deterministic-key-order JSON document. */
std::string toleranceSpecToJson(const ToleranceSpec &spec);

/** Parse a toleranceSpecToJson document; nullopt on malformed input or
 *  a tolerance_version mismatch. */
std::optional<ToleranceSpec> parseToleranceSpec(const std::string &text);

/** Load from @p path; nullopt with a classified @p error on failure. */
std::optional<ToleranceSpec> loadToleranceSpec(const std::string &path,
                                               std::string *error);

/**
 * Derive per-metric tolerances from @p replicates (>= 2 reports of the
 * same sweep shape): for every serialized cell metric, the band is
 * @p sigmas x the worst observed variation across aligned cells —
 * relative (stddev/|mean|) where the mean is meaningfully non-zero,
 * absolute (stddev) where it is not. Cells present in only some
 * replicates are skipped with a note in @p notes (nullable).
 */
ToleranceSpec calibrateTolerances(const std::vector<FleetReport> &replicates,
                                  double sigmas,
                                  std::vector<std::string> *notes);

} // namespace pes

#endif // PES_RESULTS_TOLERANCE_HH
