#include "runner/fleet_config.hh"

#include <climits>

#include "population/population_spec.hh"
#include "trace/generator.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/strings.hh"

namespace pes {

int
FleetConfig::effectiveUsers() const
{
    return userSeeds.empty() ? users : static_cast<int>(userSeeds.size());
}

int
FleetConfig::cellCount() const
{
    const size_t devs = devices.empty() ? 1 : devices.size();
    return static_cast<int>(devs * apps.size() * schedulers.size());
}

int
FleetConfig::jobCount() const
{
    const long long total =
        static_cast<long long>(cellCount()) * effectiveUsers();
    fatal_if(total > INT_MAX, "fleet: %lld sessions exceed the job limit",
             total);
    return static_cast<int>(total);
}

uint64_t
fleetUserSeed(const FleetConfig &config, int user_index)
{
    if (!config.userSeeds.empty()) {
        panic_if(user_index < 0 ||
                 user_index >= static_cast<int>(config.userSeeds.size()),
                 "fleetUserSeed: user %d outside the explicit seed list",
                 user_index);
        return config.userSeeds[static_cast<size_t>(user_index)];
    }
    const uint64_t idx = static_cast<uint64_t>(user_index);
    switch (config.seedMode) {
      case SeedMode::Fleet:
        // Population sweeps fold the population digest into every user
        // seed so two populations never share a user, and so reduction
        // can re-verify record seeds from the manifest tag alone.
        if (config.populationDigest != 0) {
            return populationUserSeed(config.populationDigest,
                                      config.baseSeed, idx);
        }
        return hashCombine(config.baseSeed, idx);
      case SeedMode::Evaluation:
        return TraceGenerator::kEvaluationSeedBase + idx;
    }
    panic("fleetUserSeed: invalid seed mode");
}

std::vector<JobSpec>
enumerateJobs(const FleetConfig &config)
{
    fatal_if(config.apps.empty(), "fleet: no application profiles");
    fatal_if(config.schedulers.empty(), "fleet: no schedulers");
    const int users = config.effectiveUsers();
    fatal_if(users < 1, "fleet: users must be >= 1");

    const int devs =
        config.devices.empty() ? 1 : static_cast<int>(config.devices.size());
    std::vector<JobSpec> jobs;
    jobs.reserve(static_cast<size_t>(config.jobCount()));
    int index = 0;
    for (int d = 0; d < devs; ++d) {
        for (size_t a = 0; a < config.apps.size(); ++a) {
            for (size_t s = 0; s < config.schedulers.size(); ++s) {
                for (int u = 0; u < users; ++u) {
                    JobSpec job;
                    job.index = index++;
                    job.deviceIndex = d;
                    job.appIndex = static_cast<int>(a);
                    job.schedulerIndex = static_cast<int>(s);
                    job.userIndex = u;
                    job.userSeed = fleetUserSeed(config, u);
                    jobs.push_back(job);
                }
            }
        }
    }
    return jobs;
}

std::vector<SchedulerKind>
parseSchedulerList(const std::string &spec)
{
    std::vector<SchedulerKind> kinds;
    for (const std::string &raw : split(spec, ',')) {
        const std::string name = trim(raw);
        if (name.empty())
            continue;
        const auto kind = schedulerKindFromName(name);
        fatal_if(!kind, "unknown scheduler '%s' (expected one of "
                 "interactive, ondemand, ebs, pes, oracle)", name.c_str());
        kinds.push_back(*kind);
    }
    fatal_if(kinds.empty(), "empty scheduler list '%s'", spec.c_str());
    return kinds;
}

std::vector<AppProfile>
parseAppList(const std::string &spec)
{
    std::vector<AppProfile> apps;
    for (const std::string &raw : split(spec, ',')) {
        const std::string name = toLower(trim(raw));
        if (name.empty())
            continue;
        if (name == "seen") {
            for (const AppProfile &p : seenApps())
                apps.push_back(p);
        } else if (name == "unseen") {
            for (const AppProfile &p : unseenApps())
                apps.push_back(p);
        } else if (name == "all") {
            for (const AppProfile &p : appRegistry())
                apps.push_back(p);
        } else if (name == "extra") {
            for (const AppProfile &p : extraApps())
                apps.push_back(p);
        } else {
            apps.push_back(appByName(name));
        }
    }
    fatal_if(apps.empty(), "empty application list '%s'", spec.c_str());
    return apps;
}

const std::vector<DeviceInfo> &
deviceRegistry()
{
    static const std::vector<DeviceInfo> registry{
        {AcmpPlatform::exynos5410(), "exynos5410", {"exynos"}},
        {AcmpPlatform::tegraParker(), "tegra-parker", {"parker", "tx2"}},
    };
    return registry;
}

std::vector<AcmpPlatform>
knownDevices()
{
    std::vector<AcmpPlatform> devices;
    for (const DeviceInfo &info : deviceRegistry())
        devices.push_back(info.platform);
    return devices;
}

std::optional<AcmpPlatform>
deviceByPlatformName(const std::string &name)
{
    for (const DeviceInfo &info : deviceRegistry()) {
        if (info.platform.name() == name)
            return info.platform;
    }
    return std::nullopt;
}

std::vector<AcmpPlatform>
parseDeviceList(const std::string &spec)
{
    const auto lookup = [](const std::string &name) -> const DeviceInfo * {
        for (const DeviceInfo &info : deviceRegistry()) {
            if (name == info.cliName)
                return &info;
            for (const std::string &alias : info.aliases) {
                if (name == alias)
                    return &info;
            }
        }
        return nullptr;
    };
    std::vector<AcmpPlatform> devices;
    for (const std::string &raw : split(spec, ',')) {
        const std::string name = toLower(trim(raw));
        if (name.empty())
            continue;
        const DeviceInfo *info = lookup(name);
        if (!info) {
            std::string known;
            for (const DeviceInfo &d : deviceRegistry())
                known += (known.empty() ? "" : ", ") + d.cliName;
            fatal("unknown device '%s' (expected one of %s)",
                  name.c_str(), known.c_str());
        }
        devices.push_back(info->platform);
    }
    fatal_if(devices.empty(), "empty device list '%s'", spec.c_str());
    return devices;
}

} // namespace pes
