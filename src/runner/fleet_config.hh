/**
 * @file
 * Fleet sweep description and deterministic job enumeration.
 *
 * A fleet run is the cross-product of scheduler drivers, application
 * profiles, device (ACMP) models, and simulated users. Each element of
 * that product is one JobSpec: a single user session replayed under one
 * scheduler on one device. Job enumeration is deterministic and
 * thread-count independent — the JobSpec::index is the canonical ordering
 * key, and every per-session random stream derives from the job's
 * userSeed through util/rng hashing (no ad-hoc arithmetic seeding), so a
 * fleet is reproducible bit-for-bit regardless of how many workers
 * execute it.
 */

#ifndef PES_RUNNER_FLEET_CONFIG_HH
#define PES_RUNNER_FLEET_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/scheduler_kind.hh"
#include "hw/acmp.hh"
#include "trace/app_profile.hh"
#include "trace/trace.hh"

namespace pes {

class CorpusStore;
class LogisticModel;
struct PopulationSpec;
class ResultStore;
class TelemetryRegistry;
class TraceCache;
class TraceEventSink;

/** A contiguous range of jobs executed in order by one worker. */
struct JobRange
{
    int first = 0;
    int count = 0;
};

/** One simulated user session of a fleet sweep. */
struct JobSpec
{
    /** Dense id; also the canonical (thread-independent) ordering key. */
    int index = 0;
    /** Index into FleetConfig::devices. */
    int deviceIndex = 0;
    /** Index into FleetConfig::apps. */
    int appIndex = 0;
    /** Index into FleetConfig::schedulers. */
    int schedulerIndex = 0;
    /** User shard [0, users). */
    int userIndex = 0;
    /** Trace-generation seed of this user (derived, deterministic). */
    uint64_t userSeed = 0;
};

/** Which user population a fleet draws its traces from. */
enum class SeedMode
{
    /**
     * Fresh fleet users: shard seeds are hashed from
     * FleetConfig::baseSeed via util/rng (hashCombine), disjoint from
     * the training and evaluation populations.
     */
    Fleet = 0,
    /**
     * The paper's evaluation population (Sec. 6.1): user @c i maps to
     * TraceGenerator::kEvaluationSeedBase + i, reproducing the classic
     * Experiment::runSweep protocol exactly.
     */
    Evaluation,
};

/**
 * Description of one fleet sweep.
 */
struct FleetConfig
{
    /** Default base seed of the fleet user population. */
    static constexpr uint64_t kDefaultBaseSeed = 0xf1ee7u;

    /** Device models to sweep (empty = the paper's Exynos 5410). */
    std::vector<AcmpPlatform> devices;
    /** Application profiles to sweep. */
    std::vector<AppProfile> apps;
    /** Scheduler drivers to sweep. */
    std::vector<SchedulerKind> schedulers;
    /** Simulated users per (device, app, scheduler) cell. */
    int users = 1;
    /** Worker threads (>= 1). Never affects results, only wall-clock. */
    int threads = 1;
    /** Base seed of the fleet population (SeedMode::Fleet). */
    uint64_t baseSeed = kDefaultBaseSeed;
    /** User population. */
    SeedMode seedMode = SeedMode::Fleet;
    /**
     * Explicit per-user trace seeds. When non-empty this overrides both
     * @c users and @c seedMode: the user axis is exactly this list (in
     * order). Corpus replay uses it to sweep the recorded population.
     */
    std::vector<uint64_t> userSeeds;
    /**
     * Keep one driver per (device, app, scheduler) cell, replaying the
     * cell's sessions in user order on a single worker ("warmed device":
     * EBS/PES carry their Eqn.-1 measurement history across sessions,
     * exactly like the classic Experiment::runSweep). When false every
     * session gets a fresh driver — the independent-users fleet model —
     * and all sessions parallelize freely.
     */
    bool warmDrivers = false;
    /** Also retain every full SimResult (ResultSet) next to the
     *  aggregated metrics. Costs memory on big fleets. */
    bool collectResults = false;
    /**
     * Reuse one RuntimeSimulator engine per (worker, device, app) slot
     * across sessions — the engine resets (keeping its allocations:
     * session DOM copies, meter segments, event records) instead of
     * being rebuilt per job, and pooled scheduler drivers reset between
     * ranges instead of being re-constructed. Reports are byte-identical
     * either way (locked by tests); off is the historical
     * construct-per-job behaviour, kept as the comparison baseline.
     */
    bool reuseEngines = true;
    /** Training sessions per seen app for the PES event model. */
    int trainingTracesPerApp = 9;
    /**
     * Optional pre-trained event model (borrowed, not owned). Used only
     * for single-device fleets whose device name equals
     * pretrainedModelDevice (the model's training platform); otherwise
     * the runner trains per device.
     */
    const LogisticModel *pretrainedModel = nullptr;
    /** Platform name the pretrained model was trained on. */
    std::string pretrainedModelDevice;
    /**
     * Share each (device, app, user) trace across the scheduler axis
     * through an in-process TraceCache (synthesize once, replay many).
     * Results are bit-identical either way — synthesis is deterministic
     * — so this is purely a wall-clock/memory trade. Off means every
     * job re-synthesizes its trace (the historical behaviour; benches
     * use it as the comparison baseline).
     *
     * Sharing keeps every distinct trace resident for the whole run,
     * so the runner only auto-enables it when it pays (more than one
     * scheduler replays each trace) AND the distinct-trace count is at
     * most maxSharedTraces — giant fresh fleets fall back to bounded
     * per-job synthesis instead of accumulating millions of traces.
     * Warm, corpus, and external-cache runs always share.
     */
    bool shareTraces = true;
    /**
     * Auto-sharing bound: the largest devices x apps x users resident
     * set shareTraces may cache (0 = unlimited). ~32k traces is a few
     * hundred MB at typical session sizes.
     */
    long long maxSharedTraces = 32768;
    /**
     * Optional external trace cache (borrowed, not owned): lets several
     * runs share one warm cache. When null and sharing is on, the
     * runner builds a private cache per run() call.
     */
    TraceCache *traceCache = nullptr;
    /**
     * Optional recorded corpus (borrowed, not owned): traces replay
     * from disk instead of being synthesized. Every (device, app, user
     * seed) of the cross-product must exist in the corpus — missing
     * entries are a fatal configuration error, reported before any job
     * runs. Implies trace sharing.
     */
    const CorpusStore *corpus = nullptr;
    /**
     * Hard LRU bound on the trace cache the runner owns: at most this
     * many resident traces (0 = unbounded). Unlike maxSharedTraces —
     * which switches auto-sharing off entirely past the bound — a cap
     * keeps sharing on and evicts least-recently-replayed traces, so
     * giant fresh fleets get bounded memory AND cache hits. Eviction
     * never changes report bytes: an evicted trace re-materializes
     * deterministically on the next miss. Ignored for caller-provided
     * caches (the caller owns their policy).
     */
    size_t traceCacheCap = 0;
    /**
     * Shard selector: execute only the jobs of shard shardIndex out of
     * shardCount (0-based; 1 = the whole sweep). Fresh fleets shard per
     * job, warm fleets per (device, app, scheduler) cell so a warmed
     * driver's session order never splits. Launch the same config with
     * --shard k/N on N machines, each writing its own result store,
     * then `pes_fleet merge` — the merged reports are byte-identical to
     * a single whole run.
     */
    int shardIndex = 0;
    int shardCount = 1;
    /**
     * External job ranges (coordinator leases): when non-empty the
     * planner executes exactly these canonical-order ranges instead of
     * consulting the shard selector — the range boundary comes from a
     * lease handed out at runtime, not from a static k-of-N split.
     * Requires the default 1-of-1 shard and no resume; warm-driver
     * sweeps additionally require cell-aligned ranges so a warmed
     * driver's session order never splits.
     */
    std::vector<JobRange> externalRanges;
    /**
     * Part-label override for persisted checkpoints (empty = the
     * default "s<shardIndex>"). Coordinator workers label parts with
     * their worker id and lease epoch, so concurrent writers into one
     * store never contend for a label's sequence numbers.
     */
    std::string persistLabel;
    /**
     * Optional persistent result store (borrowed, not owned). When set,
     * every completed session's SessionStats is checkpointed into the
     * store as the run progresses, and the final reduction is performed
     * FROM the store — so whole runs, sharded runs and resumed runs all
     * reduce through one code path with byte-identical reports.
     */
    ResultStore *resultStore = nullptr;
    /**
     * Skip jobs whose records already sit in resultStore (requires it).
     * Warm cells resume all-or-nothing: a partially persisted cell
     * re-runs from its first session so the driver's cross-session
     * state replays identically; its duplicate records deduplicate at
     * reduction (deterministic re-runs are bit-identical).
     */
    bool resume = false;
    /**
     * Sessions buffered between checkpoint flushes to resultStore
     * (<= 0 means flush only at the end of the run). Each flush appends
     * one .psum part and atomically re-saves the manifest, bounding how
     * much work a kill can lose.
     */
    int checkpointEvery = 1024;
    /**
     * Scenario identity of this sweep ("<family>@<severity>" for
     * stress sweeps, empty for the baseline). Carried into the sweep
     * spec, store manifest and report meta, so stores never mix and
     * `pes_fleet diff` never compares runs of different scenarios —
     * the derived traces describe a different user population.
     */
    std::string scenario;
    /**
     * Optional mixture-model population (borrowed, not owned; see
     * population/population_spec.hh). When set, the fleet's user axis
     * is drawn from the spec's cohorts instead of the homogeneous
     * i.i.d. population: user seeds derive from the population digest
     * (populationUserSeed), per-user trait multipliers scale the
     * sampled UserParams, and cohort scenarios derive each user's
     * trace. populationTag/populationDigest MUST be the spec's
     * populationTag/populationDigest — the tag joins the sweep spec,
     * store manifest and report meta (stores refuse to mix
     * populations, exactly like scenarios), and the digest alone
     * lets reduction re-verify record seeds without the spec.
     */
    const PopulationSpec *population = nullptr;
    /** Population identity ("<name>#<digest>"; empty = homogeneous). */
    std::string populationTag;
    /** Population digest (0 = homogeneous population). */
    uint64_t populationDigest = 0;
    /**
     * Optional deterministic trace transform (scenario derivation):
     * applied to every trace after synthesis or corpus load, INSIDE
     * the trace cache's loader, so evicted entries re-materialize the
     * transformed trace byte-identically. MUST be a pure function of
     * the input trace — any hidden state would break the bit-exact
     * reports guarantee across thread counts, shards, and resume.
     * The cross-product keys (device, app, job userSeed) are
     * untouched; only the replayed events change.
     */
    std::function<InteractionTrace(const InteractionTrace &)>
        traceTransform;
    /**
     * Optional telemetry registry (borrowed, not owned). When armed,
     * the runner records structured counters — sessions/events,
     * per-job durations, cache/pool/checkpoint traffic — into
     * per-worker shards merged canonically. Telemetry NEVER feeds back
     * into simulation or reduction: reports stay byte-identical with
     * it on or off, at any thread count (locked by tests and CI).
     */
    TelemetryRegistry *telemetry = nullptr;
    /**
     * Optional Chrome trace-event sink (borrowed, not owned): the
     * runner emits spans for its plan/execute/persist/reduce stages,
     * per-job execute spans on per-worker lanes, and instant events
     * for checkpoint flushes and trace-cache evictions. Same
     * no-feedback contract as telemetry.
     */
    TraceEventSink *traceSink = nullptr;
    /**
     * Emit a throttled progress line to stderr as jobs complete
     * (completed/planned sessions and a running sessions/sec).
     * Deliberately independent of the log level: --progress is an
     * explicit operator request, not chatter.
     */
    bool progress = false;

    /** The user-axis length (userSeeds list or @c users). */
    int effectiveUsers() const;
    /** Sessions per cell times cells. */
    int jobCount() const;
    /** Number of (device, app, scheduler) cells. */
    int cellCount() const;
};

/**
 * Trace seed of user @p user_index under @p config (see SeedMode).
 */
uint64_t fleetUserSeed(const FleetConfig &config, int user_index);

/**
 * Enumerate the full cross-product in canonical order: device, then app,
 * then scheduler, then user. Sessions of one cell are contiguous (the
 * shard unit of warm-driver runs).
 */
std::vector<JobSpec> enumerateJobs(const FleetConfig &config);

// ---------------- CLI parsing helpers (pes_fleet, tests) ----------------

/**
 * Parse a comma-separated scheduler list ("pes,ebs,interactive");
 * panics via fatal() on unknown names.
 */
std::vector<SchedulerKind> parseSchedulerList(const std::string &spec);

/**
 * Parse a comma-separated application list. Accepts registry names
 * ("cnn"), extra profiles ("social_feed"), and the group aliases
 * "seen", "unseen", "all" (the 18 paper apps), and "extra".
 */
std::vector<AppProfile> parseAppList(const std::string &spec);

/**
 * Parse a comma-separated device list: "exynos5410" and "tegra-parker".
 */
std::vector<AcmpPlatform> parseDeviceList(const std::string &spec);

/** One row of the device registry: the model plus its CLI spellings. */
struct DeviceInfo
{
    AcmpPlatform platform;
    /** Canonical CLI name ("exynos5410"). */
    std::string cliName;
    /** Accepted alternative spellings. */
    std::vector<std::string> aliases;
};

/**
 * Every device model the fleet knows. The single source of truth
 * behind parseDeviceList and `pes_fleet --list-devices` — adding a
 * platform here updates parsing and discovery together.
 */
const std::vector<DeviceInfo> &deviceRegistry();

/** The registry's platforms only, in registry order. */
std::vector<AcmpPlatform> knownDevices();

/** Look up a device by its platform name (e.g. "Exynos 5410"); nullopt
 *  when no known device matches (corpus manifests store this name). */
std::optional<AcmpPlatform> deviceByPlatformName(const std::string &name);

} // namespace pes

#endif // PES_RUNNER_FLEET_CONFIG_HH
