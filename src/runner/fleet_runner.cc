#include "runner/fleet_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/ebs_scheduler.hh"
#include "corpus/corpus_store.hh"
#include "corpus/trace_cache.hh"
#include "core/governors.hh"
#include "core/oracle_scheduler.hh"
#include "core/pes_scheduler.hh"
#include "core/predictor_training.hh"
#include "population/population_spec.hh"
#include "results/result_reduce.hh"
#include "results/result_store.hh"
#include "runner/thread_pool.hh"
#include "sim/runtime_simulator.hh"
#include "telemetry/trace_sink.hh"
#include "trace/generator.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace pes {

namespace {

/** Salt for deriving per-session speculation-noise seeds (fleet mode). */
constexpr uint64_t kSpecNoiseSalt = 0x5eedu;

/** Milliseconds elapsed since @p t0 (steady clock). */
double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Throttled stderr progress line (--progress). Workers bump an atomic
 * completion counter; whichever bump grabs the try_lock and finds the
 * half-second throttle expired prints. Contending workers skip instead
 * of queueing, so the hot path never blocks on console I/O.
 */
class ProgressMeter
{
  public:
    explicit ProgressMeter(int total)
        : total_(total), start_(std::chrono::steady_clock::now())
    {
    }

    void bump()
    {
        const int done = done_.fetch_add(1) + 1;
        std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
        if (!lock.owns_lock())
            return;
        const auto now = std::chrono::steady_clock::now();
        if (now - lastPrint_ < std::chrono::milliseconds(500))
            return;
        lastPrint_ = now;
        print(done);
    }

    /** Always prints the final tally (unless a bump just did). */
    void finish()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (lastPrinted_ != done_.load())
            print(done_.load());
    }

  private:
    void print(int done)
    {
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        std::fprintf(stderr,
                     "progress: %d/%d sessions (%d%%), %.1f sessions/s\n",
                     done, total_,
                     total_ > 0 ? done * 100 / total_ : 100,
                     secs > 0.0 ? done / secs : 0.0);
        std::fflush(stderr);
        lastPrinted_ = done;
    }

    const int total_;
    const std::chrono::steady_clock::time_point start_;
    std::atomic<int> done_{0};
    std::mutex mutex_;
    std::chrono::steady_clock::time_point lastPrint_{};
    int lastPrinted_ = -1;
};

/**
 * Immutable per-device state shared by every worker: the platform, its
 * power table, and the trained event model. Construction order matters
 * (power and generator hold references into platform), hence the
 * in-struct initialization.
 */
struct DeviceContext
{
    explicit DeviceContext(const AcmpPlatform &p)
        : platform(p), power(platform), trainGenerator(platform)
    {
    }

    AcmpPlatform platform;
    PowerModel power;
    /** Main-thread generator used only for model training. */
    TraceGenerator trainGenerator;
    /** Trained event model; unset when no scheduler needs it. */
    std::optional<LogisticModel> ownedModel;
    /** Model the PES driver uses (owned or borrowed). */
    const LogisticModel *model = nullptr;
};

std::unique_ptr<SchedulerDriver>
makeFleetScheduler(SchedulerKind kind, const DeviceContext &device)
{
    switch (kind) {
      case SchedulerKind::Interactive:
        return std::make_unique<InteractiveGovernor>();
      case SchedulerKind::Ondemand:
        return std::make_unique<OndemandGovernor>();
      case SchedulerKind::Ebs:
        return std::make_unique<EbsScheduler>();
      case SchedulerKind::Pes:
        panic_if(!device.model, "fleet: PES scheduled without a model");
        return std::make_unique<PesScheduler>(*device.model);
      case SchedulerKind::Oracle:
        return std::make_unique<OracleScheduler>();
    }
    panic("makeFleetScheduler: invalid kind");
}

/**
 * Checkpointing sink of the persist stage: workers push completed
 * sessions, flushes append .psum parts and atomically re-save the
 * store manifest so a kill at any instant leaves a valid store.
 */
struct PersistSink
{
    ResultStore *store = nullptr;
    std::string label;
    PsumParams params;
    int checkpointEvery = 0;

    /** Guards pending only: pushes stay cheap while a flush writes. */
    std::mutex pendingMutex;
    std::vector<SessionRecord> pending;
    /** Contended pendingMutex acquisitions; guarded by pendingMutex. */
    LockContention pushContention;
    /** Serializes store writes and the counters/errors they update. */
    std::mutex flushMutex;
    uint64_t flushes = 0;
    uint64_t persisted = 0;
    uint64_t flushedBytes = 0;
    std::vector<std::string> errors;
    /** Optional trace sink: each flush stamps an instant event. */
    TraceEventSink *traceSink = nullptr;
    int instantLane = 0;

    void push(SessionRecord record)
    {
        std::vector<SessionRecord> batch;
        {
            ContentionGuard lock(pendingMutex, pushContention);
            pending.push_back(std::move(record));
            if (checkpointEvery <= 0 ||
                pending.size() < static_cast<size_t>(checkpointEvery))
                return;
            batch.swap(pending);
        }
        // File I/O happens outside pendingMutex, so workers completing
        // sessions during a checkpoint never block on the disk; batches
        // may land out of order, which reduction re-sorts anyway.
        flush(std::move(batch));
    }

    void finish()
    {
        std::vector<SessionRecord> batch;
        {
            std::lock_guard<std::mutex> lock(pendingMutex);
            batch.swap(pending);
        }
        if (!batch.empty())
            flush(std::move(batch));
    }

  private:
    void flush(std::vector<SessionRecord> batch)
    {
        std::lock_guard<std::mutex> lock(flushMutex);
        std::string error;
        uint64_t part_bytes = 0;
        if (store->appendPart(batch, label, params, &error,
                              &part_bytes)) {
            persisted += batch.size();
            ++flushes;
            flushedBytes += part_bytes;
            if (traceSink)
                traceSink->instant(instantLane, "checkpoint flush",
                                   "store");
        } else {
            errors.push_back("persist: " + error);
        }
    }
};

} // namespace

FleetRunner::FleetRunner(FleetConfig config) : config_(std::move(config))
{
    if (config_.devices.empty())
        config_.devices.push_back(AcmpPlatform::exynos5410());
    if (config_.threads < 1)
        config_.threads = 1;
    fatal_if(config_.shardCount < 1, "fleet: shard count must be >= 1");
    fatal_if(config_.shardIndex < 0 ||
                 config_.shardIndex >= config_.shardCount,
             "fleet: shard index %d outside [0, %d)", config_.shardIndex,
             config_.shardCount);
    fatal_if(config_.resume && !config_.resultStore,
             "fleet: resume requires a result store");
    jobs_ = enumerateJobs(config_);
    if (!config_.externalRanges.empty()) {
        // Leased execution replaces the static shard selector; mixing
        // the two (or resume) would double-apply a job filter.
        fatal_if(config_.shardCount != 1,
                 "fleet: external ranges exclude --shard");
        fatal_if(config_.resume,
                 "fleet: external ranges exclude --resume (the "
                 "coordinator tracks completion per lease)");
        const int total = static_cast<int>(jobs_.size());
        const int users_per_cell = config_.effectiveUsers();
        for (const JobRange &range : config_.externalRanges) {
            fatal_if(range.count <= 0 || range.first < 0 ||
                         range.first + range.count > total,
                     "fleet: external range [%d, +%d) outside the "
                     "%d-job sweep", range.first, range.count, total);
            fatal_if(config_.warmDrivers &&
                         (range.first % users_per_cell != 0 ||
                          range.count % users_per_cell != 0),
                     "fleet: warm sweeps need cell-aligned external "
                     "ranges (%d users per cell), got [%d, +%d)",
                     users_per_cell, range.first, range.count);
        }
    }
}

// ------------------------------------------------------------ stage: plan

FleetPlan
FleetRunner::plan() const
{
    // Leased execution: the plan IS the externally supplied ranges
    // (validated in the constructor), decomposed into the same
    // execution units as a whole run — whole cells when drivers are
    // warm, singletons otherwise — because runRange binds one driver
    // and one cell to each planned range. Everything outside the
    // leases counts as shard-skipped: other workers' leases cover it.
    if (!config_.externalRanges.empty()) {
        FleetPlan plan;
        plan.totalJobs = static_cast<int>(jobs_.size());
        const int cell = config_.effectiveUsers();
        for (const JobRange &range : config_.externalRanges) {
            if (config_.warmDrivers) {
                for (int first = range.first;
                     first < range.first + range.count; first += cell)
                    plan.ranges.push_back(JobRange{first, cell});
            } else {
                for (int i = 0; i < range.count; ++i)
                    plan.ranges.push_back(
                        JobRange{range.first + i, 1});
            }
            plan.plannedJobs += range.count;
        }
        plan.shardSkipped = plan.totalJobs - plan.plannedJobs;
        return plan;
    }

    // The shard unit mirrors the execution unit: whole cells when
    // drivers are warm (their cross-session state must replay in
    // order), single jobs otherwise.
    const int users_per_cell = config_.effectiveUsers();
    std::vector<JobRange> units;
    if (config_.warmDrivers) {
        for (int first = 0; first < static_cast<int>(jobs_.size());
             first += users_per_cell)
            units.push_back(JobRange{first, users_per_cell});
    } else {
        units.reserve(jobs_.size());
        for (int i = 0; i < static_cast<int>(jobs_.size()); ++i)
            units.push_back(JobRange{i, 1});
    }

    // Resume: collect the store's completed sessions once, as compact
    // (cell ordinal, user index) pairs.
    CompletedSessions done;
    if (config_.resume) {
        fatal_if(config_.resultStore->sweep() !=
                     SweepSpec::fromConfig(config_),
                 "fleet: result store '%s' holds a different sweep",
                 config_.resultStore->dir().c_str());
        std::string error;
        fatal_if(!loadCompletedSessions(*config_.resultStore, done,
                                        &error),
                 "fleet: cannot read result store: %s", error.c_str());
    }
    const auto jobDone = [&](const JobSpec &job) {
        // Job indices follow config axis order, which fromConfig
        // preserves — so this arithmetic equals the CompletedSessions
        // cell-ordinal formula over the store's SweepSpec.
        const long cell =
            (static_cast<long>(job.deviceIndex) *
                 static_cast<long>(config_.apps.size()) +
             job.appIndex) *
                static_cast<long>(config_.schedulers.size()) +
            job.schedulerIndex;
        return done.count({cell,
                           static_cast<uint32_t>(job.userIndex)}) > 0;
    };

    FleetPlan plan;
    plan.totalJobs = static_cast<int>(jobs_.size());
    for (size_t unit = 0; unit < units.size(); ++unit) {
        const JobRange &range = units[unit];
        if (static_cast<int>(unit % static_cast<size_t>(
                config_.shardCount)) != config_.shardIndex) {
            plan.shardSkipped += range.count;
            continue;
        }
        if (config_.resume) {
            // Warm cells resume all-or-nothing: re-running a partial
            // cell from its first session reproduces the driver's
            // cross-session state exactly; the duplicate records
            // deduplicate at reduction.
            bool all_done = true;
            for (int i = 0; i < range.count; ++i)
                all_done &= jobDone(
                    jobs_[static_cast<size_t>(range.first + i)]);
            if (all_done) {
                plan.resumeSkipped += range.count;
                continue;
            }
        }
        plan.ranges.push_back(range);
        plan.plannedJobs += range.count;
    }
    return plan;
}

// ------------------------------------------------------- stages 2 to 4

FleetOutcome
FleetRunner::run()
{
    // ---- Instrumentation (both optional, both no-feedback): armed
    // telemetry records counters, an attached sink records spans.
    // Everything below branches on these pointers; report bytes are
    // identical either way (locked by tests and CI). ----
    TelemetryRegistry *telemetry =
        (config_.telemetry && config_.telemetry->enabled())
            ? config_.telemetry
            : nullptr;
    TraceEventSink *tsink = config_.traceSink;
    const bool logical = tsink && tsink->logicalClock();
    // Lane map: 0 = pipeline stages, 1..threads = workers, last =
    // store/cache instants.
    const int store_lane = config_.threads + 1;
    if (tsink) {
        tsink->nameLane(0, "runner");
        for (int w = 0; w < config_.threads; ++w)
            tsink->nameLane(w + 1, "worker " + std::to_string(w));
        tsink->nameLane(store_lane, "store");
    }
    // Stress grids share one sink across severities, so stage spans
    // carry the scenario to stay tellable apart in the viewer.
    const auto stage_name = [this](const char *stage) {
        return config_.scenario.empty()
            ? std::string(stage)
            : std::string(stage) + " [" + config_.scenario + "]";
    };

    // Memory high-water mark, sampled at every stage boundary. An OS
    // figure that varies run to run, so the logical-clock (golden-
    // locked) mode records none — same rule as the wall times.
    const auto sample_rss = [&] {
        if (telemetry && !logical) {
            telemetry->gauge(
                "mem.peak_rss_kb",
                static_cast<double>(currentPeakRssKb()));
        }
    };

    FleetOutcome outcome;
    {
        TraceSpan plan_span(tsink, 0, stage_name("plan"), "stage");
        const auto plan_start = std::chrono::steady_clock::now();
        outcome.plan = plan();
        outcome.planMs = msSince(plan_start);
    }
    sample_rss();
    outcome.jobCount = outcome.plan.plannedJobs;

    ResultStore *store = config_.resultStore;
    if (store) {
        fatal_if(store->sweep() != SweepSpec::fromConfig(config_),
                 "fleet: result store '%s' holds a different sweep",
                 store->dir().c_str());
    }

    // ---- Shared immutable state (built before any worker starts). ----
    bool needs_model = false;
    for (const SchedulerKind kind : config_.schedulers)
        needs_model |= kind == SchedulerKind::Pes;
    needs_model &= outcome.plan.plannedJobs > 0;

    std::vector<std::unique_ptr<DeviceContext>> devices;
    devices.reserve(config_.devices.size());
    for (const AcmpPlatform &platform : config_.devices) {
        auto ctx = std::make_unique<DeviceContext>(platform);
        if (needs_model) {
            if (config_.pretrainedModel && config_.devices.size() == 1 &&
                platform.name() == config_.pretrainedModelDevice) {
                ctx->model = config_.pretrainedModel;
            } else {
                ctx->ownedModel = trainEventModel(
                    ctx->trainGenerator, seenApps(),
                    config_.trainingTracesPerApp);
                ctx->model = &*ctx->ownedModel;
            }
        }
        devices.push_back(std::move(ctx));
    }

    // ---- Parallel phase: full-result runs keep job-indexed slots;
    // everything else reduces in a stream (below), so the resident set
    // never scales with the user axis. ----
    std::vector<SessionStats> stats;
    std::vector<char> executed;
    std::vector<SimResult> full;
    if (config_.collectResults) {
        stats.resize(jobs_.size());
        executed.assign(jobs_.size(), 0);
        full.resize(jobs_.size());
    }

    // Streaming canonical reduction for the stats-only, store-less
    // path (store-backed runs reduce from the store instead): float
    // sums must fold in ascending job order to stay bit-stable across
    // thread counts, so a cursor walks the planned jobs in order and
    // out-of-order completions wait in a bounded window. Sketch merges
    // commute bin-wise, so each session's latency sketch folds into
    // its cell the moment the session finishes and only the few dozen
    // scalars are stashed — a million-user sweep holds the window's
    // scalars, not a million sketches.
    const bool streaming_reduce = !store && !config_.collectResults;
    std::vector<size_t> planned_jobs;
    if (streaming_reduce) {
        for (const JobRange &range : outcome.plan.ranges)
            for (int i = 0; i < range.count; ++i)
                planned_jobs.push_back(
                    static_cast<size_t>(range.first + i));
        std::sort(planned_jobs.begin(), planned_jobs.end());
    }
    std::mutex reduce_mutex;
    size_t reduce_cursor = 0;
    std::map<size_t, SessionStats> reduce_window;
    size_t reduce_window_peak = 0;
    const auto foldJob = [&](size_t job_index, const SessionStats &s) {
        const JobSpec &job = jobs_[job_index];
        outcome.metrics.add(
            devices[static_cast<size_t>(job.deviceIndex)]
                ->platform.name(),
            config_.apps[static_cast<size_t>(job.appIndex)].name,
            schedulerKindName(
                config_.schedulers[static_cast<size_t>(
                    job.schedulerIndex)]),
            s);
    };
    const auto streamStats = [&](size_t job_index, SessionStats &&s) {
        std::lock_guard<std::mutex> lock(reduce_mutex);
        if (reduce_cursor < planned_jobs.size() &&
            planned_jobs[reduce_cursor] == job_index) {
            foldJob(job_index, s);
            ++reduce_cursor;
            while (reduce_cursor < planned_jobs.size()) {
                const auto it =
                    reduce_window.find(planned_jobs[reduce_cursor]);
                if (it == reduce_window.end())
                    break;
                foldJob(it->first, it->second);
                reduce_window.erase(it);
                ++reduce_cursor;
            }
        } else {
            const JobSpec &job = jobs_[job_index];
            outcome.metrics.addEventLatencySketch(
                devices[static_cast<size_t>(job.deviceIndex)]
                    ->platform.name(),
                config_.apps[static_cast<size_t>(job.appIndex)].name,
                schedulerKindName(
                    config_.schedulers[static_cast<size_t>(
                        job.schedulerIndex)]),
                s.latencySketch);
            s.latencySketch.clear();
            reduce_window.emplace(job_index, std::move(s));
            reduce_window_peak =
                std::max(reduce_window_peak, reduce_window.size());
        }
    };

    // Per-worker, per-device trace generators (each caches built apps).
    std::vector<std::vector<std::unique_ptr<TraceGenerator>>> generators(
        static_cast<size_t>(config_.threads));
    for (auto &slots : generators)
        slots.resize(devices.size());

    // Reusable per-(worker, device, app) simulator engines and pooled
    // per-(worker, scheduler, device) drivers: a session resets the slot
    // instead of rebuilding it, keeping the engine's allocations (DOM
    // copies, meter segments, record vectors) warm across jobs. Slots
    // are worker-private, so no locking and no cross-worker sharing.
    const size_t num_apps = config_.apps.size();
    std::vector<std::vector<std::unique_ptr<RuntimeSimulator>>> engines(
        static_cast<size_t>(config_.threads));
    std::vector<std::vector<std::unique_ptr<SchedulerDriver>>> driver_pool(
        static_cast<size_t>(config_.threads));
    if (config_.reuseEngines) {
        for (auto &slots : engines)
            slots.resize(devices.size() * num_apps);
        for (auto &slots : driver_pool)
            slots.resize(config_.schedulers.size() * devices.size());
    }

    // Shared trace storage: each (device, app, user) trace materializes
    // once — synthesized on first use, or loaded from the corpus — and
    // replays read-only across the scheduler axis. Warm sweeps, corpus
    // replay, and caller-provided caches always share; the automatic
    // case additionally requires the cache to pay (a lone scheduler
    // never reuses a trace) and the resident set to stay bounded —
    // either under the auto-share ceiling, or under an explicit LRU cap
    // (traceCacheCap), which keeps sharing on for giant fleets while
    // evicting least-recently-replayed traces.
    const long long distinct_traces =
        static_cast<long long>(devices.size()) *
        static_cast<long long>(config_.apps.size()) *
        config_.effectiveUsers();
    const bool auto_share = config_.shareTraces &&
        config_.schedulers.size() > 1 &&
        (config_.traceCacheCap > 0 || config_.maxSharedTraces <= 0 ||
         distinct_traces <= config_.maxSharedTraces);
    const bool share_traces = auto_share || config_.warmDrivers ||
        config_.corpus != nullptr || config_.traceCache != nullptr;
    std::unique_ptr<TraceCache> owned_cache;
    TraceCache *cache = nullptr;
    if (share_traces) {
        cache = config_.traceCache;
        if (!cache) {
            owned_cache = std::make_unique<TraceCache>();
            owned_cache->setCapacity(config_.traceCacheCap, 0);
            if (tsink) {
                // Only the run-owned cache: a caller-provided cache
                // outlives this run and keeps its own hook policy.
                owned_cache->setEvictionHook([tsink, store_lane] {
                    tsink->instant(store_lane, "cache evict", "cache");
                });
            }
            cache = owned_cache.get();
        }
    }

    // ---- Corpus preload: replay-from-disk fleets resolve every
    // planned trace up front so a missing or corrupt recording fails
    // before any session runs, with a per-entry diagnostic. With an
    // LRU-capped cache, loading everything would only evict it again —
    // so the capped path verifies each recording's header once (no
    // event decode) and lets sessions load on demand. ----
    uint64_t traces_from_corpus = 0;
    if (config_.corpus) {
        // A scenario transform also demotes the preload to header
        // verification: inserting the raw recording would poison the
        // cache with untransformed traces, so sessions load+derive on
        // demand through the cache's deterministic loader instead.
        const bool capped = (owned_cache && config_.traceCacheCap > 0) ||
            static_cast<bool>(config_.traceTransform);
        std::set<std::tuple<std::string, std::string, uint64_t>> checked;
        for (const JobRange &range : outcome.plan.ranges) {
            for (int i = 0; i < range.count; ++i) {
                const JobSpec &job =
                    jobs_[static_cast<size_t>(range.first + i)];
                const AppProfile &profile =
                    config_.apps[static_cast<size_t>(job.appIndex)];
                const std::string &device_name =
                    devices[static_cast<size_t>(job.deviceIndex)]
                        ->platform.name();
                // Every job's trace must exist in the corpus even when
                // a caller-provided warm cache already holds the key —
                // a stale cache must not mask a missing recording.
                const CorpusEntry *entry = config_.corpus->find(
                    profile.name, device_name, job.userSeed);
                fatal_if(!entry,
                         "corpus '%s' has no trace for app '%s' on '%s' "
                         "with user seed %llu (re-record, or drop "
                         "--corpus to synthesize live)",
                         config_.corpus->dir().c_str(),
                         profile.name.c_str(), device_name.c_str(),
                         static_cast<unsigned long long>(job.userSeed));
                std::string error;
                if (capped) {
                    if (!checked
                             .insert({device_name, profile.name,
                                      job.userSeed})
                             .second)
                        continue;  // scheduler axis revisits the key
                    fatal_if(!config_.corpus->verifyHeader(*entry,
                                                           &error),
                             "corpus '%s': %s",
                             config_.corpus->dir().c_str(),
                             error.c_str());
                    continue;
                }
                if (cache->lookup(device_name, profile.name,
                                  job.userSeed))
                    continue;  // already resident
                auto trace = config_.corpus->load(*entry, &error);
                fatal_if(!trace, "corpus '%s': %s",
                         config_.corpus->dir().c_str(), error.c_str());
                cache->insert(device_name, std::move(*trace));
                ++traces_from_corpus;
            }
        }
    }

    // ---- Persist sink (stage 3): checkpoints flow during execution. ----
    PersistSink sink;
    if (store) {
        sink.store = store;
        sink.label = config_.persistLabel.empty()
            ? "s" + std::to_string(config_.shardIndex)
            : config_.persistLabel;
        sink.params = {
            {"writer", "fleet_runner"},
            {"shard", std::to_string(config_.shardIndex) + "/" +
                          std::to_string(config_.shardCount)},
        };
        sink.checkpointEvery = config_.checkpointEvery;
        sink.traceSink = tsink;
        sink.instantLane = store_lane;
    }

    // On-demand corpus loads by workers (capped-cache misses/reloads);
    // folded into tracesFromCorpus so replay traffic is visible even
    // when the preload stage only verified headers.
    std::atomic<uint64_t> corpus_loads{0};

    // Per-worker telemetry shards, created up front in worker-index
    // order so the snapshot's merge order is deterministic.
    std::vector<TelemetryShard *> shards;
    if (telemetry) {
        shards.reserve(static_cast<size_t>(config_.threads));
        for (int w = 0; w < config_.threads; ++w)
            shards.push_back(telemetry->makeShard());
    }

    std::optional<ProgressMeter> progress;
    if (config_.progress)
        progress.emplace(outcome.plan.plannedJobs);

    const auto runJob = [&](const JobSpec &job, int worker,
                            SchedulerDriver &driver) {
        DeviceContext &device = *devices[static_cast<size_t>(
            job.deviceIndex)];
        auto &gen_slot =
            generators[static_cast<size_t>(worker)]
                      [static_cast<size_t>(job.deviceIndex)];
        if (!gen_slot)
            gen_slot = std::make_unique<TraceGenerator>(device.platform);

        const AppProfile &profile =
            config_.apps[static_cast<size_t>(job.appIndex)];

        TelemetryShard *shard =
            telemetry ? shards[static_cast<size_t>(worker)] : nullptr;
        const auto job_start = std::chrono::steady_clock::now();
        // Per-job execute span on this worker's lane, covering trace
        // materialization plus the simulated session.
        TraceSpan job_span(
            tsink, worker + 1,
            tsink ? profile.name + "/" +
                    schedulerKindName(
                        config_.schedulers[static_cast<size_t>(
                            job.schedulerIndex)]) +
                    " u" + std::to_string(job.userIndex)
                  : std::string(),
            "job");

        // Population traits are a pure function of the job's user seed,
        // so cache refills on any worker re-derive the same cohort and
        // multipliers (the trace-cache key stays (device, app, seed)).
        std::optional<UserTraits> traits;
        if (config_.population) {
            traits = samplePopulationTraits(*config_.population,
                                            job.userSeed);
        }
        const UserParams *trait_scale =
            traits ? &traits->scale : nullptr;

        InteractionTrace fresh;
        TraceHandle handle;  // keeps an evicted trace alive while used
        const InteractionTrace *trace = nullptr;
        if (cache) {
            // Misses materialize deterministically: from the corpus
            // when replaying (an evicted preload must reload the
            // recording, never re-synthesize), live synthesis otherwise.
            handle = cache->getOrLoad(
                device.platform.name(), profile.name, job.userSeed,
                [&]() -> InteractionTrace {
                    InteractionTrace materialized;
                    if (config_.corpus) {
                        // Throw (not fatal): this runs on a worker, and
                        // the pool turns the exception into a run-level
                        // diagnostic while other workers keep going and
                        // the final checkpoint still flushes.
                        const CorpusEntry *entry = config_.corpus->find(
                            profile.name, device.platform.name(),
                            job.userSeed);
                        std::string error;
                        auto loaded = entry
                            ? config_.corpus->load(*entry, &error)
                            : std::nullopt;
                        if (!loaded) {
                            throw std::runtime_error(
                                "corpus '" + config_.corpus->dir() +
                                "': " +
                                (entry ? error
                                       : "preloaded entry disappeared"));
                        }
                        corpus_loads.fetch_add(1);
                        materialized = std::move(*loaded);
                    } else {
                        materialized = gen_slot->generate(
                            profile, job.userSeed, trait_scale);
                        // Cohort stress stacks on synthesis only —
                        // corpus recordings already captured their
                        // population's behaviour at record time.
                        if (traits) {
                            materialized = applyCohortScenario(
                                *traits, materialized, job.userSeed);
                        }
                    }
                    // Scenario derivation happens INSIDE the loader:
                    // re-materializing an evicted key reproduces the
                    // transformed trace byte-identically (the transform
                    // is pure by contract).
                    if (config_.traceTransform)
                        materialized =
                            config_.traceTransform(materialized);
                    return materialized;
                });
            trace = handle.get();
        } else {
            fresh = gen_slot->generate(profile, job.userSeed, trait_scale);
            if (traits)
                fresh = applyCohortScenario(*traits, fresh, job.userSeed);
            if (config_.traceTransform)
                fresh = config_.traceTransform(fresh);
            trace = &fresh;
        }

        SimConfig sim_config;
        sim_config.renderScale = profile.renderScale;
        if (config_.seedMode == SeedMode::Fleet) {
            // Per-shard speculation-noise stream (instead of the
            // default fixed seed) so fleets are reproducible per user,
            // not merely per run.
            sim_config.specNoiseSeed =
                hashCombine(job.userSeed, kSpecNoiseSalt);
        }

        RuntimeSimulator *simulator = nullptr;
        std::optional<RuntimeSimulator> local_simulator;
        if (config_.reuseEngines) {
            auto &slot = engines[static_cast<size_t>(worker)]
                [static_cast<size_t>(job.deviceIndex) * num_apps +
                 static_cast<size_t>(job.appIndex)];
            if (!slot) {
                slot = std::make_unique<RuntimeSimulator>(
                    device.platform, device.power,
                    gen_slot->appFor(profile), sim_config);
            }
            // The engine's app/platform/renderScale are fixed per slot;
            // only the per-session noise seed varies job to job.
            slot->setSpecNoiseSeed(sim_config.specNoiseSeed);
            simulator = slot.get();
        } else {
            local_simulator.emplace(device.platform, device.power,
                                    gen_slot->appFor(profile), sim_config);
            simulator = &*local_simulator;
        }

        SessionStats session_stats;
        if (config_.collectResults) {
            SimResult result = simulator->run(*trace, driver);
            session_stats = SessionStats::reduce(result);
            stats[static_cast<size_t>(job.index)] = session_stats;
            full[static_cast<size_t>(job.index)] = std::move(result);
            executed[static_cast<size_t>(job.index)] = 1;
        } else if (config_.reuseEngines) {
            // Stats-only fast path: reduce the session in-flight, never
            // materializing per-event records (bit-identical reduction,
            // locked by tests).
            session_stats = simulator->runStats(*trace, driver);
        } else {
            session_stats =
                SessionStats::reduce(simulator->run(*trace, driver));
        }
        if (sink.store) {
            SessionRecord record;
            record.device = device.platform.name();
            record.app = profile.name;
            record.scheduler = schedulerKindName(
                config_.schedulers[static_cast<size_t>(
                    job.schedulerIndex)]);
            record.userIndex = static_cast<uint32_t>(job.userIndex);
            record.userSeed = job.userSeed;
            record.stats = session_stats;
            sink.push(std::move(record));
        }
        if (shard) {
            // Event/session counters come from the already-reduced
            // SessionStats — the simulator's hot loop stays untouched
            // (no per-event timer or counter calls).
            const SessionStats &s = session_stats;
            shard->count("sim.sessions");
            shard->count("sim.events", static_cast<uint64_t>(s.events));
            shard->count("sim.violations",
                         static_cast<uint64_t>(s.violations));
            // Wall-clock job durations vary run to run, so the
            // logical-clock (golden-locked) mode records none.
            if (!logical)
                shard->duration("runner.job_ms", msSince(job_start));
        }
        if (streaming_reduce)
            streamStats(static_cast<size_t>(job.index),
                        std::move(session_stats));
        if (progress)
            progress->bump();
    };

    // ---- Stage 2: execute the planned ranges. ----
    const auto start = std::chrono::steady_clock::now();
    {
        // Span opens before the pool spins up and closes after it
        // drains, so at threads=1 the logical-clock tick order is fully
        // determined (the main thread blocks in wait() while the lone
        // worker takes its ticks in job order).
        TraceSpan execute_span(tsink, 0, stage_name("execute"), "stage");
        ThreadPool pool(config_.threads, telemetry != nullptr);

        // One driver per range: a per-cell "warmed device" for warm
        // ranges, a fresh-state driver for singleton ranges. With
        // engine reuse the driver comes from the worker's pool and is
        // reset to as-constructed state instead of rebuilt.
        const auto runRange = [&](const JobRange &range, int worker) {
            const JobSpec &head =
                jobs_[static_cast<size_t>(range.first)];
            DeviceContext &device = *devices[static_cast<size_t>(
                head.deviceIndex)];
            const SchedulerKind kind =
                config_.schedulers[static_cast<size_t>(
                    head.schedulerIndex)];
            SchedulerDriver *driver = nullptr;
            std::unique_ptr<SchedulerDriver> fresh;
            if (config_.reuseEngines) {
                auto &slot = driver_pool[static_cast<size_t>(worker)]
                    [static_cast<size_t>(head.schedulerIndex) *
                         devices.size() +
                     static_cast<size_t>(head.deviceIndex)];
                if (!slot || !slot->resetFresh())
                    slot = makeFleetScheduler(kind, device);
                driver = slot.get();
            } else {
                fresh = makeFleetScheduler(kind, device);
                driver = fresh.get();
            }
            for (int i = 0; i < range.count; ++i)
                runJob(jobs_[static_cast<size_t>(range.first + i)],
                       worker, *driver);
        };

        // Fresh fleets plan one singleton range per session; submitting
        // each as its own pool task costs a queue round-trip per
        // session. Batch contiguous ranges so the pool sees far fewer
        // tasks than sessions — canonical (streamed or slot-indexed)
        // reduction keeps reports byte-identical regardless of how
        // ranges are grouped onto tasks. The batch size is capped:
        // tasks run FIFO over contiguous chunks, so the streaming
        // reducer's out-of-order window never exceeds the active task
        // frontier (~threads × chunk jobs) — giant chunks would let
        // fast workers race megabytes of stashed scalars ahead of the
        // in-order cursor.
        const std::vector<JobRange> &ranges = outcome.plan.ranges;
        const size_t target_tasks =
            static_cast<size_t>(config_.threads) * 4;
        constexpr size_t kMaxRangesPerTask = 512;
        const size_t chunk = std::min(
            kMaxRangesPerTask,
            ranges.size() > target_tasks
                ? (ranges.size() + target_tasks - 1) / target_tasks
                : 1);
        for (size_t first = 0; first < ranges.size(); first += chunk) {
            const size_t count = std::min(chunk, ranges.size() - first);
            pool.submit([&, first, count](int worker) {
                for (size_t r = first; r < first + count; ++r)
                    runRange(ranges[r], worker);
            });
        }
        pool.wait();
        for (const std::string &error : pool.errors())
            outcome.diagnostics.push_back(error);
        outcome.poolStats = pool.stats();
    }
    const auto stop = std::chrono::steady_clock::now();
    sample_rss();
    if (progress)
        progress->finish();

    // ---- Stage 3: final checkpoint flush. ----
    {
        TraceSpan persist_span(tsink, 0, stage_name("persist"), "stage");
        const auto persist_start = std::chrono::steady_clock::now();
        if (store)
            sink.finish();
        outcome.persistMs = msSince(persist_start);
    }
    sample_rss();
    for (const std::string &error : sink.errors)
        outcome.diagnostics.push_back(error);
    outcome.persistedRecords = sink.persisted;
    outcome.checkpointFlushes = sink.flushes;
    outcome.checkpointBytes = sink.flushedBytes;

    outcome.wallMs =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (cache) {
        outcome.traceCacheHits = cache->hits();
        outcome.traceCacheMisses = cache->misses();
        outcome.traceCacheEvictions = cache->evictions();
        outcome.traceCacheDuplicateSynthesis = cache->duplicateSynthesis();
        outcome.traceCacheContention = cache->lockContention();
    }
    outcome.persistContention = sink.pushContention;
    outcome.tracesFromCorpus = traces_from_corpus + corpus_loads.load();

    // Fold run-level traffic into the registry's root shard so the
    // snapshot in the telemetry artifact is self-contained.
    if (telemetry) {
        telemetry->count("cache.hits", outcome.traceCacheHits);
        telemetry->count("cache.misses", outcome.traceCacheMisses);
        telemetry->count("cache.evictions",
                         outcome.traceCacheEvictions);
        telemetry->count("cache.duplicate_synthesis",
                         outcome.traceCacheDuplicateSynthesis);
        telemetry->count("cache.lock_waits",
                         outcome.traceCacheContention.waits);
        telemetry->count("store.push_lock_waits",
                         outcome.persistContention.waits);
        telemetry->count("corpus.loads", outcome.tracesFromCorpus);
        telemetry->count("store.checkpoint_flushes",
                         outcome.checkpointFlushes);
        telemetry->count("store.checkpoint_bytes",
                         outcome.checkpointBytes);
        telemetry->count("pool.tasks", outcome.poolStats.tasks);
    }

    // ---- Stage 4: deterministic reduction. ----
    TraceSpan reduce_span(tsink, 0, stage_name("reduce"), "stage");
    const auto reduce_start = std::chrono::steady_clock::now();
    if (store) {
        // Reduce FROM the store: one code path for whole, sharded and
        // resumed runs — the reports cover everything persisted.
        StoreReduction reduction;
        std::string error;
        if (!reduceStore(*store, reduction, &error)) {
            outcome.diagnostics.push_back("reduce: " + error);
        } else {
            outcome.metrics = std::move(reduction.metrics);
            for (const std::string &problem : reduction.problems)
                outcome.diagnostics.push_back("reduce: " + problem);
        }
    } else if (config_.collectResults) {
        for (const JobSpec &job : jobs_) {
            if (!executed[static_cast<size_t>(job.index)])
                continue;
            const DeviceContext &device =
                *devices[static_cast<size_t>(job.deviceIndex)];
            outcome.metrics.add(
                device.platform.name(),
                config_.apps[static_cast<size_t>(job.appIndex)].name,
                schedulerKindName(config_.schedulers[static_cast<size_t>(
                    job.schedulerIndex)]),
                stats[static_cast<size_t>(job.index)]);
        }
    } else {
        // Stream drain: only jobs stranded behind a gap an errored
        // range left behind wait here; fold them in the same ascending
        // job order the cursor would have used.
        for (const auto &[job_index, session_stats] : reduce_window)
            foldJob(job_index, session_stats);
        reduce_window.clear();
        if (telemetry)
            telemetry->gauge("runner.reduce_window_peak",
                             static_cast<double>(reduce_window_peak));
    }
    if (config_.collectResults) {
        for (const JobSpec &job : jobs_) {
            if (executed[static_cast<size_t>(job.index)])
                outcome.results.add(
                    std::move(full[static_cast<size_t>(job.index)]));
        }
    }
    outcome.reduceMs = msSince(reduce_start);
    sample_rss();
    return outcome;
}

RunTelemetry
makeRunTelemetry(const FleetConfig &config, const FleetOutcome &outcome)
{
    RunTelemetry t;
    t.tool = "run";
    t.scenario = config.scenario;
    t.logicalClock =
        config.traceSink && config.traceSink->logicalClock();
    t.threads = config.threads;
    if (config.telemetry)
        t.counters = config.telemetry->snapshot();

    // Sessions/events prefer the registry's counters (they cover
    // exactly what THIS run executed); an un-armed registry falls back
    // to the outcome's plan and reduction totals.
    t.sessions = t.counters.counter("sim.sessions");
    if (t.sessions == 0)
        t.sessions = static_cast<uint64_t>(outcome.jobCount);
    t.events = t.counters.counter("sim.events");
    if (t.events == 0)
        t.events = static_cast<uint64_t>(outcome.metrics.events());

    t.cacheHits = outcome.traceCacheHits;
    t.cacheMisses = outcome.traceCacheMisses;
    t.cacheEvictions = outcome.traceCacheEvictions;
    t.cacheDuplicateSynthesis = outcome.traceCacheDuplicateSynthesis;
    t.checkpointFlushes = outcome.checkpointFlushes;
    t.checkpointBytes = outcome.checkpointBytes;
    t.poolTasks = outcome.poolStats.tasks;

    // Wall-derived and scheduling-dependent fields stay zero under the
    // logical clock — that is what makes the artifact byte-reproducible
    // (the RunTelemetry determinism contract).
    if (!t.logicalClock) {
        t.peakRssKb = currentPeakRssKb();
        t.planMs = outcome.planMs;
        t.executeMs = outcome.wallMs;
        t.persistMs = outcome.persistMs;
        t.reduceMs = outcome.reduceMs;
        t.totalMs = outcome.planMs + outcome.wallMs +
            outcome.persistMs + outcome.reduceMs;
        t.poolMaxQueueDepth = outcome.poolStats.maxQueueDepth;
        t.poolBusyMs = outcome.poolStats.busyMs;
        t.poolIdleMs = outcome.poolStats.idleMs;
        // Scaling attribution is contention, i.e. scheduling: the whole
        // section stays zero under the logical clock.
        t.cacheLockWaits = outcome.traceCacheContention.waits;
        t.cacheLockWaitMs = outcome.traceCacheContention.waitMs;
        t.persistLockWaits = outcome.persistContention.waits;
        t.persistLockWaitMs = outcome.persistContention.waitMs;
        t.poolQueueTasks = outcome.poolStats.tasks;
        t.poolQueueWaitMs = outcome.poolStats.queueWaitMs;
        t.poolQueueWaitMeanMs = outcome.poolStats.tasks > 0
            ? outcome.poolStats.queueWaitMs /
                static_cast<double>(outcome.poolStats.tasks)
            : 0.0;
        t.workers.reserve(outcome.poolStats.workers.size());
        for (const ThreadPoolWorkerStats &w : outcome.poolStats.workers) {
            WorkerScaling ws;
            ws.tasks = w.tasks;
            ws.busyMs = w.busyMs;
            ws.idleMs = w.idleMs;
            ws.queueWaitMs = w.queueWaitMs;
            t.workers.push_back(ws);
        }
        t.recomputeRates();
    }
    return t;
}

} // namespace pes
