#include "runner/fleet_runner.hh"

#include <chrono>
#include <memory>
#include <utility>

#include "core/ebs_scheduler.hh"
#include "corpus/corpus_store.hh"
#include "corpus/trace_cache.hh"
#include "core/governors.hh"
#include "core/oracle_scheduler.hh"
#include "core/pes_scheduler.hh"
#include "core/predictor_training.hh"
#include "runner/thread_pool.hh"
#include "sim/runtime_simulator.hh"
#include "trace/generator.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace pes {

namespace {

/** Salt for deriving per-session speculation-noise seeds (fleet mode). */
constexpr uint64_t kSpecNoiseSalt = 0x5eedu;

/**
 * Immutable per-device state shared by every worker: the platform, its
 * power table, and the trained event model. Construction order matters
 * (power and generator hold references into platform), hence the
 * in-struct initialization.
 */
struct DeviceContext
{
    explicit DeviceContext(const AcmpPlatform &p)
        : platform(p), power(platform), trainGenerator(platform)
    {
    }

    AcmpPlatform platform;
    PowerModel power;
    /** Main-thread generator used only for model training. */
    TraceGenerator trainGenerator;
    /** Trained event model; unset when no scheduler needs it. */
    std::optional<LogisticModel> ownedModel;
    /** Model the PES driver uses (owned or borrowed). */
    const LogisticModel *model = nullptr;
};

std::unique_ptr<SchedulerDriver>
makeFleetScheduler(SchedulerKind kind, const DeviceContext &device)
{
    switch (kind) {
      case SchedulerKind::Interactive:
        return std::make_unique<InteractiveGovernor>();
      case SchedulerKind::Ondemand:
        return std::make_unique<OndemandGovernor>();
      case SchedulerKind::Ebs:
        return std::make_unique<EbsScheduler>();
      case SchedulerKind::Pes:
        panic_if(!device.model, "fleet: PES scheduled without a model");
        return std::make_unique<PesScheduler>(*device.model);
      case SchedulerKind::Oracle:
        return std::make_unique<OracleScheduler>();
    }
    panic("makeFleetScheduler: invalid kind");
}

/** A contiguous run of jobs executed in order by one worker. */
struct Shard
{
    int first = 0;
    int count = 0;
};

} // namespace

FleetRunner::FleetRunner(FleetConfig config) : config_(std::move(config))
{
    if (config_.devices.empty())
        config_.devices.push_back(AcmpPlatform::exynos5410());
    if (config_.threads < 1)
        config_.threads = 1;
    jobs_ = enumerateJobs(config_);
}

FleetOutcome
FleetRunner::run()
{
    // ---- Shared immutable state (built before any worker starts). ----
    bool needs_model = false;
    for (const SchedulerKind kind : config_.schedulers)
        needs_model |= kind == SchedulerKind::Pes;

    std::vector<std::unique_ptr<DeviceContext>> devices;
    devices.reserve(config_.devices.size());
    for (const AcmpPlatform &platform : config_.devices) {
        auto ctx = std::make_unique<DeviceContext>(platform);
        if (needs_model) {
            if (config_.pretrainedModel && config_.devices.size() == 1 &&
                platform.name() == config_.pretrainedModelDevice) {
                ctx->model = config_.pretrainedModel;
            } else {
                ctx->ownedModel = trainEventModel(
                    ctx->trainGenerator, seenApps(),
                    config_.trainingTracesPerApp);
                ctx->model = &*ctx->ownedModel;
            }
        }
        devices.push_back(std::move(ctx));
    }

    // ---- Shards: per cell when drivers are warm, per job otherwise. ----
    const int users_per_cell = config_.effectiveUsers();
    std::vector<Shard> shards;
    if (config_.warmDrivers) {
        for (int first = 0; first < static_cast<int>(jobs_.size());
             first += users_per_cell)
            shards.push_back(Shard{first, users_per_cell});
    } else {
        shards.reserve(jobs_.size());
        for (int i = 0; i < static_cast<int>(jobs_.size()); ++i)
            shards.push_back(Shard{i, 1});
    }

    // ---- Parallel phase: job-indexed slots, no cross-worker sharing. ----
    std::vector<SessionStats> stats(jobs_.size());
    std::vector<SimResult> full;
    if (config_.collectResults)
        full.resize(jobs_.size());

    // Per-worker, per-device trace generators (each caches built apps).
    std::vector<std::vector<std::unique_ptr<TraceGenerator>>> generators(
        static_cast<size_t>(config_.threads));
    for (auto &slots : generators)
        slots.resize(devices.size());

    // Shared trace storage: each (device, app, user) trace materializes
    // once — synthesized on first use, or preloaded from the corpus —
    // and replays read-only across the scheduler axis. Warm sweeps,
    // corpus replay, and caller-provided caches always share; the
    // automatic case additionally requires the cache to pay (a lone
    // scheduler never reuses a trace) and the resident set to stay
    // bounded (a huge fresh fleet must not hold every trace at once).
    const long long distinct_traces =
        static_cast<long long>(devices.size()) *
        static_cast<long long>(config_.apps.size()) *
        config_.effectiveUsers();
    const bool auto_share = config_.shareTraces &&
        config_.schedulers.size() > 1 &&
        (config_.maxSharedTraces <= 0 ||
         distinct_traces <= config_.maxSharedTraces);
    const bool share_traces = auto_share || config_.warmDrivers ||
        config_.corpus != nullptr || config_.traceCache != nullptr;
    std::unique_ptr<TraceCache> owned_cache;
    TraceCache *cache = nullptr;
    if (share_traces) {
        cache = config_.traceCache;
        if (!cache) {
            owned_cache = std::make_unique<TraceCache>();
            cache = owned_cache.get();
        }
    }

    // ---- Corpus preload: replay-from-disk fleets resolve every trace
    // up front so a missing or corrupt recording fails before any
    // session runs, with a per-entry diagnostic. ----
    uint64_t traces_from_corpus = 0;
    if (config_.corpus) {
        for (const JobSpec &job : jobs_) {
            const AppProfile &profile =
                config_.apps[static_cast<size_t>(job.appIndex)];
            const std::string &device_name =
                devices[static_cast<size_t>(job.deviceIndex)]
                    ->platform.name();
            // Every job's trace must exist in the corpus even when a
            // caller-provided warm cache already holds the key — a
            // stale cache must not mask a missing recording.
            const CorpusEntry *entry = config_.corpus->find(
                profile.name, device_name, job.userSeed);
            fatal_if(!entry,
                     "corpus '%s' has no trace for app '%s' on '%s' with "
                     "user seed %llu (re-record, or drop --corpus to "
                     "synthesize live)",
                     config_.corpus->dir().c_str(), profile.name.c_str(),
                     device_name.c_str(),
                     static_cast<unsigned long long>(job.userSeed));
            if (cache->lookup(device_name, profile.name, job.userSeed))
                continue;  // already resident (earlier job or warm cache)
            std::string error;
            auto trace = config_.corpus->load(*entry, &error);
            fatal_if(!trace, "corpus '%s': %s",
                     config_.corpus->dir().c_str(), error.c_str());
            cache->insert(device_name, std::move(*trace));
            ++traces_from_corpus;
        }
    }

    const auto runJob = [&](const JobSpec &job, int worker,
                            SchedulerDriver &driver) {
        DeviceContext &device = *devices[static_cast<size_t>(
            job.deviceIndex)];
        auto &gen_slot =
            generators[static_cast<size_t>(worker)]
                      [static_cast<size_t>(job.deviceIndex)];
        if (!gen_slot)
            gen_slot = std::make_unique<TraceGenerator>(device.platform);

        const AppProfile &profile =
            config_.apps[static_cast<size_t>(job.appIndex)];
        InteractionTrace fresh;
        const InteractionTrace *trace = nullptr;
        if (cache) {
            trace = &cache->getOrGenerate(device.platform.name(), profile,
                                          job.userSeed, *gen_slot);
        } else {
            fresh = gen_slot->generate(profile, job.userSeed);
            trace = &fresh;
        }

        SimConfig sim_config;
        sim_config.renderScale = profile.renderScale;
        if (config_.seedMode == SeedMode::Fleet) {
            // Per-shard speculation-noise stream (instead of the
            // default fixed seed) so fleets are reproducible per user,
            // not merely per run.
            sim_config.specNoiseSeed =
                hashCombine(job.userSeed, kSpecNoiseSalt);
        }
        RuntimeSimulator simulator(device.platform, device.power,
                                   gen_slot->appFor(profile), sim_config);
        SimResult result = simulator.run(*trace, driver);
        stats[static_cast<size_t>(job.index)] =
            SessionStats::reduce(result);
        if (config_.collectResults)
            full[static_cast<size_t>(job.index)] = std::move(result);
    };

    const auto start = std::chrono::steady_clock::now();
    {
        ThreadPool pool(config_.threads);
        for (const Shard &shard : shards) {
            pool.submit([&, shard](int worker) {
                // One driver per shard: a per-cell "warmed device" for
                // warm shards, a fresh driver for singleton shards.
                const JobSpec &head =
                    jobs_[static_cast<size_t>(shard.first)];
                DeviceContext &device = *devices[static_cast<size_t>(
                    head.deviceIndex)];
                const auto driver = makeFleetScheduler(
                    config_.schedulers[static_cast<size_t>(
                        head.schedulerIndex)],
                    device);
                for (int i = 0; i < shard.count; ++i)
                    runJob(jobs_[static_cast<size_t>(shard.first + i)],
                           worker, *driver);
            });
        }
        pool.wait();
    }
    const auto stop = std::chrono::steady_clock::now();

    // ---- Deterministic reduction in canonical job order. ----
    FleetOutcome outcome;
    outcome.jobCount = static_cast<int>(jobs_.size());
    outcome.wallMs =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (cache) {
        outcome.traceCacheHits = cache->hits();
        outcome.traceCacheMisses = cache->misses();
    }
    outcome.tracesFromCorpus = traces_from_corpus;
    for (const JobSpec &job : jobs_) {
        const DeviceContext &device =
            *devices[static_cast<size_t>(job.deviceIndex)];
        outcome.metrics.add(
            device.platform.name(),
            config_.apps[static_cast<size_t>(job.appIndex)].name,
            schedulerKindName(config_.schedulers[static_cast<size_t>(
                job.schedulerIndex)]),
            stats[static_cast<size_t>(job.index)]);
        if (config_.collectResults)
            outcome.results.add(
                std::move(full[static_cast<size_t>(job.index)]));
    }
    return outcome;
}

} // namespace pes
