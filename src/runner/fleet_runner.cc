#include "runner/fleet_runner.hh"

#include <chrono>
#include <map>
#include <memory>
#include <tuple>

#include "core/ebs_scheduler.hh"
#include "core/governors.hh"
#include "core/oracle_scheduler.hh"
#include "core/pes_scheduler.hh"
#include "core/predictor_training.hh"
#include "runner/thread_pool.hh"
#include "sim/runtime_simulator.hh"
#include "trace/generator.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace pes {

namespace {

/** Salt for deriving per-session speculation-noise seeds (fleet mode). */
constexpr uint64_t kSpecNoiseSalt = 0x5eedu;

/**
 * Immutable per-device state shared by every worker: the platform, its
 * power table, and the trained event model. Construction order matters
 * (power and generator hold references into platform), hence the
 * in-struct initialization.
 */
struct DeviceContext
{
    explicit DeviceContext(const AcmpPlatform &p)
        : platform(p), power(platform), trainGenerator(platform)
    {
    }

    AcmpPlatform platform;
    PowerModel power;
    /** Main-thread generator used only for model training. */
    TraceGenerator trainGenerator;
    /** Trained event model; unset when no scheduler needs it. */
    std::optional<LogisticModel> ownedModel;
    /** Model the PES driver uses (owned or borrowed). */
    const LogisticModel *model = nullptr;
};

std::unique_ptr<SchedulerDriver>
makeFleetScheduler(SchedulerKind kind, const DeviceContext &device)
{
    switch (kind) {
      case SchedulerKind::Interactive:
        return std::make_unique<InteractiveGovernor>();
      case SchedulerKind::Ondemand:
        return std::make_unique<OndemandGovernor>();
      case SchedulerKind::Ebs:
        return std::make_unique<EbsScheduler>();
      case SchedulerKind::Pes:
        panic_if(!device.model, "fleet: PES scheduled without a model");
        return std::make_unique<PesScheduler>(*device.model);
      case SchedulerKind::Oracle:
        return std::make_unique<OracleScheduler>();
    }
    panic("makeFleetScheduler: invalid kind");
}

/** A contiguous run of jobs executed in order by one worker. */
struct Shard
{
    int first = 0;
    int count = 0;
};

} // namespace

FleetRunner::FleetRunner(FleetConfig config) : config_(std::move(config))
{
    if (config_.devices.empty())
        config_.devices.push_back(AcmpPlatform::exynos5410());
    if (config_.threads < 1)
        config_.threads = 1;
    jobs_ = enumerateJobs(config_);
}

FleetOutcome
FleetRunner::run()
{
    // ---- Shared immutable state (built before any worker starts). ----
    bool needs_model = false;
    for (const SchedulerKind kind : config_.schedulers)
        needs_model |= kind == SchedulerKind::Pes;

    std::vector<std::unique_ptr<DeviceContext>> devices;
    devices.reserve(config_.devices.size());
    for (const AcmpPlatform &platform : config_.devices) {
        auto ctx = std::make_unique<DeviceContext>(platform);
        if (needs_model) {
            if (config_.pretrainedModel && config_.devices.size() == 1 &&
                platform.name() == config_.pretrainedModelDevice) {
                ctx->model = config_.pretrainedModel;
            } else {
                ctx->ownedModel = trainEventModel(
                    ctx->trainGenerator, seenApps(),
                    config_.trainingTracesPerApp);
                ctx->model = &*ctx->ownedModel;
            }
        }
        devices.push_back(std::move(ctx));
    }

    // ---- Shards: per cell when drivers are warm, per job otherwise. ----
    std::vector<Shard> shards;
    if (config_.warmDrivers) {
        for (int first = 0; first < static_cast<int>(jobs_.size());
             first += config_.users)
            shards.push_back(Shard{first, config_.users});
    } else {
        shards.reserve(jobs_.size());
        for (int i = 0; i < static_cast<int>(jobs_.size()); ++i)
            shards.push_back(Shard{i, 1});
    }

    // ---- Parallel phase: job-indexed slots, no cross-worker sharing. ----
    std::vector<SessionStats> stats(jobs_.size());
    std::vector<SimResult> full;
    if (config_.collectResults)
        full.resize(jobs_.size());

    // Per-worker, per-device trace generators (each caches built apps).
    std::vector<std::vector<std::unique_ptr<TraceGenerator>>> generators(
        static_cast<size_t>(config_.threads));
    for (auto &slots : generators)
        slots.resize(devices.size());

    // Warm sweeps replay the same (app, user) trace once per scheduler
    // cell; memoize per worker so a kinds-wide sweep generates each
    // trace once. Bounded by the protocol (few users per cell), unlike
    // fresh fleets where users can be huge — those generate per job.
    using TraceKey = std::tuple<int, int, uint64_t>;
    std::vector<std::map<TraceKey, InteractionTrace>> trace_caches(
        config_.warmDrivers ? static_cast<size_t>(config_.threads) : 0);

    const auto runJob = [&](const JobSpec &job, int worker,
                            SchedulerDriver &driver) {
        DeviceContext &device = *devices[static_cast<size_t>(
            job.deviceIndex)];
        auto &gen_slot =
            generators[static_cast<size_t>(worker)]
                      [static_cast<size_t>(job.deviceIndex)];
        if (!gen_slot)
            gen_slot = std::make_unique<TraceGenerator>(device.platform);

        const AppProfile &profile =
            config_.apps[static_cast<size_t>(job.appIndex)];
        InteractionTrace fresh;
        const InteractionTrace *trace = nullptr;
        if (config_.warmDrivers) {
            auto &cache = trace_caches[static_cast<size_t>(worker)];
            const TraceKey key{job.deviceIndex, job.appIndex,
                               job.userSeed};
            auto it = cache.find(key);
            if (it == cache.end())
                it = cache.emplace(key, gen_slot->generate(
                                            profile, job.userSeed))
                         .first;
            trace = &it->second;
        } else {
            fresh = gen_slot->generate(profile, job.userSeed);
            trace = &fresh;
        }

        SimConfig sim_config;
        sim_config.renderScale = profile.renderScale;
        if (config_.seedMode == SeedMode::Fleet) {
            // Per-shard speculation-noise stream (instead of the
            // default fixed seed) so fleets are reproducible per user,
            // not merely per run.
            sim_config.specNoiseSeed =
                hashCombine(job.userSeed, kSpecNoiseSalt);
        }
        RuntimeSimulator simulator(device.platform, device.power,
                                   gen_slot->appFor(profile), sim_config);
        SimResult result = simulator.run(*trace, driver);
        stats[static_cast<size_t>(job.index)] =
            SessionStats::reduce(result);
        if (config_.collectResults)
            full[static_cast<size_t>(job.index)] = std::move(result);
    };

    const auto start = std::chrono::steady_clock::now();
    {
        ThreadPool pool(config_.threads);
        for (const Shard &shard : shards) {
            pool.submit([&, shard](int worker) {
                // One driver per shard: a per-cell "warmed device" for
                // warm shards, a fresh driver for singleton shards.
                const JobSpec &head =
                    jobs_[static_cast<size_t>(shard.first)];
                DeviceContext &device = *devices[static_cast<size_t>(
                    head.deviceIndex)];
                const auto driver = makeFleetScheduler(
                    config_.schedulers[static_cast<size_t>(
                        head.schedulerIndex)],
                    device);
                for (int i = 0; i < shard.count; ++i)
                    runJob(jobs_[static_cast<size_t>(shard.first + i)],
                           worker, *driver);
            });
        }
        pool.wait();
    }
    const auto stop = std::chrono::steady_clock::now();

    // ---- Deterministic reduction in canonical job order. ----
    FleetOutcome outcome;
    outcome.jobCount = static_cast<int>(jobs_.size());
    outcome.wallMs =
        std::chrono::duration<double, std::milli>(stop - start).count();
    for (const JobSpec &job : jobs_) {
        const DeviceContext &device =
            *devices[static_cast<size_t>(job.deviceIndex)];
        outcome.metrics.add(
            device.platform.name(),
            config_.apps[static_cast<size_t>(job.appIndex)].name,
            schedulerKindName(config_.schedulers[static_cast<size_t>(
                job.schedulerIndex)]),
            stats[static_cast<size_t>(job.index)]);
        if (config_.collectResults)
            outcome.results.add(
                std::move(full[static_cast<size_t>(job.index)]));
    }
    return outcome;
}

} // namespace pes
