#include "runner/fleet_runner.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/ebs_scheduler.hh"
#include "corpus/corpus_store.hh"
#include "corpus/trace_cache.hh"
#include "core/governors.hh"
#include "core/oracle_scheduler.hh"
#include "core/pes_scheduler.hh"
#include "core/predictor_training.hh"
#include "results/result_reduce.hh"
#include "results/result_store.hh"
#include "runner/thread_pool.hh"
#include "sim/runtime_simulator.hh"
#include "trace/generator.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace pes {

namespace {

/** Salt for deriving per-session speculation-noise seeds (fleet mode). */
constexpr uint64_t kSpecNoiseSalt = 0x5eedu;

/**
 * Immutable per-device state shared by every worker: the platform, its
 * power table, and the trained event model. Construction order matters
 * (power and generator hold references into platform), hence the
 * in-struct initialization.
 */
struct DeviceContext
{
    explicit DeviceContext(const AcmpPlatform &p)
        : platform(p), power(platform), trainGenerator(platform)
    {
    }

    AcmpPlatform platform;
    PowerModel power;
    /** Main-thread generator used only for model training. */
    TraceGenerator trainGenerator;
    /** Trained event model; unset when no scheduler needs it. */
    std::optional<LogisticModel> ownedModel;
    /** Model the PES driver uses (owned or borrowed). */
    const LogisticModel *model = nullptr;
};

std::unique_ptr<SchedulerDriver>
makeFleetScheduler(SchedulerKind kind, const DeviceContext &device)
{
    switch (kind) {
      case SchedulerKind::Interactive:
        return std::make_unique<InteractiveGovernor>();
      case SchedulerKind::Ondemand:
        return std::make_unique<OndemandGovernor>();
      case SchedulerKind::Ebs:
        return std::make_unique<EbsScheduler>();
      case SchedulerKind::Pes:
        panic_if(!device.model, "fleet: PES scheduled without a model");
        return std::make_unique<PesScheduler>(*device.model);
      case SchedulerKind::Oracle:
        return std::make_unique<OracleScheduler>();
    }
    panic("makeFleetScheduler: invalid kind");
}

/**
 * Checkpointing sink of the persist stage: workers push completed
 * sessions, flushes append .psum parts and atomically re-save the
 * store manifest so a kill at any instant leaves a valid store.
 */
struct PersistSink
{
    ResultStore *store = nullptr;
    std::string label;
    PsumParams params;
    int checkpointEvery = 0;

    /** Guards pending only: pushes stay cheap while a flush writes. */
    std::mutex pendingMutex;
    std::vector<SessionRecord> pending;
    /** Serializes store writes and the counters/errors they update. */
    std::mutex flushMutex;
    uint64_t flushes = 0;
    uint64_t persisted = 0;
    std::vector<std::string> errors;

    void push(SessionRecord record)
    {
        std::vector<SessionRecord> batch;
        {
            std::lock_guard<std::mutex> lock(pendingMutex);
            pending.push_back(std::move(record));
            if (checkpointEvery <= 0 ||
                pending.size() < static_cast<size_t>(checkpointEvery))
                return;
            batch.swap(pending);
        }
        // File I/O happens outside pendingMutex, so workers completing
        // sessions during a checkpoint never block on the disk; batches
        // may land out of order, which reduction re-sorts anyway.
        flush(std::move(batch));
    }

    void finish()
    {
        std::vector<SessionRecord> batch;
        {
            std::lock_guard<std::mutex> lock(pendingMutex);
            batch.swap(pending);
        }
        if (!batch.empty())
            flush(std::move(batch));
    }

  private:
    void flush(std::vector<SessionRecord> batch)
    {
        std::lock_guard<std::mutex> lock(flushMutex);
        std::string error;
        if (store->appendPart(batch, label, params, &error)) {
            persisted += batch.size();
            ++flushes;
        } else {
            errors.push_back("persist: " + error);
        }
    }
};

} // namespace

FleetRunner::FleetRunner(FleetConfig config) : config_(std::move(config))
{
    if (config_.devices.empty())
        config_.devices.push_back(AcmpPlatform::exynos5410());
    if (config_.threads < 1)
        config_.threads = 1;
    fatal_if(config_.shardCount < 1, "fleet: shard count must be >= 1");
    fatal_if(config_.shardIndex < 0 ||
                 config_.shardIndex >= config_.shardCount,
             "fleet: shard index %d outside [0, %d)", config_.shardIndex,
             config_.shardCount);
    fatal_if(config_.resume && !config_.resultStore,
             "fleet: resume requires a result store");
    jobs_ = enumerateJobs(config_);
}

// ------------------------------------------------------------ stage: plan

FleetPlan
FleetRunner::plan() const
{
    // The shard unit mirrors the execution unit: whole cells when
    // drivers are warm (their cross-session state must replay in
    // order), single jobs otherwise.
    const int users_per_cell = config_.effectiveUsers();
    std::vector<JobRange> units;
    if (config_.warmDrivers) {
        for (int first = 0; first < static_cast<int>(jobs_.size());
             first += users_per_cell)
            units.push_back(JobRange{first, users_per_cell});
    } else {
        units.reserve(jobs_.size());
        for (int i = 0; i < static_cast<int>(jobs_.size()); ++i)
            units.push_back(JobRange{i, 1});
    }

    // Resume: collect the store's completed sessions once, as compact
    // (cell ordinal, user index) pairs.
    CompletedSessions done;
    if (config_.resume) {
        fatal_if(config_.resultStore->sweep() !=
                     SweepSpec::fromConfig(config_),
                 "fleet: result store '%s' holds a different sweep",
                 config_.resultStore->dir().c_str());
        std::string error;
        fatal_if(!loadCompletedSessions(*config_.resultStore, done,
                                        &error),
                 "fleet: cannot read result store: %s", error.c_str());
    }
    const auto jobDone = [&](const JobSpec &job) {
        // Job indices follow config axis order, which fromConfig
        // preserves — so this arithmetic equals the CompletedSessions
        // cell-ordinal formula over the store's SweepSpec.
        const long cell =
            (static_cast<long>(job.deviceIndex) *
                 static_cast<long>(config_.apps.size()) +
             job.appIndex) *
                static_cast<long>(config_.schedulers.size()) +
            job.schedulerIndex;
        return done.count({cell,
                           static_cast<uint32_t>(job.userIndex)}) > 0;
    };

    FleetPlan plan;
    plan.totalJobs = static_cast<int>(jobs_.size());
    for (size_t unit = 0; unit < units.size(); ++unit) {
        const JobRange &range = units[unit];
        if (static_cast<int>(unit % static_cast<size_t>(
                config_.shardCount)) != config_.shardIndex) {
            plan.shardSkipped += range.count;
            continue;
        }
        if (config_.resume) {
            // Warm cells resume all-or-nothing: re-running a partial
            // cell from its first session reproduces the driver's
            // cross-session state exactly; the duplicate records
            // deduplicate at reduction.
            bool all_done = true;
            for (int i = 0; i < range.count; ++i)
                all_done &= jobDone(
                    jobs_[static_cast<size_t>(range.first + i)]);
            if (all_done) {
                plan.resumeSkipped += range.count;
                continue;
            }
        }
        plan.ranges.push_back(range);
        plan.plannedJobs += range.count;
    }
    return plan;
}

// ------------------------------------------------------- stages 2 to 4

FleetOutcome
FleetRunner::run()
{
    FleetOutcome outcome;
    outcome.plan = plan();
    outcome.jobCount = outcome.plan.plannedJobs;

    ResultStore *store = config_.resultStore;
    if (store) {
        fatal_if(store->sweep() != SweepSpec::fromConfig(config_),
                 "fleet: result store '%s' holds a different sweep",
                 store->dir().c_str());
    }

    // ---- Shared immutable state (built before any worker starts). ----
    bool needs_model = false;
    for (const SchedulerKind kind : config_.schedulers)
        needs_model |= kind == SchedulerKind::Pes;
    needs_model &= outcome.plan.plannedJobs > 0;

    std::vector<std::unique_ptr<DeviceContext>> devices;
    devices.reserve(config_.devices.size());
    for (const AcmpPlatform &platform : config_.devices) {
        auto ctx = std::make_unique<DeviceContext>(platform);
        if (needs_model) {
            if (config_.pretrainedModel && config_.devices.size() == 1 &&
                platform.name() == config_.pretrainedModelDevice) {
                ctx->model = config_.pretrainedModel;
            } else {
                ctx->ownedModel = trainEventModel(
                    ctx->trainGenerator, seenApps(),
                    config_.trainingTracesPerApp);
                ctx->model = &*ctx->ownedModel;
            }
        }
        devices.push_back(std::move(ctx));
    }

    // ---- Parallel phase: job-indexed slots, no cross-worker sharing. ----
    std::vector<SessionStats> stats(jobs_.size());
    std::vector<char> executed(jobs_.size(), 0);
    std::vector<SimResult> full;
    if (config_.collectResults)
        full.resize(jobs_.size());

    // Per-worker, per-device trace generators (each caches built apps).
    std::vector<std::vector<std::unique_ptr<TraceGenerator>>> generators(
        static_cast<size_t>(config_.threads));
    for (auto &slots : generators)
        slots.resize(devices.size());

    // Shared trace storage: each (device, app, user) trace materializes
    // once — synthesized on first use, or loaded from the corpus — and
    // replays read-only across the scheduler axis. Warm sweeps, corpus
    // replay, and caller-provided caches always share; the automatic
    // case additionally requires the cache to pay (a lone scheduler
    // never reuses a trace) and the resident set to stay bounded —
    // either under the auto-share ceiling, or under an explicit LRU cap
    // (traceCacheCap), which keeps sharing on for giant fleets while
    // evicting least-recently-replayed traces.
    const long long distinct_traces =
        static_cast<long long>(devices.size()) *
        static_cast<long long>(config_.apps.size()) *
        config_.effectiveUsers();
    const bool auto_share = config_.shareTraces &&
        config_.schedulers.size() > 1 &&
        (config_.traceCacheCap > 0 || config_.maxSharedTraces <= 0 ||
         distinct_traces <= config_.maxSharedTraces);
    const bool share_traces = auto_share || config_.warmDrivers ||
        config_.corpus != nullptr || config_.traceCache != nullptr;
    std::unique_ptr<TraceCache> owned_cache;
    TraceCache *cache = nullptr;
    if (share_traces) {
        cache = config_.traceCache;
        if (!cache) {
            owned_cache = std::make_unique<TraceCache>();
            owned_cache->setCapacity(config_.traceCacheCap, 0);
            cache = owned_cache.get();
        }
    }

    // ---- Corpus preload: replay-from-disk fleets resolve every
    // planned trace up front so a missing or corrupt recording fails
    // before any session runs, with a per-entry diagnostic. With an
    // LRU-capped cache, loading everything would only evict it again —
    // so the capped path verifies each recording's header once (no
    // event decode) and lets sessions load on demand. ----
    uint64_t traces_from_corpus = 0;
    if (config_.corpus) {
        // A scenario transform also demotes the preload to header
        // verification: inserting the raw recording would poison the
        // cache with untransformed traces, so sessions load+derive on
        // demand through the cache's deterministic loader instead.
        const bool capped = (owned_cache && config_.traceCacheCap > 0) ||
            static_cast<bool>(config_.traceTransform);
        std::set<std::tuple<std::string, std::string, uint64_t>> checked;
        for (const JobRange &range : outcome.plan.ranges) {
            for (int i = 0; i < range.count; ++i) {
                const JobSpec &job =
                    jobs_[static_cast<size_t>(range.first + i)];
                const AppProfile &profile =
                    config_.apps[static_cast<size_t>(job.appIndex)];
                const std::string &device_name =
                    devices[static_cast<size_t>(job.deviceIndex)]
                        ->platform.name();
                // Every job's trace must exist in the corpus even when
                // a caller-provided warm cache already holds the key —
                // a stale cache must not mask a missing recording.
                const CorpusEntry *entry = config_.corpus->find(
                    profile.name, device_name, job.userSeed);
                fatal_if(!entry,
                         "corpus '%s' has no trace for app '%s' on '%s' "
                         "with user seed %llu (re-record, or drop "
                         "--corpus to synthesize live)",
                         config_.corpus->dir().c_str(),
                         profile.name.c_str(), device_name.c_str(),
                         static_cast<unsigned long long>(job.userSeed));
                std::string error;
                if (capped) {
                    if (!checked
                             .insert({device_name, profile.name,
                                      job.userSeed})
                             .second)
                        continue;  // scheduler axis revisits the key
                    fatal_if(!config_.corpus->verifyHeader(*entry,
                                                           &error),
                             "corpus '%s': %s",
                             config_.corpus->dir().c_str(),
                             error.c_str());
                    continue;
                }
                if (cache->lookup(device_name, profile.name,
                                  job.userSeed))
                    continue;  // already resident
                auto trace = config_.corpus->load(*entry, &error);
                fatal_if(!trace, "corpus '%s': %s",
                         config_.corpus->dir().c_str(), error.c_str());
                cache->insert(device_name, std::move(*trace));
                ++traces_from_corpus;
            }
        }
    }

    // ---- Persist sink (stage 3): checkpoints flow during execution. ----
    PersistSink sink;
    if (store) {
        sink.store = store;
        sink.label = "s" + std::to_string(config_.shardIndex);
        sink.params = {
            {"writer", "fleet_runner"},
            {"shard", std::to_string(config_.shardIndex) + "/" +
                          std::to_string(config_.shardCount)},
        };
        sink.checkpointEvery = config_.checkpointEvery;
    }

    // On-demand corpus loads by workers (capped-cache misses/reloads);
    // folded into tracesFromCorpus so replay traffic is visible even
    // when the preload stage only verified headers.
    std::atomic<uint64_t> corpus_loads{0};

    const auto runJob = [&](const JobSpec &job, int worker,
                            SchedulerDriver &driver) {
        DeviceContext &device = *devices[static_cast<size_t>(
            job.deviceIndex)];
        auto &gen_slot =
            generators[static_cast<size_t>(worker)]
                      [static_cast<size_t>(job.deviceIndex)];
        if (!gen_slot)
            gen_slot = std::make_unique<TraceGenerator>(device.platform);

        const AppProfile &profile =
            config_.apps[static_cast<size_t>(job.appIndex)];
        InteractionTrace fresh;
        TraceHandle handle;  // keeps an evicted trace alive while used
        const InteractionTrace *trace = nullptr;
        if (cache) {
            // Misses materialize deterministically: from the corpus
            // when replaying (an evicted preload must reload the
            // recording, never re-synthesize), live synthesis otherwise.
            handle = cache->getOrLoad(
                device.platform.name(), profile.name, job.userSeed,
                [&]() -> InteractionTrace {
                    InteractionTrace materialized;
                    if (config_.corpus) {
                        // Throw (not fatal): this runs on a worker, and
                        // the pool turns the exception into a run-level
                        // diagnostic while other workers keep going and
                        // the final checkpoint still flushes.
                        const CorpusEntry *entry = config_.corpus->find(
                            profile.name, device.platform.name(),
                            job.userSeed);
                        std::string error;
                        auto loaded = entry
                            ? config_.corpus->load(*entry, &error)
                            : std::nullopt;
                        if (!loaded) {
                            throw std::runtime_error(
                                "corpus '" + config_.corpus->dir() +
                                "': " +
                                (entry ? error
                                       : "preloaded entry disappeared"));
                        }
                        corpus_loads.fetch_add(1);
                        materialized = std::move(*loaded);
                    } else {
                        materialized =
                            gen_slot->generate(profile, job.userSeed);
                    }
                    // Scenario derivation happens INSIDE the loader:
                    // re-materializing an evicted key reproduces the
                    // transformed trace byte-identically (the transform
                    // is pure by contract).
                    if (config_.traceTransform)
                        materialized =
                            config_.traceTransform(materialized);
                    return materialized;
                });
            trace = handle.get();
        } else {
            fresh = gen_slot->generate(profile, job.userSeed);
            if (config_.traceTransform)
                fresh = config_.traceTransform(fresh);
            trace = &fresh;
        }

        SimConfig sim_config;
        sim_config.renderScale = profile.renderScale;
        if (config_.seedMode == SeedMode::Fleet) {
            // Per-shard speculation-noise stream (instead of the
            // default fixed seed) so fleets are reproducible per user,
            // not merely per run.
            sim_config.specNoiseSeed =
                hashCombine(job.userSeed, kSpecNoiseSalt);
        }
        RuntimeSimulator simulator(device.platform, device.power,
                                   gen_slot->appFor(profile), sim_config);
        SimResult result = simulator.run(*trace, driver);
        stats[static_cast<size_t>(job.index)] =
            SessionStats::reduce(result);
        executed[static_cast<size_t>(job.index)] = 1;
        if (config_.collectResults)
            full[static_cast<size_t>(job.index)] = std::move(result);
        if (sink.store) {
            SessionRecord record;
            record.device = device.platform.name();
            record.app = profile.name;
            record.scheduler = schedulerKindName(
                config_.schedulers[static_cast<size_t>(
                    job.schedulerIndex)]);
            record.userIndex = static_cast<uint32_t>(job.userIndex);
            record.userSeed = job.userSeed;
            record.stats = stats[static_cast<size_t>(job.index)];
            sink.push(std::move(record));
        }
    };

    // ---- Stage 2: execute the planned ranges. ----
    const auto start = std::chrono::steady_clock::now();
    {
        ThreadPool pool(config_.threads);
        for (const JobRange &range : outcome.plan.ranges) {
            pool.submit([&, range](int worker) {
                // One driver per range: a per-cell "warmed device" for
                // warm ranges, a fresh driver for singleton ranges.
                const JobSpec &head =
                    jobs_[static_cast<size_t>(range.first)];
                DeviceContext &device = *devices[static_cast<size_t>(
                    head.deviceIndex)];
                const auto driver = makeFleetScheduler(
                    config_.schedulers[static_cast<size_t>(
                        head.schedulerIndex)],
                    device);
                for (int i = 0; i < range.count; ++i)
                    runJob(jobs_[static_cast<size_t>(range.first + i)],
                           worker, *driver);
            });
        }
        pool.wait();
        for (const std::string &error : pool.errors())
            outcome.diagnostics.push_back(error);
    }
    const auto stop = std::chrono::steady_clock::now();

    // ---- Stage 3: final checkpoint flush. ----
    if (store)
        sink.finish();
    for (const std::string &error : sink.errors)
        outcome.diagnostics.push_back(error);
    outcome.persistedRecords = sink.persisted;
    outcome.checkpointFlushes = sink.flushes;

    outcome.wallMs =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (cache) {
        outcome.traceCacheHits = cache->hits();
        outcome.traceCacheMisses = cache->misses();
        outcome.traceCacheEvictions = cache->evictions();
    }
    outcome.tracesFromCorpus = traces_from_corpus + corpus_loads.load();

    // ---- Stage 4: deterministic reduction. ----
    if (store) {
        // Reduce FROM the store: one code path for whole, sharded and
        // resumed runs — the reports cover everything persisted.
        StoreReduction reduction;
        std::string error;
        if (!reduceStore(*store, reduction, &error)) {
            outcome.diagnostics.push_back("reduce: " + error);
        } else {
            outcome.metrics = std::move(reduction.metrics);
            for (const std::string &problem : reduction.problems)
                outcome.diagnostics.push_back("reduce: " + problem);
        }
    } else {
        for (const JobSpec &job : jobs_) {
            if (!executed[static_cast<size_t>(job.index)])
                continue;
            const DeviceContext &device =
                *devices[static_cast<size_t>(job.deviceIndex)];
            outcome.metrics.add(
                device.platform.name(),
                config_.apps[static_cast<size_t>(job.appIndex)].name,
                schedulerKindName(config_.schedulers[static_cast<size_t>(
                    job.schedulerIndex)]),
                stats[static_cast<size_t>(job.index)]);
        }
    }
    if (config_.collectResults) {
        for (const JobSpec &job : jobs_) {
            if (executed[static_cast<size_t>(job.index)])
                outcome.results.add(
                    std::move(full[static_cast<size_t>(job.index)]));
        }
    }
    return outcome;
}

} // namespace pes
