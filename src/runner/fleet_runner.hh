/**
 * @file
 * The fleet runner: batch execution of many simulated user sessions.
 *
 * Executes the job cross-product of a FleetConfig on a ThreadPool, one
 * session per job, and aggregates the per-session reductions into
 * per-cell summaries. Three properties make it the substrate for
 * large-scale sweeps:
 *
 *  - Determinism: every session derives all randomness from its
 *    JobSpec::userSeed; workers write reductions into job-indexed slots
 *    and aggregation replays the slots in canonical job order, so the
 *    outcome is bit-identical for any thread count.
 *  - Sharding: sessions are dispatched in shards. Fresh-driver fleets
 *    shard per job (maximum parallelism); warm-driver runs shard per
 *    (device, app, scheduler) cell so a driver's cross-session state
 *    (EBS/PES measurement history) replays sequentially, reproducing
 *    the classic Experiment::runSweep protocol.
 *  - Isolation: each worker keeps its own trace-generator caches;
 *    shared state (platform, power table, trained event model) is
 *    immutable during the run.
 */

#ifndef PES_RUNNER_FLEET_RUNNER_HH
#define PES_RUNNER_FLEET_RUNNER_HH

#include "runner/fleet_config.hh"
#include "runner/metrics_aggregator.hh"
#include "sim/metrics.hh"

namespace pes {

/** Everything a finished fleet run produced. */
struct FleetOutcome
{
    /** Per-cell aggregation over all sessions. */
    MetricsAggregator metrics;
    /** Full per-session results in job order (FleetConfig::collectResults). */
    ResultSet results;
    /** Number of sessions executed. */
    int jobCount = 0;
    /** Wall-clock of the parallel phase (ms). Never serialized. */
    double wallMs = 0.0;
    /** Trace-cache traffic of the run (0/0 when sharing was off).
     *  Diagnostics only — never serialized into reports. */
    uint64_t traceCacheHits = 0;
    uint64_t traceCacheMisses = 0;
    /** Traces preloaded from the corpus (corpus replay only). */
    uint64_t tracesFromCorpus = 0;
};

/**
 * Executes one FleetConfig.
 */
class FleetRunner
{
  public:
    explicit FleetRunner(FleetConfig config);

    /** The (validated) configuration. */
    const FleetConfig &config() const { return config_; }

    /** The enumerated jobs, in canonical order. */
    const std::vector<JobSpec> &jobs() const { return jobs_; }

    /**
     * Run every job and aggregate. Trains the PES event model per
     * device first when needed (or borrows config.pretrainedModel).
     * Reentrant: each call re-executes the fleet.
     */
    FleetOutcome run();

  private:
    FleetConfig config_;
    std::vector<JobSpec> jobs_;
};

} // namespace pes

#endif // PES_RUNNER_FLEET_RUNNER_HH
