/**
 * @file
 * The fleet runner: staged batch execution of many simulated sessions.
 *
 * run() is an explicit four-stage pipeline, each stage a building block
 * that tools can reason about independently:
 *
 *  1. plan    — enumerate the job cross-product, select this machine's
 *               shard (--shard k/N), and drop jobs already persisted in
 *               the result store (--resume).
 *  2. execute — run the planned shards on a ThreadPool; workers write
 *               SessionStats into job-indexed slots. Worker exceptions
 *               become run-level diagnostics, never process death.
 *  3. persist — checkpoint completed sessions into the attached
 *               ResultStore as .psum parts (every checkpointEvery
 *               sessions and at the end), so a killed sweep loses at
 *               most one checkpoint of work.
 *  4. reduce  — aggregate per-cell summaries. With a store attached the
 *               reduction reads back FROM the store, so whole, sharded,
 *               and killed-and-resumed runs all reduce through one path
 *               and their reports are byte-identical.
 *
 * Three properties make it the substrate for large-scale sweeps:
 *
 *  - Determinism: every session derives all randomness from its
 *    JobSpec::userSeed; aggregation replays sessions in canonical job
 *    order, so the outcome is bit-identical for any thread count, shard
 *    split, or resume boundary.
 *  - Sharding: fresh-driver fleets shard per job (maximum parallelism);
 *    warm-driver runs shard per (device, app, scheduler) cell so a
 *    driver's cross-session state (EBS/PES measurement history) replays
 *    sequentially, reproducing the classic Experiment::runSweep
 *    protocol. --shard k/N distributes the same units across machines.
 *  - Isolation: each worker keeps its own trace-generator caches;
 *    shared state (platform, power table, trained event model, the
 *    LRU-bounded trace cache) is immutable or internally synchronized.
 */

#ifndef PES_RUNNER_FLEET_RUNNER_HH
#define PES_RUNNER_FLEET_RUNNER_HH

#include <string>
#include <vector>

#include "runner/fleet_config.hh"
#include "runner/metrics_aggregator.hh"
#include "runner/thread_pool.hh"
#include "sim/metrics.hh"
#include "telemetry/run_telemetry.hh"
#include "util/contention.hh"

namespace pes {

/** Output of the planning stage: what this run will actually execute. */
struct FleetPlan
{
    /** Job ranges this run executes, in canonical order. */
    std::vector<JobRange> ranges;
    /** Sessions in the whole sweep (all shards). */
    int totalJobs = 0;
    /** Sessions this run will execute. */
    int plannedJobs = 0;
    /** Sessions excluded by the shard selector. */
    int shardSkipped = 0;
    /** Sessions skipped because the store already holds them. */
    int resumeSkipped = 0;
};

/** Everything a finished fleet run produced. */
struct FleetOutcome
{
    /** Per-cell aggregation — from the result store when one is
     *  attached, from memory otherwise. */
    MetricsAggregator metrics;
    /** Full per-session results in job order (FleetConfig::collectResults).
     *  Covers only sessions executed by THIS run (not resumed ones). */
    ResultSet results;
    /** Number of sessions executed by this run. */
    int jobCount = 0;
    /** The plan this run executed. */
    FleetPlan plan;
    /** Wall-clock of the parallel phase (ms). Never serialized. */
    double wallMs = 0.0;
    /** Per-stage wall-clock (ms); wallMs is the execute stage.
     *  Telemetry only — never serialized into reports. */
    double planMs = 0.0;
    double persistMs = 0.0;
    double reduceMs = 0.0;
    /** Worker-pool saturation of the execute stage (busy/idle wall
     *  time only when telemetry was armed). */
    ThreadPoolStats poolStats;
    /** Bytes written by checkpoint flushes (telemetry only). */
    uint64_t checkpointBytes = 0;
    /**
     * Run-level problems: worker exceptions, persistence failures,
     * store anomalies found at reduction. Empty on a clean run — tools
     * treat non-empty as a failed run (non-zero exit) while still
     * reporting whatever completed.
     */
    std::vector<std::string> diagnostics;
    /** Sessions persisted to the store by this run. */
    uint64_t persistedRecords = 0;
    /** Checkpoint flushes performed (parts written). */
    uint64_t checkpointFlushes = 0;
    /** Trace-cache traffic of the run (0/0 when sharing was off).
     *  Diagnostics only — never serialized into reports. */
    uint64_t traceCacheHits = 0;
    uint64_t traceCacheMisses = 0;
    uint64_t traceCacheEvictions = 0;
    /** Materializations discarded to the first-insert-wins race (the
     *  "97th miss": wasted synthesis that only exists under contention). */
    uint64_t traceCacheDuplicateSynthesis = 0;
    /** Contended acquisitions of the TraceCache mutex. */
    LockContention traceCacheContention;
    /** Contended acquisitions of the PersistSink push lock. */
    LockContention persistContention;
    /** Corpus loads performed (preload, plus on-demand reloads when
     *  the trace cache is capped). Corpus replay only. */
    uint64_t tracesFromCorpus = 0;
};

/**
 * Executes one FleetConfig.
 */
class FleetRunner
{
  public:
    explicit FleetRunner(FleetConfig config);

    /** The (validated) configuration. */
    const FleetConfig &config() const { return config_; }

    /** The enumerated jobs of the WHOLE sweep, in canonical order. */
    const std::vector<JobSpec> &jobs() const { return jobs_; }

    /**
     * Stage 1 alone: what would this run execute? Consults the result
     * store when resuming (reads its manifest and parts). Also the
     * dry-run entry point for tools that report shard membership.
     */
    FleetPlan plan() const;

    /**
     * Run the full pipeline (plan -> execute -> persist -> reduce).
     * Trains the PES event model per device first when needed (or
     * borrows config.pretrainedModel). Reentrant: each call re-plans
     * and re-executes.
     */
    FleetOutcome run();

  private:
    FleetConfig config_;
    std::vector<JobSpec> jobs_;
};

/**
 * Build the RunTelemetry summary of one finished run (tool = "run"):
 * counters snapshot from the armed registry, stage times and traffic
 * from the outcome. Under a logical-clock trace sink all wall-derived
 * fields are zeroed (see telemetry/run_telemetry.hh).
 */
RunTelemetry makeRunTelemetry(const FleetConfig &config,
                              const FleetOutcome &outcome);

} // namespace pes

#endif // PES_RUNNER_FLEET_RUNNER_HH
