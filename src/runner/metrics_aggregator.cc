#include "runner/metrics_aggregator.hh"

#include <algorithm>
#include <cmath>

namespace pes {

void
MetricsAggregator::add(const std::string &device, const std::string &app,
                       const std::string &scheduler,
                       const SessionStats &stats)
{
    CellAccum &acc = cells_[CellKey{device, app, scheduler}];
    acc.sessions += 1;
    acc.events += stats.events;
    acc.violations += stats.violations;
    acc.energy.add(stats.totalEnergyMj);
    acc.busyEnergy.add(stats.busyEnergyMj);
    acc.idleEnergy.add(stats.idleEnergyMj);
    acc.overheadEnergy.add(stats.overheadEnergyMj);
    acc.wasteEnergy.add(stats.wasteEnergyMj);
    acc.duration.add(stats.durationMs);
    acc.queueLength.add(stats.avgQueueLength);
    acc.maxLatencyMs = std::max(acc.maxLatencyMs, stats.maxLatencyMs);
    acc.latencyEventSum += stats.meanLatencyMs * stats.events;
    acc.sessionMeanLatency.add(stats.meanLatencyMs);
    acc.sessionP95Latency.add(stats.p95LatencyMs);
    acc.eventLatency.merge(stats.latencySketch);
    acc.predictionsMade += stats.predictionsMade;
    acc.predictionsCorrect += stats.predictionsCorrect;
    acc.mispredictions += stats.mispredictions;
    acc.mispredictWasteMs += stats.mispredictWasteMs;
    acc.fallbacks += stats.fellBackToReactive ? 1 : 0;
}

void
MetricsAggregator::addEventLatencySketch(const std::string &device,
                                         const std::string &app,
                                         const std::string &scheduler,
                                         const PercentileSketch &sketch)
{
    cells_[CellKey{device, app, scheduler}].eventLatency.merge(sketch);
}

void
MetricsAggregator::merge(const MetricsAggregator &other)
{
    for (const auto &[key, src] : other.cells_) {
        CellAccum &dst = cells_[key];
        dst.sessions += src.sessions;
        dst.events += src.events;
        dst.violations += src.violations;
        dst.energy.merge(src.energy);
        dst.busyEnergy.merge(src.busyEnergy);
        dst.idleEnergy.merge(src.idleEnergy);
        dst.overheadEnergy.merge(src.overheadEnergy);
        dst.wasteEnergy.merge(src.wasteEnergy);
        dst.duration.merge(src.duration);
        dst.queueLength.merge(src.queueLength);
        dst.maxLatencyMs = std::max(dst.maxLatencyMs, src.maxLatencyMs);
        dst.latencyEventSum += src.latencyEventSum;
        dst.sessionMeanLatency.merge(src.sessionMeanLatency);
        dst.sessionP95Latency.merge(src.sessionP95Latency);
        dst.eventLatency.merge(src.eventLatency);
        dst.predictionsMade += src.predictionsMade;
        dst.predictionsCorrect += src.predictionsCorrect;
        dst.mispredictions += src.mispredictions;
        dst.mispredictWasteMs += src.mispredictWasteMs;
        dst.fallbacks += src.fallbacks;
    }
}

int
MetricsAggregator::sessions() const
{
    int total = 0;
    for (const auto &[key, acc] : cells_)
        total += acc.sessions;
    return total;
}

long
MetricsAggregator::events() const
{
    long total = 0;
    for (const auto &[key, acc] : cells_)
        total += acc.events;
    return total;
}

CellSummary
MetricsAggregator::summarize(const CellKey &key, const CellAccum &acc) const
{
    CellSummary c;
    c.device = key.device;
    c.app = key.app;
    c.scheduler = key.scheduler;
    c.sessions = acc.sessions;
    c.events = acc.events;
    c.violations = acc.violations;
    c.violationRate = acc.events
        ? static_cast<double>(acc.violations) /
          static_cast<double>(acc.events)
        : 0.0;
    c.meanEnergyMj = acc.energy.mean();
    c.stddevEnergyMj = acc.energy.stddev();
    c.minEnergyMj = acc.energy.min();
    c.maxEnergyMj = acc.energy.max();
    c.meanBusyEnergyMj = acc.busyEnergy.mean();
    c.meanIdleEnergyMj = acc.idleEnergy.mean();
    c.meanOverheadEnergyMj = acc.overheadEnergy.mean();
    c.meanWasteEnergyMj = acc.wasteEnergy.mean();
    c.meanDurationMs = acc.duration.mean();
    c.maxLatencyMs = acc.maxLatencyMs;
    c.avgQueueLength = acc.queueLength.mean();
    c.meanLatencyMs = acc.events
        ? acc.latencyEventSum / static_cast<double>(acc.events)
        : 0.0;
    c.p50LatencyMs = acc.eventLatency.quantile(0.50);
    c.p95LatencyMs = acc.eventLatency.quantile(0.95);
    c.p99LatencyMs = acc.eventLatency.quantile(0.99);
    c.p50SessionLatencyMs = acc.sessionMeanLatency.quantile(0.50);
    c.p95SessionLatencyMs = acc.sessionP95Latency.quantile(0.95);
    c.predictionAccuracy = acc.predictionsMade
        ? static_cast<double>(acc.predictionsCorrect) /
          static_cast<double>(acc.predictionsMade)
        : 0.0;
    if (acc.sessions > 0) {
        c.mispredictsPerSession =
            static_cast<double>(acc.mispredictions) / acc.sessions;
        c.mispredictWasteMsPerSession = acc.mispredictWasteMs / acc.sessions;
        c.fallbackRate = static_cast<double>(acc.fallbacks) / acc.sessions;
    }
    return c;
}

std::vector<CellSummary>
MetricsAggregator::cells() const
{
    std::vector<CellSummary> out;
    out.reserve(cells_.size());
    for (const auto &[key, acc] : cells_)
        out.push_back(summarize(key, acc));
    return out;
}

CellSummary
MetricsAggregator::cell(const std::string &device, const std::string &app,
                        const std::string &scheduler) const
{
    const auto it = cells_.find(CellKey{device, app, scheduler});
    if (it == cells_.end())
        return CellSummary{};
    return summarize(it->first, it->second);
}

} // namespace pes
