/**
 * @file
 * Per-cell aggregation of fleet session results.
 *
 * Workers reduce every finished SimResult to a compact SessionStats (a
 * few dozen scalars — scales to fleets far beyond what retaining raw
 * results allows) and the runner streams the stats into a
 * MetricsAggregator in canonical job order (an ordered cursor plus a
 * bounded out-of-order window). Aggregation is therefore deterministic
 * in the face of any worker interleaving — same fleet, same summary
 * bytes, any thread count — while the resident set stays independent
 * of the user-axis size.
 *
 * Cells are (device, app, scheduler) groups. Means/extrema use
 * util/stats RunningStats; percentiles come from mergeable
 * PercentileSketches (per-session mean and p95 distributions, plus the
 * per-event latency sketch carried in each SessionStats), which keeps
 * cell memory O(1) in both sessions and events — a 10M-session cell
 * costs the same few hundred counters as a 10-session one.
 */

#ifndef PES_RUNNER_METRICS_AGGREGATOR_HH
#define PES_RUNNER_METRICS_AGGREGATOR_HH

#include <map>
#include <string>
#include <vector>

#include "sim/session_stats.hh"
#include "sim/sim_types.hh"
#include "util/stats.hh"

namespace pes {

/** Aggregated summary of one (device, app, scheduler) cell. */
struct CellSummary
{
    std::string device;
    std::string app;
    std::string scheduler;

    int sessions = 0;
    long events = 0;
    long violations = 0;
    /** Event-weighted QoS violation rate. */
    double violationRate = 0.0;

    double meanEnergyMj = 0.0;
    double stddevEnergyMj = 0.0;
    double minEnergyMj = 0.0;
    double maxEnergyMj = 0.0;
    double meanBusyEnergyMj = 0.0;
    double meanIdleEnergyMj = 0.0;
    double meanOverheadEnergyMj = 0.0;
    double meanWasteEnergyMj = 0.0;
    double meanDurationMs = 0.0;

    /** Event-weighted mean latency over the cell. */
    double meanLatencyMs = 0.0;
    /** Event-level latency percentiles over every event of the cell
     *  (merged per-session sketches; ~0.8% relative accuracy). */
    double p50LatencyMs = 0.0;
    double p95LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    /** Median of per-session mean latencies. */
    double p50SessionLatencyMs = 0.0;
    /** 95th percentile of per-session p95 latencies. */
    double p95SessionLatencyMs = 0.0;
    /** Worst event latency of any session. */
    double maxLatencyMs = 0.0;
    /** Mean of per-session average queue lengths. */
    double avgQueueLength = 0.0;

    /** Pooled prediction accuracy; 0 when no predictions. */
    double predictionAccuracy = 0.0;
    double mispredictsPerSession = 0.0;
    double mispredictWasteMsPerSession = 0.0;
    /** Fraction of sessions that hit the reactive fallback. */
    double fallbackRate = 0.0;
};

/**
 * Merges SessionStats into per-cell summaries.
 */
class MetricsAggregator
{
  public:
    /** Fold one session into cell (device, app, scheduler). */
    void add(const std::string &device, const std::string &app,
             const std::string &scheduler, const SessionStats &stats);

    /**
     * Merge one session's event-latency sketch into a cell, without
     * folding any of the session's scalars. Bin-wise sketch merges
     * commute, so callers that must fold scalars in canonical job
     * order (for bit-stable float sums) can still merge sketches the
     * moment a session completes — in any order — and stash only the
     * small scalar remainder (sketch cleared) for the ordered fold.
     */
    void addEventLatencySketch(const std::string &device,
                               const std::string &app,
                               const std::string &scheduler,
                               const PercentileSketch &sketch);

    /** Fold another aggregator's cells into this one. */
    void merge(const MetricsAggregator &other);

    /** Total sessions across all cells. */
    int sessions() const;

    /** Total events across all cells. */
    long events() const;

    /** All cell summaries, ordered by (device, app, scheduler) key. */
    std::vector<CellSummary> cells() const;

    /**
     * Summary of one cell; a zeroed summary when the cell is unknown
     * (sessions == 0 flags it).
     */
    CellSummary cell(const std::string &device, const std::string &app,
                     const std::string &scheduler) const;

  private:
    struct CellKey
    {
        std::string device;
        std::string app;
        std::string scheduler;

        bool operator<(const CellKey &o) const
        {
            if (device != o.device)
                return device < o.device;
            if (app != o.app)
                return app < o.app;
            return scheduler < o.scheduler;
        }
    };

    struct CellAccum
    {
        int sessions = 0;
        long events = 0;
        long violations = 0;
        RunningStats energy;
        RunningStats busyEnergy;
        RunningStats idleEnergy;
        RunningStats overheadEnergy;
        RunningStats wasteEnergy;
        RunningStats duration;
        RunningStats queueLength;
        double maxLatencyMs = 0.0;
        /** Session mean latencies weighted by events (pooled mean). */
        double latencyEventSum = 0.0;
        /** Distribution sketches: per-session mean, per-session p95,
         *  and every event latency (merged from the per-session
         *  sketches). Bin-wise merge keeps any shard/merge order
         *  byte-identical. */
        PercentileSketch sessionMeanLatency;
        PercentileSketch sessionP95Latency;
        PercentileSketch eventLatency;
        long predictionsMade = 0;
        long predictionsCorrect = 0;
        long mispredictions = 0;
        double mispredictWasteMs = 0.0;
        int fallbacks = 0;
    };

    CellSummary summarize(const CellKey &key, const CellAccum &acc) const;

    std::map<CellKey, CellAccum> cells_;
};

} // namespace pes

#endif // PES_RUNNER_METRICS_AGGREGATOR_HH
