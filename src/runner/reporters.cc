#include "runner/reporters.hh"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "runner/fleet_config.hh"
#include "util/json.hh"
#include "util/strings.hh"

namespace pes {

namespace {

/** Shortest round-trippable-enough float formatting (deterministic). */
std::string
num(double v)
{
    return jsonNum(v);
}

double
fieldNum(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v ? v->number() : 0.0;
}

std::string
fieldStr(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v ? v->str : std::string();
}

bool
fillCellNumbers(CellSummary &c, const std::vector<double> &xs)
{
    if (xs.size() != cellMetricNames().size())
        return false;
    size_t i = 0;
    c.sessions = static_cast<int>(xs[i++]);
    c.events = static_cast<long>(xs[i++]);
    c.violations = static_cast<long>(xs[i++]);
    c.violationRate = xs[i++];
    c.meanEnergyMj = xs[i++];
    c.stddevEnergyMj = xs[i++];
    c.minEnergyMj = xs[i++];
    c.maxEnergyMj = xs[i++];
    c.meanBusyEnergyMj = xs[i++];
    c.meanIdleEnergyMj = xs[i++];
    c.meanOverheadEnergyMj = xs[i++];
    c.meanWasteEnergyMj = xs[i++];
    c.meanDurationMs = xs[i++];
    c.meanLatencyMs = xs[i++];
    c.p50LatencyMs = xs[i++];
    c.p95LatencyMs = xs[i++];
    c.p99LatencyMs = xs[i++];
    c.p50SessionLatencyMs = xs[i++];
    c.p95SessionLatencyMs = xs[i++];
    c.maxLatencyMs = xs[i++];
    c.avgQueueLength = xs[i++];
    c.predictionAccuracy = xs[i++];
    c.mispredictsPerSession = xs[i++];
    c.mispredictWasteMsPerSession = xs[i++];
    c.fallbackRate = xs[i++];
    return true;
}

} // namespace

std::string
csvNum(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "Infinity" : "-Infinity";
    return jsonNum(v);
}

const std::vector<std::string> &
cellMetricNames()
{
    /** The cell column order shared by the JSON and CSV schemas. */
    static const std::vector<std::string> kColumns = {
        "sessions", "events", "violations", "violation_rate",
        "mean_energy_mj", "stddev_energy_mj", "min_energy_mj",
        "max_energy_mj", "mean_busy_energy_mj", "mean_idle_energy_mj",
        "mean_overhead_energy_mj", "mean_waste_energy_mj",
        "mean_duration_ms", "mean_latency_ms", "p50_latency_ms",
        "p95_latency_ms", "p99_latency_ms", "p50_session_latency_ms",
        "p95_session_latency_ms", "max_latency_ms", "avg_queue_length",
        "prediction_accuracy", "mispredicts_per_session",
        "mispredict_waste_ms_per_session", "fallback_rate",
    };
    return kColumns;
}

std::vector<double>
cellMetricValues(const CellSummary &c)
{
    return {static_cast<double>(c.sessions), static_cast<double>(c.events),
            static_cast<double>(c.violations), c.violationRate,
            c.meanEnergyMj, c.stddevEnergyMj, c.minEnergyMj, c.maxEnergyMj,
            c.meanBusyEnergyMj, c.meanIdleEnergyMj, c.meanOverheadEnergyMj,
            c.meanWasteEnergyMj, c.meanDurationMs, c.meanLatencyMs,
            c.p50LatencyMs, c.p95LatencyMs, c.p99LatencyMs,
            c.p50SessionLatencyMs, c.p95SessionLatencyMs, c.maxLatencyMs,
            c.avgQueueLength, c.predictionAccuracy,
            c.mispredictsPerSession, c.mispredictWasteMsPerSession,
            c.fallbackRate};
}

FleetReport
makeFleetReport(const FleetConfig &config, const MetricsAggregator &metrics)
{
    FleetReport report;
    report.baseSeed = config.baseSeed;
    report.seedMode =
        config.seedMode == SeedMode::Fleet ? "fleet" : "evaluation";
    report.warmDrivers = config.warmDrivers;
    report.scenario = config.scenario;
    report.population = config.populationTag;
    report.users = config.effectiveUsers();
    report.sessions = metrics.sessions();
    report.events = metrics.events();
    if (config.devices.empty()) {
        report.devices.push_back(AcmpPlatform::exynos5410().name());
    } else {
        for (const AcmpPlatform &d : config.devices)
            report.devices.push_back(d.name());
    }
    for (const AppProfile &p : config.apps)
        report.apps.push_back(p.name);
    for (const SchedulerKind k : config.schedulers)
        report.schedulers.push_back(schedulerKindName(k));
    report.cells = metrics.cells();
    return report;
}

// ------------------------------------------------------------ JSON sink

void
JsonReporter::write(const FleetReport &report, std::ostream &os)
{
    os << "{\n";
    os << "  \"version\": " << FleetReport::kVersion << ",\n";
    os << "  \"meta\": {\n";
    os << "    \"base_seed\": " << report.baseSeed << ",\n";
    os << "    \"seed_mode\": \"" << jsonEscape(report.seedMode) << "\",\n";
    os << "    \"warm\": " << (report.warmDrivers ? 1 : 0) << ",\n";
    os << "    \"scenario\": \"" << jsonEscape(report.scenario)
       << "\",\n";
    os << "    \"population\": \"" << jsonEscape(report.population)
       << "\",\n";
    os << "    \"users\": " << report.users << ",\n";
    os << "    \"sessions\": " << report.sessions << ",\n";
    os << "    \"events\": " << report.events << ",\n";
    os << "    \"devices\": ";
    writeJsonStringArray(os, report.devices);
    os << ",\n    \"apps\": ";
    writeJsonStringArray(os, report.apps);
    os << ",\n    \"schedulers\": ";
    writeJsonStringArray(os, report.schedulers);
    os << "\n  },\n";
    os << "  \"cells\": [";
    for (size_t i = 0; i < report.cells.size(); ++i) {
        const CellSummary &c = report.cells[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"device\": \"" << jsonEscape(c.device)
           << "\", \"app\": \"" << jsonEscape(c.app)
           << "\", \"scheduler\": \"" << jsonEscape(c.scheduler) << "\",\n";
        const std::vector<double> xs = cellMetricValues(c);
        const std::vector<std::string> &cols = cellMetricNames();
        os << "     ";
        for (size_t k = 0; k < xs.size(); ++k) {
            os << (k ? ", " : "") << '"' << cols[k]
               << "\": " << num(xs[k]);
        }
        os << "}";
    }
    os << "\n  ]\n}\n";
}

std::string
JsonReporter::toString(const FleetReport &report)
{
    std::ostringstream ss;
    write(report, ss);
    return ss.str();
}

std::optional<FleetReport>
JsonReporter::parse(const std::string &text)
{
    const auto parsed = parseJson(text);
    if (!parsed || parsed->kind != JsonValue::Kind::Object)
        return std::nullopt;
    const JsonValue &root = *parsed;

    FleetReport report;
    const JsonValue *meta = root.find("meta");
    const JsonValue *cells = root.find("cells");
    if (!meta || !cells || cells->kind != JsonValue::Kind::Array)
        return std::nullopt;

    if (const JsonValue *v = meta->find("base_seed"))
        report.baseSeed = v->number64();
    report.seedMode = fieldStr(*meta, "seed_mode");
    report.warmDrivers = fieldNum(*meta, "warm") != 0.0;
    report.scenario = fieldStr(*meta, "scenario");
    report.population = fieldStr(*meta, "population");
    report.users = static_cast<int>(fieldNum(*meta, "users"));
    report.sessions = static_cast<int>(fieldNum(*meta, "sessions"));
    report.events = static_cast<long>(fieldNum(*meta, "events"));
    if (const JsonValue *v = meta->find("devices"))
        report.devices = jsonStringArray(*v);
    if (const JsonValue *v = meta->find("apps"))
        report.apps = jsonStringArray(*v);
    if (const JsonValue *v = meta->find("schedulers"))
        report.schedulers = jsonStringArray(*v);

    for (const JsonValue &cv : cells->arr) {
        if (cv.kind != JsonValue::Kind::Object)
            return std::nullopt;
        CellSummary c;
        c.device = fieldStr(cv, "device");
        c.app = fieldStr(cv, "app");
        c.scheduler = fieldStr(cv, "scheduler");
        std::vector<double> xs;
        for (const std::string &col : cellMetricNames())
            xs.push_back(fieldNum(cv, col.c_str()));
        if (!fillCellNumbers(c, xs))
            return std::nullopt;
        report.cells.push_back(std::move(c));
    }
    return report;
}

// ------------------------------------------------------------- CSV sink

void
CsvReporter::write(const FleetReport &report, std::ostream &os)
{
    os << "# pes_fleet report v" << FleetReport::kVersion << "\n";
    os << "# base_seed=" << report.baseSeed
       << " seed_mode=" << report.seedMode
       << " warm=" << (report.warmDrivers ? 1 : 0)
       << " scenario=" << report.scenario
       << " population=" << report.population
       << " users=" << report.users
       << " sessions=" << report.sessions << " events=" << report.events
       << "\n";
    os << "device,app,scheduler";
    for (const std::string &col : cellMetricNames())
        os << ',' << col;
    os << "\n";
    for (const CellSummary &c : report.cells) {
        os << c.device << ',' << c.app << ',' << c.scheduler;
        for (const double x : cellMetricValues(c))
            os << ',' << csvNum(x);
        os << "\n";
    }
}

std::string
CsvReporter::toString(const FleetReport &report)
{
    std::ostringstream ss;
    write(report, ss);
    return ss.str();
}

std::optional<std::vector<CellSummary>>
CsvReporter::parse(const std::string &text)
{
    std::vector<CellSummary> cells;
    bool seen_header = false;
    for (const std::string &line : split(text, '\n')) {
        const std::string row = trim(line);
        if (row.empty() || row[0] == '#')
            continue;
        if (!seen_header) {
            // Column-name row.
            if (!startsWith(row, "device,"))
                return std::nullopt;
            seen_header = true;
            continue;
        }
        const std::vector<std::string> fields = split(row, ',');
        if (fields.size() < 4)
            return std::nullopt;
        CellSummary c;
        c.device = fields[0];
        c.app = fields[1];
        c.scheduler = fields[2];
        std::vector<double> xs;
        for (size_t i = 3; i < fields.size(); ++i)
            xs.push_back(std::strtod(fields[i].c_str(), nullptr));
        if (!fillCellNumbers(c, xs))
            return std::nullopt;
        cells.push_back(std::move(c));
    }
    if (!seen_header)
        return std::nullopt;
    return cells;
}

std::optional<FleetReport>
CsvReporter::parseReport(const std::string &text)
{
    auto cells = parse(text);
    if (!cells)
        return std::nullopt;

    FleetReport report;
    bool seen_meta = false;
    for (const std::string &line : split(text, '\n')) {
        const std::string row = trim(line);
        if (row.empty() || row[0] != '#')
            continue;
        // The meta comment is the '#' line carrying key=value tokens.
        for (const std::string &token : split(row.substr(1), ' ')) {
            const size_t eq = token.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            long long n = 0;
            if (key == "base_seed") {
                uint64_t seed = 0;
                if (!parseUint64(value, seed))
                    return std::nullopt;
                report.baseSeed = seed;
                seen_meta = true;
            } else if (key == "seed_mode") {
                report.seedMode = value;
            } else if (key == "warm" && parseInt64(value, n)) {
                report.warmDrivers = n != 0;
            } else if (key == "scenario") {
                report.scenario = value;
            } else if (key == "population") {
                report.population = value;
            } else if (key == "users" && parseInt64(value, n)) {
                report.users = static_cast<int>(n);
            } else if (key == "sessions" && parseInt64(value, n)) {
                report.sessions = static_cast<int>(n);
            } else if (key == "events" && parseInt64(value, n)) {
                report.events = static_cast<long>(n);
            }
        }
    }
    if (!seen_meta)
        return std::nullopt;

    // CSV rows carry no axis lists; reconstruct them in first-seen
    // order (write() emits cells sorted by key, so identical sweeps
    // reconstruct identical axes).
    const auto note = [](std::vector<std::string> &axis,
                         const std::string &value) {
        for (const std::string &x : axis)
            if (x == value)
                return;
        axis.push_back(value);
    };
    for (const CellSummary &c : *cells) {
        note(report.devices, c.device);
        note(report.apps, c.app);
        note(report.schedulers, c.scheduler);
    }
    report.cells = std::move(*cells);
    return report;
}

} // namespace pes
