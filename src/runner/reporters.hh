/**
 * @file
 * Serialization sinks for fleet results.
 *
 * A FleetReport is the serializable view of one fleet run: the sweep
 * axes plus the per-cell summaries. JsonReporter and CsvReporter write
 * it; both can parse their own output back (used by tests and by
 * downstream tooling that post-processes sweeps). Output is fully
 * deterministic — no timestamps, hostnames, or wall-clock values ever
 * enter a report, so two runs of the same fleet are byte-identical
 * regardless of thread count or machine.
 */

#ifndef PES_RUNNER_REPORTERS_HH
#define PES_RUNNER_REPORTERS_HH

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "runner/metrics_aggregator.hh"

namespace pes {

struct FleetConfig;

/** Serializable view of one fleet run. */
struct FleetReport
{
    /** Report-format version (bumped on schema changes).
     *  v2: added the "warm" meta flag (driver mode is part of a run's
     *  identity — diffing a warm sweep against a fresh one is
     *  meaningless, so reports must carry it for alignment).
     *  v3: added the "scenario" meta string (stress-family identity,
     *  "<family>@<severity>"; empty for baseline sweeps) — severity
     *  cells of a scenario sweep are different user populations and
     *  must never silently diff against each other or the baseline.
     *  v4: added the "population" meta tag ("<name>#<digest>", empty
     *  for homogeneous sweeps) and the sketch-sourced event-level
     *  p50/p95/p99_latency_ms cell columns. */
    static constexpr int kVersion = 4;

    uint64_t baseSeed = 0;
    /** "fleet" or "evaluation" (see SeedMode). */
    std::string seedMode = "fleet";
    /** Warm per-cell drivers (FleetConfig::warmDrivers). */
    bool warmDrivers = false;
    /** Scenario identity (FleetConfig::scenario; empty = baseline). */
    std::string scenario;
    /** Population identity tag (FleetConfig::populationTag,
     *  "<name>#<digest>"; empty = homogeneous i.i.d. users). */
    std::string population;
    int users = 0;
    int sessions = 0;
    long events = 0;
    std::vector<std::string> devices;
    std::vector<std::string> apps;
    std::vector<std::string> schedulers;
    std::vector<CellSummary> cells;
};

/**
 * The per-cell metric schema shared by the JSON and CSV sinks: JSON key
 * == CSV column == diffable metric name. Exposed so tooling that walks
 * cell metrics generically (report diffing, post-processors) can never
 * drift from the serialized schema.
 */
const std::vector<std::string> &cellMetricNames();

/** The metric values of @p c, in cellMetricNames() order. */
std::vector<double> cellMetricValues(const CellSummary &c);

/**
 * CSV/plain-text spelling of a metric value: finite values share the
 * JSON formatting, non-finite values are the bare strtod-parseable
 * tokens NaN / Infinity / -Infinity (no JSON quoting). Use for any
 * human-readable or CSV sink.
 */
std::string csvNum(double v);

/** Assemble a report from a finished aggregation. */
FleetReport makeFleetReport(const FleetConfig &config,
                            const MetricsAggregator &metrics);

/**
 * JSON sink: one object with a "meta" header and a "cells" array.
 */
class JsonReporter
{
  public:
    /** Write @p report as JSON. */
    static void write(const FleetReport &report, std::ostream &os);

    /** Serialize to a string. */
    static std::string toString(const FleetReport &report);

    /**
     * Parse a report previously produced by write(); nullopt on
     * malformed input. Understands exactly this reporter's schema, not
     * arbitrary JSON.
     */
    static std::optional<FleetReport> parse(const std::string &text);
};

/**
 * CSV sink: one row per cell (meta header carried as '#' comments).
 */
class CsvReporter
{
  public:
    /** Write @p report as CSV. */
    static void write(const FleetReport &report, std::ostream &os);

    /** Serialize to a string. */
    static std::string toString(const FleetReport &report);

    /** Parse the cell rows of a CSV produced by write(). */
    static std::optional<std::vector<CellSummary>>
    parse(const std::string &text);

    /**
     * Parse a full report from a CSV produced by write(): the meta
     * comment line plus the cell rows. CSV carries no explicit axis
     * lists, so devices/apps/schedulers are reconstructed in first-seen
     * cell order (cells are written sorted by key, so two CSVs of the
     * same sweep reconstruct identical axes). nullopt on malformed
     * input.
     */
    static std::optional<FleetReport> parseReport(const std::string &text);
};

} // namespace pes

#endif // PES_RUNNER_REPORTERS_HH
