/**
 * @file
 * Serialization sinks for fleet results.
 *
 * A FleetReport is the serializable view of one fleet run: the sweep
 * axes plus the per-cell summaries. JsonReporter and CsvReporter write
 * it; both can parse their own output back (used by tests and by
 * downstream tooling that post-processes sweeps). Output is fully
 * deterministic — no timestamps, hostnames, or wall-clock values ever
 * enter a report, so two runs of the same fleet are byte-identical
 * regardless of thread count or machine.
 */

#ifndef PES_RUNNER_REPORTERS_HH
#define PES_RUNNER_REPORTERS_HH

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "runner/metrics_aggregator.hh"

namespace pes {

struct FleetConfig;

/** Serializable view of one fleet run. */
struct FleetReport
{
    /** Report-format version (bumped on schema changes). */
    static constexpr int kVersion = 1;

    uint64_t baseSeed = 0;
    /** "fleet" or "evaluation" (see SeedMode). */
    std::string seedMode = "fleet";
    int users = 0;
    int sessions = 0;
    long events = 0;
    std::vector<std::string> devices;
    std::vector<std::string> apps;
    std::vector<std::string> schedulers;
    std::vector<CellSummary> cells;
};

/** Assemble a report from a finished aggregation. */
FleetReport makeFleetReport(const FleetConfig &config,
                            const MetricsAggregator &metrics);

/**
 * JSON sink: one object with a "meta" header and a "cells" array.
 */
class JsonReporter
{
  public:
    /** Write @p report as JSON. */
    static void write(const FleetReport &report, std::ostream &os);

    /** Serialize to a string. */
    static std::string toString(const FleetReport &report);

    /**
     * Parse a report previously produced by write(); nullopt on
     * malformed input. Understands exactly this reporter's schema, not
     * arbitrary JSON.
     */
    static std::optional<FleetReport> parse(const std::string &text);
};

/**
 * CSV sink: one row per cell (meta header carried as '#' comments).
 */
class CsvReporter
{
  public:
    /** Write @p report as CSV. */
    static void write(const FleetReport &report, std::ostream &os);

    /** Serialize to a string. */
    static std::string toString(const FleetReport &report);

    /** Parse the cell rows of a CSV produced by write(). */
    static std::optional<std::vector<CellSummary>>
    parse(const std::string &text);
};

} // namespace pes

#endif // PES_RUNNER_REPORTERS_HH
