#include "runner/thread_pool.hh"

#include <algorithm>
#include <exception>

namespace pes {

ThreadPool::ThreadPool(int threads)
{
    const int count = std::max(1, threads);
    workers_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
}

std::vector<std::string>
ThreadPool::errors() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return errors_;
}

void
ThreadPool::workerLoop(int worker)
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                // stopping_ set and nothing left to do.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        // A worker thread must never let an exception escape (that
        // would std::terminate the whole process); capture it as a
        // run-level diagnostic instead and keep draining.
        std::string error;
        try {
            task(worker);
        } catch (const std::exception &e) {
            error = e.what();
        } catch (...) {
            error = "unknown exception";
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!error.empty()) {
                errors_.push_back("worker " + std::to_string(worker) +
                                  ": " + error);
            }
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                drained_.notify_all();
        }
    }
}

void
parallelFor(int n, int threads,
            const std::function<void(int index, int worker)> &fn)
{
    ThreadPool pool(threads);
    for (int i = 0; i < n; ++i)
        pool.submit([i, &fn](int worker) { fn(i, worker); });
    pool.wait();
}

} // namespace pes
