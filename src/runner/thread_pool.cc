#include "runner/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <exception>

namespace pes {

ThreadPool::ThreadPool(int threads, bool instrument)
    : instrument_(instrument)
{
    const int count = std::max(1, threads);
    if (instrument_)
        stats_.workers.resize(static_cast<size_t>(count));
    workers_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    Queued queued;
    queued.fn = std::move(task);
    if (instrument_)
        queued.enqueued = std::chrono::steady_clock::now();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(queued));
        stats_.maxQueueDepth =
            std::max(stats_.maxQueueDepth,
                     static_cast<uint64_t>(queue_.size()));
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
}

std::vector<std::string>
ThreadPool::errors() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return errors_;
}

ThreadPoolStats
ThreadPool::stats() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return stats_;
}

void
ThreadPool::workerLoop(int worker)
{
    using clock = std::chrono::steady_clock;
    const auto elapsedMs = [](clock::time_point since) {
        return std::chrono::duration<double, std::milli>(clock::now() -
                                                         since)
            .count();
    };
    const size_t self = static_cast<size_t>(worker);
    for (;;) {
        Task task;
        double idle_ms = 0.0;
        double queue_wait_ms = 0.0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (instrument_ && (stopping_ || !queue_.empty())) {
                // Work (or shutdown) is already here: no idle wait.
            } else if (instrument_) {
                const auto wait_start = clock::now();
                wake_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                idle_ms = elapsedMs(wait_start);
            } else {
                wake_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
            }
            if (queue_.empty()) {
                // stopping_ set and nothing left to do.
                stats_.idleMs += idle_ms;
                if (instrument_)
                    stats_.workers[self].idleMs += idle_ms;
                return;
            }
            if (instrument_)
                queue_wait_ms = elapsedMs(queue_.front().enqueued);
            task = std::move(queue_.front().fn);
            queue_.pop_front();
            ++inFlight_;
        }
        // A worker thread must never let an exception escape (that
        // would std::terminate the whole process); capture it as a
        // run-level diagnostic instead and keep draining.
        const auto task_start = clock::now();
        std::string error;
        try {
            task(worker);
        } catch (const std::exception &e) {
            error = e.what();
        } catch (...) {
            error = "unknown exception";
        }
        const double busy_ms = instrument_ ? elapsedMs(task_start) : 0.0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!error.empty()) {
                errors_.push_back("worker " + std::to_string(worker) +
                                  ": " + error);
            }
            ++stats_.tasks;
            stats_.busyMs += busy_ms;
            stats_.idleMs += idle_ms;
            stats_.queueWaitMs += queue_wait_ms;
            if (instrument_) {
                ThreadPoolWorkerStats &w = stats_.workers[self];
                ++w.tasks;
                w.busyMs += busy_ms;
                w.idleMs += idle_ms;
                w.queueWaitMs += queue_wait_ms;
            }
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                drained_.notify_all();
        }
    }
}

void
parallelFor(int n, int threads,
            const std::function<void(int index, int worker)> &fn)
{
    ThreadPool pool(threads);
    for (int i = 0; i < n; ++i)
        pool.submit([i, &fn](int worker) { fn(i, worker); });
    pool.wait();
}

} // namespace pes
