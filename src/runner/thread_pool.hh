/**
 * @file
 * Queue-based worker pool for the fleet runner.
 *
 * Plain std::thread + mutex/condvar (no external dependencies). Tasks
 * receive the id of the worker executing them so callers can keep cheap
 * worker-local state (the fleet runner's per-worker trace-generator
 * caches) without locking. The pool makes no ordering promises — fleet
 * determinism comes from writing results into job-indexed slots and
 * aggregating in job order, never from scheduling.
 *
 * A task that throws does NOT terminate the process (the default fate
 * of an exception escaping a std::thread): the pool catches it, records
 * a diagnostic, and keeps draining the queue. Callers collect the
 * diagnostics after wait() via errors() — the fleet runner surfaces
 * them as run-level diagnostics on FleetOutcome.
 */

#ifndef PES_RUNNER_THREAD_POOL_HH
#define PES_RUNNER_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pes {

/**
 * Saturation telemetry of one pool's lifetime (see ThreadPool::stats).
 * Queue depth is tracked unconditionally (one compare under the queue
 * lock); busy/idle wall times only when the pool is instrumented —
 * they cost two clock reads per task and one per wait.
 */
/**
 * One worker's share of the pool's lifetime (scaling attribution).
 * Only populated when the pool is instrumented; queueWaitMs is the
 * summed time the tasks THIS worker executed sat in the queue before
 * being picked up — high values with low busyMs point at dispatch
 * contention rather than slow tasks.
 */
struct ThreadPoolWorkerStats
{
    uint64_t tasks = 0;
    double busyMs = 0.0;
    double idleMs = 0.0;
    double queueWaitMs = 0.0;
};

struct ThreadPoolStats
{
    /** Tasks executed (including ones that threw). */
    uint64_t tasks = 0;
    /** Deepest the task queue ever got. */
    uint64_t maxQueueDepth = 0;
    /** Summed wall time workers spent running tasks (ms). */
    double busyMs = 0.0;
    /** Summed wall time workers spent waiting for work (ms). */
    double idleMs = 0.0;
    /** Summed time tasks sat queued before a worker picked them up (ms). */
    double queueWaitMs = 0.0;
    /** Per-worker breakdown (index = worker id; instrumented pools only). */
    std::vector<ThreadPoolWorkerStats> workers;
};

/**
 * Fixed-size worker pool over a FIFO task queue.
 */
class ThreadPool
{
  public:
    /** Task signature: receives the executing worker's id [0, threads). */
    using Task = std::function<void(int worker)>;

    /**
     * Spawn @p threads workers (clamped to >= 1). @p instrument arms
     * busy/idle wall-time collection for stats().
     */
    explicit ThreadPool(int threads, bool instrument = false);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of workers. */
    int threadCount() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a task. Safe from any thread, including workers. */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Diagnostics of tasks that threw, in completion order ("worker N:
     * what()"). Empty when every task finished cleanly. Call after
     * wait() for a complete picture.
     */
    std::vector<std::string> errors() const;

    /**
     * Lifetime saturation counters so far. Call after wait() for a
     * consistent picture; busy/idle stay 0 unless the pool was
     * constructed with instrument = true.
     */
    ThreadPoolStats stats() const;

  private:
    void workerLoop(int worker);

    /** Queued task plus its enqueue stamp (only read when instrumented). */
    struct Queued
    {
        Task fn;
        std::chrono::steady_clock::time_point enqueued;
    };

    std::vector<std::thread> workers_;
    std::deque<Queued> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable drained_;
    std::vector<std::string> errors_;
    int inFlight_ = 0;
    bool stopping_ = false;
    bool instrument_ = false;
    ThreadPoolStats stats_;
};

/**
 * Run fn(i, worker) for every i in [0, n) on a temporary pool of
 * @p threads workers and block until done.
 */
void parallelFor(int n, int threads,
                 const std::function<void(int index, int worker)> &fn);

} // namespace pes

#endif // PES_RUNNER_THREAD_POOL_HH
