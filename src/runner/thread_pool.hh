/**
 * @file
 * Queue-based worker pool for the fleet runner.
 *
 * Plain std::thread + mutex/condvar (no external dependencies). Tasks
 * receive the id of the worker executing them so callers can keep cheap
 * worker-local state (the fleet runner's per-worker trace-generator
 * caches) without locking. The pool makes no ordering promises — fleet
 * determinism comes from writing results into job-indexed slots and
 * aggregating in job order, never from scheduling.
 *
 * A task that throws does NOT terminate the process (the default fate
 * of an exception escaping a std::thread): the pool catches it, records
 * a diagnostic, and keeps draining the queue. Callers collect the
 * diagnostics after wait() via errors() — the fleet runner surfaces
 * them as run-level diagnostics on FleetOutcome.
 */

#ifndef PES_RUNNER_THREAD_POOL_HH
#define PES_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pes {

/**
 * Saturation telemetry of one pool's lifetime (see ThreadPool::stats).
 * Queue depth is tracked unconditionally (one compare under the queue
 * lock); busy/idle wall times only when the pool is instrumented —
 * they cost two clock reads per task and one per wait.
 */
struct ThreadPoolStats
{
    /** Tasks executed (including ones that threw). */
    uint64_t tasks = 0;
    /** Deepest the task queue ever got. */
    uint64_t maxQueueDepth = 0;
    /** Summed wall time workers spent running tasks (ms). */
    double busyMs = 0.0;
    /** Summed wall time workers spent waiting for work (ms). */
    double idleMs = 0.0;
};

/**
 * Fixed-size worker pool over a FIFO task queue.
 */
class ThreadPool
{
  public:
    /** Task signature: receives the executing worker's id [0, threads). */
    using Task = std::function<void(int worker)>;

    /**
     * Spawn @p threads workers (clamped to >= 1). @p instrument arms
     * busy/idle wall-time collection for stats().
     */
    explicit ThreadPool(int threads, bool instrument = false);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of workers. */
    int threadCount() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a task. Safe from any thread, including workers. */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Diagnostics of tasks that threw, in completion order ("worker N:
     * what()"). Empty when every task finished cleanly. Call after
     * wait() for a complete picture.
     */
    std::vector<std::string> errors() const;

    /**
     * Lifetime saturation counters so far. Call after wait() for a
     * consistent picture; busy/idle stay 0 unless the pool was
     * constructed with instrument = true.
     */
    ThreadPoolStats stats() const;

  private:
    void workerLoop(int worker);

    std::vector<std::thread> workers_;
    std::deque<Task> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable drained_;
    std::vector<std::string> errors_;
    int inFlight_ = 0;
    bool stopping_ = false;
    bool instrument_ = false;
    ThreadPoolStats stats_;
};

/**
 * Run fn(i, worker) for every i in [0, n) on a temporary pool of
 * @p threads workers and block until done.
 */
void parallelFor(int n, int threads,
                 const std::function<void(int index, int worker)> &fn);

} // namespace pes

#endif // PES_RUNNER_THREAD_POOL_HH
