#include "scenario/scenario_family.hh"

#include <cmath>
#include <filesystem>
#include <functional>

#include "corpus/trace_mutator.hh"
#include "util/binary_io.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace pes {

namespace {

/** Integer parameters round to the nearest step of their ramp. */
int
roundedParam(double v)
{
    return static_cast<int>(std::llround(v));
}

/** The spec parameter names each operator accepts. */
const std::vector<std::string> &
paramNamesOf(ScenarioOpKind kind)
{
    static const std::vector<std::string> kTimeScale = {"factor"};
    static const std::vector<std::string> kEventDrop = {"probability"};
    static const std::vector<std::string> kBurst = {"rate", "length"};
    static const std::vector<std::string> kRepeat = {"copies", "gap_ms"};
    static const std::vector<std::string> kJitter = {"magnitude"};
    switch (kind) {
      case ScenarioOpKind::TimeScale:
        return kTimeScale;
      case ScenarioOpKind::EventDrop:
        return kEventDrop;
      case ScenarioOpKind::Burst:
        return kBurst;
      case ScenarioOpKind::Repeat:
        return kRepeat;
      case ScenarioOpKind::Jitter:
        return kJitter;
    }
    static const std::vector<std::string> kNone;
    return kNone;
}

SeverityParam *
paramSlot(ScenarioOp &op, const std::string &name)
{
    if (name == "factor")
        return &op.factor;
    if (name == "probability")
        return &op.probability;
    if (name == "rate")
        return &op.rate;
    if (name == "length")
        return &op.length;
    if (name == "copies")
        return &op.copies;
    if (name == "gap_ms")
        return &op.gapMs;
    if (name == "magnitude")
        return &op.magnitude;
    return nullptr;
}

std::optional<ScenarioOpKind>
opKindByName(const std::string &name)
{
    for (const ScenarioOpKind kind :
         {ScenarioOpKind::TimeScale, ScenarioOpKind::EventDrop,
          ScenarioOpKind::Burst, ScenarioOpKind::Repeat,
          ScenarioOpKind::Jitter}) {
        if (name == scenarioOpName(kind))
            return kind;
    }
    return std::nullopt;
}

/** Range check of one linear parameter over the whole severity
 *  interval: both endpoints must satisfy @p ok (the value at any
 *  severity in [0, 1] lies between them). */
bool
endpointsOk(const SeverityParam &p, const std::function<bool(double)> &ok)
{
    return std::isfinite(p.at0) && std::isfinite(p.at1) && ok(p.at0) &&
        ok(p.at1);
}

} // namespace

const char *
scenarioOpName(ScenarioOpKind kind)
{
    switch (kind) {
      case ScenarioOpKind::TimeScale:
        return "time_scale";
      case ScenarioOpKind::EventDrop:
        return "event_drop";
      case ScenarioOpKind::Burst:
        return "burst";
      case ScenarioOpKind::Repeat:
        return "repeat";
      case ScenarioOpKind::Jitter:
        return "jitter";
    }
    return "unknown";
}

bool
validScenarioName(const std::string &name)
{
    if (name.empty() || name.size() > 64)
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
            c == '_';
        if (!ok)
            return false;
    }
    return true;
}

std::string
scenarioTag(const std::string &family, double severity)
{
    return family + "@" + jsonNum(severity);
}

InteractionTrace
ScenarioFamily::derive(const InteractionTrace &base, double severity,
                       uint64_t mutator_seed) const
{
    panic_if(severity < 0.0 || severity > 1.0,
             "scenario '%s': severity %g outside [0, 1]", name.c_str(),
             severity);
    InteractionTrace out = base;
    // Stage seeds are salted by the family name and the stage index, so
    // two identical stages in one pipeline (or the same operator in two
    // families) never share a mutation stream.
    const uint64_t family_seed =
        hashCombine(mutator_seed, hashString(name.c_str()));
    for (size_t i = 0; i < ops.size(); ++i) {
        const ScenarioOp &op = ops[i];
        const TraceMutator mutator(
            hashCombine(family_seed, static_cast<uint64_t>(i)));
        switch (op.kind) {
          case ScenarioOpKind::TimeScale: {
            const double factor = op.factor.at(severity);
            if (factor != 1.0)
                out = mutator.timeScale(out, factor);
            break;
          }
          case ScenarioOpKind::EventDrop: {
            const double probability = op.probability.at(severity);
            if (probability > 0.0)
                out = mutator.dropEvents(out, probability);
            break;
          }
          case ScenarioOpKind::Burst: {
            const double rate = op.rate.at(severity);
            const int length = roundedParam(op.length.at(severity));
            if (rate > 0.0 && length >= 1)
                out = mutator.injectBursts(out, rate, length);
            break;
          }
          case ScenarioOpKind::Repeat: {
            const int copies = roundedParam(op.copies.at(severity));
            if (copies > 0) {
                const double gap = op.gapMs.at(severity);
                // Splice `copies` extra replays of the current state
                // (linear growth, not doubling).
                const InteractionTrace unit = out;
                for (int k = 0; k < copies; ++k)
                    out = mutator.concatenate(out, unit, gap);
            }
            break;
          }
          case ScenarioOpKind::Jitter: {
            const double magnitude = op.magnitude.at(severity);
            if (magnitude > 0.0)
                out = mutator.jitterWorkloads(out, magnitude);
            break;
          }
        }
    }
    return out;
}

const std::vector<ScenarioFamily> &
scenarioRegistry()
{
    static const std::vector<ScenarioFamily> kFamilies = [] {
        std::vector<ScenarioFamily> families;

        // Frustrated users hammer unresponsive elements: bursts of
        // warm-cache echoes after taps/scrolls, plus mild workload
        // noise (repeated handlers are not perfectly identical).
        ScenarioFamily rage;
        rage.name = "rage_tap_storm";
        rage.description = "frantic repeated taps/scrolls after every "
                           "interaction, warm-cache echo workloads";
        {
            ScenarioOp burst;
            burst.kind = ScenarioOpKind::Burst;
            burst.rate = rampParam(0.0, 0.6);
            burst.length = rampParam(2.0, 6.0);
            rage.ops.push_back(burst);
            ScenarioOp jitter;
            jitter.kind = ScenarioOpKind::Jitter;
            jitter.magnitude = rampParam(0.0, 0.2);
            rage.ops.push_back(jitter);
        }
        families.push_back(std::move(rage));

        // A distracted commuter on flaky input: events vanish, think
        // time stretches, and the workloads that do arrive are noisy.
        ScenarioFamily flaky;
        flaky.name = "flaky_input_commuter";
        flaky.description = "dropped input events, stretched think "
                            "time, noisy per-event workloads";
        {
            ScenarioOp drop;
            drop.kind = ScenarioOpKind::EventDrop;
            drop.probability = rampParam(0.0, 0.35);
            flaky.ops.push_back(drop);
            ScenarioOp stretch;
            stretch.kind = ScenarioOpKind::TimeScale;
            stretch.factor = rampParam(1.0, 1.25);
            flaky.ops.push_back(stretch);
            ScenarioOp jitter;
            jitter.kind = ScenarioOpKind::Jitter;
            jitter.magnitude = rampParam(0.0, 0.3);
            flaky.ops.push_back(jitter);
        }
        families.push_back(std::move(flaky));

        // A hurried user compresses think time toward back-to-back
        // interactions and double-taps impatiently — the proactive
        // window PES schedules into shrinks toward zero.
        ScenarioFamily hurried;
        hurried.name = "hurried_user";
        hurried.description = "compressed think time with impatient "
                              "double-taps";
        {
            ScenarioOp compress;
            compress.kind = ScenarioOpKind::TimeScale;
            compress.factor = rampParam(1.0, 0.35);
            hurried.ops.push_back(compress);
            ScenarioOp burst;
            burst.kind = ScenarioOpKind::Burst;
            burst.rate = rampParam(0.0, 0.25);
            burst.length = rampParam(1.0, 3.0);
            hurried.ops.push_back(burst);
        }
        families.push_back(std::move(hurried));

        // A marathon binge splices the session onto itself with
        // shrinking breaks — cross-session history length and energy
        // accumulation, with a little input flakiness late in the
        // binge.
        ScenarioFamily marathon;
        marathon.name = "marathon_binge";
        marathon.description = "session spliced onto itself with "
                               "shrinking idle gaps";
        {
            ScenarioOp repeat;
            repeat.kind = ScenarioOpKind::Repeat;
            repeat.copies = rampParam(0.0, 3.0);
            repeat.gapMs = rampParam(5000.0, 1500.0);
            marathon.ops.push_back(repeat);
            ScenarioOp drop;
            drop.kind = ScenarioOpKind::EventDrop;
            drop.probability = rampParam(0.0, 0.1);
            marathon.ops.push_back(drop);
        }
        families.push_back(std::move(marathon));

        // Pure Eqn.-1 estimator stress: the timeline is untouched but
        // every workload term is noisy, so measurement history stops
        // predicting the next instance.
        ScenarioFamily chaos;
        chaos.name = "estimator_chaos";
        chaos.description = "unchanged timeline, log-normal workload "
                            "noise on every event";
        {
            ScenarioOp jitter;
            jitter.kind = ScenarioOpKind::Jitter;
            jitter.magnitude = rampParam(0.0, 1.0);
            chaos.ops.push_back(jitter);
        }
        families.push_back(std::move(chaos));

        // The registry must satisfy its own spec rules.
        for (const ScenarioFamily &family : families) {
            std::vector<IntegrityProblem> problems;
            panic_if(!validateScenarioFamily(family, problems),
                     "built-in scenario family '%s' fails validation",
                     family.name.c_str());
        }
        return families;
    }();
    return kFamilies;
}

const ScenarioFamily *
findScenarioFamily(const std::string &name)
{
    for (const ScenarioFamily &family : scenarioRegistry()) {
        if (family.name == name)
            return &family;
    }
    return nullptr;
}

bool
validateScenarioFamily(const ScenarioFamily &family,
                       std::vector<IntegrityProblem> &problems)
{
    const size_t before = problems.size();
    const auto bad = [&](const std::string &message) {
        problems.push_back({IntegrityProblem::Kind::Mismatch,
                            "scenario '" + family.name + "': " + message});
    };
    if (!validScenarioName(family.name)) {
        problems.push_back(
            {IntegrityProblem::Kind::Mismatch,
             "scenario name '" + family.name +
                 "' is not a valid identifier ([a-z0-9_]+, max 64)"});
    }
    if (family.ops.empty())
        bad("a family needs at least one op");
    for (size_t i = 0; i < family.ops.size(); ++i) {
        const ScenarioOp &op = family.ops[i];
        const std::string where =
            "op " + std::to_string(i) + " (" + scenarioOpName(op.kind) +
            ")";
        switch (op.kind) {
          case ScenarioOpKind::TimeScale:
            if (!endpointsOk(op.factor,
                             [](double v) { return v > 0.0; }))
                bad(where + ": factor must stay > 0 across severities");
            break;
          case ScenarioOpKind::EventDrop:
            if (!endpointsOk(op.probability, [](double v) {
                    return v >= 0.0 && v <= 1.0;
                }))
                bad(where + ": probability must stay in [0, 1] across "
                            "severities");
            break;
          case ScenarioOpKind::Burst:
            if (!endpointsOk(op.rate, [](double v) {
                    return v >= 0.0 && v <= 1.0;
                }))
                bad(where +
                    ": rate must stay in [0, 1] across severities");
            if (!endpointsOk(op.length, [](double v) {
                    const int n = roundedParam(v);
                    return n >= 1 && n <= 1000;
                }))
                bad(where + ": length must round into [1, 1000] across "
                            "severities");
            break;
          case ScenarioOpKind::Repeat:
            if (!endpointsOk(op.copies, [](double v) {
                    const int n = roundedParam(v);
                    return n >= 0 && n <= 100;
                }))
                bad(where + ": copies must round into [0, 100] across "
                            "severities");
            if (!endpointsOk(op.gapMs, [](double v) {
                    return v >= 0.0 && v <= 1e9;
                }))
                bad(where + ": gap_ms must stay in [0, 1e9] across "
                            "severities");
            break;
          case ScenarioOpKind::Jitter:
            if (!endpointsOk(op.magnitude, [](double v) {
                    return v >= 0.0 && v <= 1.0;
                }))
                bad(where + ": magnitude must stay in [0, 1] across "
                            "severities");
            break;
        }
    }
    return problems.size() == before;
}

std::optional<ScenarioFamily>
loadScenarioSpec(const std::string &path,
                 std::vector<IntegrityProblem> &problems)
{
    const size_t before = problems.size();
    const auto fail = [&](IntegrityProblem::Kind kind,
                          const std::string &message) {
        problems.push_back({kind, path + ": " + message});
    };

    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        fail(IntegrityProblem::Kind::MissingFile,
             "no such scenario spec file");
        return std::nullopt;
    }
    std::string text, error;
    if (!readFileBytes(path, text, &error)) {
        fail(IntegrityProblem::Kind::Corrupt, error);
        return std::nullopt;
    }
    const auto root = parseJson(text);
    if (!root || root->kind != JsonValue::Kind::Object) {
        fail(IntegrityProblem::Kind::Corrupt,
             "not a JSON object (malformed scenario spec)");
        return std::nullopt;
    }

    const JsonValue *version = root->find("version");
    if (!version || static_cast<int>(version->number()) != 1) {
        fail(IntegrityProblem::Kind::Mismatch,
             "unsupported spec version " +
                 (version ? version->str : std::string("<missing>")) +
                 " (this build reads 1)");
    }

    ScenarioFamily family;
    const JsonValue *name = root->find("name");
    if (!name || name->kind != JsonValue::Kind::String) {
        fail(IntegrityProblem::Kind::Mismatch, "missing \"name\"");
    } else {
        family.name = name->str;
    }
    if (const JsonValue *desc = root->find("description"))
        family.description = desc->str;

    /** A spec parameter: a bare number (constant) or [at0, at1]. */
    const auto parseParam = [&](const JsonValue &v, SeverityParam &out,
                                const std::string &where) {
        if (v.kind == JsonValue::Kind::Number) {
            out = constantParam(v.number());
            return true;
        }
        if (v.kind == JsonValue::Kind::Array && v.arr.size() == 2 &&
            v.arr[0].kind == JsonValue::Kind::Number &&
            v.arr[1].kind == JsonValue::Kind::Number) {
            out = rampParam(v.arr[0].number(), v.arr[1].number());
            return true;
        }
        fail(IntegrityProblem::Kind::Mismatch,
             where + ": parameter must be a number or a two-element "
                     "[at0, at1] ramp");
        return false;
    };

    const JsonValue *ops = root->find("ops");
    if (!ops || ops->kind != JsonValue::Kind::Array) {
        fail(IntegrityProblem::Kind::Mismatch, "missing \"ops\" array");
    } else {
        for (size_t i = 0; i < ops->arr.size(); ++i) {
            const JsonValue &row = ops->arr[i];
            const std::string where = "op " + std::to_string(i);
            if (row.kind != JsonValue::Kind::Object) {
                fail(IntegrityProblem::Kind::Mismatch,
                     where + ": not a JSON object");
                continue;
            }
            const JsonValue *op_name = row.find("op");
            if (!op_name || op_name->kind != JsonValue::Kind::String) {
                fail(IntegrityProblem::Kind::Mismatch,
                     where + ": missing \"op\" name");
                continue;
            }
            const auto kind = opKindByName(op_name->str);
            if (!kind) {
                fail(IntegrityProblem::Kind::Mismatch,
                     where + ": unknown op '" + op_name->str +
                         "' (time_scale, event_drop, burst, repeat, "
                         "jitter)");
                continue;
            }
            ScenarioOp op;
            op.kind = *kind;
            const std::vector<std::string> &allowed = paramNamesOf(*kind);
            for (const auto &[key, value] : row.obj) {
                if (key == "op")
                    continue;
                bool known = false;
                for (const std::string &param : allowed)
                    known |= param == key;
                if (!known) {
                    fail(IntegrityProblem::Kind::Mismatch,
                         where + ": parameter '" + key +
                             "' does not apply to op '" + op_name->str +
                             "'");
                    continue;
                }
                parseParam(value, *paramSlot(op, key),
                           where + " '" + key + "'");
            }
            family.ops.push_back(op);
        }
    }

    if (problems.size() == before)
        validateScenarioFamily(family, problems);
    if (problems.size() != before)
        return std::nullopt;
    return family;
}

} // namespace pes
