/**
 * @file
 * Scenario families: named, severity-parameterized stress pipelines.
 *
 * PES's evaluation scores schedulers at single operating points; its
 * QoS/energy claims only matter if they survive hostile interaction
 * patterns. A ScenarioFamily composes the TraceMutator operators into a
 * deterministic pipeline whose parameters are pure functions of one
 * severity knob in [0, 1]: severity 0 is the unmutated baseline, 1 the
 * family's worst case, and everything between interpolates linearly.
 * Sweeping a family over a severity grid turns "does scheduler X beat
 * scheduler Y?" into a robustness curve instead of a single point.
 *
 * Determinism contract: derive() is a pure function of (input trace,
 * family, severity, mutator seed). All randomness flows through
 * TraceMutator's hashed streams, so the same (family, severity, seed)
 * always yields byte-identical derived traces — scenario sweeps are as
 * reproducible as recorded corpora, at any thread count or shard split.
 *
 * Families come from a built-in registry (rage_tap_storm,
 * flaky_input_commuter, hurried_user, marathon_binge, estimator_chaos)
 * or from JSON spec files (user-defined pipelines over the same
 * operator vocabulary). Spec loading never crashes: every failure is a
 * classified IntegrityProblem (missing file / malformed JSON /
 * unknown op / out-of-range parameter).
 */

#ifndef PES_SCENARIO_SCENARIO_FAMILY_HH
#define PES_SCENARIO_SCENARIO_FAMILY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "util/integrity.hh"

namespace pes {

/** Mutation operators a scenario stage may apply (TraceMutator verbs;
 *  Repeat is self-concatenation). */
enum class ScenarioOpKind
{
    /** TraceMutator::timeScale — compress/stretch think time. */
    TimeScale,
    /** TraceMutator::dropEvents — flaky input. */
    EventDrop,
    /** TraceMutator::injectBursts — rage taps / frantic scrolls. */
    Burst,
    /** TraceMutator::concatenate of the trace with itself — marathon
     *  sessions. */
    Repeat,
    /** TraceMutator::jitterWorkloads — Eqn.-1 estimator stress. */
    Jitter,
};

/** Stable spec spelling ("time_scale", "event_drop", ...). */
const char *scenarioOpName(ScenarioOpKind kind);

/**
 * One scalar operator parameter as a function of severity: the value
 * interpolates linearly from at0 (severity 0) to at1 (severity 1).
 * A constant parameter has at0 == at1.
 */
struct SeverityParam
{
    double at0 = 0.0;
    double at1 = 0.0;

    /** The value at @p severity (severity in [0, 1]). */
    double at(double severity) const
    {
        return at0 + (at1 - at0) * severity;
    }
};

/** A constant-across-severity parameter. */
inline SeverityParam constantParam(double v) { return {v, v}; }

/** A parameter ramping from @p at0 to @p at1. */
inline SeverityParam rampParam(double at0, double at1)
{
    return {at0, at1};
}

/**
 * One stage of a scenario pipeline. Only the fields its kind reads are
 * meaningful; the rest keep their identity defaults. Stages that are
 * identity at the evaluated severity (factor 1, probability/rate/
 * magnitude 0, zero copies) are skipped entirely, so severity 0 of a
 * well-formed family reproduces the input trace byte-for-byte.
 */
struct ScenarioOp
{
    ScenarioOpKind kind = ScenarioOpKind::TimeScale;
    /** TimeScale: arrival-time factor (> 0). */
    SeverityParam factor = constantParam(1.0);
    /** EventDrop: per-event drop probability in [0, 1]. */
    SeverityParam probability = constantParam(0.0);
    /** Burst: per-anchor injection rate in [0, 1]. */
    SeverityParam rate = constantParam(0.0);
    /** Burst: echoes per triggered anchor (>= 1, rounded). */
    SeverityParam length = constantParam(1.0);
    /** Repeat: extra spliced copies of the session (>= 0, rounded). */
    SeverityParam copies = constantParam(0.0);
    /** Repeat: idle gap between spliced copies (ms, >= 0). */
    SeverityParam gapMs = constantParam(4000.0);
    /** Jitter: workload-noise magnitude in [0, 1]. */
    SeverityParam magnitude = constantParam(0.0);
};

/**
 * A named stress family: a deterministic pipeline of mutation stages.
 */
struct ScenarioFamily
{
    /** Identifier ([a-z0-9_]+): carried into sweep specs, store
     *  manifests and report meta as "<name>@<severity>". */
    std::string name;
    /** One-line human description (--list-families). */
    std::string description;
    /** Pipeline stages, applied in order. */
    std::vector<ScenarioOp> ops;

    /**
     * Derive the stressed variant of @p base at @p severity (in [0, 1];
     * panics outside). Pure and deterministic in (base, *this,
     * severity, mutator_seed); severity 0 returns @p base unchanged.
     */
    InteractionTrace derive(const InteractionTrace &base, double severity,
                            uint64_t mutator_seed) const;
};

/** Default mutation-stream seed of scenario sweeps. */
constexpr uint64_t kDefaultScenarioSeed = 0x5ce9a110u;

/** Is @p name a legal family identifier ([a-z0-9_]+, <= 64 chars)? */
bool validScenarioName(const std::string &name);

/** The canonical scenario tag of (family, severity): "<name>@<sev>"
 *  with the severity spelled via the deterministic float formatter. */
std::string scenarioTag(const std::string &family, double severity);

/**
 * The built-in stress families. Each is a plausible hostile user shape
 * the paper's fixed synthesis never produces.
 */
const std::vector<ScenarioFamily> &scenarioRegistry();

/** Registry lookup by name; nullptr when unknown. */
const ScenarioFamily *findScenarioFamily(const std::string &name);

/**
 * Validate @p family structurally: legal name, at least one stage, and
 * every stage's parameters inside their operator's legal range over the
 * WHOLE severity interval (linear parameters: both endpoints checked).
 * Appends one classified Mismatch per finding; true when clean. Both
 * the spec loader and the registry self-check run through this.
 */
bool validateScenarioFamily(const ScenarioFamily &family,
                            std::vector<IntegrityProblem> &problems);

/**
 * Load a user-defined family from a JSON spec file:
 *
 *   {
 *     "version": 1,
 *     "name": "angry_commuter",
 *     "description": "optional free text",
 *     "ops": [
 *       {"op": "event_drop", "probability": [0, 0.4]},
 *       {"op": "burst", "rate": [0, 0.5], "length": [1, 5]},
 *       {"op": "jitter", "magnitude": 0.3}
 *     ]
 *   }
 *
 * Parameters are a number (constant) or a two-element [at0, at1] ramp.
 * All failures are classified into @p problems (MissingFile / Corrupt
 * for unreadable or malformed JSON / Mismatch for unknown ops, unknown
 * or out-of-range parameters) and yield nullopt — never a crash.
 */
std::optional<ScenarioFamily>
loadScenarioSpec(const std::string &path,
                 std::vector<IntegrityProblem> &problems);

} // namespace pes

#endif // PES_SCENARIO_SCENARIO_FAMILY_HH
