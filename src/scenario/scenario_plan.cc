#include "scenario/scenario_plan.hh"

#include <algorithm>

#include "util/json.hh"
#include "util/strings.hh"

namespace pes {

std::vector<ScenarioCell>
ScenarioPlan::expand(const FleetConfig &base) const
{
    std::vector<ScenarioCell> cells;
    cells.reserve(severities.size());
    for (const double severity : severities) {
        ScenarioCell cell;
        cell.severity = severity;
        cell.severityTag = jsonNum(severity);
        cell.scenario = scenarioTag(family.name, severity);
        cell.config = base;
        cell.config.scenario = cell.scenario;
        cell.config.resultStore = nullptr;
        cell.config.resume = false;
        // A shared external cache is keyed on (device, app, userSeed)
        // with no severity component, and hits bypass the loader where
        // the transform runs — one cell's stressed traces would replay
        // verbatim in every other cell. Each cell builds its own cache.
        cell.config.traceCache = nullptr;
        // The transform captures the family BY VALUE: a cell config
        // must stay runnable after the plan goes out of scope. It is a
        // pure function of the input trace, so cache re-materialization
        // after eviction reproduces identical bytes.
        const ScenarioFamily family_copy = family;
        const double sev = severity;
        const uint64_t seed = mutatorSeed;
        cell.config.traceTransform =
            [family_copy, sev, seed](const InteractionTrace &trace) {
                return family_copy.derive(trace, sev, seed);
            };
        cells.push_back(std::move(cell));
    }
    return cells;
}

std::optional<ScenarioPlan>
makeScenarioPlan(const ScenarioFamily &family,
                 const std::vector<double> &severities,
                 uint64_t mutator_seed,
                 std::vector<IntegrityProblem> &problems)
{
    const size_t before = problems.size();
    validateScenarioFamily(family, problems);

    const auto bad = [&](const std::string &message) {
        problems.push_back({IntegrityProblem::Kind::Mismatch,
                            "severity grid: " + message});
    };
    std::vector<double> grid = severities;
    if (grid.empty())
        bad("at least one severity is required");
    for (const double s : grid) {
        if (!(s >= 0.0 && s <= 1.0))
            bad("severity " + jsonNum(s) + " outside [0, 1]");
    }
    std::sort(grid.begin(), grid.end());
    for (size_t i = 1; i < grid.size(); ++i) {
        if (grid[i] == grid[i - 1])
            bad("duplicate severity " + jsonNum(grid[i]));
    }
    if (problems.size() != before)
        return std::nullopt;

    ScenarioPlan plan;
    plan.family = family;
    plan.severities = std::move(grid);
    plan.mutatorSeed = mutator_seed;
    return plan;
}

std::vector<double>
parseSeverityList(const std::string &spec,
                  std::vector<IntegrityProblem> &problems)
{
    std::vector<double> severities;
    for (const std::string &raw : split(spec, ',')) {
        const std::string token = trim(raw);
        if (token.empty())
            continue;
        double v = 0.0;
        if (!parseDouble(token, v)) {
            problems.push_back({IntegrityProblem::Kind::Mismatch,
                                "severity grid: bad value '" + token +
                                    "'"});
            continue;
        }
        severities.push_back(v);
    }
    return severities;
}

} // namespace pes
