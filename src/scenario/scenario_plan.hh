/**
 * @file
 * Scenario plans: (family x severity grid) -> runnable fleet sweeps.
 *
 * A ScenarioPlan expands one stress family over a canonical severity
 * grid into per-severity ScenarioCells. Each cell is a complete
 * FleetConfig — the base sweep's axes with (a) the scenario identity
 * string ("<family>@<severity>") stamped into the config, so the
 * sweep's ResultStore manifest and reports refuse cross-scenario
 * mixing, and (b) a traceTransform hook that derives the family's
 * stressed variant of every synthesized (or corpus-loaded) trace.
 *
 * Derived traces ride the existing FleetRunner/TraceCache path
 * unchanged: the transform runs inside the cache's deterministic
 * loader, so eviction re-materializes byte-identical stressed traces
 * and reports stay bit-exact for any thread count, shard split, or
 * kill/resume boundary.
 */

#ifndef PES_SCENARIO_SCENARIO_PLAN_HH
#define PES_SCENARIO_SCENARIO_PLAN_HH

#include <string>
#include <vector>

#include "runner/fleet_config.hh"
#include "scenario/scenario_family.hh"

namespace pes {

/** One severity point of a scenario sweep, ready to run. */
struct ScenarioCell
{
    /** Severity in [0, 1]. */
    double severity = 0.0;
    /** Canonical severity spelling (deterministic float format) —
     *  also the store-subdirectory suffix ("sev-<tag>"). */
    std::string severityTag;
    /** Full scenario identity: "<family>@<severityTag>". */
    std::string scenario;
    /** The base sweep with scenario + traceTransform armed. */
    FleetConfig config;
};

/**
 * A validated (family, severity grid, mutation seed) triple.
 */
struct ScenarioPlan
{
    ScenarioFamily family;
    /** Ascending, deduplicated severities in [0, 1]. */
    std::vector<double> severities;
    /** Mutation-stream seed shared by every cell. */
    uint64_t mutatorSeed = kDefaultScenarioSeed;

    /**
     * Expand against @p base (axes, users, seeds, threads, cache and
     * persistence knobs are inherited). Per-run pointers that must not
     * be shared across cells (resultStore) are cleared — the caller
     * attaches one store per cell.
     */
    std::vector<ScenarioCell> expand(const FleetConfig &base) const;
};

/**
 * Validate and canonicalize a scenario plan: the family must pass
 * validateScenarioFamily, severities must be non-empty, each in
 * [0, 1], and (after ascending sort) free of duplicates. All failures
 * append classified Mismatch problems and yield nullopt.
 */
std::optional<ScenarioPlan>
makeScenarioPlan(const ScenarioFamily &family,
                 const std::vector<double> &severities,
                 uint64_t mutator_seed,
                 std::vector<IntegrityProblem> &problems);

/**
 * Parse a comma-separated severity list ("0,0.25,0.5,1"). Appends
 * classified Mismatch problems for unparseable or out-of-range values.
 */
std::vector<double>
parseSeverityList(const std::string &spec,
                  std::vector<IntegrityProblem> &problems);

} // namespace pes

#endif // PES_SCENARIO_SCENARIO_PLAN_HH
