#include "sim/classifier.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pes {

const char *
eventCategoryName(EventCategory category)
{
    switch (category) {
      case EventCategory::TypeI:
        return "Type I";
      case EventCategory::TypeII:
        return "Type II";
      case EventCategory::TypeIII:
        return "Type III";
      case EventCategory::TypeIV:
        return "Type IV";
    }
    panic("eventCategoryName: invalid category");
}

int
CategoryDistribution::total() const
{
    int sum = 0;
    for (int c : counts)
        sum += c;
    return sum;
}

double
CategoryDistribution::fraction(EventCategory category) const
{
    const int sum = total();
    if (sum == 0)
        return 0.0;
    return static_cast<double>(
               counts[static_cast<size_t>(category)]) /
        static_cast<double>(sum);
}

void
CategoryDistribution::merge(const CategoryDistribution &other)
{
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
}

EventClassifier::EventClassifier(const AcmpPlatform &platform,
                                 const PowerModel &power,
                                 double vsync_rate_hz)
    : platform_(&platform), power_(&power), latencyModel_(platform),
      vsync_(vsync_rate_hz)
{
}

bool
EventClassifier::isolatedMeets(const TraceEvent &event,
                               int config_index) const
{
    const TimeMs latency = latencyModel_.latencyAt(event.totalWork(),
                                                   config_index);
    const TimeMs displayed = vsync_.nextVsyncAt(event.arrival + latency);
    return displayed - event.arrival <= event.qosTarget() + 1e-9;
}

int
EventClassifier::minimalIsolatedConfig(const TraceEvent &event) const
{
    int best = -1;
    EnergyMj best_energy = 0.0;
    for (int j = 0; j < platform_->numConfigs(); ++j) {
        if (!isolatedMeets(event, j))
            continue;
        const EnergyMj energy = energyOf(
            power_->busyPowerAt(j),
            latencyModel_.latencyAt(event.totalWork(), j));
        if (best == -1 || energy < best_energy) {
            best = j;
            best_energy = energy;
        }
    }
    return best;
}

EventCategory
EventClassifier::classify(const TraceEvent &event,
                          const EventRecord &record) const
{
    const int minimal = minimalIsolatedConfig(event);
    if (record.violated())
        return minimal == -1 ? EventCategory::TypeI : EventCategory::TypeII;

    if (minimal == -1) {
        // Met QoS although no isolated configuration could have: only
        // possible with pre-arrival work; benign from the reactive
        // scheduler's perspective.
        return EventCategory::TypeIV;
    }

    // Met the deadline: did it need more energy than the isolated
    // minimum (interference forced over-provisioning)?
    const EnergyMj minimal_energy = energyOf(
        power_->busyPowerAt(minimal),
        latencyModel_.latencyAt(event.totalWork(), minimal));
    if (record.busyEnergy > minimal_energy * 1.05 + 1e-9)
        return EventCategory::TypeIII;
    return EventCategory::TypeIV;
}

CategoryDistribution
EventClassifier::classifyRun(const InteractionTrace &trace,
                             const SimResult &result) const
{
    panic_if(trace.events.size() != result.events.size(),
             "classifyRun: trace/result size mismatch");
    CategoryDistribution dist;
    for (size_t i = 0; i < trace.events.size(); ++i) {
        const EventCategory cat =
            classify(trace.events[i], result.events[i]);
        ++dist.counts[static_cast<size_t>(cat)];
    }
    return dist;
}

} // namespace pes
