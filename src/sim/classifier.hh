/**
 * @file
 * Event Type I-IV classification (paper Sec. 4.3, Fig. 3).
 *
 * Classifies each event of a (reactive) scheduling run by comparing what
 * happened against what an isolated execution could have achieved:
 *
 *   Type I   - misses QoS even at the highest configuration in isolation
 *              (inherently heavy).
 *   Type II  - would meet QoS in isolation, missed it at runtime
 *              (interference victim).
 *   Type III - met QoS, but on a higher-performance configuration than an
 *              isolated execution would have needed (energy wasted due to
 *              interference).
 *   Type IV  - met QoS on the minimal configuration (benign).
 *
 * "In isolation" means: execution starts at the event's arrival with the
 * full QoS budget and no queueing delay, using the event's true workload.
 */

#ifndef PES_SIM_CLASSIFIER_HH
#define PES_SIM_CLASSIFIER_HH

#include <array>
#include <vector>

#include "hw/dvfs_model.hh"
#include "hw/power_model.hh"
#include "sim/sim_types.hh"
#include "trace/trace.hh"
#include "web/vsync.hh"

namespace pes {

/** The four event categories of Sec. 4.3. */
enum class EventCategory
{
    TypeI = 0,
    TypeII,
    TypeIII,
    TypeIV,
};

/** Number of categories. */
constexpr int kNumEventCategories = 4;

/** Category name ("Type I", ...). */
const char *eventCategoryName(EventCategory category);

/** Per-category event counts of one or more runs. */
struct CategoryDistribution
{
    std::array<int, kNumEventCategories> counts{};

    /** Total events classified. */
    int total() const;
    /** Fraction of events in @p category. */
    double fraction(EventCategory category) const;
    /** Merge another distribution into this one. */
    void merge(const CategoryDistribution &other);
};

/**
 * Classifies events of a completed run.
 */
class EventClassifier
{
  public:
    EventClassifier(const AcmpPlatform &platform, const PowerModel &power,
                    double vsync_rate_hz = 60.0);

    /** Category of one event given its run record and true workload. */
    EventCategory classify(const TraceEvent &event,
                           const EventRecord &record) const;

    /** Distribution over all events of a run. */
    CategoryDistribution classifyRun(const InteractionTrace &trace,
                                     const SimResult &result) const;

    /**
     * Cheapest configuration index whose isolated execution (arrival
     * start, full budget, VSync-aligned display) meets the event's QoS;
     * -1 when even the fastest configuration misses (Type I workload).
     */
    int minimalIsolatedConfig(const TraceEvent &event) const;

  private:
    /** True when cfg meets the deadline for an isolated execution. */
    bool isolatedMeets(const TraceEvent &event, int config_index) const;

    const AcmpPlatform *platform_;
    const PowerModel *power_;
    DvfsLatencyModel latencyModel_;
    VsyncClock vsync_;
};

} // namespace pes

#endif // PES_SIM_CLASSIFIER_HH
