#include "sim/metrics.hh"

#include <algorithm>

namespace pes {

void
ResultSet::add(SimResult result)
{
    results_.push_back(std::move(result));
}

std::vector<std::string>
ResultSet::apps() const
{
    std::vector<std::string> out;
    for (const SimResult &r : results_) {
        if (std::find(out.begin(), out.end(), r.appName) == out.end())
            out.push_back(r.appName);
    }
    return out;
}

std::vector<std::string>
ResultSet::schedulers() const
{
    std::vector<std::string> out;
    for (const SimResult &r : results_) {
        if (std::find(out.begin(), out.end(), r.schedulerName) == out.end())
            out.push_back(r.schedulerName);
    }
    return out;
}

GroupSummary
ResultSet::summarizeMatching(const std::string &app,
                             const std::string &scheduler) const
{
    GroupSummary s;
    s.appName = app;
    s.schedulerName = scheduler;

    EnergyMj energy_sum = 0.0;
    double latency_sum = 0.0;
    int violations = 0;
    int predictions = 0;
    int correct = 0;
    int mispredictions = 0;
    TimeMs waste_ms = 0.0;
    EnergyMj waste_mj = 0.0;
    double queue_sum = 0.0;

    for (const SimResult &r : results_) {
        if (!app.empty() && r.appName != app)
            continue;
        if (r.schedulerName != scheduler)
            continue;
        ++s.traces;
        energy_sum += r.totalEnergy;
        queue_sum += r.avgQueueLength;
        for (const EventRecord &e : r.events) {
            ++s.events;
            latency_sum += e.latency();
            violations += e.violated() ? 1 : 0;
        }
        predictions += r.predictionsMade;
        correct += r.predictionsCorrect;
        mispredictions += r.mispredictions;
        waste_ms += r.mispredictWasteMs;
        waste_mj += r.wasteEnergy - r.endOfRunWasteMj;
    }

    if (s.traces == 0)
        return s;
    s.meanEnergy = energy_sum / s.traces;
    s.avgQueueLength = queue_sum / s.traces;
    if (s.events > 0) {
        s.violationRate =
            static_cast<double>(violations) / s.events;
        s.meanLatency = latency_sum / s.events;
        s.wastePerEventMs = waste_ms / s.events;
    }
    if (predictions > 0) {
        s.predictionAccuracy =
            static_cast<double>(correct) / predictions;
    }
    if (mispredictions > 0) {
        s.wastePerMispredictMs = waste_ms / mispredictions;
        s.wastePerMispredictMj = waste_mj / mispredictions;
    }
    return s;
}

GroupSummary
ResultSet::summarize(const std::string &app,
                     const std::string &scheduler) const
{
    return summarizeMatching(app, scheduler);
}

GroupSummary
ResultSet::summarizeScheduler(const std::string &scheduler) const
{
    return summarizeMatching(std::string(), scheduler);
}

double
ResultSet::normalizedEnergy(const std::string &app,
                            const std::string &scheduler,
                            const std::string &baseline) const
{
    const GroupSummary target = summarize(app, scheduler);
    const GroupSummary base = summarize(app, baseline);
    if (target.traces == 0 || base.traces == 0 || base.meanEnergy <= 0.0)
        return 1.0;
    return target.meanEnergy / base.meanEnergy;
}

double
ResultSet::meanNormalizedEnergy(const std::vector<std::string> &apps,
                                const std::string &scheduler,
                                const std::string &baseline) const
{
    if (apps.empty())
        return 1.0;
    double sum = 0.0;
    for (const std::string &app : apps)
        sum += normalizedEnergy(app, scheduler, baseline);
    return sum / static_cast<double>(apps.size());
}

} // namespace pes
