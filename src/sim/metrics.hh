/**
 * @file
 * Aggregation of simulation results across traces, apps and schedulers.
 *
 * The paper reports per-application averages over three evaluation traces
 * (Sec. 6.1) and normalizes energy to the Interactive governor (Fig. 11).
 * ResultSet provides exactly those groupings.
 */

#ifndef PES_SIM_METRICS_HH
#define PES_SIM_METRICS_HH

#include <string>
#include <vector>

#include "sim/sim_types.hh"

namespace pes {

/** Summary of one (app, scheduler) group. */
struct GroupSummary
{
    std::string appName;
    std::string schedulerName;
    int traces = 0;
    int events = 0;
    /** Mean per-trace total energy (mJ). */
    EnergyMj meanEnergy = 0.0;
    /** Event-weighted QoS violation rate. */
    double violationRate = 0.0;
    /** Event-weighted mean latency (ms). */
    TimeMs meanLatency = 0.0;
    /** Prediction accuracy over all predictions of the group. */
    double predictionAccuracy = 0.0;
    /** Mean waste per misprediction (ms); 0 when no mispredictions. */
    TimeMs wastePerMispredictMs = 0.0;
    /** Mean waste energy per misprediction (mJ). */
    EnergyMj wastePerMispredictMj = 0.0;
    /** Amortized waste across all events (ms/event). */
    TimeMs wastePerEventMs = 0.0;
    /** Mean event-queue length. */
    double avgQueueLength = 0.0;
};

/**
 * Collection of SimResults with grouping helpers.
 */
class ResultSet
{
  public:
    /** Add one run. */
    void add(SimResult result);

    /** All results. */
    const std::vector<SimResult> &results() const { return results_; }

    /** Move all results out, leaving the set empty. */
    std::vector<SimResult> takeAll()
    {
        std::vector<SimResult> out = std::move(results_);
        results_.clear();
        return out;
    }

    /** Distinct app names, in insertion order. */
    std::vector<std::string> apps() const;

    /** Distinct scheduler names, in insertion order. */
    std::vector<std::string> schedulers() const;

    /** Summary over all runs of (app, scheduler). */
    GroupSummary summarize(const std::string &app,
                           const std::string &scheduler) const;

    /** Summary pooling every app for one scheduler. */
    GroupSummary summarizeScheduler(const std::string &scheduler) const;

    /**
     * Mean energy of (app, scheduler) normalized to
     * (app, baseline_scheduler); 1.0 when either group is empty.
     */
    double normalizedEnergy(const std::string &app,
                            const std::string &scheduler,
                            const std::string &baseline) const;

    /**
     * Average of per-app normalized energies for a scheduler (the
     * "avg" bars of Fig. 11), over the given apps.
     */
    double meanNormalizedEnergy(const std::vector<std::string> &apps,
                                const std::string &scheduler,
                                const std::string &baseline) const;

  private:
    GroupSummary
    summarizeMatching(const std::string &app,
                      const std::string &scheduler) const;

    std::vector<SimResult> results_;
};

} // namespace pes

#endif // PES_SIM_METRICS_HH
