#include "sim/runtime_simulator.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace pes {

namespace {
constexpr TimeMs kTimeEps = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();
} // namespace

// ------------------------- SimulatorApi -------------------------

TimeMs SimulatorApi::now() const { return sim_->now_; }
const AcmpPlatform &SimulatorApi::platform() const
{
    return *sim_->platform_;
}
const PowerModel &SimulatorApi::powerModel() const { return *sim_->power_; }
const DvfsLatencyModel &SimulatorApi::latencyModel() const
{
    return sim_->latencyModel_;
}
const VsyncClock &SimulatorApi::vsync() const { return sim_->vsync_; }
const WebAppSession &SimulatorApi::session() const
{
    return *sim_->session_;
}
const EventLoop &SimulatorApi::pendingQueue() const { return sim_->queue_; }
AcmpConfig SimulatorApi::currentConfig() const
{
    return sim_->currentConfig_;
}
int SimulatorApi::arrivedCount() const { return sim_->arrivedCount_; }
int SimulatorApi::nextUnservedPosition() const
{
    return sim_->servedCount_;
}

const TraceEvent &
SimulatorApi::arrivedEvent(int trace_index) const
{
    panic_if(trace_index < 0 || trace_index >= sim_->arrivedCount_,
             "arrivedEvent(%d): event has not arrived (arrived=%d); "
             "schedulers may not look into the future",
             trace_index, sim_->arrivedCount_);
    return sim_->trace_->events[static_cast<size_t>(trace_index)];
}

const InteractionTrace &
SimulatorApi::fullTrace() const
{
    return *sim_->trace_;
}

void
SimulatorApi::serveFromSpeculation(int trace_index, uint64_t work_id)
{
    sim_->apiServeFromSpeculation(trace_index, work_id);
}
void
SimulatorApi::adoptInFlight(int trace_index)
{
    sim_->apiAdoptInFlight(trace_index);
}
void SimulatorApi::abortInFlight() { sim_->apiAbortInFlight(); }
AcmpConfig
SimulatorApi::boostInFlightToMeet(TimeMs deadline)
{
    return sim_->apiBoostInFlightToMeet(deadline);
}
void
SimulatorApi::discardSpeculativeWork(uint64_t work_id)
{
    sim_->apiDiscardSpeculativeWork(work_id);
}
void
SimulatorApi::chargeSchedulerOverhead(TimeMs duration)
{
    sim_->apiChargeSchedulerOverhead(duration);
}
void
SimulatorApi::recordPfbSample(int pfb_size, bool after_squash)
{
    sim_->apiRecordPfbSample(pfb_size, after_squash);
}
void
SimulatorApi::notePrediction(bool correct)
{
    sim_->apiNotePrediction(correct);
}
void
SimulatorApi::notePredictionRound(int degree)
{
    sim_->apiNotePredictionRound(degree);
}
void SimulatorApi::noteFallback() { sim_->apiNoteFallback(); }

// ------------------------- RuntimeSimulator -------------------------

RuntimeSimulator::RuntimeSimulator(const AcmpPlatform &platform,
                                   const PowerModel &power,
                                   const WebApp &app, SimConfig config)
    : platform_(&platform), power_(&power), app_(&app), config_(config),
      latencyModel_(platform), vsync_(config.vsyncRateHz),
      currentConfig_(platform.minConfig())
{
}

void
RuntimeSimulator::reset(const InteractionTrace &trace,
                        SchedulerDriver &driver)
{
    trace_ = &trace;
    driver_ = &driver;
    // Reuse the session's DOM copies instead of re-copying every page.
    if (session_)
        session_->reset();
    else
        session_.emplace(*app_);
    queue_.clear();
    meter_.reset();
    now_ = 0.0;
    arrivedCount_ = 0;
    servedCount_ = 0;
    currentConfig_ = platform_->minConfig();
    exec_.reset();
    nextWorkId_ = 1;
    specFrames_.clear();
    segmentArena_.clear();
    busyIntervals_.clear();
    lastDisplay_ = 0.0;

    statsViolations_ = 0;
    statsLatencySum_ = 0.0;
    statsMaxLatency_ = 0.0;
    statsLatencies_.clear();

    // Rebuild result_ keeping the vectors' allocated storage.
    std::vector<EventRecord> events = std::move(result_.events);
    std::vector<PfbSample> pfb = std::move(result_.pfbTrace);
    std::vector<int> degrees = std::move(result_.predictionDegrees);
    events.clear();
    pfb.clear();
    degrees.clear();
    result_ = SimResult{};
    result_.events = std::move(events);
    result_.pfbTrace = std::move(pfb);
    result_.predictionDegrees = std::move(degrees);
    if (statsOnly_)
        return;

    result_.schedulerName = driver.name();
    result_.appName = trace.appName;
    result_.events.assign(trace.events.size(), EventRecord{});
    for (size_t i = 0; i < trace.events.size(); ++i) {
        EventRecord &rec = result_.events[i];
        rec.traceIndex = static_cast<int>(i);
        rec.type = trace.events[i].type;
        rec.arrival = trace.events[i].arrival;
        rec.qosTarget = trace.events[i].qosTarget();
    }
}

SimResult
RuntimeSimulator::run(const InteractionTrace &trace,
                      SchedulerDriver &driver)
{
    panic_if(trace.events.empty(), "RuntimeSimulator: empty trace");
    statsOnly_ = false;
    reset(trace, driver);
    replay();
    return finalize();
}

SessionStats
RuntimeSimulator::runStats(const InteractionTrace &trace,
                           SchedulerDriver &driver)
{
    panic_if(trace.events.empty(), "RuntimeSimulator: empty trace");
    statsOnly_ = true;
    reset(trace, driver);
    replay();
    return finalizeStats();
}

void
RuntimeSimulator::replay()
{
    SchedulerDriver &driver = *driver_;
    SimulatorApi api(*this);
    driver.begin(api);

    const InteractionTrace &trace = *trace_;
    const int total = static_cast<int>(trace.events.size());
    while (servedCount_ < total) {
        // 1. Deliver any due arrival (one per iteration).
        if (arrivedCount_ < total &&
            trace.events[static_cast<size_t>(arrivedCount_)].arrival <=
                now_ + kTimeEps) {
            deliverArrival();
            continue;
        }
        const TimeMs t_arr = arrivedCount_ < total
            ? trace.events[static_cast<size_t>(arrivedCount_)].arrival
            : kInf;
        const TimeMs t_tick = nextTickTime();

        if (exec_) {
            const TimeMs t_fin = finishEstimate();
            const TimeMs t_next = std::min({t_fin, t_arr, t_tick});
            advanceBusy(t_next);
            if (t_fin <= t_arr + kTimeEps && t_fin <= t_tick + kTimeEps) {
                completeExec();
            } else if (t_tick < t_arr - kTimeEps) {
                fireTick();
            }
            // arrivals handled at the loop head
        } else {
            const auto item = driver.nextWork(api);
            if (item) {
                startExec(*item);
                continue;
            }
            const TimeMs t_next = std::min(t_arr, t_tick);
            panic_if(!std::isfinite(t_next),
                     "scheduler deadlock: idle, %zu queued events, no "
                     "arrivals or ticks pending", queue_.length());
            advanceIdle(t_next);
            if (t_tick < t_arr - kTimeEps)
                fireTick();
        }
    }
}

void
RuntimeSimulator::deliverArrival()
{
    const int idx = arrivedCount_;
    const TraceEvent &e = trace_->events[static_cast<size_t>(idx)];
    // Jump the clock to the arrival instant when idle-skipping landed
    // slightly before it.
    if (e.arrival > now_)
        advanceIdle(e.arrival);
    ++arrivedCount_;
    queue_.push({idx, e.arrival});
    SimulatorApi api(*this);
    driver_->onArrival(api, idx);
}

Workload
RuntimeSimulator::resolveTruth(const WorkItem &item, bool &matched) const
{
    matched = false;
    if (item.kind == WorkItem::Kind::Real) {
        matched = true;
        return trace_->events[static_cast<size_t>(item.traceIndex)]
            .totalWork();
    }

    const int pos = item.targetPosition;
    if (pos >= 0 && pos < static_cast<int>(trace_->events.size())) {
        const TraceEvent &actual =
            trace_->events[static_cast<size_t>(pos)];
        bool match = actual.type == item.predicted.type;
        if (config_.matchPolicy == MatchPolicy::Strict) {
            match = match && actual.node == item.predicted.node &&
                actual.pageId == item.predicted.pageId;
        }
        if (match) {
            matched = true;
            return actual.totalWork();
        }
    }

    // Mispredicted (or beyond-session) speculation: the frame computed is
    // for an event that never happens. Sample a plausible workload from
    // the predicted handler's cost model, deterministically.
    const PredictedEvent &pred = item.predicted;
    const int page = std::clamp(pred.pageId, 0, app_->numPages() - 1);
    const DomTree &dom = app_->dom(page);
    const HandlerSpec *handler = nullptr;
    if (pred.node >= 0 && pred.node < static_cast<NodeId>(dom.size()))
        handler = dom.node(pred.node).handlerFor(pred.type);

    Rng rng(hashCombine(config_.specNoiseSeed,
                        hashCombine(static_cast<uint64_t>(pos),
                                    (static_cast<uint64_t>(pred.node) << 8) |
                                        static_cast<uint64_t>(pred.type))));
    RenderPipeline pipeline;
    if (handler) {
        const Workload callback = handler->medianWork.scaled(
            rng.lognormal(1.0, handler->workSigma));
        const Workload render =
            pipeline.frameWork(dom.size(), handler->dirtyNodes,
                               config_.renderScale *
                                   handler->renderCostScale)
                .total()
                .scaled(rng.lognormal(1.0, handler->workSigma * 0.7));
        return callback + render;
    }
    // No such handler (stale prediction): a minimal no-op frame.
    return pipeline.frameWork(dom.size(), 1, config_.renderScale).total();
}

void
RuntimeSimulator::startExec(const WorkItem &item)
{
    panic_if(exec_.has_value(), "startExec while already executing");
    if (item.kind == WorkItem::Kind::Real) {
        const auto front = queue_.front();
        panic_if(!front, "Real work item with an empty pending queue");
        panic_if(front->traceIndex != item.traceIndex,
                 "FIFO violation: dispatching event %d but queue head "
                 "is %d", item.traceIndex, front->traceIndex);
    } else {
        panic_if(item.targetPosition < servedCount_,
                 "speculative work for already-served position %d",
                 item.targetPosition);
        // Count commit-gated network requests (Sec. 5.3).
        const int page =
            std::clamp(item.predicted.pageId, 0, app_->numPages() - 1);
        const DomTree &dom = app_->dom(page);
        if (item.predicted.node >= 0 &&
            item.predicted.node < static_cast<NodeId>(dom.size())) {
            const HandlerSpec *h =
                dom.node(item.predicted.node).handlerFor(
                    item.predicted.type);
            if (h && h->issuesNetworkRequest)
                ++result_.suppressedNetworkRequests;
        }
    }

    ExecState exec;
    exec.item = item;
    exec.workId = nextWorkId_++;
    exec.segFirst = static_cast<uint32_t>(segmentArena_.size());
    exec.truth = resolveTruth(item, exec.truthMatched);
    exec.switchRemaining = platform_->switchCost(currentConfig_,
                                                 item.config);
    exec.startTime = now_ + exec.switchRemaining;
    currentConfig_ = item.config;
    exec_ = std::move(exec);
}

TimeMs
RuntimeSimulator::finishEstimate() const
{
    const TimeMs remaining = exec_->remainingFrac *
        latencyModel_.latency(exec_->truth, currentConfig_);
    return now_ + exec_->switchRemaining + remaining;
}

void
RuntimeSimulator::advanceBusy(TimeMs until)
{
    panic_if(!exec_, "advanceBusy without an executing item");
    TimeMs t = now_;
    const PowerMw other_idle = power_->idlePower(
        currentConfig_.core == CoreType::Big ? CoreType::Little
                                             : CoreType::Big);

    // Switch/migration overhead first.
    if (exec_->switchRemaining > 0.0 && until > t) {
        const TimeMs sw = std::min(exec_->switchRemaining, until - t);
        meter_.addSegment(t, t + sw, power_->busyPower(currentConfig_),
                          EnergyTag::Overhead);
        meter_.addSegment(t, t + sw, other_idle, EnergyTag::Idle);
        busyIntervals_.emplace_back(t, t + sw);
        exec_->switchRemaining -= sw;
        t += sw;
    }

    if (until > t && exec_->switchRemaining <= 0.0) {
        const TimeMs dt = until - t;
        const TimeMs latency =
            latencyModel_.latency(exec_->truth, currentConfig_);
        exec_->remainingFrac -= dt / latency;
        const PowerMw busy = power_->busyPower(currentConfig_);
        const uint64_t seg =
            meter_.addSegment(t, t + dt, busy, EnergyTag::Busy);
        meter_.addSegment(t, t + dt, other_idle, EnergyTag::Idle);
        segmentArena_.push_back(seg);
        ++exec_->segCount;
        exec_->busyEnergy += energyOf(busy, dt);
        exec_->execMs += dt;
        busyIntervals_.emplace_back(t, t + dt);
        t = until;
    }
    now_ = until;
}

void
RuntimeSimulator::advanceIdle(TimeMs until)
{
    if (until <= now_)
        return;
    meter_.addSegment(now_, until, power_->platformIdlePower(),
                      EnergyTag::Idle);
    now_ = until;
}

void
RuntimeSimulator::serveEvent(int trace_index, TimeMs frame_ready,
                             int config_index, EnergyMj busy_energy,
                             TimeMs exec_ms, bool speculative)
{
    panic_if(trace_index != servedCount_,
             "out-of-order serve: position %d, expected %d",
             trace_index, servedCount_);
    panic_if(trace_index >= arrivedCount_,
             "serving an event that has not arrived");
    const auto front = queue_.front();
    panic_if(!front || front->traceIndex != trace_index,
             "serve does not match queue head");
    queue_.pop();

    const TraceEvent &e = trace_->events[static_cast<size_t>(trace_index)];
    if (statsOnly_) {
        // Events are served strictly in trace order, so accumulating the
        // latency reduction here reproduces SessionStats::reduce() term
        // for term (same values, same accumulation order).
        EventRecord rec;
        rec.arrival = e.arrival;
        rec.qosTarget = e.qosTarget();
        rec.frameReady = frame_ready;
        rec.displayed =
            vsync_.nextVsyncAt(std::max(e.arrival, frame_ready));
        const double lat = rec.latency();
        statsViolations_ += rec.violated() ? 1 : 0;
        statsLatencySum_ += lat;
        statsLatencies_.push_back(lat);
        statsMaxLatency_ = std::max(statsMaxLatency_, lat);
        lastDisplay_ = std::max(lastDisplay_, rec.displayed);
    } else {
        EventRecord &rec = result_.events[static_cast<size_t>(trace_index)];
        rec.frameReady = frame_ready;
        rec.displayed =
            vsync_.nextVsyncAt(std::max(e.arrival, frame_ready));
        rec.configIndex = config_index;
        rec.busyEnergy = busy_energy;
        rec.execMs = exec_ms;
        rec.servedSpeculatively = speculative;
        lastDisplay_ = std::max(lastDisplay_, rec.displayed);
    }

    // Commit the event's application-state effects.
    session_->commitEvent(e.node, e.type);
    ++servedCount_;
}

void
RuntimeSimulator::completeExec()
{
    panic_if(!exec_, "completeExec without an executing item");
    ExecState exec = std::move(*exec_);
    exec_.reset();

    const int cfg_index = configIndexOfCurrent();
    CompletedWork report;
    report.workId = exec.workId;
    report.item = exec.item;
    report.startTime = exec.startTime;
    report.finishTime = now_;
    report.execMs = exec.execMs;
    report.finalConfig = currentConfig_;

    if (exec.item.kind == WorkItem::Kind::Real) {
        serveEvent(exec.item.traceIndex, now_, cfg_index, exec.busyEnergy,
                   exec.execMs, false);
    } else if (exec.adopted) {
        serveEvent(exec.adoptedIndex, now_, cfg_index, exec.busyEnergy,
                   exec.execMs, true);
    } else {
        SpecFrame frame;
        frame.item = exec.item;
        frame.ready = now_;
        frame.execMs = exec.execMs;
        frame.busyEnergy = exec.busyEnergy;
        frame.segFirst = exec.segFirst;
        frame.segCount = exec.segCount;
        frame.configIndex = cfg_index;
        frame.truthMatched = exec.truthMatched;
        specFrames_.emplace_back(exec.workId, frame);
    }

    SimulatorApi api(*this);
    driver_->onWorkFinished(api, report);
}

TimeMs
RuntimeSimulator::nextTickTime() const
{
    const TimeMs interval = driver_->sampleIntervalMs();
    if (interval <= 0.0)
        return kInf;
    const double steps = std::floor(now_ / interval + kTimeEps);
    return (steps + 1.0) * interval;
}

double
RuntimeSimulator::busyFraction(TimeMs window) const
{
    if (window <= 0.0)
        return 0.0;
    const TimeMs from = now_ - window;
    TimeMs busy = 0.0;
    for (auto it = busyIntervals_.rbegin(); it != busyIntervals_.rend();
         ++it) {
        if (it->second <= from)
            break;
        busy += std::min(it->second, now_) - std::max(it->first, from);
    }
    // Intervals are flushed up to now_ before every tick, so no
    // in-flight chunk is unaccounted here.
    return std::clamp(busy / window, 0.0, 1.0);
}

void
RuntimeSimulator::fireTick()
{
    ExecutionStatus status;
    status.executing = exec_.has_value();
    status.utilization = busyFraction(driver_->sampleIntervalMs());
    status.config = currentConfig_;

    SimulatorApi api(*this);
    const auto next = driver_->onSampleTick(api, status);
    if (!next || (*next == currentConfig_))
        return;

    if (exec_) {
        exec_->switchRemaining +=
            platform_->switchCost(currentConfig_, *next);
    }
    // Idle switches complete within the idle gap; their ~0.1 ms energy is
    // below the meter's resolution and is not charged.
    currentConfig_ = *next;
}

// ------------------------- api verbs -------------------------

void
RuntimeSimulator::apiServeFromSpeculation(int trace_index, uint64_t work_id)
{
    auto it = specFrames_.begin();
    while (it != specFrames_.end() && it->first != work_id)
        ++it;
    panic_if(it == specFrames_.end(),
             "serveFromSpeculation: unknown work id %llu",
             static_cast<unsigned long long>(work_id));
    const SpecFrame frame = it->second;
    specFrames_.erase(it);
    serveEvent(trace_index, frame.ready, frame.configIndex,
               frame.busyEnergy, frame.execMs, true);
}

void
RuntimeSimulator::apiAdoptInFlight(int trace_index)
{
    panic_if(!exec_, "adoptInFlight with no executing item");
    panic_if(exec_->item.kind != WorkItem::Kind::Speculative,
             "adoptInFlight: current item is not speculative");
    panic_if(exec_->adopted, "adoptInFlight: already adopted");
    exec_->adopted = true;
    exec_->adoptedIndex = trace_index;
}

void
RuntimeSimulator::apiAbortInFlight()
{
    panic_if(!exec_, "abortInFlight with no executing item");
    panic_if(exec_->item.kind != WorkItem::Kind::Speculative,
             "abortInFlight: current item is not speculative");
    for (uint32_t i = 0; i < exec_->segCount; ++i)
        meter_.retag(segmentArena_[exec_->segFirst + i],
                     EnergyTag::SpeculativeWaste);
    result_.mispredictWasteMs += exec_->execMs;
    exec_.reset();
}

AcmpConfig
RuntimeSimulator::apiBoostInFlightToMeet(TimeMs deadline)
{
    panic_if(!exec_, "boostInFlightToMeet with no executing item");
    panic_if(exec_->item.kind != WorkItem::Kind::Speculative,
             "boostInFlightToMeet: current item is not speculative");

    int best = -1;
    EnergyMj best_energy = 0.0;
    for (int j = 0; j < platform_->numConfigs(); ++j) {
        const AcmpConfig &cfg = platform_->configAt(j);
        const TimeMs switch_cost =
            platform_->switchCost(currentConfig_, cfg);
        const TimeMs remaining = exec_->remainingFrac *
            latencyModel_.latency(exec_->truth, cfg);
        const TimeMs finish = now_ + exec_->switchRemaining +
            switch_cost + remaining;
        if (finish > deadline)
            continue;
        const EnergyMj energy =
            energyOf(power_->busyPowerAt(j), remaining);
        if (best == -1 || energy < best_energy) {
            best = j;
            best_energy = energy;
        }
    }
    const AcmpConfig chosen =
        best >= 0 ? platform_->configAt(best) : platform_->maxConfig();
    if (!(chosen == currentConfig_)) {
        exec_->switchRemaining +=
            platform_->switchCost(currentConfig_, chosen);
        currentConfig_ = chosen;
    }
    return chosen;
}

void
RuntimeSimulator::apiDiscardSpeculativeWork(uint64_t work_id)
{
    auto it = specFrames_.begin();
    while (it != specFrames_.end() && it->first != work_id)
        ++it;
    panic_if(it == specFrames_.end(),
             "discardSpeculativeWork: unknown work id %llu",
             static_cast<unsigned long long>(work_id));
    const SpecFrame &frame = it->second;
    for (uint32_t i = 0; i < frame.segCount; ++i)
        meter_.retag(segmentArena_[frame.segFirst + i],
                     EnergyTag::SpeculativeWaste);
    result_.mispredictWasteMs += frame.execMs;
    specFrames_.erase(it);
}

void
RuntimeSimulator::apiChargeSchedulerOverhead(TimeMs duration)
{
    if (duration <= 0.0)
        return;
    panic_if(exec_.has_value(),
             "scheduler overhead can only be charged while idle");
    meter_.addSegment(now_, now_ + duration,
                      power_->busyPower(currentConfig_),
                      EnergyTag::Overhead);
    busyIntervals_.emplace_back(now_, now_ + duration);
    now_ += duration;
}

void
RuntimeSimulator::apiRecordPfbSample(int pfb_size, bool after_squash)
{
    if (!config_.recordPfb || statsOnly_)
        return;
    result_.pfbTrace.push_back(
        {now_, servedCount_, pfb_size, after_squash});
}

void
RuntimeSimulator::apiNotePrediction(bool correct)
{
    ++result_.predictionsMade;
    if (correct) {
        ++result_.predictionsCorrect;
    } else {
        ++result_.mispredictions;
    }
}

void
RuntimeSimulator::apiNotePredictionRound(int degree)
{
    if (statsOnly_)
        return;
    result_.predictionDegrees.push_back(degree);
}

void
RuntimeSimulator::apiNoteFallback()
{
    result_.fellBackToReactive = true;
}

int
RuntimeSimulator::configIndexOfCurrent()
{
    // completeExec asks for the same configuration run after run; a
    // one-entry memo removes the platform's linear config scan from the
    // hot path.
    if (cachedConfigIndex_ < 0 || !(cachedConfig_ == currentConfig_)) {
        cachedConfigIndex_ = platform_->configIndex(currentConfig_);
        cachedConfig_ = currentConfig_;
    }
    return cachedConfigIndex_;
}

void
RuntimeSimulator::retagEndOfRunWaste()
{
    // A speculative item still in flight when the session ends (a
    // prediction past the last real event) is wasted work, as are any
    // leftover frames — but the session simply ended, so this is kept
    // separate from mispredict waste.
    if (exec_ && exec_->item.kind == WorkItem::Kind::Speculative &&
        !exec_->adopted) {
        for (uint32_t i = 0; i < exec_->segCount; ++i) {
            const uint64_t seg = segmentArena_[exec_->segFirst + i];
            result_.endOfRunWasteMj += meter_.energyOfSegment(seg);
            meter_.retag(seg, EnergyTag::SpeculativeWaste);
        }
        result_.endOfRunWasteMs += exec_->execMs;
        exec_.reset();
    }
    for (auto &[id, frame] : specFrames_) {
        for (uint32_t i = 0; i < frame.segCount; ++i) {
            const uint64_t seg = segmentArena_[frame.segFirst + i];
            result_.endOfRunWasteMj += meter_.energyOfSegment(seg);
            meter_.retag(seg, EnergyTag::SpeculativeWaste);
        }
        result_.endOfRunWasteMs += frame.execMs;
    }
    specFrames_.clear();
}

SimResult
RuntimeSimulator::finalize()
{
    retagEndOfRunWaste();

    result_.duration = std::max(now_, lastDisplay_);
    // Close the idle gap between the last activity and the duration end.
    const EnergyTotals totals = meter_.tagTotals();
    result_.totalEnergy = totals.total;
    result_.busyEnergy = totals.of(EnergyTag::Busy);
    result_.idleEnergy = totals.of(EnergyTag::Idle);
    result_.overheadEnergy = totals.of(EnergyTag::Overhead);
    result_.wasteEnergy = totals.of(EnergyTag::SpeculativeWaste);
    result_.avgQueueLength = queue_.lengthStats().mean();
    return std::move(result_);
}

SessionStats
RuntimeSimulator::finalizeStats()
{
    retagEndOfRunWaste();

    SessionStats s;
    s.events = static_cast<int>(trace_->events.size());
    s.violations = statsViolations_;
    s.maxLatencyMs = statsMaxLatency_;
    if (s.events > 0) {
        s.meanLatencyMs = statsLatencySum_ / s.events;
        SampleSet latencies;
        for (double lat : statsLatencies_) {
            latencies.add(lat);
            s.latencySketch.add(lat);
        }
        s.p95LatencyMs = latencies.percentile(95.0);
    }
    const EnergyTotals totals = meter_.tagTotals();
    s.totalEnergyMj = totals.total;
    s.busyEnergyMj = totals.of(EnergyTag::Busy);
    s.idleEnergyMj = totals.of(EnergyTag::Idle);
    s.overheadEnergyMj = totals.of(EnergyTag::Overhead);
    s.wasteEnergyMj = totals.of(EnergyTag::SpeculativeWaste);
    s.durationMs = std::max(now_, lastDisplay_);
    s.predictionsMade = result_.predictionsMade;
    s.predictionsCorrect = result_.predictionsCorrect;
    s.mispredictions = result_.mispredictions;
    s.mispredictWasteMs = result_.mispredictWasteMs;
    s.avgQueueLength = queue_.lengthStats().mean();
    s.fellBackToReactive = result_.fellBackToReactive;
    return s;
}

} // namespace pes
