/**
 * @file
 * Discrete-event replay of an interaction trace under a scheduler.
 *
 * The simulator owns all ground truth (true per-instance workloads, future
 * arrivals) and time/energy accounting; the plugged SchedulerDriver only
 * decides. Executed work progresses under the Eqn.-1 latency model at the
 * driver-chosen configurations, with DVFS-switch and migration costs, a
 * 60 Hz display, FIFO main-thread dispatch, and speculative execution with
 * commit/squash semantics (Sec. 5.4).
 *
 * Energy is integrated the way the paper measures it: the active cluster's
 * busy power plus the inactive cluster's idle power while executing, both
 * clusters idle otherwise; DVFS/migration transitions and scheduler
 * compute are tagged Overhead, squashed speculative work is re-tagged as
 * mispredict waste.
 */

#ifndef PES_SIM_RUNTIME_SIMULATOR_HH
#define PES_SIM_RUNTIME_SIMULATOR_HH

#include <optional>
#include <unordered_map>

#include "hw/energy_meter.hh"
#include "hw/estimator.hh"
#include "sim/scheduler_driver.hh"
#include "sim/simulator_api.hh"
#include "web/render_pipeline.hh"

namespace pes {

/** Replay options. */
struct SimConfig
{
    /** Display refresh rate. */
    double vsyncRateHz = 60.0;
    /** Record the PFB occupancy trace (Fig. 9). */
    bool recordPfb = true;
    /**
     * Matching rule deciding whether a speculative frame's ground-truth
     * workload is the actual event's (the paper's type-level accuracy
     * granularity) or a freshly sampled plausible workload.
     */
    MatchPolicy matchPolicy = MatchPolicy::TypeLevel;
    /** Render-scale of the app (for sampling mispredicted workloads). */
    double renderScale = 1.0;
    /** Seed for sampling mispredicted speculative workloads. */
    uint64_t specNoiseSeed = 0x5eed;
};

/**
 * The replay engine. One instance can run many traces (state is reset per
 * run).
 */
class RuntimeSimulator
{
  public:
    RuntimeSimulator(const AcmpPlatform &platform, const PowerModel &power,
                     const WebApp &app, SimConfig config = SimConfig{});

    /** Replay @p trace under @p driver and return the result. */
    SimResult run(const InteractionTrace &trace, SchedulerDriver &driver);

  private:
    friend class SimulatorApi;

    struct ExecState
    {
        WorkItem item;
        uint64_t workId = 0;
        Workload truth;
        double remainingFrac = 1.0;
        TimeMs switchRemaining = 0.0;
        TimeMs startTime = 0.0;
        TimeMs execMs = 0.0;
        EnergyMj busyEnergy = 0.0;
        std::vector<uint64_t> busySegments;
        bool adopted = false;
        int adoptedIndex = -1;
        bool truthMatched = false;
    };

    struct SpecFrame
    {
        WorkItem item;
        TimeMs ready = 0.0;
        TimeMs execMs = 0.0;
        EnergyMj busyEnergy = 0.0;
        std::vector<uint64_t> busySegments;
        int configIndex = -1;
        bool truthMatched = false;
    };

    // ---- main loop pieces ----
    void reset(const InteractionTrace &trace, SchedulerDriver &driver);
    void deliverArrival();
    void startExec(const WorkItem &item);
    void advanceBusy(TimeMs until);
    void advanceIdle(TimeMs until);
    void completeExec();
    void fireTick();
    TimeMs finishEstimate() const;
    TimeMs nextTickTime() const;
    double busyFraction(TimeMs window) const;
    void serveEvent(int trace_index, TimeMs frame_ready, int config_index,
                    EnergyMj busy_energy, TimeMs exec_ms, bool speculative);
    Workload resolveTruth(const WorkItem &item, bool &matched) const;
    SimResult finalize();

    // ---- SimulatorApi backend (see simulator_api.hh) ----
    void apiServeFromSpeculation(int trace_index, uint64_t work_id);
    void apiAdoptInFlight(int trace_index);
    void apiAbortInFlight();
    AcmpConfig apiBoostInFlightToMeet(TimeMs deadline);
    void apiDiscardSpeculativeWork(uint64_t work_id);
    void apiChargeSchedulerOverhead(TimeMs duration);
    void apiRecordPfbSample(int pfb_size, bool after_squash);
    void apiNotePrediction(bool correct);
    void apiNotePredictionRound(int degree);
    void apiNoteFallback();

    // ---- fixed collaborators ----
    const AcmpPlatform *platform_;
    const PowerModel *power_;
    const WebApp *app_;
    SimConfig config_;
    DvfsLatencyModel latencyModel_;
    VsyncClock vsync_;

    // ---- per-run state ----
    const InteractionTrace *trace_ = nullptr;
    SchedulerDriver *driver_ = nullptr;
    std::optional<WebAppSession> session_;
    EventLoop queue_;
    EnergyMeter meter_;
    TimeMs now_ = 0.0;
    int arrivedCount_ = 0;
    int servedCount_ = 0;
    AcmpConfig currentConfig_;
    std::optional<ExecState> exec_;
    uint64_t nextWorkId_ = 1;
    std::unordered_map<uint64_t, SpecFrame> specFrames_;
    std::vector<std::pair<TimeMs, TimeMs>> busyIntervals_;
    SimResult result_;
    TimeMs lastDisplay_ = 0.0;
};

} // namespace pes

#endif // PES_SIM_RUNTIME_SIMULATOR_HH
