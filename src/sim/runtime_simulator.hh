/**
 * @file
 * Discrete-event replay of an interaction trace under a scheduler.
 *
 * The simulator owns all ground truth (true per-instance workloads, future
 * arrivals) and time/energy accounting; the plugged SchedulerDriver only
 * decides. Executed work progresses under the Eqn.-1 latency model at the
 * driver-chosen configurations, with DVFS-switch and migration costs, a
 * 60 Hz display, FIFO main-thread dispatch, and speculative execution with
 * commit/squash semantics (Sec. 5.4).
 *
 * Energy is integrated the way the paper measures it: the active cluster's
 * busy power plus the inactive cluster's idle power while executing, both
 * clusters idle otherwise; DVFS/migration transitions and scheduler
 * compute are tagged Overhead, squashed speculative work is re-tagged as
 * mispredict waste.
 *
 * Hot-path design: one engine instance is meant to replay many sessions.
 * reset() restores pristine state while keeping every allocation (session
 * DOMs, meter segments, the segment arena, event records), so a warmed
 * engine replays a session with near-zero allocator traffic. Per-exec
 * busy-segment lists live as (first, count) slices of a shared append-only
 * arena instead of per-item vectors, and runStats() offers a stats-only
 * fast path that reduces the session straight to SessionStats — the exact
 * same numbers SessionStats::reduce() would produce from the full
 * SimResult — without materializing per-event records.
 */

#ifndef PES_SIM_RUNTIME_SIMULATOR_HH
#define PES_SIM_RUNTIME_SIMULATOR_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "hw/energy_meter.hh"
#include "hw/estimator.hh"
#include "sim/scheduler_driver.hh"
#include "sim/session_stats.hh"
#include "sim/simulator_api.hh"
#include "web/render_pipeline.hh"

namespace pes {

/** Replay options. */
struct SimConfig
{
    /** Display refresh rate. */
    double vsyncRateHz = 60.0;
    /** Record the PFB occupancy trace (Fig. 9). */
    bool recordPfb = true;
    /**
     * Matching rule deciding whether a speculative frame's ground-truth
     * workload is the actual event's (the paper's type-level accuracy
     * granularity) or a freshly sampled plausible workload.
     */
    MatchPolicy matchPolicy = MatchPolicy::TypeLevel;
    /** Render-scale of the app (for sampling mispredicted workloads). */
    double renderScale = 1.0;
    /** Seed for sampling mispredicted speculative workloads. */
    uint64_t specNoiseSeed = 0x5eed;
};

/**
 * The replay engine. One instance can run many traces (state is reset per
 * run).
 */
class RuntimeSimulator
{
  public:
    RuntimeSimulator(const AcmpPlatform &platform, const PowerModel &power,
                     const WebApp &app, SimConfig config = SimConfig{});

    /** Replay @p trace under @p driver and return the result. */
    SimResult run(const InteractionTrace &trace, SchedulerDriver &driver);

    /**
     * Replay @p trace under @p driver and return only the per-session
     * reduction — bit-identical to SessionStats::reduce(run(...)) but
     * without materializing per-event records, PFB samples, or name
     * strings. The fast path for fleet runs that do not retain results.
     */
    SessionStats runStats(const InteractionTrace &trace,
                          SchedulerDriver &driver);

    /** Re-seed mispredicted-workload sampling (per-session fleet seed). */
    void setSpecNoiseSeed(uint64_t seed) { config_.specNoiseSeed = seed; }

  private:
    friend class SimulatorApi;

    struct ExecState
    {
        WorkItem item;
        uint64_t workId = 0;
        Workload truth;
        double remainingFrac = 1.0;
        TimeMs switchRemaining = 0.0;
        TimeMs startTime = 0.0;
        TimeMs execMs = 0.0;
        EnergyMj busyEnergy = 0.0;
        /** Busy meter segments: a slice of segmentArena_. */
        uint32_t segFirst = 0;
        uint32_t segCount = 0;
        bool adopted = false;
        int adoptedIndex = -1;
        bool truthMatched = false;
    };

    struct SpecFrame
    {
        WorkItem item;
        TimeMs ready = 0.0;
        TimeMs execMs = 0.0;
        EnergyMj busyEnergy = 0.0;
        /** Busy meter segments: a slice of segmentArena_. */
        uint32_t segFirst = 0;
        uint32_t segCount = 0;
        int configIndex = -1;
        bool truthMatched = false;
    };

    // ---- main loop pieces ----
    void reset(const InteractionTrace &trace, SchedulerDriver &driver);
    void replay();
    void deliverArrival();
    void startExec(const WorkItem &item);
    void advanceBusy(TimeMs until);
    void advanceIdle(TimeMs until);
    void completeExec();
    void fireTick();
    TimeMs finishEstimate() const;
    TimeMs nextTickTime() const;
    double busyFraction(TimeMs window) const;
    void serveEvent(int trace_index, TimeMs frame_ready, int config_index,
                    EnergyMj busy_energy, TimeMs exec_ms, bool speculative);
    Workload resolveTruth(const WorkItem &item, bool &matched) const;
    int configIndexOfCurrent();
    void retagEndOfRunWaste();
    SimResult finalize();
    SessionStats finalizeStats();

    // ---- SimulatorApi backend (see simulator_api.hh) ----
    void apiServeFromSpeculation(int trace_index, uint64_t work_id);
    void apiAdoptInFlight(int trace_index);
    void apiAbortInFlight();
    AcmpConfig apiBoostInFlightToMeet(TimeMs deadline);
    void apiDiscardSpeculativeWork(uint64_t work_id);
    void apiChargeSchedulerOverhead(TimeMs duration);
    void apiRecordPfbSample(int pfb_size, bool after_squash);
    void apiNotePrediction(bool correct);
    void apiNotePredictionRound(int degree);
    void apiNoteFallback();

    // ---- fixed collaborators ----
    const AcmpPlatform *platform_;
    const PowerModel *power_;
    const WebApp *app_;
    SimConfig config_;
    DvfsLatencyModel latencyModel_;
    VsyncClock vsync_;

    // ---- per-run state ----
    const InteractionTrace *trace_ = nullptr;
    SchedulerDriver *driver_ = nullptr;
    std::optional<WebAppSession> session_;
    EventLoop queue_;
    EnergyMeter meter_;
    TimeMs now_ = 0.0;
    int arrivedCount_ = 0;
    int servedCount_ = 0;
    AcmpConfig currentConfig_;
    std::optional<ExecState> exec_;
    uint64_t nextWorkId_ = 1;
    /** Finished speculative frames in creation order (small: PFB-sized). */
    std::vector<std::pair<uint64_t, SpecFrame>> specFrames_;
    /** Arena of busy-segment ids referenced by ExecState/SpecFrame. */
    std::vector<uint64_t> segmentArena_;
    std::vector<std::pair<TimeMs, TimeMs>> busyIntervals_;
    SimResult result_;
    TimeMs lastDisplay_ = 0.0;

    /** Memoized platform_->configIndex(currentConfig_). */
    int cachedConfigIndex_ = -1;
    AcmpConfig cachedConfig_;

    // ---- stats-only fast path ----
    bool statsOnly_ = false;
    int statsViolations_ = 0;
    double statsLatencySum_ = 0.0;
    double statsMaxLatency_ = 0.0;
    /** Per-event latencies in trace order (percentile input). */
    std::vector<double> statsLatencies_;
};

} // namespace pes

#endif // PES_SIM_RUNTIME_SIMULATOR_HH
