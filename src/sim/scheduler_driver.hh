/**
 * @file
 * The scheduler <-> runtime protocol.
 *
 * A SchedulerDriver is the pluggable policy the RuntimeSimulator consults:
 * it receives arrival notifications, supplies the next work item when the
 * main thread goes idle, and (for governor-style policies) gets periodic
 * sampling ticks it can answer with configuration changes. Speculation is
 * expressed through the same protocol: drivers submit Speculative work
 * items for future arrival positions and, when a real event arrives,
 * direct the simulator to serve it from a finished frame
 * (serveFromSpeculation), adopt the in-flight item (adoptInFlight), or
 * squash (abortInFlight/discardSpeculativeWork).
 *
 * Ground-truth isolation: drivers never see not-yet-arrived trace events
 * or true workloads — they observe only arrivals, their own measurements, and
 * completion reports, exactly the information a real scheduler has. The
 * OracleScheduler deliberately breaks this rule through
 * SimulatorApi::fullTrace(), which exists only for the oracle baseline.
 */

#ifndef PES_SIM_SCHEDULER_DRIVER_HH
#define PES_SIM_SCHEDULER_DRIVER_HH

#include <optional>
#include <string>

#include "sim/sim_types.hh"

namespace pes {

class SimulatorApi;

/**
 * Abstract scheduling policy plugged into the RuntimeSimulator.
 */
class SchedulerDriver
{
  public:
    virtual ~SchedulerDriver() = default;

    /** Human-readable policy name (report key). */
    virtual std::string name() const = 0;

    /** Called once before the replay starts. */
    virtual void begin(SimulatorApi &api) { (void)api; }

    /**
     * A real input event arrived (it is already in the pending queue).
     * Speculative drivers use this hook to match the arrival against the
     * pending-frame buffer and either serve it or squash.
     */
    virtual void onArrival(SimulatorApi &api, int trace_index)
    {
        (void)api;
        (void)trace_index;
    }

    /**
     * The main thread is idle: return the next work item, or nullopt to
     * stay idle until the next arrival or sampling tick.
     */
    virtual std::optional<WorkItem> nextWork(SimulatorApi &api) = 0;

    /**
     * A work item finished executing and produced its frame.
     */
    virtual void onWorkFinished(SimulatorApi &api,
                                const CompletedWork &work)
    {
        (void)api;
        (void)work;
    }

    /**
     * Restore the driver to as-constructed state so a pooled instance can
     * be reused for the next session exactly as if freshly built. Return
     * true when the driver supports this; the default (false) makes the
     * runner construct a fresh driver instead. Drivers that deliberately
     * carry state across sessions (warm-driver mode) are reset by NOT
     * calling this between sessions of the same cell.
     */
    virtual bool resetFresh() { return false; }

    /**
     * Sampling period for onSampleTick; 0 disables ticks.
     */
    virtual TimeMs sampleIntervalMs() const { return 0.0; }

    /**
     * Periodic governor tick. Return a configuration to switch the
     * platform (mid-execution changes are honored), or nullopt.
     */
    virtual std::optional<AcmpConfig>
    onSampleTick(SimulatorApi &api, const ExecutionStatus &status)
    {
        (void)api;
        (void)status;
        return std::nullopt;
    }
};

} // namespace pes

#endif // PES_SIM_SCHEDULER_DRIVER_HH
