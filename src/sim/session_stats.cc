#include "sim/session_stats.hh"

#include <algorithm>

#include "util/stats.hh"

namespace pes {

SessionStats
SessionStats::reduce(const SimResult &result)
{
    SessionStats s;
    s.events = static_cast<int>(result.events.size());
    SampleSet latencies;
    double latency_sum = 0.0;
    for (const EventRecord &e : result.events) {
        s.violations += e.violated() ? 1 : 0;
        const double lat = e.latency();
        latency_sum += lat;
        latencies.add(lat);
        s.latencySketch.add(lat);
        s.maxLatencyMs = std::max(s.maxLatencyMs, lat);
    }
    if (s.events > 0) {
        s.meanLatencyMs = latency_sum / s.events;
        s.p95LatencyMs = latencies.percentile(95.0);
    }
    s.totalEnergyMj = result.totalEnergy;
    s.busyEnergyMj = result.busyEnergy;
    s.idleEnergyMj = result.idleEnergy;
    s.overheadEnergyMj = result.overheadEnergy;
    s.wasteEnergyMj = result.wasteEnergy;
    s.durationMs = result.duration;
    s.predictionsMade = result.predictionsMade;
    s.predictionsCorrect = result.predictionsCorrect;
    s.mispredictions = result.mispredictions;
    s.mispredictWasteMs = result.mispredictWasteMs;
    s.avgQueueLength = result.avgQueueLength;
    s.fellBackToReactive = result.fellBackToReactive;
    return s;
}

} // namespace pes
