/**
 * @file
 * Compact per-session reduction of one simulated session.
 *
 * SessionStats is the unit of record for fleet aggregation: a few dozen
 * scalars reduced from a session, cheap enough to retain for fleets far
 * beyond what keeping raw SimResults allows. It lives in the sim layer so
 * the simulator can produce it directly on the stats-only fast path (no
 * materialized SimResult at all); the classic reduce(SimResult) entry
 * point remains for callers that do hold full results.
 */

#ifndef PES_SIM_SESSION_STATS_HH
#define PES_SIM_SESSION_STATS_HH

#include "sim/sim_types.hh"
#include "util/psketch.hh"

namespace pes {

/** Compact per-session reduction of one simulated session. */
struct SessionStats
{
    int events = 0;
    int violations = 0;
    double totalEnergyMj = 0.0;
    double busyEnergyMj = 0.0;
    double idleEnergyMj = 0.0;
    double overheadEnergyMj = 0.0;
    double wasteEnergyMj = 0.0;
    double durationMs = 0.0;
    /** Event-weighted mean latency within the session. */
    double meanLatencyMs = 0.0;
    double p95LatencyMs = 0.0;
    double maxLatencyMs = 0.0;
    int predictionsMade = 0;
    int predictionsCorrect = 0;
    int mispredictions = 0;
    double mispredictWasteMs = 0.0;
    double avgQueueLength = 0.0;
    bool fellBackToReactive = false;
    /**
     * Per-event latency sketch of the session: merged bin-wise across
     * sessions at reduction, it yields true event-level p50/p95/p99
     * per cell from bounded memory, for fleets of any size. Filled on
     * both the full-result and the stats-only fast path.
     */
    PercentileSketch latencySketch;

    /** Reduce a full simulation result. */
    static SessionStats reduce(const SimResult &result);
};

} // namespace pes

#endif // PES_SIM_SESSION_STATS_HH
