/**
 * @file
 * Shared types of the runtime simulation: work items, per-event records,
 * and whole-run results.
 */

#ifndef PES_SIM_SIM_TYPES_HH
#define PES_SIM_SIM_TYPES_HH

#include <string>
#include <vector>

#include "hw/acmp.hh"
#include "web/dom.hh"
#include "web/event_types.hh"

namespace pes {

/**
 * A predicted future event: what the predictor believes the user will
 * trigger next (type + target in the hypothetical DOM state).
 */
struct PredictedEvent
{
    DomEventType type = DomEventType::Click;
    NodeId node = kInvalidNode;
    int pageId = 0;
    /** Predictor confidence of this single step (sigmoid output). */
    double confidence = 1.0;
};

/** How speculative frames are matched against actual events. */
enum class MatchPolicy
{
    /**
     * Commit when the DOM event type matches (the paper's accuracy metric
     * granularity); the committed frame adopts the actual event's content.
     */
    TypeLevel = 0,
    /** Commit only when both type and target node match. */
    Strict,
};

/**
 * One unit of main-thread work handed to the simulator by a scheduler.
 */
struct WorkItem
{
    enum class Kind { Real = 0, Speculative };

    Kind kind = Kind::Real;
    /** Real work: index of the arrived trace event. */
    int traceIndex = -1;
    /** Speculative work: the arrival position this frame is meant for. */
    int targetPosition = -1;
    /** Speculative work: the predicted event. */
    PredictedEvent predicted;
    /** Execution configuration requested by the scheduler. */
    AcmpConfig config;
};

/**
 * Completion report for a finished work item.
 */
struct CompletedWork
{
    /** Simulator-assigned id (used to discard speculative frames). */
    uint64_t workId = 0;
    WorkItem item;
    /** When execution began (after any switch cost). */
    TimeMs startTime = 0.0;
    /** When the frame was produced. */
    TimeMs finishTime = 0.0;
    /** Pure execution time at the final configuration chain. */
    TimeMs execMs = 0.0;
    /** Configuration the item finished on. */
    AcmpConfig finalConfig;
};

/** Status snapshot passed to governor sampling ticks. */
struct ExecutionStatus
{
    /** True when the main thread is executing a work item. */
    bool executing = false;
    /** Busy fraction of the last sampling window. */
    double utilization = 0.0;
    /** Current configuration. */
    AcmpConfig config;
};

/**
 * Outcome bookkeeping for one input event.
 */
struct EventRecord
{
    int traceIndex = -1;
    DomEventType type = DomEventType::Load;
    TimeMs arrival = 0.0;
    /** When its frame was produced (or the serving frame's ready time). */
    TimeMs frameReady = 0.0;
    /** When the frame became visible (VSync-aligned). */
    TimeMs displayed = 0.0;
    /** QoS target of the event. */
    TimeMs qosTarget = 0.0;
    /** Dense index of the (final) configuration that served the event. */
    int configIndex = -1;
    /** Busy energy of the serving execution (mJ). */
    EnergyMj busyEnergy = 0.0;
    /** Pure execution time of the serving work (ms). */
    TimeMs execMs = 0.0;
    /** Served by a speculative frame generated before arrival finished. */
    bool servedSpeculatively = false;
    /** This arrival squashed the speculation pipeline. */
    bool squashedSpeculation = false;

    /** User-experienced latency (Fig. 1). */
    TimeMs latency() const { return displayed - arrival; }
    /** True when the event missed its QoS target. */
    bool violated() const { return latency() > qosTarget + 1e-9; }
};

/** One sample of Pending Frame Buffer occupancy (paper Fig. 9). */
struct PfbSample
{
    TimeMs time = 0.0;
    /** Arrival position at which the sample was taken. */
    int eventIndex = 0;
    int pfbSize = 0;
    /** True when this sample follows a squash. */
    bool afterSquash = false;
};

/**
 * Result of replaying one trace under one scheduler.
 */
struct SimResult
{
    std::string schedulerName;
    std::string appName;
    std::vector<EventRecord> events;

    EnergyMj totalEnergy = 0.0;
    EnergyMj busyEnergy = 0.0;
    EnergyMj idleEnergy = 0.0;
    EnergyMj overheadEnergy = 0.0;
    /** Energy of squashed speculative work (mispredict waste). */
    EnergyMj wasteEnergy = 0.0;
    /** Wall-clock duration of the replay (ms). */
    TimeMs duration = 0.0;

    /** Predictor bookkeeping (PES only). */
    int predictionsMade = 0;
    int predictionsCorrect = 0;
    int mispredictions = 0;
    /** Execution time of squashed speculative frames (ms). */
    TimeMs mispredictWasteMs = 0.0;
    /** Speculative work left unconsumed when the session ended (ms/mJ);
     *  an artifact of the session simply stopping, kept separate from
     *  mispredict waste. Its energy is included in wasteEnergy. */
    TimeMs endOfRunWasteMs = 0.0;
    EnergyMj endOfRunWasteMj = 0.0;
    /** Prediction-round degrees (events per round). */
    std::vector<int> predictionDegrees;
    /** True when >3 consecutive mispredictions disabled prediction. */
    bool fellBackToReactive = false;
    /** Network requests suppressed while speculative (Sec. 5.3). */
    int suppressedNetworkRequests = 0;

    /** PFB occupancy trace (PES only). */
    std::vector<PfbSample> pfbTrace;

    /** Mean event-queue length sampled at arrivals. */
    double avgQueueLength = 0.0;

    /** Fraction of events that missed their QoS target. */
    double violationRate() const
    {
        if (events.empty())
            return 0.0;
        int violations = 0;
        for (const EventRecord &e : events)
            violations += e.violated() ? 1 : 0;
        return static_cast<double>(violations) /
            static_cast<double>(events.size());
    }

    /** Prediction accuracy (correct / made); 0 when no predictions. */
    double predictionAccuracy() const
    {
        return predictionsMade
            ? static_cast<double>(predictionsCorrect) /
              static_cast<double>(predictionsMade)
            : 0.0;
    }
};

} // namespace pes

#endif // PES_SIM_SIM_TYPES_HH
