/**
 * @file
 * The runtime facilities a SchedulerDriver may use.
 *
 * Thin facade over RuntimeSimulator internals: clock, platform/power
 * models, the committed application session, the pending queue, arrived
 * events, and the speculation-serving verbs. Created and owned by the
 * simulator for the duration of one replay.
 */

#ifndef PES_SIM_SIMULATOR_API_HH
#define PES_SIM_SIMULATOR_API_HH

#include "hw/dvfs_model.hh"
#include "hw/power_model.hh"
#include "sim/sim_types.hh"
#include "trace/trace.hh"
#include "web/event_loop.hh"
#include "web/vsync.hh"
#include "web/web_app.hh"

namespace pes {

class RuntimeSimulator;

/**
 * Driver-facing simulator interface.
 */
class SimulatorApi
{
  public:
    /** Current simulation time. */
    TimeMs now() const;

    /** The ACMP platform. */
    const AcmpPlatform &platform() const;

    /** The power lookup table. */
    const PowerModel &powerModel() const;

    /** The Eqn.-1 latency model over the platform. */
    const DvfsLatencyModel &latencyModel() const;

    /** The VSync clock. */
    const VsyncClock &vsync() const;

    /** Committed application state (what the user currently sees). */
    const WebAppSession &session() const;

    /** The platform configuration currently in effect. */
    AcmpConfig currentConfig() const;

    /** The main-thread pending queue (arrived, unserved events). */
    const EventLoop &pendingQueue() const;

    /** Number of events that have arrived so far. */
    int arrivedCount() const;

    /** First arrival position that has not been served yet. */
    int nextUnservedPosition() const;

    /**
     * An event that has already arrived (panics on not-yet-arrived
     * indices: schedulers cannot look into the future).
     */
    const TraceEvent &arrivedEvent(int trace_index) const;

    /**
     * Whole trace including future events. Only the OracleScheduler may
     * use this; it exists to implement the paper's oracle baseline.
     */
    const InteractionTrace &fullTrace() const;

    // ---- Speculation verbs (see SchedulerDriver) ----

    /**
     * Serve arrived event @p trace_index from a finished speculative
     * frame @p work_id. The display time is the first VSync after
     * max(arrival, frame-ready).
     */
    void serveFromSpeculation(int trace_index, uint64_t work_id);

    /**
     * Serve arrived event @p trace_index with the currently executing
     * speculative item when it finishes.
     */
    void adoptInFlight(int trace_index);

    /** Abort the currently executing speculative item (squash). */
    void abortInFlight();

    /**
     * QoS safety net: re-configure the in-flight speculative item so its
     * frame completes by @p deadline if possible — the cheapest
     * configuration that still meets it, or the fastest one when none
     * does. Models the control unit raising DVFS when the user arrives
     * earlier than speculation assumed. Returns the configuration now in
     * effect.
     */
    AcmpConfig boostInFlightToMeet(TimeMs deadline);

    /**
     * Declare a finished speculative frame squashed: its busy energy is
     * re-tagged as mispredict waste.
     */
    void discardSpeculativeWork(uint64_t work_id);

    /**
     * Charge scheduler compute (prediction + optimization) on the main
     * thread: advances time and adds Overhead-tagged energy.
     */
    void chargeSchedulerOverhead(TimeMs duration);

    // ---- Reporting verbs (fill SimResult bookkeeping) ----

    /** Record a PFB occupancy sample (Fig. 9). */
    void recordPfbSample(int pfb_size, bool after_squash);

    /** Record a validated prediction outcome (Fig. 8 accuracy). */
    void notePrediction(bool correct);

    /** Record the degree of a completed prediction round. */
    void notePredictionRound(int degree);

    /** Record that prediction was disabled (>3 mispredicts, Sec. 5.4). */
    void noteFallback();

  private:
    friend class RuntimeSimulator;
    explicit SimulatorApi(RuntimeSimulator &sim) : sim_(&sim) {}

    RuntimeSimulator *sim_;
};

} // namespace pes

#endif // PES_SIM_SIMULATOR_API_HH
