#include "solver/ilp.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace pes {

namespace {
constexpr double kIntTol = 1e-6;
} // namespace

IntegerProgram::IntegerProgram(int num_vars)
    : numVars_(num_vars),
      objective_(static_cast<size_t>(num_vars), 0.0)
{
    panic_if(num_vars <= 0, "IntegerProgram needs at least one variable");
}

void
IntegerProgram::setObjective(std::vector<double> coeffs)
{
    panic_if(static_cast<int>(coeffs.size()) != numVars_,
             "objective size mismatch");
    objective_ = std::move(coeffs);
}

void
IntegerProgram::addConstraint(std::vector<double> coeffs, Relation relation,
                              double rhs)
{
    panic_if(static_cast<int>(coeffs.size()) != numVars_,
             "constraint size mismatch");
    rows_.push_back({std::move(coeffs), relation, rhs});
}

LpResult
IntegerProgram::solveRelaxation(const std::vector<int> &fixed) const
{
    // LP relaxation: maximize -(c.x) with 0 <= x <= 1 and fixings as
    // equality rows.
    LinearProgram lp(numVars_);
    std::vector<double> neg(objective_.size());
    for (size_t i = 0; i < objective_.size(); ++i)
        neg[i] = -objective_[i];
    lp.setObjective(std::move(neg));
    for (const LpConstraint &row : rows_)
        lp.addConstraint(row.coeffs, row.relation, row.rhs);
    for (int j = 0; j < numVars_; ++j) {
        std::vector<double> unit(static_cast<size_t>(numVars_), 0.0);
        unit[static_cast<size_t>(j)] = 1.0;
        if (fixed[static_cast<size_t>(j)] == -1) {
            lp.addConstraint(std::move(unit), Relation::LessEqual, 1.0);
        } else {
            lp.addConstraint(
                std::move(unit), Relation::Equal,
                static_cast<double>(fixed[static_cast<size_t>(j)]));
        }
    }
    return lp.solve();
}

IlpResult
IntegerProgram::solve() const
{
    IlpResult best;
    best.objective = std::numeric_limits<double>::infinity();

    struct Node
    {
        std::vector<int> fixed;  // -1 free, 0/1 fixed
    };

    std::vector<Node> stack;
    stack.push_back({std::vector<int>(static_cast<size_t>(numVars_), -1)});

    while (!stack.empty()) {
        const Node node = std::move(stack.back());
        stack.pop_back();
        ++best.nodesExplored;

        const LpResult relax = solveRelaxation(node.fixed);
        if (relax.status != LpStatus::Optimal)
            continue;  // infeasible subtree (bounded by construction)
        const double lower_bound = -relax.objective;
        if (best.status == IlpStatus::Optimal &&
            lower_bound >= best.objective - 1e-9) {
            continue;  // cannot improve
        }

        // Find the most fractional variable.
        int branch_var = -1;
        double best_frac = kIntTol;
        for (int j = 0; j < numVars_; ++j) {
            const double v = relax.x[static_cast<size_t>(j)];
            const double frac = std::abs(v - std::round(v));
            if (frac > best_frac) {
                best_frac = frac;
                branch_var = j;
            }
        }

        if (branch_var == -1) {
            // Integral solution.
            if (lower_bound < best.objective - 1e-12) {
                best.status = IlpStatus::Optimal;
                best.objective = lower_bound;
                best.x.assign(static_cast<size_t>(numVars_), 0);
                for (int j = 0; j < numVars_; ++j) {
                    best.x[static_cast<size_t>(j)] = static_cast<int>(
                        std::round(relax.x[static_cast<size_t>(j)]));
                }
            }
            continue;
        }

        for (int value : {1, 0}) {
            Node child = node;
            child.fixed[static_cast<size_t>(branch_var)] = value;
            stack.push_back(std::move(child));
        }
    }

    return best;
}

} // namespace pes
