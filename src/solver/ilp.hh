/**
 * @file
 * Branch-and-bound 0/1 integer linear programming.
 *
 * Generic binary ILP used to cross-validate the specialized scheduling DP
 * solver and available to library users for other formulations. Minimizes
 * c.x over binary x subject to general rows.
 */

#ifndef PES_SOLVER_ILP_HH
#define PES_SOLVER_ILP_HH

#include <vector>

#include "solver/lp.hh"

namespace pes {

/** Outcome of an ILP solve. */
enum class IlpStatus
{
    Optimal = 0,
    Infeasible,
};

/** Solution of a binary ILP. */
struct IlpResult
{
    IlpStatus status = IlpStatus::Infeasible;
    double objective = 0.0;
    std::vector<int> x;
    /** Branch-and-bound nodes explored (diagnostic). */
    long nodesExplored = 0;
};

/**
 * A binary integer program: minimize objective . x, x in {0,1}^n.
 */
class IntegerProgram
{
  public:
    /** @param num_vars Number of binary decision variables. */
    explicit IntegerProgram(int num_vars);

    /** Set the (minimization) objective. */
    void setObjective(std::vector<double> coeffs);

    /** Add a general constraint row. */
    void addConstraint(std::vector<double> coeffs, Relation relation,
                       double rhs);

    /** Number of variables. */
    int numVars() const { return numVars_; }

    /** Solve by LP-relaxation branch and bound (best-bound pruning). */
    IlpResult solve() const;

  private:
    struct Fixing
    {
        int var;
        int value;
    };

    LpResult solveRelaxation(const std::vector<int> &fixed) const;

    int numVars_;
    std::vector<double> objective_;
    std::vector<LpConstraint> rows_;
};

} // namespace pes

#endif // PES_SOLVER_ILP_HH
