#include "solver/lp.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace pes {

namespace {

constexpr double kEps = 1e-9;

/**
 * Dense simplex tableau with Bland's rule.
 *
 * Layout: rows_ x cols_ matrix; the last column is the rhs, the last row
 * is the (negated) objective. Column j < structural+slack+artificial are
 * variables.
 */
class Tableau
{
  public:
    Tableau(size_t rows, size_t cols)
        : rows_(rows), cols_(cols),
          a_(rows * cols, 0.0), basis_(rows - 1, -1)
    {
    }

    double &at(size_t r, size_t c) { return a_[r * cols_ + c]; }
    double at(size_t r, size_t c) const { return a_[r * cols_ + c]; }

    size_t constraintRows() const { return rows_ - 1; }
    size_t objRow() const { return rows_ - 1; }
    size_t rhsCol() const { return cols_ - 1; }

    void setBasis(size_t row, int var) { basis_[row] = var; }
    int basis(size_t row) const { return basis_[row]; }

    /** Run simplex until optimal/unbounded over columns [0, limit). */
    bool
    iterate(size_t var_limit)
    {
        for (;;) {
            // Bland: entering variable = lowest index with positive
            // reduced profit (we maximize; objective row holds -c).
            size_t enter = var_limit;
            for (size_t j = 0; j < var_limit; ++j) {
                if (at(objRow(), j) < -kEps) {
                    enter = j;
                    break;
                }
            }
            if (enter == var_limit)
                return true;  // optimal

            // Ratio test; Bland tie-break on smallest basis variable.
            size_t leave = constraintRows();
            double best_ratio = std::numeric_limits<double>::infinity();
            for (size_t r = 0; r < constraintRows(); ++r) {
                const double coef = at(r, enter);
                if (coef > kEps) {
                    const double ratio = at(r, rhsCol()) / coef;
                    if (ratio < best_ratio - kEps ||
                        (std::abs(ratio - best_ratio) <= kEps &&
                         leave < constraintRows() &&
                         basis_[r] < basis_[leave])) {
                        best_ratio = ratio;
                        leave = r;
                    }
                }
            }
            if (leave == constraintRows())
                return false;  // unbounded

            pivot(leave, enter);
        }
    }

    void
    pivot(size_t prow, size_t pcol)
    {
        const double pval = at(prow, pcol);
        panic_if(std::abs(pval) < kEps, "simplex pivot on ~zero element");
        for (size_t c = 0; c < cols_; ++c)
            at(prow, c) /= pval;
        for (size_t r = 0; r < rows_; ++r) {
            if (r == prow)
                continue;
            const double factor = at(r, pcol);
            if (std::abs(factor) < kEps)
                continue;
            for (size_t c = 0; c < cols_; ++c)
                at(r, c) -= factor * at(prow, c);
        }
        basis_[prow] = static_cast<int>(pcol);
    }

  private:
    size_t rows_;
    size_t cols_;
    std::vector<double> a_;
    std::vector<int> basis_;
};

} // namespace

LinearProgram::LinearProgram(int num_vars)
    : numVars_(num_vars),
      objective_(static_cast<size_t>(num_vars), 0.0)
{
    panic_if(num_vars <= 0, "LinearProgram needs at least one variable");
}

void
LinearProgram::setObjective(std::vector<double> coeffs)
{
    panic_if(static_cast<int>(coeffs.size()) != numVars_,
             "objective size mismatch");
    objective_ = std::move(coeffs);
}

void
LinearProgram::addConstraint(std::vector<double> coeffs, Relation relation,
                             double rhs)
{
    panic_if(static_cast<int>(coeffs.size()) != numVars_,
             "constraint size mismatch");
    rows_.push_back({std::move(coeffs), relation, rhs});
}

LpResult
LinearProgram::solve() const
{
    const size_t m = rows_.size();
    const size_t n = static_cast<size_t>(numVars_);

    // Normalize rows to non-negative rhs.
    std::vector<LpConstraint> rows = rows_;
    for (LpConstraint &row : rows) {
        if (row.rhs < 0.0) {
            for (double &c : row.coeffs)
                c = -c;
            row.rhs = -row.rhs;
            if (row.relation == Relation::LessEqual)
                row.relation = Relation::GreaterEqual;
            else if (row.relation == Relation::GreaterEqual)
                row.relation = Relation::LessEqual;
        }
    }

    // Count slack (<=), surplus (>=), artificial (>= and =) columns.
    size_t slack = 0;
    size_t artificial = 0;
    for (const LpConstraint &row : rows) {
        if (row.relation == Relation::LessEqual) {
            ++slack;
        } else if (row.relation == Relation::GreaterEqual) {
            ++slack;       // surplus
            ++artificial;
        } else {
            ++artificial;
        }
    }

    const size_t total_vars = n + slack + artificial;
    Tableau t(m + 1, total_vars + 1);

    size_t next_slack = n;
    size_t next_art = n + slack;
    std::vector<size_t> art_cols;
    for (size_t r = 0; r < m; ++r) {
        const LpConstraint &row = rows[r];
        for (size_t j = 0; j < n; ++j)
            t.at(r, j) = row.coeffs[j];
        t.at(r, t.rhsCol()) = row.rhs;
        if (row.relation == Relation::LessEqual) {
            t.at(r, next_slack) = 1.0;
            t.setBasis(r, static_cast<int>(next_slack));
            ++next_slack;
        } else if (row.relation == Relation::GreaterEqual) {
            t.at(r, next_slack) = -1.0;
            ++next_slack;
            t.at(r, next_art) = 1.0;
            t.setBasis(r, static_cast<int>(next_art));
            art_cols.push_back(next_art);
            ++next_art;
        } else {
            t.at(r, next_art) = 1.0;
            t.setBasis(r, static_cast<int>(next_art));
            art_cols.push_back(next_art);
            ++next_art;
        }
    }

    LpResult result;

    // ---- Phase 1: minimize the sum of artificials ----
    if (artificial > 0) {
        // Maximize -(sum of artificials): objective row = +1 on each
        // artificial, then eliminate basic artificials from the row.
        for (size_t col : art_cols)
            t.at(t.objRow(), col) = 1.0;
        for (size_t r = 0; r < m; ++r) {
            const int b = t.basis(r);
            if (b >= static_cast<int>(n + slack)) {
                for (size_t c = 0; c < total_vars + 1; ++c)
                    t.at(t.objRow(), c) -= t.at(r, c);
            }
        }
        if (!t.iterate(total_vars)) {
            result.status = LpStatus::Unbounded;  // cannot happen in ph.1
            return result;
        }
        const double phase1 = -t.at(t.objRow(), t.rhsCol());
        if (std::abs(phase1) > 1e-6) {
            result.status = LpStatus::Infeasible;
            return result;
        }
        // Drive any artificial still in the basis out (degenerate rows).
        for (size_t r = 0; r < m; ++r) {
            if (t.basis(r) >= static_cast<int>(n + slack)) {
                for (size_t j = 0; j < n + slack; ++j) {
                    if (std::abs(t.at(r, j)) > kEps) {
                        t.pivot(r, j);
                        break;
                    }
                }
            }
        }
        // Reset the objective row for phase 2.
        for (size_t c = 0; c < total_vars + 1; ++c)
            t.at(t.objRow(), c) = 0.0;
    }

    // ---- Phase 2: maximize the real objective ----
    for (size_t j = 0; j < n; ++j)
        t.at(t.objRow(), j) = -objective_[j];
    // Eliminate basic variables from the objective row.
    for (size_t r = 0; r < m; ++r) {
        const int b = t.basis(r);
        if (b >= 0 && b < static_cast<int>(n) &&
            std::abs(t.at(t.objRow(), static_cast<size_t>(b))) > kEps) {
            const double factor = t.at(t.objRow(), static_cast<size_t>(b));
            for (size_t c = 0; c < total_vars + 1; ++c)
                t.at(t.objRow(), c) -= factor * t.at(r, c);
        }
    }
    // Phase 2 must not re-enter artificial columns.
    if (!t.iterate(n + slack)) {
        result.status = LpStatus::Unbounded;
        return result;
    }

    result.status = LpStatus::Optimal;
    result.objective = t.at(t.objRow(), t.rhsCol());
    result.x.assign(n, 0.0);
    for (size_t r = 0; r < m; ++r) {
        const int b = t.basis(r);
        if (b >= 0 && b < static_cast<int>(n))
            result.x[static_cast<size_t>(b)] = t.at(r, t.rhsCol());
    }
    return result;
}

} // namespace pes
