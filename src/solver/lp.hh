/**
 * @file
 * Dense two-phase simplex linear-programming solver.
 *
 * Supports maximization of c.x subject to general rows (<=, =, >=) with
 * x >= 0. Used as the relaxation engine of the branch-and-bound integer
 * solver, which in turn cross-validates the specialized scheduling DP
 * (Sec. 5.5: "we implement our own solver customized to this particular
 * formulation instead of using a third-party solver").
 *
 * Bland's anti-cycling rule keeps the solver terminating on degenerate
 * instances; the problem sizes in PES (tens of variables) make performance
 * a non-issue for the generic path.
 */

#ifndef PES_SOLVER_LP_HH
#define PES_SOLVER_LP_HH

#include <vector>

namespace pes {

/** Relation of a constraint row. */
enum class Relation
{
    LessEqual = 0,
    Equal,
    GreaterEqual,
};

/** One constraint row: coeffs . x (relation) rhs. */
struct LpConstraint
{
    std::vector<double> coeffs;
    Relation relation = Relation::LessEqual;
    double rhs = 0.0;
};

/** Outcome of an LP solve. */
enum class LpStatus
{
    Optimal = 0,
    Infeasible,
    Unbounded,
};

/** Solution of an LP. */
struct LpResult
{
    LpStatus status = LpStatus::Infeasible;
    double objective = 0.0;
    std::vector<double> x;
};

/**
 * A linear program: maximize objective . x subject to constraints, x >= 0.
 */
class LinearProgram
{
  public:
    /** @param num_vars Number of decision variables. */
    explicit LinearProgram(int num_vars);

    /** Set the objective coefficients (maximization). */
    void setObjective(std::vector<double> coeffs);

    /** Add one constraint row; coefficient count must match num_vars. */
    void addConstraint(std::vector<double> coeffs, Relation relation,
                       double rhs);

    /** Number of variables. */
    int numVars() const { return numVars_; }
    /** Number of constraint rows. */
    int numConstraints() const { return static_cast<int>(rows_.size()); }

    /** Solve with two-phase simplex. */
    LpResult solve() const;

  private:
    int numVars_;
    std::vector<double> objective_;
    std::vector<LpConstraint> rows_;
};

} // namespace pes

#endif // PES_SOLVER_LP_HH
