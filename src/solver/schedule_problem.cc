#include "solver/schedule_problem.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace pes {

IntegerProgram
ScheduleProblem::toIlp() const
{
    panic_if(!switchCost.empty(),
             "toIlp: switch costs are not expressible in the Eqn. 5 ILP");
    const int n = static_cast<int>(events.size());
    const int c = numConfigs();
    panic_if(n == 0, "toIlp: empty problem");

    // Variables: tau(i, j) laid out row-major.
    IntegerProgram ilp(n * c);
    auto var = [c](int i, int j) { return i * c + j; };

    std::vector<double> objective(static_cast<size_t>(n * c), 0.0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < c; ++j) {
            objective[static_cast<size_t>(var(i, j))] =
                events[static_cast<size_t>(i)].energy
                    [static_cast<size_t>(j)];
        }
    }
    ilp.setObjective(std::move(objective));

    // Eqn. 2: each event picks exactly one configuration.
    for (int i = 0; i < n; ++i) {
        std::vector<double> row(static_cast<size_t>(n * c), 0.0);
        for (int j = 0; j < c; ++j)
            row[static_cast<size_t>(var(i, j))] = 1.0;
        ilp.addConstraint(std::move(row), Relation::Equal, 1.0);
    }

    // Eqn. 4: prefix-sum latencies within each deadline.
    for (int i = 0; i < n; ++i) {
        const TimeMs deadline = events[static_cast<size_t>(i)].deadline;
        if (!std::isfinite(deadline))
            continue;
        std::vector<double> row(static_cast<size_t>(n * c), 0.0);
        for (int k = 0; k <= i; ++k) {
            for (int j = 0; j < c; ++j) {
                row[static_cast<size_t>(var(k, j))] =
                    events[static_cast<size_t>(k)].latency
                        [static_cast<size_t>(j)];
            }
        }
        ilp.addConstraint(std::move(row), Relation::LessEqual, deadline);
    }

    return ilp;
}

namespace {

/**
 * Weight folding tardiness and energy into one scalar cost. Any positive
 * tardiness above ~1e-6 ms outweighs every achievable energy total, which
 * realizes the lexicographic (tardiness, energy) objective; on feasible
 * instances (tardiness 0) the cost *is* the energy, so the DP stays exact
 * for the Eqn. 5 optimum.
 */
constexpr double kTardinessWeight = 1e12;

/** One Pareto state after scheduling a prefix of events. */
struct DpState
{
    TimeMs finish = 0.0;
    TimeMs tardiness = 0.0;
    EnergyMj energy = 0.0;
    /** Configuration of the last scheduled event. */
    int lastConfig = 0;
    /** Index into the previous stage's state vector (for reconstruction) */
    int parent = -1;
    /** Config chosen at this stage. */
    int chosen = -1;

    double cost() const
    {
        return tardiness * kTardinessWeight + energy;
    }
};

/** Hard cap on frontier states kept per lastConfig bucket. */
constexpr size_t kMaxBucketStates = 256;

/**
 * Keep the (finish, cost) Pareto frontier of one bucket: after sorting by
 * finish, a state survives only when its cost strictly beats every
 * earlier-finishing survivor. O(n log n).
 */
void
pruneBucket(std::vector<DpState> &states)
{
    std::sort(states.begin(), states.end(),
              [](const DpState &a, const DpState &b) {
                  if (a.finish != b.finish)
                      return a.finish < b.finish;
                  return a.cost() < b.cost();
              });
    std::vector<DpState> kept;
    double min_cost = std::numeric_limits<double>::infinity();
    for (const DpState &s : states) {
        const double c = s.cost();
        if (c < min_cost - 1e-12) {
            kept.push_back(s);
            min_cost = c;
        }
    }
    // Bound the frontier (defensive; real instances stay far below the
    // cap). Thinning keeps the cheapest and fastest extremes.
    if (kept.size() > kMaxBucketStates) {
        std::vector<DpState> thinned;
        thinned.reserve(kMaxBucketStates);
        const double step = static_cast<double>(kept.size() - 1) /
            static_cast<double>(kMaxBucketStates - 1);
        for (size_t i = 0; i < kMaxBucketStates; ++i) {
            thinned.push_back(
                kept[static_cast<size_t>(std::round(step *
                                                    static_cast<double>(i)))]);
        }
        kept = std::move(thinned);
    }
    states = std::move(kept);
}

} // namespace

ScheduleSolution
ParetoDpSolver::solve(const ScheduleProblem &problem) const
{
    ScheduleSolution solution;
    const int n = static_cast<int>(problem.events.size());
    if (n == 0) {
        solution.feasible = true;
        return solution;
    }
    const int c = problem.numConfigs();
    panic_if(c == 0, "ParetoDpSolver: no configurations");
    const bool use_switch = !problem.switchCost.empty();

    // stages[i] holds the surviving states after scheduling event i.
    std::vector<std::vector<DpState>> stages(static_cast<size_t>(n));

    DpState init;
    init.lastConfig = problem.initialConfig;
    std::vector<DpState> frontier{init};

    for (int i = 0; i < n; ++i) {
        const ScheduleEvent &ev = problem.events[static_cast<size_t>(i)];
        panic_if(static_cast<int>(ev.latency.size()) != c ||
                 static_cast<int>(ev.energy.size()) != c,
                 "ParetoDpSolver: ragged event table at %d", i);

        std::vector<DpState> next;
        next.reserve(frontier.size() * static_cast<size_t>(c));
        for (size_t s = 0; s < frontier.size(); ++s) {
            const DpState &prev = frontier[s];
            for (int j = 0; j < c; ++j) {
                TimeMs lat = ev.latency[static_cast<size_t>(j)];
                if (use_switch) {
                    lat += problem.switchCost
                        [static_cast<size_t>(prev.lastConfig)]
                        [static_cast<size_t>(j)];
                }
                DpState st;
                st.finish = prev.finish + lat;
                st.energy = prev.energy +
                    ev.energy[static_cast<size_t>(j)];
                st.tardiness = prev.tardiness +
                    std::max(0.0, st.finish - ev.deadline);
                st.lastConfig = j;
                st.parent = static_cast<int>(s);
                st.chosen = j;
                next.push_back(st);
            }
        }

        if (use_switch) {
            // Prune per lastConfig bucket (the config is part of the
            // state and affects future switch costs).
            std::vector<DpState> pruned;
            for (int j = 0; j < c; ++j) {
                std::vector<DpState> bucket;
                for (const DpState &st : next) {
                    if (st.lastConfig == j)
                        bucket.push_back(st);
                }
                pruneBucket(bucket);
                pruned.insert(pruned.end(), bucket.begin(), bucket.end());
            }
            next = std::move(pruned);
        } else {
            pruneBucket(next);
        }

        stages[static_cast<size_t>(i)] = next;
        frontier = std::move(next);
    }

    // Pick the lexicographic (tardiness, energy) best final state.
    const std::vector<DpState> &finals = stages[static_cast<size_t>(n - 1)];
    panic_if(finals.empty(), "ParetoDpSolver: lost all states");
    size_t best = 0;
    for (size_t s = 1; s < finals.size(); ++s) {
        const DpState &a = finals[s];
        const DpState &b = finals[best];
        if (a.tardiness < b.tardiness - 1e-12 ||
            (std::abs(a.tardiness - b.tardiness) <= 1e-12 &&
             a.energy < b.energy - 1e-12)) {
            best = s;
        }
    }

    // Reconstruct the assignment.
    solution.configOf.assign(static_cast<size_t>(n), 0);
    solution.finishTime.assign(static_cast<size_t>(n), 0.0);
    int idx = static_cast<int>(best);
    for (int i = n - 1; i >= 0; --i) {
        const DpState &st = stages[static_cast<size_t>(i)]
                                  [static_cast<size_t>(idx)];
        solution.configOf[static_cast<size_t>(i)] = st.chosen;
        solution.finishTime[static_cast<size_t>(i)] = st.finish;
        idx = st.parent;
    }
    const DpState &chosen = finals[best];
    solution.totalEnergy = chosen.energy;
    solution.totalTardiness = chosen.tardiness;
    solution.feasible = chosen.tardiness <= 1e-9;
    return solution;
}

} // namespace pes
