/**
 * @file
 * The PES scheduling formulation and its custom exact solver.
 *
 * Paper Sec. 5.3 (Eqns. 2-5): pick exactly one ACMP configuration per
 * event so that the chain of event executions meets every event's deadline
 * while the total energy  sum_i p(i) * dt(i)  is minimized. The paper
 * implements "our own solver customized to this particular formulation" —
 * this file is that solver: a dynamic program over Pareto-optimal
 * (finish time, tardiness, energy) states per event, exact for the chain
 * structure, with an optional last-configuration state dimension that
 * accounts for DVFS-switch and migration costs.
 *
 * When no assignment can meet all deadlines (e.g. an inherently heavy
 * Type I event with an immediate conservative deadline), the solver
 * degrades lexicographically: minimize total tardiness first, then energy.
 *
 * toIlp() emits the paper's exact ILP (Eqn. 5) for the generic
 * branch-and-bound solver; property tests assert both agree.
 */

#ifndef PES_SOLVER_SCHEDULE_PROBLEM_HH
#define PES_SOLVER_SCHEDULE_PROBLEM_HH

#include <vector>

#include "solver/ilp.hh"
#include "util/types.hh"

namespace pes {

/**
 * One event to schedule: per-configuration latency and energy plus an
 * absolute deadline (relative to the chain start at t = 0).
 */
struct ScheduleEvent
{
    /** Execution latency under each configuration (ms). */
    std::vector<TimeMs> latency;
    /** Energy under each configuration (mJ): p(j) * dt(i,j). */
    std::vector<EnergyMj> energy;
    /** Deadline relative to chain start; infinity = unconstrained. */
    TimeMs deadline = 0.0;
};

/**
 * The chain-scheduling problem over N events and C configurations.
 */
struct ScheduleProblem
{
    std::vector<ScheduleEvent> events;
    /**
     * Optional switch-cost matrix: switchCost[a][b] is added to the
     * latency when an event runs on configuration b after configuration a.
     * Empty = no switch costs (the Eqn. 5 formulation).
     */
    std::vector<std::vector<TimeMs>> switchCost;
    /** Configuration active before the first event (with switch costs). */
    int initialConfig = 0;

    /** Number of configurations (from the first event). */
    int numConfigs() const
    {
        return events.empty()
            ? 0 : static_cast<int>(events.front().latency.size());
    }

    /**
     * Emit the paper's ILP (Eqn. 5). Requires empty switchCost (switch
     * costs make the objective non-linear in tau).
     */
    IntegerProgram toIlp() const;
};

/**
 * Solution: one configuration per event.
 */
struct ScheduleSolution
{
    /** True when every deadline is met. */
    bool feasible = false;
    /** Chosen configuration index per event. */
    std::vector<int> configOf;
    /** Total energy of the chosen assignment. */
    EnergyMj totalEnergy = 0.0;
    /** Total tardiness (0 when feasible). */
    TimeMs totalTardiness = 0.0;
    /** Finish time of each event, relative to chain start. */
    std::vector<TimeMs> finishTime;
};

/**
 * Exact Pareto-frontier dynamic program for ScheduleProblem.
 */
class ParetoDpSolver
{
  public:
    /**
     * Solve the chain problem exactly. Objective is lexicographic
     * (total tardiness, total energy); feasible instances therefore get
     * the minimum-energy deadline-meeting assignment (the Eqn. 5 optimum).
     */
    ScheduleSolution solve(const ScheduleProblem &problem) const;
};

} // namespace pes

#endif // PES_SOLVER_SCHEDULE_PROBLEM_HH
