#include "telemetry/perf_history.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>

#if !defined(_WIN32)
#include <sys/utsname.h>
#endif

#include "telemetry/run_telemetry.hh"
#include "util/json.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace pes {

namespace {

IntegrityProblem
problemOf(IntegrityProblem::Kind kind, std::string message)
{
    IntegrityProblem p;
    p.kind = kind;
    p.message = std::move(message);
    return p;
}

/** Strip the "t<threads>." / "quality.<scheduler>." qualifier, leaving
 *  the bare metric name calibration files speak. */
std::string
stripQualifier(const std::string &qualified)
{
    if (qualified.rfind("quality.", 0) == 0) {
        const size_t dot = qualified.find('.', 8);
        return dot == std::string::npos ? qualified.substr(8)
                                        : qualified.substr(dot + 1);
    }
    if (qualified.size() > 1 && qualified[0] == 't' &&
        std::isdigit(static_cast<unsigned char>(qualified[1]))) {
        const size_t dot = qualified.find('.');
        if (dot != std::string::npos)
            return qualified.substr(dot + 1);
    }
    return qualified;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const size_t n = std::char_traits<char>::length(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

} // namespace

const std::vector<double> *
PerfPoint::find(const std::string &name) const
{
    const auto it = std::lower_bound(
        metrics.begin(), metrics.end(), name,
        [](const auto &entry, const std::string &n) {
            return entry.first < n;
        });
    if (it == metrics.end() || it->first != name)
        return nullptr;
    return &it->second;
}

void
PerfPoint::set(const std::string &name, std::vector<double> values)
{
    const auto it = std::lower_bound(
        metrics.begin(), metrics.end(), name,
        [](const auto &entry, const std::string &n) {
            return entry.first < n;
        });
    if (it != metrics.end() && it->first == name) {
        it->second = std::move(values);
        return;
    }
    metrics.emplace(it, name, std::move(values));
}

int
PerfSample::replicates() const
{
    size_t longest = 0;
    for (const PerfPoint &point : points)
        for (const auto &entry : point.metrics)
            longest = std::max(longest, entry.second.size());
    return static_cast<int>(longest);
}

const PerfPoint *
PerfSample::point(int threads) const
{
    for (const PerfPoint &p : points)
        if (p.threads == threads)
            return &p;
    return nullptr;
}

std::string
machineFingerprint()
{
    std::string sysname = "unknown";
    std::string machine = "unknown";
#if !defined(_WIN32)
    struct utsname u;
    if (uname(&u) == 0) {
        sysname = u.sysname;
        machine = u.machine;
    }
#endif
    const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
    return sysname + "-" + machine + "-" + std::to_string(cpus) + "cpu";
}

std::string
perfDigest(const std::string &text)
{
    const uint64_t h = hashBytes(text.data(), text.size());
    std::ostringstream os;
    os << "cfg-" << std::hex << std::setw(16) << std::setfill('0') << h;
    return os.str();
}

std::vector<std::pair<std::string, double>>
perfPointMetrics(const RunTelemetry &t)
{
    // Prefer the pool's own aggregate (present since telemetry v3);
    // fall back to summing the per-worker rows for older documents.
    double queue_wait_ms = t.poolQueueWaitMs;
    if (queue_wait_ms == 0.0)
        for (const WorkerScaling &w : t.workers)
            queue_wait_ms += w.queueWaitMs;
    return {
        {"sessions_per_sec", t.sessionsPerSec},
        {"events_per_sec", t.eventsPerSec},
        {"plan_ms", t.planMs},
        {"execute_ms", t.executeMs},
        {"persist_ms", t.persistMs},
        {"reduce_ms", t.reduceMs},
        {"total_ms", t.totalMs},
        {"cache_hits", static_cast<double>(t.cacheHits)},
        {"cache_misses", static_cast<double>(t.cacheMisses)},
        {"cache_evictions", static_cast<double>(t.cacheEvictions)},
        {"duplicate_synthesis",
         static_cast<double>(t.cacheDuplicateSynthesis)},
        {"cache_lock_waits", static_cast<double>(t.cacheLockWaits)},
        {"cache_lock_wait_ms", t.cacheLockWaitMs},
        {"persist_lock_waits", static_cast<double>(t.persistLockWaits)},
        {"persist_lock_wait_ms", t.persistLockWaitMs},
        {"pool_busy_ms", t.poolBusyMs},
        {"pool_idle_ms", t.poolIdleMs},
        {"pool_queue_wait_ms", queue_wait_ms},
        {"pool_queue_wait_mean_ms", t.poolQueueWaitMeanMs},
    };
}

void
derivePerfParallelEfficiency(PerfSample &sample)
{
    const PerfPoint *t1 = sample.point(1);
    const std::vector<double> *t1_rates =
        t1 ? t1->find("sessions_per_sec") : nullptr;
    const double t1_mean = t1_rates ? perfNoise(*t1_rates).mean : 0.0;
    if (t1_mean <= 0.0)
        return;
    for (PerfPoint &point : sample.points) {
        const std::vector<double> *rates =
            point.find("sessions_per_sec");
        if (!rates)
            continue;
        std::vector<double> efficiency;
        efficiency.reserve(rates->size());
        for (double rate : *rates)
            efficiency.push_back(rate / (point.threads * t1_mean));
        point.set("parallel_efficiency", std::move(efficiency));
    }
}

std::string
perfConfigIdentity(const std::string &label, uint64_t sessions,
                   uint64_t events, const std::vector<int> &threads,
                   const std::string &scenario)
{
    std::ostringstream identity;
    identity << label << "|" << sessions << "|" << events;
    for (int t : threads)
        identity << "|t" << t;
    identity << "|" << scenario;
    return perfDigest(identity.str());
}

std::string
perfSampleToJsonLine(const PerfSample &sample)
{
    std::ostringstream os;
    os << "{\"perf_version\": " << PerfSample::kVersion
       << ", \"label\": \"" << jsonEscape(sample.label)
       << "\", \"rev\": \"" << jsonEscape(sample.rev)
       << "\", \"machine\": \"" << jsonEscape(sample.machine)
       << "\", \"config\": \"" << jsonEscape(sample.config)
       << "\", \"sessions\": " << sample.sessions
       << ", \"events\": " << sample.events << ", \"points\": [";
    for (size_t i = 0; i < sample.points.size(); ++i) {
        const PerfPoint &point = sample.points[i];
        os << (i ? ", " : "") << "{\"threads\": " << point.threads
           << ", \"metrics\": {";
        for (size_t m = 0; m < point.metrics.size(); ++m) {
            os << (m ? ", " : "") << "\""
               << jsonEscape(point.metrics[m].first) << "\": [";
            const std::vector<double> &values = point.metrics[m].second;
            for (size_t v = 0; v < values.size(); ++v)
                os << (v ? ", " : "") << jsonNum(values[v]);
            os << "]";
        }
        os << "}}";
    }
    os << "], \"quality\": {";
    for (size_t q = 0; q < sample.quality.size(); ++q) {
        os << (q ? ", " : "") << "\""
           << jsonEscape(sample.quality[q].first)
           << "\": " << jsonNum(sample.quality[q].second);
    }
    os << "}}\n";
    return os.str();
}

std::optional<PerfSample>
parsePerfSampleLine(const std::string &line, IntegrityProblem *problem)
{
    const auto doc = parseJson(line);
    if (!doc || doc->kind != JsonValue::Kind::Object) {
        if (problem)
            *problem = problemOf(
                IntegrityProblem::Kind::Corrupt,
                "unparseable perf sample line (truncated write?)");
        return std::nullopt;
    }
    const JsonValue *version = doc->find("perf_version");
    if (!version) {
        if (problem)
            *problem = problemOf(IntegrityProblem::Kind::Corrupt,
                                 "not a perf sample (bad magic: no "
                                 "perf_version key)");
        return std::nullopt;
    }
    if (version->number() != static_cast<double>(PerfSample::kVersion)) {
        if (problem)
            *problem = problemOf(
                IntegrityProblem::Kind::Mismatch,
                "perf_version skew: ledger line is v" + version->str +
                    ", this build reads v" +
                    std::to_string(PerfSample::kVersion));
        return std::nullopt;
    }

    PerfSample sample;
    if (const JsonValue *label = doc->find("label"))
        sample.label = label->str;
    if (const JsonValue *rev = doc->find("rev"))
        sample.rev = rev->str;
    if (const JsonValue *machine = doc->find("machine"))
        sample.machine = machine->str;
    if (const JsonValue *config = doc->find("config"))
        sample.config = config->str;
    if (const JsonValue *sessions = doc->find("sessions"))
        sample.sessions = sessions->number64();
    if (const JsonValue *events = doc->find("events"))
        sample.events = events->number64();

    if (const JsonValue *points = doc->find("points")) {
        for (const JsonValue &row : points->arr) {
            PerfPoint point;
            if (const JsonValue *threads = row.find("threads"))
                point.threads = static_cast<int>(threads->number());
            if (const JsonValue *metrics = row.find("metrics")) {
                for (const auto &entry : metrics->obj) {
                    std::vector<double> values;
                    values.reserve(entry.second.arr.size());
                    for (const JsonValue &v : entry.second.arr)
                        values.push_back(v.number());
                    point.set(entry.first, std::move(values));
                }
            }
            sample.points.push_back(std::move(point));
        }
    }
    std::sort(sample.points.begin(), sample.points.end(),
              [](const PerfPoint &a, const PerfPoint &b) {
                  return a.threads < b.threads;
              });

    if (const JsonValue *quality = doc->find("quality")) {
        for (const auto &entry : quality->obj)
            sample.quality.emplace_back(entry.first,
                                        entry.second.number());
        std::sort(sample.quality.begin(), sample.quality.end());
    }
    return sample;
}

const PerfSample *
PerfHistory::latest(const std::string &label) const
{
    for (auto it = samples.rbegin(); it != samples.rend(); ++it)
        if (label.empty() || it->label == label)
            return &*it;
    return nullptr;
}

PerfHistory
loadPerfHistory(const std::string &path)
{
    PerfHistory history;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        history.problems.push_back(
            problemOf(IntegrityProblem::Kind::MissingFile,
                      "perf history not found: " + path));
        return history;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        IntegrityProblem problem;
        auto sample = parsePerfSampleLine(line, &problem);
        if (sample) {
            history.samples.push_back(std::move(*sample));
        } else {
            problem.message = path + ":" + std::to_string(lineno) +
                ": " + problem.message;
            history.problems.push_back(std::move(problem));
        }
    }
    if (history.samples.empty() && history.problems.empty()) {
        history.problems.push_back(
            problemOf(IntegrityProblem::Kind::MissingFile,
                      "perf history is empty: " + path));
    }
    return history;
}

bool
appendPerfSample(const std::string &path, const PerfSample &sample,
                 std::string *error)
{
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) {
        if (error)
            *error = "cannot open perf history for append: " + path;
        return false;
    }
    out << perfSampleToJsonLine(sample);
    out.flush();
    if (!out) {
        if (error)
            *error = "short write appending perf sample: " + path;
        return false;
    }
    return true;
}

PerfNoise
perfNoise(const std::vector<double> &values)
{
    PerfNoise noise;
    RunningStats stats;
    for (double v : values)
        stats.add(v);
    noise.mean = stats.mean();
    noise.stddev = stats.stddev();
    noise.cv = noise.mean != 0.0 ? noise.stddev / std::fabs(noise.mean)
                                 : 0.0;
    return noise;
}

std::vector<std::pair<std::string, std::vector<double>>>
flattenPerfSample(const PerfSample &sample)
{
    std::vector<std::pair<std::string, std::vector<double>>> flat;
    for (const PerfPoint &point : sample.points) {
        const std::string prefix =
            "t" + std::to_string(point.threads) + ".";
        for (const auto &entry : point.metrics)
            flat.emplace_back(prefix + entry.first, entry.second);
    }
    for (const auto &entry : sample.quality)
        flat.emplace_back("quality." + entry.first,
                          std::vector<double>{entry.second});
    return flat;
}

MetricDirection
perfMetricDirection(const std::string &qualified)
{
    if (qualified.rfind("quality.", 0) == 0)
        return metricDirection(stripQualifier(qualified));
    const std::string name = stripQualifier(qualified);
    if (endsWith(name, "_per_sec") || name == "parallel_efficiency" ||
        name == "cache_hits")
        return MetricDirection::HigherIsBetter;
    if (endsWith(name, "_ms") || endsWith(name, "_waits") ||
        name == "cache_misses" || name == "cache_evictions" ||
        name == "duplicate_synthesis" || name == "max_queue_depth")
        return MetricDirection::LowerIsBetter;
    return MetricDirection::Structural;
}

bool
perfMetricGatedByDefault(const std::string &qualified)
{
    if (qualified.rfind("quality.", 0) == 0)
        return true;
    const std::string name = stripQualifier(qualified);
    return endsWith(name, "_per_sec") || name == "parallel_efficiency";
}

PerfComparison
comparePerfSamples(const PerfSample &base, const PerfSample &test,
                   const PerfCompareOptions &options)
{
    PerfComparison cmp;
    if (base.label != test.label) {
        cmp.problems.push_back(problemOf(
            IntegrityProblem::Kind::Mismatch,
            "label mismatch: baseline \"" + base.label +
                "\" vs candidate \"" + test.label + "\""));
    }
    if (base.machine != test.machine) {
        cmp.problems.push_back(problemOf(
            IntegrityProblem::Kind::Mismatch,
            "machine fingerprint mismatch: baseline \"" + base.machine +
                "\" vs candidate \"" + test.machine +
                "\" (perf numbers from different machines never gate "
                "against each other)"));
    }
    if (base.config != test.config) {
        cmp.problems.push_back(problemOf(
            IntegrityProblem::Kind::Mismatch,
            "workload config mismatch: baseline " + base.config +
                " vs candidate " + test.config +
                " (a changed workload is a different experiment; "
                "re-seed the baseline)"));
    }
    if (!cmp.problems.empty()) {
        cmp.comparable = false;
        return cmp;
    }

    const auto baseFlat = flattenPerfSample(base);
    const auto testFlat = flattenPerfSample(test);
    const auto findIn =
        [](const std::vector<std::pair<std::string, std::vector<double>>>
               &flat,
           const std::string &name) -> const std::vector<double> * {
        for (const auto &entry : flat)
            if (entry.first == name)
                return &entry.second;
        return nullptr;
    };

    const auto gated = [&options](const std::string &name) {
        if (!options.metrics.empty())
            return std::find(options.metrics.begin(),
                             options.metrics.end(),
                             name) != options.metrics.end();
        return perfMetricGatedByDefault(name);
    };

    // Baseline order first, then candidate-only extras.
    std::vector<std::string> names;
    for (const auto &entry : baseFlat)
        names.push_back(entry.first);
    for (const auto &entry : testFlat)
        if (!findIn(baseFlat, entry.first))
            names.push_back(entry.first);

    for (const std::string &name : names) {
        const std::vector<double> *bv = findIn(baseFlat, name);
        const std::vector<double> *tv = findIn(testFlat, name);
        PerfMetricDelta delta;
        delta.name = name;
        delta.gated = gated(name);
        if (!bv || !tv) {
            // One-sided series chart fine but cannot gate: the metric
            // set changed with the code, not the performance.
            delta.outcome =
                bv ? DiffOutcome::Missing : DiffOutcome::Extra;
            ++cmp.missing;
            cmp.deltas.push_back(std::move(delta));
            continue;
        }
        const PerfNoise baseNoise = perfNoise(*bv);
        const PerfNoise testNoise = perfNoise(*tv);
        delta.base = baseNoise.mean;
        delta.test = testNoise.mean;

        const bool isQuality = name.rfind("quality.", 0) == 0;
        const double cv = std::max(baseNoise.cv, testNoise.cv);
        double rel = isQuality
            ? std::max(options.qualityRel, options.sigmas * cv)
            : std::max(options.minRel, options.sigmas * cv);
        double abs = options.absTolerance;
        if (options.tolerance) {
            const MetricTolerance *t = options.tolerance->find(name);
            if (!t)
                t = options.tolerance->find(stripQualifier(name));
            if (t) {
                // Calibrated bands replace the noise-derived ones.
                rel = t->rel;
                abs = std::max(t->abs, options.absTolerance);
            }
        }
        delta.tolerance = rel;

        const double absDelta = std::fabs(delta.test - delta.base);
        delta.relDelta = delta.base != 0.0
            ? absDelta / std::fabs(delta.base)
            : 0.0;

        const bool identical = delta.base == delta.test ||
            (std::isnan(delta.base) && std::isnan(delta.test));
        if (identical) {
            delta.outcome = DiffOutcome::Identical;
            ++cmp.identical;
        } else if (absDelta <= abs ||
                   (delta.base != 0.0 && delta.relDelta <= rel)) {
            delta.outcome = DiffOutcome::WithinTolerance;
            ++cmp.withinNoise;
        } else {
            const bool higher = delta.test > delta.base;
            bool better = false;
            switch (perfMetricDirection(name)) {
              case MetricDirection::HigherIsBetter:
                better = higher;
                break;
              case MetricDirection::LowerIsBetter:
                better = !higher;
                break;
              case MetricDirection::Structural:
                better = false;
                break;
            }
            delta.outcome =
                better ? DiffOutcome::Improved : DiffOutcome::Regressed;
            ++(better ? cmp.improved : cmp.regressed);
        }
        cmp.deltas.push_back(std::move(delta));
    }
    return cmp;
}

bool
PerfComparison::clean() const
{
    if (!comparable)
        return false;
    for (const PerfMetricDelta &delta : deltas)
        if (delta.gated && delta.outcome == DiffOutcome::Regressed)
            return false;
    return true;
}

int
perfGateExitCode(const PerfComparison &comparison)
{
    if (!comparison.comparable || !comparison.problems.empty())
        return integrityExitCode(comparison.problems);
    return comparison.clean() ? 0 : kExitDrift;
}

void
printPerfComparison(const PerfComparison &comparison, std::ostream &os)
{
    if (!comparison.comparable) {
        for (const IntegrityProblem &p : comparison.problems)
            os << "not comparable: " << p.message << "\n";
        return;
    }
    for (const PerfMetricDelta &delta : comparison.deltas) {
        if (delta.outcome == DiffOutcome::Identical)
            continue;
        os << std::left << std::setw(10)
           << diffOutcomeName(delta.outcome) << " "
           << (delta.gated ? "[gated]   " : "[advisory]") << " "
           << std::setw(34) << delta.name << " " << jsonNum(delta.base)
           << " -> " << jsonNum(delta.test) << " (delta "
           << jsonNum(delta.relDelta * 100.0) << "%, band "
           << jsonNum(delta.tolerance * 100.0) << "%)\n";
    }
    os << "perf: " << comparison.identical << " identical, "
       << comparison.withinNoise << " within noise, "
       << comparison.improved << " improved, " << comparison.regressed
       << " regressed, " << comparison.missing << " one-sided\n";
    if (comparison.improved > 0 && comparison.clean()) {
        os << "note: improvements beyond noise — the committed baseline "
              "is stale; re-record it to ratchet the gains\n";
    }
}

} // namespace pes
