/**
 * @file
 * The perf-history ledger: speed, historied and gated like bytes.
 *
 * Report bytes have been gated since PR 4 (pes_fleet diff); this module
 * gives wall-clock the same treatment. A history file is append-only
 * JSONL — one self-describing PerfSample per line, carrying the git
 * revision, a machine fingerprint, a workload-config digest, and the
 * replicated measurements (per thread count, metric name -> one value
 * per replicate). Replication is what makes gating honest: per-metric
 * noise is estimated from the replicate spread (coefficient of
 * variation), and the comparison classifies each metric with the PR 4
 * vocabulary — Identical / WithinTolerance (within noise) / Improved /
 * Regressed — under a band of `sigmas x CV` instead of a guessed
 * constant.
 *
 * Exit-code contract (pes_perf gate, CI-gateable, mirrors diff):
 *   0            within noise (Improved passes too — it is a stale
 *                baseline, reported as a note, never a failure)
 *   kExitDrift   (2) any gated metric Regressed
 *   kExitMissing (3) history file absent or empty
 *   kExitCorrupt (4) history corrupt (bad magic / truncation /
 *                version skew) or fingerprint/config mismatch
 *
 * Samples also carry a `quality` table (scheduler headline metrics:
 * violation rate, energy, p95 latency, prediction accuracy) so one
 * ledger charts speed and quality trajectories side by side
 * (`pes_perf report`). Quality values are byte-deterministic, so their
 * noise band is exact unless a calibrated ToleranceSpec widens it.
 *
 * Loading NEVER crashes on a damaged ledger: every bad line becomes a
 * classified IntegrityProblem (the util/integrity vocabulary) and the
 * good lines still load.
 */

#ifndef PES_TELEMETRY_PERF_HISTORY_HH
#define PES_TELEMETRY_PERF_HISTORY_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "results/report_diff.hh"
#include "results/tolerance.hh"
#include "util/integrity.hh"

namespace pes {

/** One thread count's replicated measurements. */
struct PerfPoint
{
    int threads = 0;
    /** Metric name -> one value per replicate (name-sorted). */
    std::vector<std::pair<std::string, std::vector<double>>> metrics;

    /** The replicate values of @p name; nullptr when absent. */
    const std::vector<double> *find(const std::string &name) const;

    /** Insert or replace @p name's replicate values (keeps sorting). */
    void set(const std::string &name, std::vector<double> values);
};

/** One ledger entry: a replicated measurement of one build. */
struct PerfSample
{
    /** Line-format version; doubles as the magic — a line without
     *  "perf_version" is not a perf sample at all. */
    static constexpr int kVersion = 1;

    /** Git revision that produced the numbers ("unknown" outside CI). */
    std::string rev = "unknown";
    /** Machine fingerprint (see machineFingerprint()); samples from
     *  different machines never gate against each other. */
    std::string machine;
    /** Workload identity digest (see perfDigest()); a changed workload
     *  is a different experiment, not a regression. */
    std::string config;
    /** Ledger series name (e.g. "bench_sim"). */
    std::string label;

    uint64_t sessions = 0;
    uint64_t events = 0;

    /** Thread-count points, threads ascending. */
    std::vector<PerfPoint> points;

    /** Deterministic quality headline metrics, name-sorted
     *  ("<scheduler>.<metric>", e.g. "ebs.violation_rate"). */
    std::vector<std::pair<std::string, double>> quality;

    /** Replicates recorded (longest metric vector; 0 when empty). */
    int replicates() const;

    /** The point for @p threads; nullptr when absent. */
    const PerfPoint *point(int threads) const;
};

struct RunTelemetry;

/** "sysname-machine-Ncpu" of the running host (uname + thread count). */
std::string machineFingerprint();

/** The point metrics one RunTelemetry replicate contributes to a
 *  sample — the single source of the telemetry -> ledger mapping
 *  (bench_sim_throughput and `pes_perf record` both use it). */
std::vector<std::pair<std::string, double>>
perfPointMetrics(const RunTelemetry &t);

/** Derive per-replicate parallel efficiency — rate_i / (threads x mean
 *  t1 rate) — into every point of @p sample. No-op without a t1
 *  sessions_per_sec anchor (efficiency is meaningless unanchored). */
void derivePerfParallelEfficiency(PerfSample &sample);

/** The workload-identity digest of a measurement (PerfSample::config):
 *  label + population size + measured thread counts + scenario. */
std::string perfConfigIdentity(const std::string &label,
                               uint64_t sessions, uint64_t events,
                               const std::vector<int> &threads,
                               const std::string &scenario);

/** Short stable content digest ("cfg-<16 hex>") for config identity. */
std::string perfDigest(const std::string &text);

/** Serialize one sample as a single JSONL line (no interior newline,
 *  trailing '\n' included, deterministic key order). */
std::string perfSampleToJsonLine(const PerfSample &sample);

/** Parse one JSONL line. On failure returns nullopt and classifies the
 *  reason into @p problem (nullable): Corrupt for bad magic/truncation,
 *  Mismatch for version skew. */
std::optional<PerfSample>
parsePerfSampleLine(const std::string &line, IntegrityProblem *problem);

/** A loaded ledger: every good sample plus every classified problem. */
struct PerfHistory
{
    std::vector<PerfSample> samples;
    std::vector<IntegrityProblem> problems;

    /** Last sample, optionally restricted to @p label (empty = any);
     *  nullptr when none match. */
    const PerfSample *latest(const std::string &label = "") const;
};

/** Load @p path. Missing file -> one MissingFile problem; damaged
 *  lines -> Corrupt/Mismatch problems; never throws. */
PerfHistory loadPerfHistory(const std::string &path);

/** Append one sample line to @p path (creating it). */
bool appendPerfSample(const std::string &path, const PerfSample &sample,
                      std::string *error);

/** Replicate-spread noise of one metric. */
struct PerfNoise
{
    double mean = 0.0;
    double stddev = 0.0;
    /** Coefficient of variation: stddev / |mean| (0 when mean is 0). */
    double cv = 0.0;
};

/** Noise estimate over @p values (exactly the CV hand-math). */
PerfNoise perfNoise(const std::vector<double> &values);

/**
 * Flatten a sample into qualified series: "t<threads>.<metric>" for
 * every point metric (replicate vector) and "quality.<name>" for every
 * quality metric (single-element vector). Deterministic order: points
 * by threads, metrics name-sorted, quality last.
 */
std::vector<std::pair<std::string, std::vector<double>>>
flattenPerfSample(const PerfSample &sample);

/** Direction of a qualified perf metric ("t4.sessions_per_sec",
 *  "quality.ebs.violation_rate"). Rates/efficiency/accuracy are
 *  HigherIsBetter; times/waits/misses LowerIsBetter; counts that define
 *  the workload shape Structural. */
MetricDirection perfMetricDirection(const std::string &qualified);

/** Whether a qualified metric gates by default. Throughput rates,
 *  parallel efficiency and quality gate; scheduling-jittery
 *  attribution counters (lock waits, stage times, cache traffic) are
 *  advisory — recorded and compared, never failing the gate unless
 *  explicitly selected. */
bool perfMetricGatedByDefault(const std::string &qualified);

/** Comparison knobs. */
struct PerfCompareOptions
{
    /** Band width: tolerance = max(minRel, sigmas x CV). */
    double sigmas = 3.0;
    /** Relative floor — a handful of replicates underestimates CV. */
    double minRel = 0.02;
    /** Absolute floor for near-zero metrics. */
    double absTolerance = 1e-9;
    /** Band for deterministic quality metrics (exact-ish by default). */
    double qualityRel = 1e-9;
    /** Gate only these qualified metrics (empty = the default gated
     *  set); explicitly selected metrics always gate. */
    std::vector<std::string> metrics;
    /** Calibrated per-metric bands; looked up by qualified name first,
     *  then with the "t<threads>."/"quality.<scheduler>." qualifier
     *  stripped, so `pes_fleet diff --calibrate` output applies. */
    const ToleranceSpec *tolerance = nullptr;
};

/** One metric's comparison across two samples (means compared). */
struct PerfMetricDelta
{
    std::string name;
    double base = 0.0;
    double test = 0.0;
    /** |test - base| / |base| (0 when base == 0). */
    double relDelta = 0.0;
    /** The relative band actually applied. */
    double tolerance = 0.0;
    /** Whether this metric can fail the gate. */
    bool gated = false;
    DiffOutcome outcome = DiffOutcome::Identical;
};

/** Outcome of comparing a candidate sample against a baseline. */
struct PerfComparison
{
    /** False on fingerprint/config/label mismatch (see problems). */
    bool comparable = true;
    std::vector<IntegrityProblem> problems;

    /** Every compared metric in flatten order. */
    std::vector<PerfMetricDelta> deltas;

    int identical = 0;
    int withinNoise = 0;
    int improved = 0;
    int regressed = 0;
    /** Metrics present on one side only (notes, never failures). */
    int missing = 0;

    /** Gated regressions only — improvements pass (stale baseline). */
    bool clean() const;
};

/** Compare @p test against the @p base baseline. Never fails — an
 *  incomparable pair returns comparable == false with problems. */
PerfComparison comparePerfSamples(const PerfSample &base,
                                  const PerfSample &test,
                                  const PerfCompareOptions &options);

/** The CI-gateable exit code (see file header). */
int perfGateExitCode(const PerfComparison &comparison);

/** Human summary: one row per non-Identical metric plus totals;
 *  "REGRESSED <name>" lines are DRIFT-style greppable. */
void printPerfComparison(const PerfComparison &comparison,
                         std::ostream &os);

} // namespace pes

#endif // PES_TELEMETRY_PERF_HISTORY_HH
