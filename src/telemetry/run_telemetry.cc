#include "telemetry/run_telemetry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <sstream>

#include "util/json.hh"

namespace pes {

namespace {

/** Trailing-zero-trimmed bucket list (keeps documents compact). */
size_t
usedBuckets(const DurationStats &d)
{
    size_t used = DurationStats::kBuckets;
    while (used > 0 && d.buckets[used - 1] == 0)
        --used;
    return used;
}

double
fieldNum(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v ? v->number() : 0.0;
}

uint64_t
fieldU64(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v ? v->number64() : 0;
}

std::string
fieldStr(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->kind == JsonValue::Kind::String ? v->str
                                                   : std::string();
}

} // namespace

void
RunTelemetry::recomputeRates()
{
    const double secs = executeMs / 1000.0;
    sessionsPerSec = secs > 0.0 ? static_cast<double>(sessions) / secs
                                : 0.0;
    eventsPerSec = secs > 0.0 ? static_cast<double>(events) / secs : 0.0;
}

void
writeRunTelemetryJson(const RunTelemetry &t, std::ostream &os)
{
    os << "{\n"
       << "  \"telemetry_version\": " << RunTelemetry::kVersion << ",\n"
       << "  \"tool\": \"" << jsonEscape(t.tool) << "\",\n"
       << "  \"scenario\": \"" << jsonEscape(t.scenario) << "\",\n"
       << "  \"logical_clock\": " << (t.logicalClock ? 1 : 0) << ",\n"
       << "  \"threads\": " << t.threads << ",\n"
       << "  \"sessions\": " << t.sessions << ",\n"
       << "  \"events\": " << t.events << ",\n"
       << "  \"sessions_per_sec\": " << jsonNum(t.sessionsPerSec)
       << ",\n"
       << "  \"events_per_sec\": " << jsonNum(t.eventsPerSec) << ",\n"
       << "  \"stage_ms\": {\"plan\": " << jsonNum(t.planMs)
       << ", \"execute\": " << jsonNum(t.executeMs)
       << ", \"persist\": " << jsonNum(t.persistMs)
       << ", \"reduce\": " << jsonNum(t.reduceMs)
       << ", \"total\": " << jsonNum(t.totalMs) << "},\n"
       << "  \"trace_cache\": {\"hits\": " << t.cacheHits
       << ", \"misses\": " << t.cacheMisses
       << ", \"evictions\": " << t.cacheEvictions
       << ", \"duplicate_synthesis\": " << t.cacheDuplicateSynthesis
       << "},\n"
       << "  \"checkpoint\": {\"flushes\": " << t.checkpointFlushes
       << ", \"bytes\": " << t.checkpointBytes << "},\n"
       << "  \"mem\": {\"peak_rss_kb\": " << t.peakRssKb << "},\n"
       << "  \"thread_pool\": {\"tasks\": " << t.poolTasks
       << ", \"max_queue_depth\": " << t.poolMaxQueueDepth
       << ", \"busy_ms\": " << jsonNum(t.poolBusyMs)
       << ", \"idle_ms\": " << jsonNum(t.poolIdleMs) << "},\n";

    os << "  \"scaling\": {\"parallel_efficiency\": "
       << jsonNum(t.parallelEfficiency)
       << ", \"cache_lock_waits\": " << t.cacheLockWaits
       << ", \"cache_lock_wait_ms\": " << jsonNum(t.cacheLockWaitMs)
       << ", \"persist_lock_waits\": " << t.persistLockWaits
       << ", \"persist_lock_wait_ms\": " << jsonNum(t.persistLockWaitMs)
       << ", \"queue_tasks\": " << t.poolQueueTasks
       << ", \"queue_wait_ms\": " << jsonNum(t.poolQueueWaitMs)
       << ", \"queue_wait_mean_ms\": " << jsonNum(t.poolQueueWaitMeanMs)
       << ", \"workers\": [";
    for (size_t i = 0; i < t.workers.size(); ++i) {
        const WorkerScaling &w = t.workers[i];
        os << (i ? ", " : "") << "{\"tasks\": " << w.tasks
           << ", \"busy_ms\": " << jsonNum(w.busyMs)
           << ", \"idle_ms\": " << jsonNum(w.idleMs)
           << ", \"queue_wait_ms\": " << jsonNum(w.queueWaitMs) << "}";
    }
    os << "]},\n";

    os << "  \"counters\": [";
    for (size_t i = 0; i < t.counters.counters.size(); ++i) {
        os << (i ? "," : "") << "\n    {\"name\": \""
           << jsonEscape(t.counters.counters[i].first)
           << "\", \"value\": " << t.counters.counters[i].second << "}";
    }
    os << (t.counters.counters.empty() ? "" : "\n  ") << "],\n";

    os << "  \"gauges\": [";
    for (size_t i = 0; i < t.counters.gauges.size(); ++i) {
        os << (i ? "," : "") << "\n    {\"name\": \""
           << jsonEscape(t.counters.gauges[i].first)
           << "\", \"value\": " << jsonNum(t.counters.gauges[i].second)
           << "}";
    }
    os << (t.counters.gauges.empty() ? "" : "\n  ") << "],\n";

    os << "  \"durations\": [";
    for (size_t i = 0; i < t.counters.durations.size(); ++i) {
        const DurationStats &d = t.counters.durations[i].second;
        os << (i ? "," : "") << "\n    {\"name\": \""
           << jsonEscape(t.counters.durations[i].first)
           << "\", \"count\": " << d.count << ", \"sum_ms\": "
           << jsonNum(d.sumMs) << ", \"min_ms\": " << jsonNum(d.minMs)
           << ", \"max_ms\": " << jsonNum(d.maxMs) << ", \"buckets\": [";
        const size_t used = usedBuckets(d);
        for (size_t b = 0; b < used; ++b)
            os << (b ? ", " : "") << d.buckets[b];
        os << "]}";
    }
    os << (t.counters.durations.empty() ? "" : "\n  ") << "]\n"
       << "}\n";
}

std::string
runTelemetryToString(const RunTelemetry &t)
{
    std::ostringstream os;
    writeRunTelemetryJson(t, os);
    return os.str();
}

std::optional<RunTelemetry>
parseRunTelemetry(const std::string &text)
{
    const auto doc = parseJson(text);
    if (!doc || doc->kind != JsonValue::Kind::Object)
        return std::nullopt;
    if (fieldNum(*doc, "telemetry_version") != RunTelemetry::kVersion)
        return std::nullopt;

    RunTelemetry t;
    t.tool = fieldStr(*doc, "tool");
    t.scenario = fieldStr(*doc, "scenario");
    t.logicalClock = fieldNum(*doc, "logical_clock") != 0.0;
    t.threads = static_cast<int>(fieldNum(*doc, "threads"));
    t.sessions = fieldU64(*doc, "sessions");
    t.events = fieldU64(*doc, "events");
    t.sessionsPerSec = fieldNum(*doc, "sessions_per_sec");
    t.eventsPerSec = fieldNum(*doc, "events_per_sec");

    if (const JsonValue *stage = doc->find("stage_ms")) {
        t.planMs = fieldNum(*stage, "plan");
        t.executeMs = fieldNum(*stage, "execute");
        t.persistMs = fieldNum(*stage, "persist");
        t.reduceMs = fieldNum(*stage, "reduce");
        t.totalMs = fieldNum(*stage, "total");
    }
    if (const JsonValue *cache = doc->find("trace_cache")) {
        t.cacheHits = fieldU64(*cache, "hits");
        t.cacheMisses = fieldU64(*cache, "misses");
        t.cacheEvictions = fieldU64(*cache, "evictions");
        t.cacheDuplicateSynthesis =
            fieldU64(*cache, "duplicate_synthesis");
    }
    if (const JsonValue *ckpt = doc->find("checkpoint")) {
        t.checkpointFlushes = fieldU64(*ckpt, "flushes");
        t.checkpointBytes = fieldU64(*ckpt, "bytes");
    }
    if (const JsonValue *mem = doc->find("mem"))
        t.peakRssKb = fieldU64(*mem, "peak_rss_kb");
    if (const JsonValue *pool = doc->find("thread_pool")) {
        t.poolTasks = fieldU64(*pool, "tasks");
        t.poolMaxQueueDepth = fieldU64(*pool, "max_queue_depth");
        t.poolBusyMs = fieldNum(*pool, "busy_ms");
        t.poolIdleMs = fieldNum(*pool, "idle_ms");
    }
    if (const JsonValue *scaling = doc->find("scaling")) {
        t.parallelEfficiency = fieldNum(*scaling, "parallel_efficiency");
        t.cacheLockWaits = fieldU64(*scaling, "cache_lock_waits");
        t.cacheLockWaitMs = fieldNum(*scaling, "cache_lock_wait_ms");
        t.persistLockWaits = fieldU64(*scaling, "persist_lock_waits");
        t.persistLockWaitMs = fieldNum(*scaling, "persist_lock_wait_ms");
        t.poolQueueTasks = fieldU64(*scaling, "queue_tasks");
        t.poolQueueWaitMs = fieldNum(*scaling, "queue_wait_ms");
        t.poolQueueWaitMeanMs = fieldNum(*scaling, "queue_wait_mean_ms");
        if (const JsonValue *workers = scaling->find("workers")) {
            for (const JsonValue &row : workers->arr) {
                WorkerScaling w;
                w.tasks = fieldU64(row, "tasks");
                w.busyMs = fieldNum(row, "busy_ms");
                w.idleMs = fieldNum(row, "idle_ms");
                w.queueWaitMs = fieldNum(row, "queue_wait_ms");
                t.workers.push_back(w);
            }
        }
    }

    if (const JsonValue *counters = doc->find("counters")) {
        for (const JsonValue &row : counters->arr)
            t.counters.counters.emplace_back(fieldStr(row, "name"),
                                             fieldU64(row, "value"));
    }
    if (const JsonValue *gauges = doc->find("gauges")) {
        for (const JsonValue &row : gauges->arr)
            t.counters.gauges.emplace_back(fieldStr(row, "name"),
                                           fieldNum(row, "value"));
    }
    if (const JsonValue *durations = doc->find("durations")) {
        for (const JsonValue &row : durations->arr) {
            DurationStats d;
            d.count = fieldU64(row, "count");
            d.sumMs = fieldNum(row, "sum_ms");
            d.minMs = fieldNum(row, "min_ms");
            d.maxMs = fieldNum(row, "max_ms");
            if (const JsonValue *buckets = row.find("buckets")) {
                const size_t n =
                    std::min(buckets->arr.size(),
                             static_cast<size_t>(DurationStats::kBuckets));
                for (size_t b = 0; b < n; ++b)
                    d.buckets[b] = buckets->arr[b].number64();
            }
            t.counters.durations.emplace_back(fieldStr(row, "name"), d);
        }
    }
    return t;
}

namespace {

// Folds ingest parts parsed from JSON, where a non-finite value
// round-trips as quoted "NaN"/"Infinity".  One poisoned part must not
// poison the whole rollup (perf-ledger samples and pes_perf noise
// bands consume folded means), so sums skip non-finite contributions.
void
addFinite(double &into, double part)
{
    if (std::isfinite(part))
        into += part;
}

} // namespace

void
foldRunTelemetry(RunTelemetry &into, const RunTelemetry &part)
{
    if (into.sessions == 0 && into.events == 0) {
        into.tool = part.tool;
        into.threads = part.threads;
        into.logicalClock = part.logicalClock;
    }
    into.sessions += part.sessions;
    into.events += part.events;
    addFinite(into.planMs, part.planMs);
    addFinite(into.executeMs, part.executeMs);
    addFinite(into.persistMs, part.persistMs);
    addFinite(into.reduceMs, part.reduceMs);
    addFinite(into.totalMs, part.totalMs);
    into.cacheHits += part.cacheHits;
    into.cacheMisses += part.cacheMisses;
    into.cacheEvictions += part.cacheEvictions;
    into.cacheDuplicateSynthesis += part.cacheDuplicateSynthesis;
    into.checkpointFlushes += part.checkpointFlushes;
    into.checkpointBytes += part.checkpointBytes;
    // One process, one high-water mark: parts fold by max, not sum.
    into.peakRssKb = std::max(into.peakRssKb, part.peakRssKb);
    into.poolTasks += part.poolTasks;
    into.poolMaxQueueDepth =
        std::max(into.poolMaxQueueDepth, part.poolMaxQueueDepth);
    addFinite(into.poolBusyMs, part.poolBusyMs);
    addFinite(into.poolIdleMs, part.poolIdleMs);

    // Scaling: lock waits sum; workers merge index-wise (the stress
    // rollup reuses the same pool shape across cells); parallel
    // efficiency needs a t1 anchor, so a fold leaves it unset.
    into.cacheLockWaits += part.cacheLockWaits;
    addFinite(into.cacheLockWaitMs, part.cacheLockWaitMs);
    into.persistLockWaits += part.persistLockWaits;
    addFinite(into.persistLockWaitMs, part.persistLockWaitMs);
    into.poolQueueTasks += part.poolQueueTasks;
    addFinite(into.poolQueueWaitMs, part.poolQueueWaitMs);
    // All-idle rollups (queue_tasks == 0) must emit 0, never NaN: the
    // folded mean feeds perf-ledger samples as-is.
    into.poolQueueWaitMeanMs =
        into.poolQueueTasks > 0 && std::isfinite(into.poolQueueWaitMs)
            ? into.poolQueueWaitMs /
                  static_cast<double>(into.poolQueueTasks)
            : 0.0;
    into.parallelEfficiency = 0.0;
    if (into.workers.size() < part.workers.size())
        into.workers.resize(part.workers.size());
    for (size_t i = 0; i < part.workers.size(); ++i) {
        into.workers[i].tasks += part.workers[i].tasks;
        addFinite(into.workers[i].busyMs, part.workers[i].busyMs);
        addFinite(into.workers[i].idleMs, part.workers[i].idleMs);
        addFinite(into.workers[i].queueWaitMs, part.workers[i].queueWaitMs);
    }

    // Canonical counter merge, mirroring TelemetryRegistry::snapshot().
    std::map<std::string, uint64_t> counters(
        into.counters.counters.begin(), into.counters.counters.end());
    for (const auto &entry : part.counters.counters)
        counters[entry.first] += entry.second;
    std::map<std::string, double> gauges(into.counters.gauges.begin(),
                                         into.counters.gauges.end());
    for (const auto &entry : part.counters.gauges) {
        auto it = gauges.find(entry.first);
        if (it == gauges.end())
            gauges.emplace(entry.first, entry.second);
        else
            it->second = std::max(it->second, entry.second);
    }
    std::map<std::string, DurationStats> durations(
        into.counters.durations.begin(), into.counters.durations.end());
    for (const auto &entry : part.counters.durations)
        durations[entry.first].merge(entry.second);

    into.counters.counters.assign(counters.begin(), counters.end());
    into.counters.gauges.assign(gauges.begin(), gauges.end());
    into.counters.durations.assign(durations.begin(), durations.end());
    into.recomputeRates();
}

uint64_t
currentPeakRssKb()
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    uint64_t kb = 0;
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            unsigned long long parsed = 0;
            if (std::sscanf(line + 6, "%llu", &parsed) == 1)
                kb = parsed;
            break;
        }
    }
    std::fclose(f);
    return kb;
}

} // namespace pes
