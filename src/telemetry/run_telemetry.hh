/**
 * @file
 * RunTelemetry: the versioned JSON summary of one instrumented run.
 *
 * Where a FleetReport is the deterministic WHAT of a sweep (metric
 * values, byte-identical for any thread count), RunTelemetry is the
 * HOW FAST: sessions/sec and events/sec, per-stage wall time through
 * the runner's plan→execute→persist→reduce pipeline, trace-cache
 * traffic, thread-pool saturation, checkpoint cost, and the full
 * counter snapshot of the armed TelemetryRegistry.
 *
 * Determinism contract: telemetry artifacts are explicitly EXEMPT from
 * the byte-identity guarantee — they carry wall-clock values — EXCEPT
 * under the logical clock, where every wall-derived or scheduling-
 * dependent field (rates, stage times, pool busy/idle, queue depth) is
 * zeroed so a single-threaded logical-clock run is byte-reproducible.
 * The flag is recorded in the artifact ("logical_clock") so consumers
 * can tell structural summaries from timed ones.
 *
 * The schema is versioned ("telemetry_version"); parseRunTelemetry
 * rejects documents of a different version rather than guessing.
 */

#ifndef PES_TELEMETRY_RUN_TELEMETRY_HH
#define PES_TELEMETRY_RUN_TELEMETRY_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/telemetry.hh"

namespace pes {

/**
 * One worker's slice of the execute stage, promoted from
 * ThreadPoolWorkerStats into the telemetry artifact (scaling section).
 */
struct WorkerScaling
{
    uint64_t tasks = 0;
    double busyMs = 0.0;
    double idleMs = 0.0;
    double queueWaitMs = 0.0;
};

/** Serializable performance summary of one run. */
struct RunTelemetry
{
    /** Schema version (bumped on layout changes). v2 adds the scaling
     *  section and trace_cache duplicate_synthesis; v3 adds pool
     *  queue-wait attribution (tasks, total and mean wait) to scaling;
     *  v4 adds the "mem" section (peak_rss_kb high-water mark). */
    static constexpr int kVersion = 4;

    /** Producing verb: "run", "stress", "merge", "bench". */
    std::string tool = "run";
    /** Scenario identity ("<family>@<severity>"; empty = baseline). */
    std::string scenario;
    /** Logical-clock run: wall-derived fields are zeroed (see above). */
    bool logicalClock = false;
    int threads = 0;

    uint64_t sessions = 0;
    uint64_t events = 0;
    double sessionsPerSec = 0.0;
    double eventsPerSec = 0.0;

    /** Per-stage wall time of the runner pipeline (ms). */
    double planMs = 0.0;
    double executeMs = 0.0;
    double persistMs = 0.0;
    double reduceMs = 0.0;
    /** Whole-pipeline wall time (ms). */
    double totalMs = 0.0;

    /** TraceCache traffic (0 when sharing was off). */
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    /** Materializations discarded to a first-insert-wins race. */
    uint64_t cacheDuplicateSynthesis = 0;

    /** Persist-stage checkpoint cost. */
    uint64_t checkpointFlushes = 0;
    uint64_t checkpointBytes = 0;

    /**
     * Process peak RSS in KiB (VmHWM from /proc/self/status), sampled
     * at the runner's stage boundaries. A scheduling-dependent OS
     * figure, so it is zeroed under the logical clock like the wall
     * times; 0 also on platforms without /proc. The bounded-memory CI
     * gate reads it: a 100k-user mixture sweep must sit in the same
     * envelope as a 1k-user one (sketches, not samples).
     */
    uint64_t peakRssKb = 0;

    /** ThreadPool saturation over the execute stage. */
    uint64_t poolTasks = 0;
    uint64_t poolMaxQueueDepth = 0;
    double poolBusyMs = 0.0;
    double poolIdleMs = 0.0;

    /**
     * Scaling attribution: where parallel speedup goes to die. Lock
     * waits name the contended mutexes (TraceCache, PersistSink push);
     * workers break execute-stage time down per worker; parallel
     * efficiency = rate_tN / (N · rate_t1) needs a t1 anchor, so it is
     * filled by consumers that have one (bench, pes_perf) and stays 0
     * in a single run. All of it is scheduling-dependent and zeroed
     * under the logical clock.
     */
    double parallelEfficiency = 0.0;
    uint64_t cacheLockWaits = 0;
    double cacheLockWaitMs = 0.0;
    uint64_t persistLockWaits = 0;
    double persistLockWaitMs = 0.0;
    /**
     * Queue-wait attribution: how long submitted tasks sat queued
     * before a worker picked them up — the task count behind the
     * number, the raw sum, and the mean wait per task (the readable
     * figure: a raw sum grows with task count even when each task
     * barely waited).
     */
    uint64_t poolQueueTasks = 0;
    double poolQueueWaitMs = 0.0;
    double poolQueueWaitMeanMs = 0.0;
    std::vector<WorkerScaling> workers;

    /** Full registry snapshot (name-sorted; may be empty). */
    TelemetrySnapshot counters;

    /** Recompute sessionsPerSec/eventsPerSec from totals (0 guard). */
    void recomputeRates();
};

/** Write @p t as a deterministic-key-order JSON object. */
void writeRunTelemetryJson(const RunTelemetry &t, std::ostream &os);

/** Serialize to a string. */
std::string runTelemetryToString(const RunTelemetry &t);

/**
 * Parse a document produced by writeRunTelemetryJson; nullopt on
 * malformed input or a telemetry_version mismatch.
 */
std::optional<RunTelemetry> parseRunTelemetry(const std::string &text);

/**
 * Fold @p part into @p into (the stress grid rollup): sessions,
 * events, stage times, cache/checkpoint/pool totals sum; queue depth
 * takes the max; counters merge canonically; rates recompute from the
 * folded totals. tool/threads/logicalClock are taken from @p part when
 * @p into is empty (zero sessions and events).
 */
void foldRunTelemetry(RunTelemetry &into, const RunTelemetry &part);

/**
 * The process's peak resident set size in KiB (VmHWM from
 * /proc/self/status); 0 when unavailable. Monotone over a process
 * lifetime — callers sample it at stage boundaries and keep the max.
 */
uint64_t currentPeakRssKb();

} // namespace pes

#endif // PES_TELEMETRY_RUN_TELEMETRY_HH
