#include "telemetry/telemetry.hh"

#include <algorithm>
#include <cmath>

namespace pes {

void
DurationStats::record(double ms)
{
    if (count == 0) {
        minMs = ms;
        maxMs = ms;
    } else {
        minMs = std::min(minMs, ms);
        maxMs = std::max(maxMs, ms);
    }
    ++count;
    sumMs += ms;
    // Bucket on whole microseconds: bucket i covers [2^i, 2^(i+1)) us,
    // with sub-microsecond samples landing in bucket 0.
    const double us = ms * 1000.0;
    int bucket = 0;
    if (us >= 1.0) {
        const auto whole = static_cast<uint64_t>(us);
        while ((uint64_t{1} << (bucket + 1)) <= whole &&
               bucket + 1 < kBuckets - 1)
            ++bucket;
    }
    ++buckets[static_cast<size_t>(bucket)];
}

void
DurationStats::merge(const DurationStats &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        minMs = other.minMs;
        maxMs = other.maxMs;
    } else {
        minMs = std::min(minMs, other.minMs);
        maxMs = std::max(maxMs, other.maxMs);
    }
    count += other.count;
    sumMs += other.sumMs;
    for (int i = 0; i < kBuckets; ++i)
        buckets[static_cast<size_t>(i)] +=
            other.buckets[static_cast<size_t>(i)];
}

uint64_t
TelemetrySnapshot::counter(const std::string &name) const
{
    for (const auto &entry : counters) {
        if (entry.first == name)
            return entry.second;
    }
    return 0;
}

double
TelemetrySnapshot::gaugeValue(const std::string &name) const
{
    for (const auto &entry : gauges) {
        if (entry.first == name)
            return entry.second;
    }
    return 0.0;
}

TelemetryShard *
TelemetryRegistry::makeShard()
{
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<TelemetryShard>());
    return shards_.back().get();
}

void
TelemetryRegistry::count(const std::string &name, uint64_t delta)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    root_.count(name, delta);
}

void
TelemetryRegistry::gauge(const std::string &name, double value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    root_.gauge(name, value);
}

void
TelemetryRegistry::duration(const std::string &name, double ms)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    root_.duration(name, ms);
}

TelemetrySnapshot
TelemetryRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Canonical merge: root first, then shards in creation order, into
    // name-keyed maps (sorted, so the emitted series are name-ordered).
    std::map<std::string, uint64_t> counters = root_.counters_;
    std::map<std::string, double> gauges = root_.gauges_;
    std::map<std::string, DurationStats> durations = root_.durations_;
    for (const auto &shard : shards_) {
        for (const auto &entry : shard->counters_)
            counters[entry.first] += entry.second;
        for (const auto &entry : shard->gauges_) {
            auto it = gauges.find(entry.first);
            if (it == gauges.end())
                gauges.emplace(entry.first, entry.second);
            else
                it->second = std::max(it->second, entry.second);
        }
        for (const auto &entry : shard->durations_)
            durations[entry.first].merge(entry.second);
    }
    TelemetrySnapshot snap;
    snap.counters.assign(counters.begin(), counters.end());
    snap.gauges.assign(gauges.begin(), gauges.end());
    snap.durations.assign(durations.begin(), durations.end());
    return snap;
}

} // namespace pes
