/**
 * @file
 * Structured runtime counters for the fleet platform.
 *
 * A TelemetryRegistry is a named collection of counters (monotone
 * uint64 sums), gauges (doubles merged by max — high-water marks), and
 * duration histograms (log2-bucketed microseconds with count/sum/
 * min/max). It is compiled in unconditionally and gated at runtime:
 * every call site branches on a bool (a null registry pointer or
 * enabled() == false) and the disabled path does no other work, so an
 * uninstrumented run pays one predictable branch per site.
 *
 * Thread model: hot paths record into per-worker TelemetryShard
 * objects (plain maps, no locks — one writer each); low-frequency
 * sites use the registry's own locked convenience calls, which land in
 * a root shard. snapshot() merges the root and every worker shard in
 * creation (shard-id) order and emits name-sorted series — the
 * canonical order. Counter and bucket merges are integer sums and
 * gauge merges are max, so a snapshot is deterministic for any worker
 * interleaving as long as each shard's content is deterministic.
 *
 * Telemetry NEVER feeds back into results: nothing in this module is
 * consulted by schedulers, the simulator, or reduction, so arming a
 * registry cannot change report bytes (locked by tests and CI).
 */

#ifndef PES_TELEMETRY_TELEMETRY_HH
#define PES_TELEMETRY_TELEMETRY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pes {

/** Merged summary of one duration series (milliseconds). */
struct DurationStats
{
    /** log2 microsecond buckets: bucket i counts durations in
     *  [2^i, 2^(i+1)) us; bucket 0 also takes sub-microsecond. */
    static constexpr int kBuckets = 32;

    uint64_t count = 0;
    double sumMs = 0.0;
    double minMs = 0.0;
    double maxMs = 0.0;
    std::array<uint64_t, kBuckets> buckets{};

    /** Fold one duration sample in. */
    void record(double ms);
    /** Fold another accumulation in (counts sum, extrema widen). */
    void merge(const DurationStats &other);
    /** Mean duration (0 when empty). */
    double meanMs() const { return count ? sumMs / count : 0.0; }
};

/**
 * Unsynchronized accumulation area for one writer (a worker thread).
 * Obtain via TelemetryRegistry::makeShard(); the registry owns it.
 */
class TelemetryShard
{
  public:
    /** Add @p delta to counter @p name. */
    void count(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Raise gauge @p name to @p value (gauges merge by max). */
    void gauge(const std::string &name, double value)
    {
        auto it = gauges_.find(name);
        if (it == gauges_.end())
            gauges_.emplace(name, value);
        else if (value > it->second)
            it->second = value;
    }

    /** Record one duration sample into histogram @p name. */
    void duration(const std::string &name, double ms)
    {
        durations_[name].record(ms);
    }

  private:
    friend class TelemetryRegistry;

    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, DurationStats> durations_;
};

/** Point-in-time merge of a registry: name-sorted series. */
struct TelemetrySnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, DurationStats>> durations;

    /** Counter value (0 when absent). */
    uint64_t counter(const std::string &name) const;
    /** Gauge value (0.0 when absent). */
    double gaugeValue(const std::string &name) const;
};

/**
 * A named, runtime-gated collection of counters/gauges/histograms.
 */
class TelemetryRegistry
{
  public:
    TelemetryRegistry() = default;
    TelemetryRegistry(const TelemetryRegistry &) = delete;
    TelemetryRegistry &operator=(const TelemetryRegistry &) = delete;

    /** Arm or disarm the registry. Disabled registries ignore every
     *  recording call (the branch-on-a-bool contract). */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /** Whether recording calls do anything. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Allocate a shard for one writer thread. The registry owns the
     * shard; pointers stay valid for the registry's lifetime. Create
     * shards up front (e.g. one per worker index) so snapshot merge
     * order is deterministic.
     */
    TelemetryShard *makeShard();

    /** Locked convenience recorders (low-frequency call sites). */
    void count(const std::string &name, uint64_t delta = 1);
    void gauge(const std::string &name, double value);
    void duration(const std::string &name, double ms);

    /**
     * Merge the root shard and every makeShard() shard, in creation
     * order, into name-sorted series. Callable while writers are idle
     * (the fleet runner snapshots after its pool drains).
     */
    TelemetrySnapshot snapshot() const;

  private:
    std::atomic<bool> enabled_{true};
    mutable std::mutex mutex_;
    TelemetryShard root_;
    std::vector<std::unique_ptr<TelemetryShard>> shards_;
};

} // namespace pes

#endif // PES_TELEMETRY_TELEMETRY_HH
