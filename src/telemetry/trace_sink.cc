#include "telemetry/trace_sink.hh"

#include <algorithm>
#include <ostream>

#include "util/json.hh"

namespace pes {

TraceEventSink::TraceEventSink(Clock clock)
    : clock_(clock), epoch_(std::chrono::steady_clock::now())
{
}

uint64_t
TraceEventSink::nowUs()
{
    if (clock_ == Clock::Logical)
        return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
TraceEventSink::span(int lane, const std::string &name,
                     const std::string &cat, uint64_t start_us,
                     uint64_t end_us)
{
    Event event;
    event.phase = 'X';
    event.lane = lane;
    event.ts = start_us;
    event.dur = end_us >= start_us ? end_us - start_us : 0;
    event.name = name;
    event.cat = cat;
    std::lock_guard<std::mutex> lock(mutex_);
    event.seq = nextSeq_++;
    events_.push_back(std::move(event));
}

void
TraceEventSink::instant(int lane, const std::string &name,
                        const std::string &cat)
{
    Event event;
    event.phase = 'i';
    event.lane = lane;
    event.ts = nowUs();
    event.name = name;
    event.cat = cat;
    std::lock_guard<std::mutex> lock(mutex_);
    event.seq = nextSeq_++;
    events_.push_back(std::move(event));
}

void
TraceEventSink::nameLane(int lane, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    laneNames_[lane] = name;
}

size_t
TraceEventSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
TraceEventSink::write(std::ostream &os) const
{
    std::vector<Event> events;
    std::map<int, std::string> lanes;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events = events_;
        lanes = laneNames_;
    }
    // Canonical serialization order: equal-content buffers produced by
    // different worker interleavings write identical bytes.
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.ts != b.ts)
                      return a.ts < b.ts;
                  if (a.lane != b.lane)
                      return a.lane < b.lane;
                  return a.seq < b.seq;
              });

    os << "{\"traceEvents\": [";
    bool first = true;
    const auto comma = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
    };
    for (const auto &entry : lanes) {
        comma();
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
              "\"tid\": "
           << entry.first << ", \"args\": {\"name\": \""
           << jsonEscape(entry.second) << "\"}}";
    }
    for (const Event &event : events) {
        comma();
        os << "{\"name\": \"" << jsonEscape(event.name)
           << "\", \"cat\": \"" << jsonEscape(event.cat)
           << "\", \"ph\": \"" << event.phase << "\", \"ts\": "
           << event.ts;
        if (event.phase == 'X')
            os << ", \"dur\": " << event.dur;
        os << ", \"pid\": 1, \"tid\": " << event.lane;
        if (event.phase == 'i')
            os << ", \"s\": \"t\"";
        os << "}";
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

} // namespace pes
