/**
 * @file
 * Chrome trace-event sink: runner spans viewable in Perfetto.
 *
 * A TraceEventSink buffers complete spans ("ph":"X"), instant events
 * ("ph":"i") and lane names, then writes the Chrome trace-event JSON
 * object format ({"traceEvents": [...]}) that chrome://tracing and
 * https://ui.perfetto.dev load directly. Lanes map to trace "tid"s:
 * the fleet runner uses lane 0 for its pipeline stages, lanes 1..N for
 * the N workers' per-job spans, and one extra lane for store/cache
 * instants (checkpoint flushes, trace-cache evictions).
 *
 * Clocks: Wall mode timestamps events in microseconds from the sink's
 * construction (steady clock) — real durations, different bytes every
 * run. Logical mode draws every timestamp from a shared monotone
 * counter instead, so the trace carries structure (ordering, nesting,
 * lane layout) with virtual time; a single-threaded run produces
 * byte-identical trace files, which is what the committed logical
 * trace golden locks. write() orders events by (ts, lane, seq) so
 * equal-content buffers serialize identically regardless of the
 * interleaving that produced them.
 *
 * Thread model: event appends take one mutex; nowUs() is lock-free.
 * The sink never calls back into any instrumented component, so it can
 * be invoked from under other locks (the trace cache's eviction hook).
 */

#ifndef PES_TELEMETRY_TRACE_SINK_HH
#define PES_TELEMETRY_TRACE_SINK_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pes {

/**
 * Buffering Chrome trace-event sink.
 */
class TraceEventSink
{
  public:
    enum class Clock
    {
        /** Microseconds since sink construction (steady clock). */
        Wall = 0,
        /** Virtual time: every nowUs() call is one monotone tick. */
        Logical,
    };

    explicit TraceEventSink(Clock clock = Clock::Wall);
    TraceEventSink(const TraceEventSink &) = delete;
    TraceEventSink &operator=(const TraceEventSink &) = delete;

    /** Whether this sink runs on the logical clock. */
    bool logicalClock() const { return clock_ == Clock::Logical; }

    /** Current timestamp in trace time units (see Clock). */
    uint64_t nowUs();

    /** Append a complete span on @p lane covering [start, end]. */
    void span(int lane, const std::string &name, const std::string &cat,
              uint64_t start_us, uint64_t end_us);

    /** Append a thread-scoped instant event on @p lane, stamped now. */
    void instant(int lane, const std::string &name,
                 const std::string &cat);

    /** Name @p lane (emitted as a thread_name metadata event). */
    void nameLane(int lane, const std::string &name);

    /** Buffered span + instant events so far. */
    size_t eventCount() const;

    /**
     * Write the Chrome trace-event JSON object. Events are ordered by
     * (timestamp, lane, append sequence); metadata lane names come
     * first. The buffer is left intact (write is repeatable).
     */
    void write(std::ostream &os) const;

  private:
    struct Event
    {
        char phase = 'X';
        int lane = 0;
        uint64_t ts = 0;
        uint64_t dur = 0;
        uint64_t seq = 0;
        std::string name;
        std::string cat;
    };

    const Clock clock_;
    const std::chrono::steady_clock::time_point epoch_;
    std::atomic<uint64_t> tick_{0};
    mutable std::mutex mutex_;
    std::vector<Event> events_;
    std::map<int, std::string> laneNames_;
    uint64_t nextSeq_ = 0;
};

/**
 * RAII span: stamps the start at construction and appends the span at
 * destruction. A null sink makes both ends no-ops, so call sites stay
 * unconditional.
 */
class TraceSpan
{
  public:
    TraceSpan(TraceEventSink *sink, int lane, std::string name,
              std::string cat)
        : sink_(sink), lane_(lane), name_(std::move(name)),
          cat_(std::move(cat)), start_(sink ? sink->nowUs() : 0)
    {
    }

    ~TraceSpan()
    {
        if (sink_)
            sink_->span(lane_, name_, cat_, start_, sink_->nowUs());
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    TraceEventSink *sink_;
    int lane_;
    std::string name_;
    std::string cat_;
    uint64_t start_;
};

} // namespace pes

#endif // PES_TELEMETRY_TRACE_SINK_HH
