#include "trace/app_profile.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace pes {

namespace {

AppProfile
makeProfile(const std::string &name, bool seen)
{
    AppProfile p;
    p.name = name;
    p.seen = seen;
    p.domSeed = hashString(name.c_str());
    return p;
}

std::vector<AppProfile>
buildRegistry()
{
    std::vector<AppProfile> apps;

    // ---------------- 12 seen applications ----------------
    {
        // Chinese portal: dense links, long pages.
        AppProfile p = makeProfile("163", true);
        p.numPages = 5;
        p.pageHeightFactor = 4.5;
        p.linkDensity = 0.55;
        p.buttonDensity = 0.30;
        p.behaviorTemp = 0.26;
        p.loadWorkScale = 1.2;
        p.renderScale = 1.1;
        p.navBias = 0.16;
        apps.push_back(p);
    }
    {
        AppProfile p = makeProfile("msn", true);
        p.pageHeightFactor = 4.0;
        p.linkDensity = 0.45;
        p.buttonDensity = 0.30;
        p.behaviorTemp = 0.17;
        p.loadWorkScale = 1.1;
        p.moveBias = 1.25;
        apps.push_back(p);
    }
    {
        // Sparse text site: very predictable users (paper: 97%).
        AppProfile p = makeProfile("slashdot", true);
        p.pageHeightFactor = 5.0;
        p.linkDensity = 0.25;
        p.buttonDensity = 0.15;
        p.menuCount = 1;
        p.behaviorTemp = 0.15;
        p.moveBias = 1.6;
        p.tapWorkScale = 0.8;
        apps.push_back(p);
    }
    {
        // Media-heavy; taps open players (heavy callbacks).
        AppProfile p = makeProfile("youtube", true);
        p.pageHeightFactor = 3.5;
        p.buttonDensity = 0.55;
        p.linkDensity = 0.20;
        p.behaviorTemp = 0.3;
        p.tapWorkScale = 1.5;
        p.heavyTapFraction = 0.14;
        p.renderScale = 1.25;
        p.clickManifestation = 0.15;  // touch-first UI
        p.scrollManifestation = false;
        apps.push_back(p);
    }
    {
        // Search: huge clickable area, least predictable (paper: 82.2%).
        AppProfile p = makeProfile("google", true);
        p.numPages = 6;
        p.pageHeightFactor = 2.5;
        p.linkDensity = 0.65;
        p.buttonDensity = 0.50;
        p.hasForm = true;
        p.behaviorTemp = 0.52;
        p.loadWorkScale = 0.7;
        p.tapWorkScale = 0.7;
        p.navBias = 0.2;
                apps.push_back(p);
    }
    {
        // Shopping: large clickable area, harder to predict (Sec. 6.2).
        AppProfile p = makeProfile("amazon", true);
        p.numPages = 6;
        p.pageHeightFactor = 4.0;
        p.linkDensity = 0.50;
        p.buttonDensity = 0.60;
        p.hasForm = true;
        p.behaviorTemp = 0.45;
        p.loadWorkScale = 1.3;
        p.tapWorkScale = 1.1;
        p.heavyTapFraction = 0.10;
        p.clickManifestation = 0.10;
        apps.push_back(p);
    }
    {
        AppProfile p = makeProfile("ebay", true);
        p.numPages = 5;
        p.pageHeightFactor = 3.5;
        p.linkDensity = 0.45;
        p.buttonDensity = 0.50;
        p.hasForm = true;
        p.behaviorTemp = 0.37;
        p.loadWorkScale = 1.15;
        p.clickManifestation = 0.2;
        p.scrollManifestation = false;
        apps.push_back(p);
    }
    {
        // Chinese portal: heavy pages, many sections.
        AppProfile p = makeProfile("sina", true);
        p.pageHeightFactor = 5.0;
        p.linkDensity = 0.55;
        p.buttonDensity = 0.35;
        p.behaviorTemp = 0.19;
        p.loadWorkScale = 1.35;
        p.renderScale = 1.2;
        p.tapWorkScale = 0.5;   // compute-light events (paper Sec. 6.4)
        p.moveWorkScale = 0.6;
        p.navBias = 0.16;
        apps.push_back(p);
    }
    {
        AppProfile p = makeProfile("espn", true);
        p.pageHeightFactor = 4.0;
        p.linkDensity = 0.40;
        p.buttonDensity = 0.40;
        p.behaviorTemp = 0.3;
        p.loadWorkScale = 1.2;
        p.renderScale = 1.15;
        p.moveBias = 1.3;
        apps.push_back(p);
    }
    {
        AppProfile p = makeProfile("bbc", true);
        p.pageHeightFactor = 4.0;
        p.linkDensity = 0.35;
        p.buttonDensity = 0.30;
        p.behaviorTemp = 0.2;
        p.loadWorkScale = 1.0;
        p.moveBias = 1.35;
        apps.push_back(p);
    }
    {
        // The paper's running example (Fig. 2).
        AppProfile p = makeProfile("cnn", true);
        p.pageHeightFactor = 4.5;
        p.linkDensity = 0.40;
        p.buttonDensity = 0.35;
        p.behaviorTemp = 0.3;
        p.loadWorkScale = 1.25;
        p.renderScale = 1.2;
        p.heavyTapFraction = 0.12;
        p.moveBias = 1.2;
        apps.push_back(p);
    }
    {
        // Feed app: scroll-dominated bursts.
        AppProfile p = makeProfile("twitter", true);
        p.numPages = 3;
        p.pageHeightFactor = 6.0;
        p.linkDensity = 0.25;
        p.buttonDensity = 0.45;
        p.behaviorTemp = 0.28;
        p.moveBias = 1.9;
        p.burstiness = 0.5;
        p.clickManifestation = 0.1;
        p.scrollManifestation = false;
        p.tapWorkScale = 0.9;
        apps.push_back(p);
    }

    // ---------------- 6 unseen applications ----------------
    {
        AppProfile p = makeProfile("yahoo", false);
        p.pageHeightFactor = 4.0;
        p.linkDensity = 0.45;
        p.buttonDensity = 0.35;
        p.behaviorTemp = 0.32;
        p.loadWorkScale = 1.1;
        p.navBias = 0.15;
        apps.push_back(p);
    }
    {
        AppProfile p = makeProfile("nytimes", false);
        p.pageHeightFactor = 5.0;
        p.linkDensity = 0.30;
        p.buttonDensity = 0.25;
        p.behaviorTemp = 0.27;
        p.loadWorkScale = 1.2;
        p.renderScale = 1.15;
        p.moveBias = 1.4;
        apps.push_back(p);
    }
    {
        AppProfile p = makeProfile("stackoverflow", false);
        p.pageHeightFactor = 5.5;
        p.linkDensity = 0.35;
        p.buttonDensity = 0.20;
        p.menuCount = 1;
        p.behaviorTemp = 0.17;
        p.tapWorkScale = 0.8;
        p.moveBias = 1.5;
        apps.push_back(p);
    }
    {
        // Chinese shopping: big clickable areas, touch-first.
        AppProfile p = makeProfile("taobao", false);
        p.numPages = 6;
        p.pageHeightFactor = 4.5;
        p.linkDensity = 0.50;
        p.buttonDensity = 0.60;
        p.hasForm = true;
        p.behaviorTemp = 0.43;
        p.loadWorkScale = 1.3;
        p.renderScale = 1.2;
        p.clickManifestation = 0.1;
        p.scrollManifestation = false;
        apps.push_back(p);
    }
    {
        AppProfile p = makeProfile("tmall", false);
        p.numPages = 5;
        p.pageHeightFactor = 4.0;
        p.linkDensity = 0.45;
        p.buttonDensity = 0.55;
        p.hasForm = true;
        p.behaviorTemp = 0.4;
        p.loadWorkScale = 1.25;
        p.heavyTapFraction = 0.10;
        p.clickManifestation = 0.15;
        p.scrollManifestation = false;
        apps.push_back(p);
    }
    {
        AppProfile p = makeProfile("jd", false);
        p.numPages = 5;
        p.pageHeightFactor = 4.0;
        p.linkDensity = 0.45;
        p.buttonDensity = 0.50;
        p.hasForm = true;
        p.behaviorTemp = 0.38;
        p.loadWorkScale = 1.2;
        p.clickManifestation = 0.2;
        apps.push_back(p);
    }

    return apps;
}

std::vector<AppProfile>
buildExtras()
{
    std::vector<AppProfile> apps;
    {
        // Infinite-scroll feed: long sessions of scroll bursts over a
        // very tall page, sparse navigation, touch-first UI. Stresses
        // the Type II/III regimes (compute-light but deadline-tight
        // move events) that dominate modern feed apps.
        AppProfile p = makeProfile("social_feed", false);
        p.numPages = 2;
        p.pageHeightFactor = 8.0;
        p.sectionsPerViewport = 5;
        p.linkDensity = 0.12;
        p.buttonDensity = 0.40;
        p.menuCount = 1;
        p.behaviorTemp = 0.24;
        p.moveBias = 2.4;
        p.tapBias = 0.8;
        p.navBias = 0.05;
        p.burstiness = 0.65;
        p.thinkMedianMs = 3600.0;
        p.clickManifestation = 0.08;   // touch-first UI
        p.scrollManifestation = false;
        p.moveWorkScale = 1.2;         // feed recycling on scroll
        p.tapWorkScale = 0.9;
        p.renderScale = 1.2;           // media-rich cards
        p.heavyTapFraction = 0.10;     // open-post / media taps
        apps.push_back(p);
    }
    return apps;
}

} // namespace

const std::vector<AppProfile> &
appRegistry()
{
    static const std::vector<AppProfile> registry = buildRegistry();
    return registry;
}

const std::vector<AppProfile> &
extraApps()
{
    static const std::vector<AppProfile> extras = buildExtras();
    return extras;
}

std::vector<AppProfile>
seenApps()
{
    std::vector<AppProfile> out;
    for (const AppProfile &p : appRegistry()) {
        if (p.seen)
            out.push_back(p);
    }
    return out;
}

std::vector<AppProfile>
unseenApps()
{
    std::vector<AppProfile> out;
    for (const AppProfile &p : appRegistry()) {
        if (!p.seen)
            out.push_back(p);
    }
    return out;
}

const AppProfile &
appByName(const std::string &name)
{
    for (const AppProfile &p : appRegistry()) {
        if (p.name == name)
            return p;
    }
    for (const AppProfile &p : extraApps()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown application '%s'", name.c_str());
}

} // namespace pes
