/**
 * @file
 * Profiles of the 18 benchmark applications.
 *
 * The paper evaluates 12 Alexa-top-25 applications (used for training and
 * characterization) plus six unseen applications for generalizability
 * (Sec. 3, Sec. 6.1). Real page content and recorded user traces are not
 * redistributable, so each application is described by a compact profile —
 * DOM shape, interactivity density, workload scales, and user-behaviour
 * parameters — from which seeded synthesis reproduces the properties the
 * paper's results depend on: temporal predictability of event sequences,
 * app-dependent prediction difficulty (more clickable area = harder, Sec.
 * 6.2), realistic think-time slack, and a Type I-IV event mix under
 * reactive scheduling (Sec. 4.3).
 */

#ifndef PES_TRACE_APP_PROFILE_HH
#define PES_TRACE_APP_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace pes {

/**
 * Static description of one benchmark application.
 */
struct AppProfile
{
    /** Application name (e.g. "cnn"). */
    std::string name;
    /** True for the 12 applications in the training/characterization set. */
    bool seen = true;
    /** Seed for DOM synthesis (independent of user seeds). */
    uint64_t domSeed = 1;

    // -------- DOM shape --------
    /** Number of pages reachable in the app. */
    int numPages = 4;
    /** Content sections per page (scaled by page height). */
    int sectionsPerViewport = 4;
    /** Page height in viewport multiples. */
    double pageHeightFactor = 3.0;
    /** Probability a content section carries a tappable button. */
    double buttonDensity = 0.45;
    /** Probability a content section carries a navigation link. */
    double linkDensity = 0.35;
    /** Number of collapsible menus in the header. */
    int menuCount = 2;
    /** Items per menu. */
    int menuItems = 5;
    /** Whether the app contains a form (fields + submit). */
    bool hasForm = false;
    /** Fraction of tap handlers registered as click (vs. touchstart). */
    double clickManifestation = 0.9;
    /** True when the app's document move listener is scroll (vs touchmove) */
    bool scrollManifestation = true;

    // -------- Workload scales --------
    /** Multiplier on the base page-load workload. */
    double loadWorkScale = 1.0;
    /** Multiplier on the base tap-callback workload. */
    double tapWorkScale = 1.0;
    /** Multiplier on the base move-callback workload. */
    double moveWorkScale = 1.0;
    /** Rendering (visual complexity) multiplier. */
    double renderScale = 1.0;
    /** Probability a button's callback is inherently heavy (Type I seed). */
    double heavyTapFraction = 0.08;
    /** Log-space sigma of per-instance workload noise. */
    double workSigma = 0.10;

    // -------- User behaviour --------
    /**
     * Softmax temperature of the user model's next-event choice. Higher
     * means less predictable users; roughly tracks clickable density as
     * the paper observes (Sec. 6.2).
     */
    double behaviorTemp = 1.0;
    /** Median think time between non-burst inputs (ms). */
    TimeMs thinkMedianMs = 5600.0;
    /** Probability an input is part of a short burst. */
    double burstiness = 0.25;
    /** Base preference weights: tap / move / nav / submit. */
    double tapBias = 1.0;
    double moveBias = 1.0;
    double navBias = 0.12;
    double submitBias = 0.12;
};

/** All 18 applications (12 seen followed by 6 unseen). */
const std::vector<AppProfile> &appRegistry();

/** The 12 seen applications. */
std::vector<AppProfile> seenApps();

/** The six unseen applications. */
std::vector<AppProfile> unseenApps();

/**
 * Extra (non-paper) applications for fleet workloads. Kept out of
 * appRegistry() so the 18-app paper protocol (training population,
 * figure benches) is untouched; currently the infinite-scroll
 * "social_feed" profile.
 */
const std::vector<AppProfile> &extraApps();

/**
 * Look up an application by name across the registry and the extra
 * profiles; panics when unknown.
 */
const AppProfile &appByName(const std::string &name);

} // namespace pes

#endif // PES_TRACE_APP_PROFILE_HH
