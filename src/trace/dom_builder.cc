#include "trace/dom_builder.hh"

#include <algorithm>

#include "trace/workload_params.hh"
#include "util/rng.hh"

namespace pes {

namespace {

/** Load-work multiplier for a page: page 0 is the cold landing page. */
double
pageLoadFactor(int page_id, Rng &rng)
{
    if (page_id == 0)
        return 1.0;
    return rng.uniform(0.55, 0.90);
}

} // namespace

AppDomBuilder::AppDomBuilder(const AppProfile &profile)
    : profile_(&profile)
{
}

DomEventType
AppDomBuilder::tapTypeFor(const AppProfile &profile, double roll)
{
    // Tap manifestation is a site-wide convention: an app handles taps
    // either through click or through touchstart listeners. (A per-node
    // mix would make the *type* of a tap unpredictable by construction,
    // which matches neither real sites nor the paper's 91% accuracy.)
    (void)roll;
    return profile.clickManifestation >= 0.5 ? DomEventType::Click
                                             : DomEventType::TouchStart;
}

DomEventType
AppDomBuilder::moveTypeFor(const AppProfile &profile)
{
    return profile.scrollManifestation ? DomEventType::Scroll
                                       : DomEventType::TouchMove;
}

WebApp
AppDomBuilder::build() const
{
    const AppProfile &p = *profile_;
    Viewport viewport;
    WebApp app(p.name, viewport);

    Rng rng(p.domSeed);
    std::vector<double> load_factors;
    load_factors.reserve(static_cast<size_t>(p.numPages));
    for (int page = 0; page < p.numPages; ++page)
        load_factors.push_back(pageLoadFactor(page, rng));

    for (int page = 0; page < p.numPages; ++page) {
        Rng page_rng = rng.fork(static_cast<uint64_t>(page) + 101);
        DomTree dom;

        const double view_w = viewport.width;
        const double view_h = viewport.height;
        const double page_h = p.pageHeightFactor * view_h;
        dom.node(dom.root()).rect = {0.0, 0.0, view_w, page_h};

        // ---- Document-level handlers on the root ----
        {
            // Direct navigation / reload of this page.
            HandlerSpec load;
            load.type = DomEventType::Load;
            load.effect = {EffectKind::Navigate, kInvalidNode, page, 0.0};
            load.medianWork = kBaseLoadWork.scaled(
                p.loadWorkScale *
                load_factors[static_cast<size_t>(page)]);
            load.workSigma = p.workSigma;
            load.dirtyNodes = kDirtyNodesLoad;
            load.renderCostScale = kRenderScaleLoad;
            dom.addHandler(dom.root(), load);

            // Document scroll listener.
            HandlerSpec move;
            move.type = moveTypeFor(p);
            move.effect = {EffectKind::ScrollBy, kInvalidNode, -1,
                           view_h * 0.6};
            move.medianWork = kBaseMoveWork.scaled(p.moveWorkScale);
            move.workSigma = p.workSigma;
            move.dirtyNodes = kDirtyNodesMove;
            move.renderCostScale = kRenderScaleMove;
            move.handlerClassId = 7;  // shared document scroll handler
            dom.addHandler(dom.root(), move);
        }

        // ---- Header with collapsible menus ----
        const NodeId header = dom.createNode(
            dom.root(), NodeRole::Container, {0.0, 0.0, view_w, 56.0});
        for (int m = 0; m < p.menuCount; ++m) {
            const double toggle_x = 8.0 + 52.0 * static_cast<double>(m);
            const NodeId toggle = dom.createNode(
                header, NodeRole::MenuToggle,
                {toggle_x, 8.0, 40.0, 40.0});

            const double menu_h = 48.0 * static_cast<double>(p.menuItems);
            const NodeId menu = dom.createNode(
                dom.root(), NodeRole::Container,
                {0.0, 56.0, view_w, menu_h});
            dom.setDisplayed(menu, false);

            HandlerSpec toggle_spec;
            toggle_spec.type = tapTypeFor(p, page_rng.uniform());
            toggle_spec.effect = {EffectKind::ToggleDisplay, menu, -1, 0.0};
            toggle_spec.medianWork = kBaseTapWork.scaled(p.tapWorkScale);
            toggle_spec.workSigma = p.workSigma;
            toggle_spec.dirtyNodes = kDirtyNodesTap + p.menuItems;
            toggle_spec.handlerClassId = 5;  // shared menu-toggle handler
            dom.addHandler(toggle, toggle_spec);

            for (int item = 0; item < p.menuItems; ++item) {
                const NodeId entry = dom.createNode(
                    menu, NodeRole::MenuItem,
                    {0.0, 56.0 + 48.0 * static_cast<double>(item),
                     view_w, 48.0});
                if (page_rng.bernoulli(0.7) && p.numPages > 1) {
                    // Menu entry that navigates (a link semantically).
                    int dest = page_rng.uniformInt(0, p.numPages - 1);
                    if (dest == page)
                        dest = (dest + 1) % p.numPages;
                    HandlerSpec nav;
                    nav.type = DomEventType::Load;
                    nav.effect = {EffectKind::Navigate, kInvalidNode,
                                  dest, 0.0};
                    nav.medianWork = kBaseLoadWork.scaled(
                        p.loadWorkScale *
                        load_factors[static_cast<size_t>(dest)]);
                    nav.workSigma = p.workSigma;
                    nav.dirtyNodes = kDirtyNodesLoad;
                    nav.renderCostScale = kRenderScaleLoad;
                    dom.addHandler(entry, nav);
                } else {
                    HandlerSpec act;
                    act.type = tapTypeFor(p, page_rng.uniform());
                    act.effect = {EffectKind::None, kInvalidNode, -1, 0.0};
                    act.medianWork = kBaseTapWork.scaled(p.tapWorkScale);
                    act.workSigma = p.workSigma;
                    act.dirtyNodes = kDirtyNodesTap;
                    act.handlerClassId = 3;  // shared menu-item handler
                    dom.addHandler(entry, act);
                }
            }
        }

        // ---- Content sections ----
        double y = 64.0;
        const double section_h_base =
            view_h / static_cast<double>(p.sectionsPerViewport);
        while (y < page_h - 40.0) {
            const double section_h = std::min(
                page_h - y,
                section_h_base * page_rng.uniform(0.8, 1.3));
            const NodeId section = dom.createNode(
                dom.root(), NodeRole::Container,
                {0.0, y, view_w, section_h});

            // Static content.
            dom.createNode(section, NodeRole::Text,
                           {12.0, y + 6.0, view_w - 24.0,
                            section_h * 0.35});
            if (page_rng.bernoulli(0.5)) {
                dom.createNode(section, NodeRole::Image,
                               {12.0, y + section_h * 0.45,
                                view_w * 0.45, section_h * 0.45});
            }

            if (page_rng.bernoulli(p.buttonDensity)) {
                const NodeId button = dom.createNode(
                    section, NodeRole::Button,
                    {view_w * 0.55, y + section_h * 0.45,
                     view_w * 0.38, 44.0});
                const bool heavy = page_rng.bernoulli(p.heavyTapFraction);
                HandlerSpec spec;
                spec.type = tapTypeFor(p, page_rng.uniform());
                spec.effect = {EffectKind::None, kInvalidNode, -1, 0.0};
                spec.medianWork =
                    (heavy ? kBaseHeavyTapWork : kBaseTapWork)
                        .scaled(p.tapWorkScale);
                spec.workSigma = p.workSigma;
                spec.dirtyNodes =
                    heavy ? kDirtyNodesHeavyTap : kDirtyNodesTap;
                // Content cards share one of two callbacks: the common
                // light handler or the heavy media handler.
                spec.handlerClassId = heavy ? 2 : 1;
                dom.addHandler(button, spec);
            }

            if (page_rng.bernoulli(p.linkDensity) && p.numPages > 1) {
                const NodeId link = dom.createNode(
                    section, NodeRole::Link,
                    {12.0, y + section_h * 0.82, view_w * 0.6, 28.0});
                int dest = page_rng.uniformInt(0, p.numPages - 1);
                if (dest == page)
                    dest = (dest + 1) % p.numPages;
                HandlerSpec nav;
                nav.type = DomEventType::Load;
                nav.effect = {EffectKind::Navigate, kInvalidNode,
                              dest, 0.0};
                nav.medianWork = kBaseLoadWork.scaled(
                    p.loadWorkScale *
                    load_factors[static_cast<size_t>(dest)]);
                nav.workSigma = p.workSigma;
                nav.dirtyNodes = kDirtyNodesLoad;
                nav.renderCostScale = kRenderScaleLoad;
                dom.addHandler(link, nav);
            }

            y += section_h;
        }

        // ---- Form (search/checkout) on the last page of form apps ----
        if (p.hasForm && page == p.numPages - 1) {
            const double form_y = 72.0;
            for (int field = 0; field < 2; ++field) {
                const NodeId input = dom.createNode(
                    dom.root(), NodeRole::FormField,
                    {24.0, form_y + 56.0 * static_cast<double>(field),
                     view_w - 48.0, 44.0});
                HandlerSpec focus;
                focus.type = tapTypeFor(p, page_rng.uniform());
                focus.effect = {EffectKind::None, kInvalidNode, -1, 0.0};
                focus.medianWork =
                    kBaseFieldTapWork.scaled(p.tapWorkScale);
                focus.workSigma = p.workSigma;
                focus.dirtyNodes = kDirtyNodesField;
                focus.handlerClassId = 4;  // shared field-focus handler
                dom.addHandler(input, focus);
            }
            const NodeId submit = dom.createNode(
                dom.root(), NodeRole::SubmitButton,
                {24.0, form_y + 120.0, view_w - 48.0, 48.0});
            HandlerSpec send;
            send.type = DomEventType::Submit;
            send.effect = {EffectKind::Navigate, kInvalidNode, 0, 0.0};
            send.medianWork = kBaseSubmitWork.scaled(p.tapWorkScale);
            send.workSigma = p.workSigma;
            send.dirtyNodes = kDirtyNodesSubmit;
            send.issuesNetworkRequest = true;
            send.handlerClassId = 6;
            dom.addHandler(submit, send);
        }

        dom.fitRootToContent();
        app.addPage(std::move(dom));
    }

    return app;
}

} // namespace pes
