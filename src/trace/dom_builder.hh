/**
 * @file
 * Seeded synthesis of an application's pages from its profile.
 *
 * Stands in for parsing real HTML/CSS: produces, deterministically from
 * AppProfile::domSeed, a multi-page WebApp whose DOM shape (menus, links,
 * buttons, forms, page length) matches the profile. Handler cost models
 * and semantic effects are attached at "parse" time, which is also when
 * the SemanticTree memoization happens (inside WebApp::addPage).
 */

#ifndef PES_TRACE_DOM_BUILDER_HH
#define PES_TRACE_DOM_BUILDER_HH

#include "trace/app_profile.hh"
#include "web/web_app.hh"

namespace pes {

/**
 * Builds the WebApp for one profile.
 */
class AppDomBuilder
{
  public:
    explicit AppDomBuilder(const AppProfile &profile);

    /** Synthesize all pages. Deterministic in the profile's domSeed. */
    WebApp build() const;

    /** The profile being built. */
    const AppProfile &profile() const { return *profile_; }

    /** The tap-class DOM event type for a node, per app manifestation. */
    static DomEventType tapTypeFor(const AppProfile &profile, double roll);

    /** The move-class DOM event type of the app. */
    static DomEventType moveTypeFor(const AppProfile &profile);

  private:
    const AppProfile *profile_;
};

} // namespace pes

#endif // PES_TRACE_DOM_BUILDER_HH
