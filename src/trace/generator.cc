#include "trace/generator.hh"

#include "trace/dom_builder.hh"

namespace pes {

TraceGenerator::TraceGenerator(const AcmpPlatform &platform)
    : platform_(&platform)
{
}

const WebApp &
TraceGenerator::appFor(const AppProfile &profile)
{
    auto it = apps_.find(profile.name);
    if (it == apps_.end()) {
        AppDomBuilder builder(profile);
        it = apps_.emplace(profile.name,
                           std::make_unique<WebApp>(builder.build())).first;
    }
    return *it->second;
}

InteractionTrace
TraceGenerator::generate(const AppProfile &profile, uint64_t user_seed,
                         const UserParams *trait_scale)
{
    const WebApp &app = appFor(profile);
    UserModel model(profile, app, user_seed, *platform_, trait_scale);
    return model.generateSession();
}

std::vector<InteractionTrace>
TraceGenerator::trainingSet(const AppProfile &profile, int count)
{
    std::vector<InteractionTrace> traces;
    traces.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        traces.push_back(generate(profile, kTrainingSeedBase +
                                  static_cast<uint64_t>(i)));
    return traces;
}

std::vector<InteractionTrace>
TraceGenerator::evaluationSet(const AppProfile &profile, int count)
{
    std::vector<InteractionTrace> traces;
    traces.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        traces.push_back(generate(profile, kEvaluationSeedBase +
                                  static_cast<uint64_t>(i)));
    return traces;
}

} // namespace pes
