/**
 * @file
 * Trace-set construction for training and evaluation.
 *
 * Training traces and evaluation traces come from disjoint user-seed
 * ranges, mirroring the paper's protocol: "all the evaluation traces are
 * different from the training traces ... we collect new user traces for
 * evaluation" (Sec. 6.1). Built apps are cached so every trace of an app
 * shares identical page DOMs.
 */

#ifndef PES_TRACE_GENERATOR_HH
#define PES_TRACE_GENERATOR_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/acmp.hh"
#include "trace/app_profile.hh"
#include "trace/trace.hh"
#include "trace/user_model.hh"

namespace pes {

/**
 * Builds apps (cached) and generates seeded trace sets.
 */
class TraceGenerator
{
  public:
    /** First user seed of the training population. */
    static constexpr uint64_t kTrainingSeedBase = 1000;
    /** First user seed of the evaluation population (disjoint users). */
    static constexpr uint64_t kEvaluationSeedBase = 9000;

    explicit TraceGenerator(const AcmpPlatform &platform);

    /** The generator keeps a pointer to @p platform; a temporary would
     *  dangle by the first generate() call. */
    explicit TraceGenerator(AcmpPlatform &&) = delete;

    /** The (cached) synthesized application for @p profile. */
    const WebApp &appFor(const AppProfile &profile);

    /** One session of user @p user_seed on @p profile. @p trait_scale
     *  optionally scales the seed-sampled UserParams (population
     *  cohorts); null = the homogeneous i.i.d. population. */
    InteractionTrace generate(const AppProfile &profile,
                              uint64_t user_seed,
                              const UserParams *trait_scale = nullptr);

    /** @p count training sessions from the training user population. */
    std::vector<InteractionTrace>
    trainingSet(const AppProfile &profile, int count);

    /** @p count evaluation sessions from fresh users. */
    std::vector<InteractionTrace>
    evaluationSet(const AppProfile &profile, int count);

    /** The platform traces are repaired against. */
    const AcmpPlatform &platform() const { return *platform_; }

  private:
    const AcmpPlatform *platform_;
    std::unordered_map<std::string, std::unique_ptr<WebApp>> apps_;
};

} // namespace pes

#endif // PES_TRACE_GENERATOR_HH
