#include "trace/trace.hh"

#include <fstream>
#include <sstream>

#include "util/rng.hh"
#include "util/strings.hh"

namespace pes {

uint64_t
eventClassKey(const std::string &app_name, int page_id, NodeId node,
              DomEventType type)
{
    const uint64_t app = hashString(app_name.c_str());
    const uint64_t local =
        (static_cast<uint64_t>(static_cast<uint32_t>(page_id)) << 40) |
        (static_cast<uint64_t>(static_cast<uint32_t>(node)) << 8) |
        static_cast<uint64_t>(type);
    return hashCombine(app, local);
}

uint64_t
eventClassKeyFor(const std::string &app_name, int page_id, NodeId node,
                 const HandlerSpec &handler)
{
    // Handler-class ids live in a reserved node-id range so they cannot
    // collide with real node ids.
    constexpr NodeId kHandlerClassBase = 1 << 20;
    if (handler.type == DomEventType::Load &&
        handler.effect.kind == EffectKind::Navigate) {
        return eventClassKey(app_name, handler.effect.pageId,
                             kInvalidNode, handler.type);
    }
    if (handler.handlerClassId >= 0) {
        return eventClassKey(app_name, page_id,
                             kHandlerClassBase + handler.handlerClassId,
                             handler.type);
    }
    return eventClassKey(app_name, page_id, node, handler.type);
}

bool
operator==(const TraceEvent &a, const TraceEvent &b)
{
    return a.arrival == b.arrival && a.type == b.type && a.node == b.node &&
        a.pageId == b.pageId && a.x == b.x && a.y == b.y &&
        a.callbackWork == b.callbackWork &&
        a.renderWork.stages == b.renderWork.stages &&
        a.issuesNetwork == b.issuesNetwork && a.classKey == b.classKey;
}

bool
operator==(const InteractionTrace &a, const InteractionTrace &b)
{
    return a.appName == b.appName && a.userSeed == b.userSeed &&
        a.events == b.events;
}

std::string
InteractionTrace::serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "pes-trace-v1\n";
    out << "app " << appName << "\n";
    out << "user " << userSeed << "\n";
    out << "events " << events.size() << "\n";
    for (const TraceEvent &e : events) {
        out << e.arrival << " " << domEventTypeName(e.type) << " "
            << e.node << " " << e.pageId << " " << e.x << " " << e.y << " "
            << e.callbackWork.tmemMs << " " << e.callbackWork.ndep;
        for (const Workload &stage : e.renderWork.stages)
            out << " " << stage.tmemMs << " " << stage.ndep;
        out << " " << (e.issuesNetwork ? 1 : 0) << " " << e.classKey
            << "\n";
    }
    return out.str();
}

std::optional<InteractionTrace>
InteractionTrace::deserialize(const std::string &blob)
{
    std::istringstream in(blob);
    std::string line;
    if (!std::getline(in, line) || trim(line) != "pes-trace-v1")
        return std::nullopt;

    InteractionTrace trace;
    size_t count = 0;
    {
        std::string key;
        if (!(in >> key) || key != "app" || !(in >> trace.appName))
            return std::nullopt;
        if (!(in >> key) || key != "user" || !(in >> trace.userSeed))
            return std::nullopt;
        if (!(in >> key) || key != "events" || !(in >> count))
            return std::nullopt;
    }
    trace.events.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        TraceEvent e;
        std::string type_name;
        if (!(in >> e.arrival >> type_name >> e.node >> e.pageId >> e.x >>
              e.y >> e.callbackWork.tmemMs >> e.callbackWork.ndep)) {
            return std::nullopt;
        }
        if (!parseDomEventType(type_name.c_str(), e.type))
            return std::nullopt;
        for (Workload &stage : e.renderWork.stages) {
            if (!(in >> stage.tmemMs >> stage.ndep))
                return std::nullopt;
        }
        int network = 0;
        if (!(in >> network >> e.classKey))
            return std::nullopt;
        e.issuesNetwork = network != 0;
        trace.events.push_back(e);
    }
    return trace;
}

bool
InteractionTrace::saveToFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << serialize();
    return static_cast<bool>(out);
}

std::optional<InteractionTrace>
InteractionTrace::loadFromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return deserialize(buffer.str());
}

} // namespace pes
