/**
 * @file
 * Interaction traces: the record/replay format.
 *
 * Mirrors the paper's methodology (user interactions recorded with
 * timing — including think time — and replayed under each scheduler,
 * Sec. 5.5/6.1). A trace is a time-ordered list of input events; each
 * event carries its true per-instance workload (callback + per-stage
 * render work), which the simulator uses as ground truth. Schedulers never
 * read these workloads directly — they estimate them online (EBS/PES) or
 * are the oracle.
 */

#ifndef PES_TRACE_TRACE_HH
#define PES_TRACE_TRACE_HH

#include <optional>
#include <string>
#include <vector>

#include "web/dom.hh"
#include "web/event_types.hh"
#include "web/render_pipeline.hh"

namespace pes {

/**
 * One recorded input event.
 */
struct TraceEvent
{
    /** Arrival (trigger) time from session start (ms). */
    TimeMs arrival = 0.0;
    /** DOM event type. */
    DomEventType type = DomEventType::Load;
    /** Target node (root for document-level events). */
    NodeId node = 0;
    /** Page the session was on when the event triggered. */
    int pageId = 0;
    /** Interaction position in page coordinates. */
    double x = 0.0;
    double y = 0.0;
    /** True per-instance callback workload. */
    Workload callbackWork;
    /** True per-instance rendering workload (per stage). */
    RenderWork renderWork;
    /** Whether the handler issues a network request (commit-gated). */
    bool issuesNetwork = false;
    /** Estimator key: stable id of this event's (page, node, type) class. */
    uint64_t classKey = 0;

    /** QoS target from the event type (3 s / 300 ms / 33 ms). */
    TimeMs qosTarget() const { return qosTargetMs(type); }

    /** Total work: callback plus all render stages. */
    Workload totalWork() const
    {
        return callbackWork + renderWork.total();
    }
};

/**
 * One recorded user session over one application.
 */
struct InteractionTrace
{
    std::string appName;
    uint64_t userSeed = 0;
    std::vector<TraceEvent> events;

    /** Arrival of the last event (ms); 0 when empty. */
    TimeMs duration() const
    {
        return events.empty() ? 0.0 : events.back().arrival;
    }

    /** Number of events. */
    size_t size() const { return events.size(); }

    /** Serialize to the text trace format. */
    std::string serialize() const;

    /** Parse a serialized trace; nullopt on malformed input. */
    static std::optional<InteractionTrace>
    deserialize(const std::string &blob);

    /** Write to a file; false on I/O error. */
    bool saveToFile(const std::string &path) const;

    /** Read from a file; nullopt on error. */
    static std::optional<InteractionTrace>
    loadFromFile(const std::string &path);
};

/** Exact field-wise equality (corpus round-trip checks). */
bool operator==(const TraceEvent &a, const TraceEvent &b);
inline bool operator!=(const TraceEvent &a, const TraceEvent &b)
{
    return !(a == b);
}

/** Exact equality: app, user seed, and every event field. */
bool operator==(const InteractionTrace &a, const InteractionTrace &b);
inline bool operator!=(const InteractionTrace &a, const InteractionTrace &b)
{
    return !(a == b);
}

/** Compute the estimator class key for (app, page, node, type). */
uint64_t eventClassKey(const std::string &app_name, int page_id,
                       NodeId node, DomEventType type);

/**
 * Estimator class key of a concrete (node, handler) pair:
 *  - navigations key on the destination page (per-URL load estimation);
 *  - handlers with a handlerClassId key on the shared callback;
 *  - otherwise the node itself is the class.
 */
uint64_t eventClassKeyFor(const std::string &app_name, int page_id,
                          NodeId node, const HandlerSpec &handler);

} // namespace pes

#endif // PES_TRACE_TRACE_HH
