#include "trace/user_model.hh"

#include <algorithm>
#include <cmath>

#include "ml/features.hh"
#include "trace/dom_builder.hh"
#include "trace/workload_params.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "web/dom_analyzer.hh"

namespace pes {

namespace {

/** Interaction-level classes the user chooses among. */
enum class UserChoice { Tap = 0, Move, Nav, Submit };
constexpr int kNumChoices = 4;

/** Session-length target distribution (median ~108 s). */
constexpr TimeMs kSessionMedianMs = 108000.0;
constexpr double kSessionSigma = 0.18;

struct Candidate
{
    CandidateEvent event;
    double weight = 0.0;
};

UserChoice
choiceOf(DomEventType type)
{
    switch (interactionOf(type)) {
      case Interaction::Load:
        return UserChoice::Nav;
      case Interaction::Move:
        return UserChoice::Move;
      case Interaction::Tap:
        return type == DomEventType::Submit ? UserChoice::Submit
                                            : UserChoice::Tap;
    }
    panic("choiceOf: bad type");
}

} // namespace

UserParams
UserParams::sample(Rng &rng)
{
    UserParams params;
    params.thinkScale = rng.lognormal(1.0, 0.25);
    params.moveAffinity = rng.lognormal(1.0, 0.20);
    params.tapAffinity = rng.lognormal(1.0, 0.20);
    params.navAffinity = rng.lognormal(1.0, 0.20);
    return params;
}

UserModel::UserModel(const AppProfile &profile, const WebApp &app,
                     uint64_t user_seed, const AcmpPlatform &platform,
                     const UserParams *trait_scale)
    : profile_(&profile), app_(&app), userSeed_(user_seed),
      platform_(&platform), traitScale_(trait_scale)
{
}

InteractionTrace
UserModel::generateSession() const
{
    const AppProfile &p = *profile_;
    Rng rng(hashCombine(hashString(p.name.c_str()), userSeed_));
    const UserParams sampled = UserParams::sample(rng);
    const UserParams user =
        traitScale_ ? sampled.scaledBy(*traitScale_) : sampled;

    WebAppSession session(*app_);
    DomAnalyzer analyzer(session);
    FeatureWindow window;
    RenderPipeline pipeline;

    InteractionTrace trace;
    trace.appName = p.name;
    trace.userSeed = userSeed_;

    const TimeMs target_duration =
        rng.lognormal(kSessionMedianMs, kSessionSigma);

    auto emit = [&](const CandidateEvent &cand, TimeMs arrival) {
        const DomTree &dom = session.dom();
        const HandlerSpec *handler =
            dom.node(cand.node).handlerFor(cand.type);
        panic_if(!handler, "user model chose an event with no handler");

        TraceEvent e;
        e.arrival = arrival;
        e.type = cand.type;
        e.node = cand.node;
        e.pageId = session.currentPage();
        // Interaction position: center of the node's visible part.
        const Rect node_rect = dom.node(cand.node).rect;
        const Rect view = session.viewport().rect();
        e.x = std::clamp(node_rect.cx(), view.x, view.x + view.w);
        e.y = std::clamp(node_rect.cy(), view.y, view.y + view.h);
        e.x += rng.uniform(-8.0, 8.0);
        e.y += rng.uniform(-8.0, 8.0);

        e.callbackWork =
            handler->medianWork.scaled(rng.lognormal(1.0, handler->workSigma));
        const RenderWork nominal = pipeline.frameWork(
            dom.size(), handler->dirtyNodes,
            p.renderScale * handler->renderCostScale);
        e.renderWork =
            nominal.scaled(rng.lognormal(1.0, handler->workSigma * 0.7));
        if (e.type == DomEventType::Load) {
            // Keep loads inside their QoS target at the fastest
            // configuration (see kMaxLoadLatencyAtMaxMs).
            const DvfsLatencyModel model(*platform_);
            const TimeMs at_max =
                model.latency(e.totalWork(), platform_->maxConfig());
            if (at_max > kMaxLoadLatencyAtMaxMs) {
                const double shrink = kMaxLoadLatencyAtMaxMs / at_max;
                e.callbackWork = e.callbackWork.scaled(shrink);
                e.renderWork = e.renderWork.scaled(shrink);
            }
        }
        e.issuesNetwork = handler->issuesNetworkRequest;
        e.classKey = eventClassKeyFor(p.name, e.pageId, e.node, *handler);
        trace.events.push_back(e);

        window.observe(e.type, e.x, e.y, e.node);
        session.commitEvent(cand.node, cand.type);
    };

    // Session starts with the landing-page load.
    emit({DomEventType::Load, session.dom().root()}, 0.0);

    TimeMs now = 0.0;
    int burst_remaining = 0;
    while (trace.events.size() <
           static_cast<size_t>(UserModel::kMaxEvents)) {
        // ---- think time ----
        const DomEventType prev_type = trace.events.back().type;
        TimeMs gap = 0.0;
        if (burst_remaining > 0) {
            --burst_remaining;
            gap = rng.lognormal(260.0 * user.thinkScale, 0.40);
        } else if (rng.bernoulli(p.burstiness) &&
                   interactionOf(prev_type) != Interaction::Load) {
            burst_remaining = rng.uniformInt(2, 6);
            gap = rng.lognormal(300.0 * user.thinkScale, 0.40);
        } else {
            switch (interactionOf(prev_type)) {
              case Interaction::Load:
                gap = rng.lognormal(7000.0 * user.thinkScale, 0.50);
                break;
              case Interaction::Tap:
                gap = rng.lognormal(0.95 * p.thinkMedianMs *
                                    user.thinkScale, 0.55);
                break;
              case Interaction::Move:
                gap = rng.lognormal(0.70 * p.thinkMedianMs *
                                    user.thinkScale, 0.55);
                break;
            }
        }
        gap = std::max(gap, 40.0);
        now += gap;
        if (now > target_duration && trace.events.size() >= 8)
            break;

        // ---- observe state, compute features ----
        // One batched DOM pass: LNES, viewport features and the
        // per-candidate geometry the target pick below scores with.
        const DomOverlay state = session.snapshotState();
        const DomAnalysis analysis = analyzer.analyze(state);
        const auto &lnes = analysis.candidates;
        if (lnes.empty())
            break;  // defensive; the root always carries handlers
        const FeatureVector f = window.extract(analysis.stats);

        // ---- class scores: linear in the Table-1 feature family ----
        std::array<bool, kNumChoices> available{};
        for (const AnalyzedCandidate &c : lnes)
            available[static_cast<size_t>(choiceOf(c.event.type))] = true;

        // How much page remains below the fold (discourages scrolling at
        // the bottom).
        const double page_h = session.dom().pageHeight();
        const double remaining = std::max(
            0.0, page_h - session.viewport().height - state.scrollY);
        const double scroll_room =
            std::min(1.0, remaining / session.viewport().height);

        std::array<double, kNumChoices> score{};
        score[0] = p.tapBias * user.tapAffinity *
            (0.45 + 2.4 * f.clickableFrac());
        score[1] = p.moveBias * user.moveAffinity * scroll_room *
            (0.55 + 1.6 * f.scrollsInWindow()) *
            (burst_remaining > 0 ? 3.0 : 1.0);
        // Navigation: a low ambient rate plus a strong gate when large
        // navigation affordances are on screen (an open nav menu). Users
        // who open a menu overwhelmingly pick a destination from it.
        score[2] = p.navBias * user.navAffinity *
            (0.25 + 2.0 * f.visibleLinkFrac() +
             0.7 * f.navsInWindow()) +
            user.navAffinity * 55.0 *
            std::max(0.0, f.visibleLinkFrac() - 0.15);
        score[3] = available[3]
            ? p.submitBias *
              (0.3 + 1.6 * std::max(0.0, 1.0 - 3.0 * f.distToPrevClick()))
            : 0.0;

        std::vector<double> weights(kNumChoices, 0.0);
        for (int c = 0; c < kNumChoices; ++c) {
            if (!available[static_cast<size_t>(c)])
                continue;
            const double s = std::max(1e-6, score[static_cast<size_t>(c)]);
            // Temperature: flattens (temp > 1) or sharpens (temp < 1).
            weights[static_cast<size_t>(c)] =
                std::pow(s, 1.0 / p.behaviorTemp);
        }
        const auto choice = static_cast<UserChoice>(rng.categorical(weights));

        // ---- pick the concrete target within the class ----
        std::vector<Candidate> candidates;
        const DomTree &dom = session.dom();
        const Rect view = session.viewport().rect();
        const double last_x = trace.events.back().x;
        const double last_y = trace.events.back().y;
        for (const AnalyzedCandidate &c : lnes) {
            if (choiceOf(c.event.type) != choice)
                continue;
            double w = std::sqrt(
                std::max(1.0, c.rect.intersectionArea(view)));
            const double dx = c.rect.cx() - last_x;
            const double dy = c.rect.cy() - last_y;
            const double dist = std::sqrt(dx * dx + dy * dy);
            w *= 1.0 + 2.0 / (1.0 + dist / 200.0);
            if (c.role == NodeRole::MenuItem)
                w *= 6.0;  // open menus capture attention
            if (c.event.node == dom.root() &&
                interactionOf(c.event.type) == Interaction::Load) {
                w *= 0.08;  // direct reloads are rare
            }
            candidates.push_back({c.event, w});
        }
        if (candidates.empty())
            continue;  // class sampled but no concrete target; re-think
        std::vector<double> cand_weights;
        cand_weights.reserve(candidates.size());
        for (const Candidate &c : candidates)
            cand_weights.push_back(c.weight);
        const Candidate &picked =
            candidates[static_cast<size_t>(rng.categorical(cand_weights))];

        emit(picked.event, now);
    }

    const DvfsLatencyModel latency_model(*platform_);
    repairOracleFeasibility(trace, latency_model, VsyncClock());
    return trace;
}

int
repairOracleFeasibility(InteractionTrace &trace,
                        const DvfsLatencyModel &latency_model,
                        const VsyncClock &vsync)
{
    const AcmpConfig max_cfg = latency_model.platform().maxConfig();
    // Slack must cover the VSync display floor plus the scheduler's
    // compute overhead and configuration-switch costs, or a borderline
    // event can still slip one refresh past its deadline.
    const TimeMs slack = vsync.periodMs() + 4.0;
    int adjusted = 0;
    TimeMs chain_finish = 0.0;
    TimeMs shift = 0.0;
    for (TraceEvent &e : trace.events) {
        e.arrival += shift;
        chain_finish += latency_model.latency(e.totalWork(), max_cfg);
        const TimeMs latest_ok = e.arrival + e.qosTarget() - slack;
        if (chain_finish > latest_ok) {
            // Push this arrival (and everything after) late enough that
            // even the earliest-possible finish leaves a VSync of margin.
            const TimeMs need = chain_finish - latest_ok;
            e.arrival += need;
            shift += need;
            ++adjusted;
        }
    }
    return adjusted;
}

} // namespace pes
