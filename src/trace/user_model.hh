/**
 * @file
 * Synthetic mobile-Web user.
 *
 * Generates one interaction session over a WebApp. The next interaction is
 * sampled from a softmax whose scores are linear in the *same Table-1
 * feature family the paper's predictor uses* (viewport clickable/link
 * density, recent scrolls/navigations, distance to the previous tap), with
 * app-specific biases and a per-app temperature. This grounds the
 * predictor's learnability in the traces instead of hard-coding it: apps
 * with larger clickable areas and higher temperature are harder to predict
 * — the correlation the paper reports in Sec. 6.2.
 *
 * Think times reproduce the paper's trace statistics (sessions of roughly
 * 110 s with ~25 events, up to 70): long pauses after navigation, shorter
 * pauses between taps, and short bursts (e.g. scroll flicks) that create
 * the event interference the Type II/III analysis depends on.
 *
 * A final feasibility pass stretches arrival times just enough that an
 * oracle executing every event back-to-back at the highest configuration
 * meets every deadline — the property that gives the paper's Oracle its
 * zero QoS violations.
 */

#ifndef PES_TRACE_USER_MODEL_HH
#define PES_TRACE_USER_MODEL_HH

#include "hw/dvfs_model.hh"
#include "trace/app_profile.hh"
#include "trace/trace.hh"
#include "web/vsync.hh"
#include "web/web_app.hh"

namespace pes {

/** Per-user behavioural quirks (sampled from the user seed). */
struct UserParams
{
    /** Multiplier on all think times. */
    double thinkScale = 1.0;
    /** Multiplier on the move-class weight. */
    double moveAffinity = 1.0;
    /** Multiplier on the tap-class weight. */
    double tapAffinity = 1.0;
    /** Multiplier on the navigation-class weight. */
    double navAffinity = 1.0;

    /** Sample quirks from @p rng. */
    static UserParams sample(class Rng &rng);

    /** Field-wise product: population cohorts scale the seed-sampled
     *  quirks with their own multiplier bundle. */
    UserParams scaledBy(const UserParams &m) const
    {
        return {thinkScale * m.thinkScale, moveAffinity * m.moveAffinity,
                tapAffinity * m.tapAffinity, navAffinity * m.navAffinity};
    }
};

/**
 * Generates interaction sessions for one (app, user seed) pair.
 */
class UserModel
{
  public:
    /**
     * @param profile The application profile.
     * @param app The synthesized application (from AppDomBuilder).
     * @param user_seed Seed identifying the user; different seeds are
     *        different users (the paper collects training and evaluation
     *        traces from different users).
     * @param platform Platform used by the oracle-feasibility repair pass.
     * @param trait_scale Optional multipliers applied on top of the
     *        seed-sampled UserParams (population cohorts; borrowed for
     *        the call to generateSession, not owned). Null = identity.
     */
    UserModel(const AppProfile &profile, const WebApp &app,
              uint64_t user_seed, const AcmpPlatform &platform,
              const UserParams *trait_scale = nullptr);

    /** Generate one session. Deterministic in (profile, app, seed). */
    InteractionTrace generateSession() const;

    /** Maximum events per session (paper: traces contain up to ~70). */
    static constexpr int kMaxEvents = 70;

  private:
    const AppProfile *profile_;
    const WebApp *app_;
    uint64_t userSeed_;
    const AcmpPlatform *platform_;
    const UserParams *traitScale_;
};

/**
 * Stretch arrivals so a back-to-back max-configuration execution meets
 * every deadline with one VSync period of slack (oracle feasibility).
 * Returns the number of events whose arrival was adjusted.
 */
int repairOracleFeasibility(InteractionTrace &trace,
                            const DvfsLatencyModel &latency_model,
                            const VsyncClock &vsync);

} // namespace pes

#endif // PES_TRACE_USER_MODEL_HH
