/**
 * @file
 * Base workload constants for synthetic applications.
 *
 * Calibrated so that, on the Exynos 5410 model at the big cluster's top
 * frequency, event latencies land in the regimes the paper reports: page
 * loads take one to three seconds, ordinary taps tens of milliseconds,
 * "heavy" taps approach or exceed the 300 ms tap deadline (the Type I
 * seeds of Sec. 4.3), and moves a few milliseconds. Per-app multipliers
 * come from AppProfile; per-instance noise from the trace generator.
 */

#ifndef PES_TRACE_WORKLOAD_PARAMS_HH
#define PES_TRACE_WORKLOAD_PARAMS_HH

#include "hw/dvfs_model.hh"

namespace pes {

/** Callback workload of a full page load (before app scaling). */
inline constexpr Workload kBaseLoadWork{300.0, 3000.0};

/** Callback workload of an ordinary tap. */
inline constexpr Workload kBaseTapWork{3.0, 55.0};

/** Callback workload of an inherently heavy tap (Type I candidate). */
inline constexpr Workload kBaseHeavyTapWork{8.0, 520.0};

/** Callback workload of a move (scroll step). */
inline constexpr Workload kBaseMoveWork{0.3, 6.0};

/** Callback workload of a form-field tap. */
inline constexpr Workload kBaseFieldTapWork{1.5, 25.0};

/** Callback workload of a form submit. */
inline constexpr Workload kBaseSubmitWork{6.0, 140.0};

/** DOM nodes dirtied by the respective event classes. */
inline constexpr int kDirtyNodesTap = 6;
inline constexpr int kDirtyNodesHeavyTap = 14;
inline constexpr int kDirtyNodesMove = 2;
inline constexpr int kDirtyNodesLoad = 60;
inline constexpr int kDirtyNodesField = 2;
inline constexpr int kDirtyNodesSubmit = 10;

/** Render-cost multipliers (HandlerSpec::renderCostScale). */
inline constexpr double kRenderScaleMove = 0.30;   // composite-dominated
inline constexpr double kRenderScaleLoad = 1.50;   // full-page render

/**
 * Hard cap on a load's total latency at the highest configuration: keeps
 * the landing-page load (which cannot be pre-executed) inside its 3 s QoS
 * target, as every real page in the paper's suite is.
 */
inline constexpr TimeMs kMaxLoadLatencyAtMaxMs = 2850.0;

} // namespace pes

#endif // PES_TRACE_WORKLOAD_PARAMS_HH
