#include "util/binary_io.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/rng.hh"

namespace pes {

// -------------------------------------------------------------- encoding

void
putU8(std::string &out, uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putI32(std::string &out, int32_t v)
{
    putU32(out, static_cast<uint32_t>(v));
}

void
putF64(std::string &out, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out += s;
}

// -------------------------------------------------------------- decoding

bool
ByteReader::getU8(uint8_t &v)
{
    if (pos + 1 > end)
        return false;
    v = static_cast<uint8_t>((*in)[pos++]);
    return true;
}

bool
ByteReader::getU32(uint32_t &v)
{
    if (pos + 4 > end)
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(static_cast<uint8_t>((*in)[pos + i]))
            << (8 * i);
    pos += 4;
    return true;
}

bool
ByteReader::getU64(uint64_t &v)
{
    if (pos + 8 > end)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<uint8_t>((*in)[pos + i]))
            << (8 * i);
    pos += 8;
    return true;
}

bool
ByteReader::getI32(int32_t &v)
{
    uint32_t u;
    if (!getU32(u))
        return false;
    v = static_cast<int32_t>(u);
    return true;
}

bool
ByteReader::getF64(double &v)
{
    uint64_t bits;
    if (!getU64(bits))
        return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

bool
ByteReader::getStr(std::string &s)
{
    uint32_t len;
    const size_t start = pos;
    if (!getU32(len) || len > kMaxBinaryStringLen || pos + len > end) {
        pos = start;
        return false;
    }
    s.assign(*in, pos, len);
    pos += len;
    return true;
}

// ----------------------------------------------- magic/version headers

void
putMagicHeader(std::string &out, const char magic[4], uint32_t version)
{
    out.append(magic, 4);
    putU32(out, version);
}

bool
readMagicHeader(ByteReader &r, const char magic[4],
                uint32_t expected_version, const char *format,
                const char *format_short, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    if (r.remaining() < 4 + 4)
        return fail("truncated file: no header");
    if (std::memcmp(r.in->data() + r.pos, magic, 4) != 0)
        return fail(std::string("bad magic (not ") + format + ")");
    r.pos += 4;

    uint32_t version;
    if (!r.getU32(version))
        return fail("truncated file: no version");
    if (version != expected_version) {
        return fail(std::string("unsupported ") + format_short +
                    " version " + std::to_string(version) +
                    " (this build reads " +
                    std::to_string(expected_version) + ")");
    }
    return true;
}

// ------------------------------------------------ checksummed sections

void
putSection32(std::string &out, const std::string &payload)
{
    putU32(out, static_cast<uint32_t>(payload.size()));
    out += payload;
    putU64(out, hashBytes(payload.data(), payload.size()));
}

void
putSection64(std::string &out, const std::string &payload)
{
    putU64(out, payload.size());
    out += payload;
    putU64(out, hashBytes(payload.data(), payload.size()));
}

namespace {

bool
finishSection(ByteReader &r, BinarySection &section)
{
    // Payload plus trailing checksum must fit before the limit; the
    // overflow check guards a corrupt length wrapping the arithmetic.
    if (r.pos + section.payloadLen + 8 > r.end ||
        r.pos + section.payloadLen + 8 < r.pos) {
        return false;
    }
    section.payloadPos = r.pos;
    r.pos += static_cast<size_t>(section.payloadLen);
    return r.getU64(section.storedChecksum);
}

} // namespace

bool
readSection32(ByteReader &r, BinarySection &section)
{
    uint32_t len;
    if (!r.getU32(len))
        return false;
    section.payloadLen = len;
    return finishSection(r, section);
}

bool
readSection64(ByteReader &r, BinarySection &section)
{
    if (!r.getU64(section.payloadLen))
        return false;
    return finishSection(r, section);
}

bool
sectionChecksumOk(const std::string &bytes, const BinarySection &section)
{
    return section.storedChecksum ==
        hashBytes(bytes.data() + section.payloadPos,
                  static_cast<size_t>(section.payloadLen));
}

ByteReader
sectionReader(const std::string &bytes, const BinarySection &section)
{
    return ByteReader(bytes, section.payloadPos,
                      section.payloadPos +
                          static_cast<size_t>(section.payloadLen));
}

// ------------------------------------------------------------ file I/O

bool
readFileBytes(const std::string &path, std::string &bytes,
              std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open '" + path + "'";
        return false;
    }
    bytes.assign((std::istreambuf_iterator<char>(is)),
                 std::istreambuf_iterator<char>());
    if (is.bad()) {
        if (error)
            *error = "read error on '" + path + "'";
        return false;
    }
    return true;
}

bool
writeFileBytes(const std::string &path, const std::string &bytes,
               std::string *error)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
        if (error)
            *error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

bool
writeFileAtomic(const std::string &path, const std::string &bytes,
                std::string *error)
{
    // Unique temp name: concurrent writers targeting the same path must
    // never share a temp file, or one writer can rename the other's
    // half-written bytes into place.
    static std::atomic<uint64_t> tmp_counter{0};
    const std::string tmp = path + ".tmp." +
                            std::to_string(static_cast<long>(::getpid())) +
                            "." +
                            std::to_string(tmp_counter.fetch_add(1) + 1);
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        if (error)
            *error = "cannot open '" + tmp + "' for writing: " +
                     std::strerror(errno);
        return false;
    }
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = "short write to '" + tmp + "': " +
                         std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    // Flush the temp file to stable storage before publishing it: a
    // crash after rename must never expose truncated bytes at `path`.
    if (::fsync(fd) != 0) {
        if (error)
            *error = "fsync failed on '" + tmp + "': " + std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        if (error)
            *error = "close failed on '" + tmp + "': " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        if (error)
            *error = "cannot replace '" + path + "': " + ec.message();
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace pes
