/**
 * @file
 * Checksummed-section binary encoding shared by the on-disk formats.
 *
 * The `.ptrc` trace format (src/corpus/) and the `.psum` result format
 * (src/results/) share one wire discipline, factored out here:
 *
 *  - little-endian fixed-width integers, strings as u32 length + bytes,
 *    doubles stored as their IEEE-754 bit pattern (bit-exact round
 *    trips — record -> replay never loses a ulp);
 *  - a 4-byte magic + u32 version header validated up front with a
 *    format-specific diagnostic;
 *  - length-prefixed payload sections followed by an FNV-1a checksum of
 *    the payload bytes, so truncation and corruption are told apart;
 *  - diagnostic-not-crash readers: every decode primitive bounds-checks
 *    against an explicit limit and reports failure through its return
 *    value, never UB.
 *
 * File helpers (slurp, write, atomic replace) live here too so every
 * format handles short writes and temp-file renames the same way.
 */

#ifndef PES_UTIL_BINARY_IO_HH
#define PES_UTIL_BINARY_IO_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace pes {

// -------------------------------------------------------------- encoding

/** Append one byte. */
void putU8(std::string &out, uint8_t v);

/** Append a little-endian u32. */
void putU32(std::string &out, uint32_t v);

/** Append a little-endian u64. */
void putU64(std::string &out, uint64_t v);

/** Append an i32 (two's-complement bit pattern). */
void putI32(std::string &out, int32_t v);

/** Append a double as its IEEE-754 bit pattern (bit-exact). */
void putF64(std::string &out, double v);

/** Append a string as u32 length + raw bytes. */
void putStr(std::string &out, const std::string &s);

// -------------------------------------------------------------- decoding

/** Longest string any format accepts (1 MiB): a corrupt length must not
 *  drive a giant allocation. */
constexpr size_t kMaxBinaryStringLen = 1u << 20;

/**
 * Bounds-checked read cursor over a byte string. All getters advance
 * @c pos on success and leave it untouched on failure; @c end caps how
 * far this cursor may read (sub-cursors narrow it to one section).
 */
struct ByteReader
{
    const std::string *in = nullptr;
    size_t pos = 0;
    size_t end = 0;

    ByteReader() = default;
    explicit ByteReader(const std::string &bytes)
        : in(&bytes), pos(0), end(bytes.size())
    {
    }
    ByteReader(const std::string &bytes, size_t pos_, size_t end_)
        : in(&bytes), pos(pos_), end(end_)
    {
    }

    /** Bytes left before the limit. */
    size_t remaining() const { return end > pos ? end - pos : 0; }

    /** True when the cursor sits exactly on its limit. */
    bool atEnd() const { return pos == end; }

    bool getU8(uint8_t &v);
    bool getU32(uint32_t &v);
    bool getU64(uint64_t &v);
    bool getI32(int32_t &v);
    bool getF64(double &v);
    /** u32 length + bytes; rejects lengths over kMaxBinaryStringLen. */
    bool getStr(std::string &s);
};

// ----------------------------------------------- magic/version headers

/** Append a 4-byte magic plus a u32 format version. */
void putMagicHeader(std::string &out, const char magic[4],
                    uint32_t version);

/**
 * Validate a 4-byte magic + u32 version at the cursor. On failure sets
 * @p error to a diagnostic naming @p format ("a .ptrc trace") and
 * @p format_short (".ptrc") and returns false. Matches the historical
 * trace-format wording exactly.
 */
bool readMagicHeader(ByteReader &r, const char magic[4],
                     uint32_t expected_version, const char *format,
                     const char *format_short, std::string *error);

// ------------------------------------------------ checksummed sections

/** Append a u32 length, the payload, and its FNV-1a checksum (u64). */
void putSection32(std::string &out, const std::string &payload);

/** Append a u64 length, the payload, and its FNV-1a checksum (u64). */
void putSection64(std::string &out, const std::string &payload);

/** Where a length-prefixed checksummed section sits in the file. */
struct BinarySection
{
    /** First payload byte. */
    size_t payloadPos = 0;
    /** Payload byte length. */
    uint64_t payloadLen = 0;
    /** Checksum as stored after the payload. */
    uint64_t storedChecksum = 0;
};

/**
 * Read a u32-length section frame at the cursor: length, payload
 * bounds, and the trailing checksum, leaving the cursor after the
 * checksum. Verification is separate (sectionChecksumOk) so readers can
 * defer payload hashing — the two-phase open()/read() split. Returns
 * false on truncation (cursor unspecified).
 */
bool readSection32(ByteReader &r, BinarySection &section);

/** Same framing with a u64 length prefix. */
bool readSection64(ByteReader &r, BinarySection &section);

/** True when the stored checksum matches the payload bytes. */
bool sectionChecksumOk(const std::string &bytes,
                       const BinarySection &section);

/** Cursor narrowed to exactly one section's payload. */
ByteReader sectionReader(const std::string &bytes,
                         const BinarySection &section);

// ------------------------------------------------------------ file I/O

/** Slurp a file into @p bytes; false (with @p error) when unreadable. */
bool readFileBytes(const std::string &path, std::string &bytes,
                   std::string *error);

/** Write @p bytes to @p path, detecting short writes. */
bool writeFileBytes(const std::string &path, const std::string &bytes,
                    std::string *error);

/**
 * Atomically replace @p path: write to a per-writer unique temp file
 * ("<path>.tmp.<pid>.<seq>"), fsync it, then rename over @p path.  A
 * concurrent reader (or a kill) sees either the old or the new file,
 * never a torn one, and concurrent writers to the same path cannot
 * clobber each other's temp bytes — last rename wins with a complete
 * file.
 */
bool writeFileAtomic(const std::string &path, const std::string &bytes,
                     std::string *error);

} // namespace pes

#endif // PES_UTIL_BINARY_IO_HH
