/**
 * @file
 * Lock-contention accounting for scaling attribution.
 *
 * The anti-scaling question ("why is t4 slower than t1?") needs the
 * contended acquisitions named, not guessed. ContentionGuard wraps a
 * mutex acquisition: it try_locks first (the uncontended fast path costs
 * one atomic, no clock read), and only when that fails does it time the
 * blocking lock() and charge the wait to a LockContention ledger. The
 * ledger is updated AFTER the mutex is held, so it may be (and in every
 * current use is) a plain member guarded by that same mutex — no atomics.
 *
 * Determinism: with one worker there is no contention, so both counters
 * are exactly 0 at threads=1; at higher thread counts they are
 * scheduling-dependent and belong to the telemetry (not report) side of
 * the determinism contract.
 */

#ifndef PES_UTIL_CONTENTION_HH
#define PES_UTIL_CONTENTION_HH

#include <chrono>
#include <cstdint>
#include <mutex>

namespace pes {

/** Contended-acquisition ledger for one mutex (guarded by that mutex). */
struct LockContention
{
    /** Acquisitions that found the mutex held. */
    uint64_t waits = 0;
    /** Summed wall time spent blocked on those acquisitions (ms). */
    double waitMs = 0.0;

    void reset() { waits = 0; waitMs = 0.0; }
};

/**
 * RAII lock that records contended acquisitions of @p m into @p ledger.
 * @p ledger must be protected by @p m itself (it is written only after
 * the lock is held).
 */
class ContentionGuard
{
  public:
    ContentionGuard(std::mutex &m, LockContention &ledger)
        : lock_(m, std::try_to_lock)
    {
        if (lock_.owns_lock())
            return;
        const auto start = std::chrono::steady_clock::now();
        lock_.lock();
        ++ledger.waits;
        ledger.waitMs += std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    }

    ContentionGuard(const ContentionGuard &) = delete;
    ContentionGuard &operator=(const ContentionGuard &) = delete;

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace pes

#endif // PES_UTIL_CONTENTION_HH
