/**
 * @file
 * Shared integrity-check vocabulary for the on-disk stores.
 *
 * CorpusStore (.ptrc traces) and ResultStore (.psum result summaries)
 * classify validation findings identically, and the CLI tools
 * (`pes_corpus validate`, `pes_fleet merge`) gate CI on one exit-code
 * contract: 0 = clean, kExitMissing = files referenced by a manifest
 * are absent (needs re-sync), kExitCorrupt = content fails to parse,
 * checksum, or match its manifest row — or sits on disk unindexed
 * (orphaned) — (needs re-record/re-run or a reconciling re-open);
 * corrupt wins when both occur. Defining the problem type and the
 * classification here once keeps the stores and tools from drifting.
 */

#ifndef PES_UTIL_INTEGRITY_HH
#define PES_UTIL_INTEGRITY_HH

#include <string>
#include <vector>

namespace pes {

/** One validation finding, classified for distinct exit codes. */
struct IntegrityProblem
{
    enum class Kind
    {
        /** Manifest references a file that is not on disk. */
        MissingFile,
        /** File exists but fails to parse or checksum. */
        Corrupt,
        /** File parses but disagrees with its manifest row. */
        Mismatch,
        /** File is on disk but no manifest row indexes it — typically a
         *  crash between a part write and the manifest save. Stores
         *  adopt-or-remove orphans on the next open. */
        Orphaned,
    };

    Kind kind = Kind::Corrupt;
    std::string message;
};

/** Exit code for missing-files-only findings. */
constexpr int kExitMissing = 3;
/** Exit code when any corrupt or mismatching content was found. */
constexpr int kExitCorrupt = 4;

/** The CI-gateable exit code for a validation pass (0 when clean). */
inline int
integrityExitCode(const std::vector<IntegrityProblem> &problems)
{
    if (problems.empty())
        return 0;
    for (const IntegrityProblem &p : problems) {
        if (p.kind != IntegrityProblem::Kind::MissingFile)
            return kExitCorrupt;
    }
    return kExitMissing;
}

} // namespace pes

#endif // PES_UTIL_INTEGRITY_HH
