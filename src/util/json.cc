#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace pes {

namespace {

struct JsonScanner
{
    const std::string &text;
    size_t pos = 0;

    void ws()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\n' ||
                text[pos] == '\t' || text[pos] == '\r'))
            ++pos;
    }

    bool consume(char c)
    {
        ws();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool parseString(std::string &out)
    {
        ws();
        if (pos >= text.size() || text[pos] != '"')
            return false;
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\' && pos < text.size()) {
                const char esc = text[pos++];
                if (esc == 'u') {
                    if (pos + 4 > text.size())
                        return false;
                    const std::string hex = text.substr(pos, 4);
                    pos += 4;
                    out += static_cast<char>(
                        std::strtoul(hex.c_str(), nullptr, 16));
                    continue;
                }
                c = esc;
            }
            out += c;
        }
        if (pos >= text.size())
            return false;
        ++pos;  // closing quote
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        ws();
        if (pos >= text.size())
            return false;
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            if (consume('}'))
                return true;
            do {
                std::string key;
                if (!parseString(key) || !consume(':'))
                    return false;
                JsonValue val;
                if (!parseValue(val))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(val));
            } while (consume(','));
            return consume('}');
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            if (consume(']'))
                return true;
            do {
                JsonValue val;
                if (!parseValue(val))
                    return false;
                out.arr.push_back(std::move(val));
            } while (consume(','));
            return consume(']');
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        // Number token.
        out.kind = JsonValue::Kind::Number;
        const size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E'))
            ++pos;
        if (pos == start)
            return false;
        out.str = text.substr(start, pos - start);
        return true;
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::number() const
{
    return std::strtod(str.c_str(), nullptr);
}

uint64_t
JsonValue::number64() const
{
    return std::strtoull(str.c_str(), nullptr, 10);
}

std::optional<JsonValue>
parseJson(const std::string &text)
{
    JsonScanner scanner{text};
    JsonValue root;
    if (!scanner.parseValue(root))
        return std::nullopt;
    // A complete document, not a prefix: trailing garbage after the
    // first value (e.g. a torn manifest overwrite gluing two documents
    // together) must fail, not silently parse as the leading value.
    scanner.ws();
    if (scanner.pos != text.size())
        return std::nullopt;
    return root;
}

std::vector<std::string>
jsonStringArray(const JsonValue &v)
{
    std::vector<std::string> out;
    for (const JsonValue &e : v.arr)
        out.push_back(e.str);
    return out;
}

void
writeJsonStringArray(std::ostream &os, const std::vector<std::string> &xs)
{
    os << "[";
    for (size_t i = 0; i < xs.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(xs[i]) << '"';
    os << "]";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
jsonNum(double v)
{
    // JSON has no non-finite number tokens ("nan"/"inf" from printf
    // would make the document unparseable), so non-finite values encode
    // as the canonical quoted strings. JsonValue::number() strtod's the
    // string payload, which accepts exactly these spellings — the round
    // trip is NaN -> "NaN" -> NaN, not a misclassified 0.0.
    if (std::isnan(v))
        return "\"NaN\"";
    if (std::isinf(v))
        return v > 0 ? "\"Infinity\"" : "\"-Infinity\"";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

} // namespace pes
