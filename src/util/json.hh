/**
 * @file
 * Minimal JSON reading/writing helpers.
 *
 * Understands the subset our own sinks emit: objects, arrays, strings
 * with \" \\ \uXXXX escapes, and plain numbers. Numbers keep their raw
 * token so 64-bit seeds survive the trip. Shared by the fleet reporters
 * and the corpus manifest — not a general-purpose JSON library.
 */

#ifndef PES_UTIL_JSON_HH
#define PES_UTIL_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pes {

/** One parsed JSON value (tree-owning). */
struct JsonValue
{
    enum class Kind { Null, Number, String, Array, Object };

    Kind kind = Kind::Null;
    std::string str;  // String payload or raw Number token.
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    /** Object member lookup; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Number token as double (0.0 for non-numbers). */
    double number() const;

    /** Number token as uint64 (full 64-bit precision). */
    uint64_t number64() const;
};

/** Parse a complete JSON document (trailing garbage rejected); nullopt
 *  on malformed input. */
std::optional<JsonValue> parseJson(const std::string &text);

/** String payloads of an array value (shared by reporters/manifests). */
std::vector<std::string> jsonStringArray(const JsonValue &v);

/** Write a JSON array of escaped strings. */
void writeJsonStringArray(std::ostream &os,
                          const std::vector<std::string> &xs);

/** Escape a string for embedding between JSON quotes. */
std::string jsonEscape(const std::string &s);

/**
 * Shortest round-trippable-enough float formatting (deterministic).
 * Non-finite values encode as the quoted strings "NaN", "Infinity" and
 * "-Infinity" so the document stays valid JSON; JsonValue::number()
 * decodes them back to the non-finite double.
 */
std::string jsonNum(double v);

} // namespace pes

#endif // PES_UTIL_JSON_HH
