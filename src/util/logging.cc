#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace pes {

namespace {

bool quiet = false;
bool levelSet = false;
LogLevel level = LogLevel::Info;

/** PES_LOG, resolved once (unknown values fall back to Info). */
LogLevel
envLevel()
{
    static const LogLevel cached = [] {
        LogLevel parsed = LogLevel::Info;
        if (const char *env = std::getenv("PES_LOG"))
            parseLogLevel(env, parsed);
        return parsed;
    }();
    return cached;
}

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

LogLevel
currentLogLevel()
{
    if (quiet)
        return LogLevel::Error;
    return levelSet ? level : envLevel();
}

void
setLogLevel(LogLevel l)
{
    levelSet = true;
    level = l;
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    if (name == "debug")
        out = LogLevel::Debug;
    else if (name == "info")
        out = LogLevel::Info;
    else if (name == "warn")
        out = LogLevel::Warn;
    else if (name == "error")
        out = LogLevel::Error;
    else
        return false;
    return true;
}

const char *
logLevelName(LogLevel l)
{
    switch (l) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
    }
    return "info";
}

void
setQuiet(bool q)
{
    quiet = q;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (currentLogLevel() > LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (currentLogLevel() > LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
debug(const char *fmt, ...)
{
    if (currentLogLevel() > LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

} // namespace pes
