/**
 * @file
 * gem5-style status and error reporting, with severity levels.
 *
 * panic() aborts on internal invariant violations (library bugs);
 * fatal() exits on unusable user input (bad configuration / arguments);
 * warn()/inform()/debug() report conditions without stopping, gated by
 * a global log level so telemetry, diagnostics and progress chatter
 * share one stderr discipline.
 *
 * The level comes from (highest precedence first): setQuiet(true)
 * (tests/benches force Error), setLogLevel(), the PES_LOG environment
 * variable (debug|info|warn|error), and the Info default. panic/fatal
 * always print.
 */

#ifndef PES_UTIL_LOGGING_HH
#define PES_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pes {

/** Message severities, most verbose first. */
enum class LogLevel
{
    Debug = 0,
    Info,
    Warn,
    Error,
};

/** Print an error for an internal bug and abort(). printf-style format. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error caused by the user and exit(1). printf-style format. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning and continue (LogLevel::Warn and below). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message and continue (LogLevel::Info and below). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message and continue (LogLevel::Debug only). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Set the global log level (overrides PES_LOG). */
void setLogLevel(LogLevel level);

/** The effective log level (setQuiet > setLogLevel > PES_LOG > Info). */
LogLevel currentLogLevel();

/**
 * Parse a level name ("debug", "info", "warn", "error"); returns false
 * (leaving @p out untouched) on anything else.
 */
bool parseLogLevel(const std::string &name, LogLevel &out);

/** The level's canonical name. */
const char *logLevelName(LogLevel level);

/**
 * Globally silence warn()/inform()/debug() (used by tests and
 * benches): setQuiet(true) pins the level to Error; setQuiet(false)
 * returns to the configured level.
 */
void setQuiet(bool quiet);

/** panic() when @p cond holds. */
#define panic_if(cond, ...)                   \
    do {                                      \
        if (cond)                             \
            ::pes::panic(__VA_ARGS__);        \
    } while (0)

/** fatal() when @p cond holds. */
#define fatal_if(cond, ...)                   \
    do {                                      \
        if (cond)                             \
            ::pes::fatal(__VA_ARGS__);        \
    } while (0)

} // namespace pes

#endif // PES_UTIL_LOGGING_HH
