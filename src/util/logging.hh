/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() aborts on internal invariant violations (library bugs);
 * fatal() exits on unusable user input (bad configuration / arguments);
 * warn()/inform() report conditions without stopping.
 */

#ifndef PES_UTIL_LOGGING_HH
#define PES_UTIL_LOGGING_HH

#include <cstdarg>

namespace pes {

/** Print an error for an internal bug and abort(). printf-style format. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error caused by the user and exit(1). printf-style format. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** panic() when @p cond holds. */
#define panic_if(cond, ...)                   \
    do {                                      \
        if (cond)                             \
            ::pes::panic(__VA_ARGS__);        \
    } while (0)

/** fatal() when @p cond holds. */
#define fatal_if(cond, ...)                   \
    do {                                      \
        if (cond)                             \
            ::pes::fatal(__VA_ARGS__);        \
    } while (0)

} // namespace pes

#endif // PES_UTIL_LOGGING_HH
