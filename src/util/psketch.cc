#include "util/psketch.hh"

#include <algorithm>
#include <cmath>

namespace pes {

int32_t
PercentileSketch::indexOf(double value)
{
    // Exact integer bucketing from the IEEE-754 representation:
    // frexp(value) = m * 2^e with m in [0.5, 1). The mantissa's
    // position inside its octave picks one of kSubBuckets sub-buckets;
    // no libm log is involved, so the bucket of a value is identical
    // on every conforming platform.
    int e = 0;
    const double m = std::frexp(value, &e);
    int32_t sub = static_cast<int32_t>((m - 0.5) * (2 * kSubBuckets));
    if (sub < 0)
        sub = 0;
    if (sub >= kSubBuckets)
        sub = kSubBuckets - 1;
    return static_cast<int32_t>(e) * kSubBuckets + sub;
}

double
PercentileSketch::representative(int32_t index)
{
    // Euclidean split of index into (octave e, sub-bucket): sub must
    // land in [0, kSubBuckets) even for negative indices (values < 1).
    int32_t e = index / kSubBuckets;
    int32_t sub = index - e * kSubBuckets;
    if (sub < 0) {
        sub += kSubBuckets;
        e -= 1;
    }
    const double lo =
        std::ldexp(0.5 + sub / (2.0 * kSubBuckets), e);
    const double hi =
        std::ldexp(0.5 + (sub + 1) / (2.0 * kSubBuckets), e);
    return 0.5 * (lo + hi);
}

void
PercentileSketch::add(double value)
{
    if (!std::isfinite(value))
        return;
    const double v = value < 0.0 ? 0.0 : value;
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    if (v <= 0.0) {
        ++zero_;
        return;
    }
    ++bins_[indexOf(v)];
}

void
PercentileSketch::merge(const PercentileSketch &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    zero_ += other.zero_;
    for (const auto &bin : other.bins_)
        bins_[bin.first] += bin.second;
}

double
PercentileSketch::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
PercentileSketch::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
PercentileSketch::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Nearest-rank target over the count_ inserted values.
    const uint64_t rank = static_cast<uint64_t>(
        std::llround(q * static_cast<double>(count_ - 1)));
    if (rank < zero_)
        return 0.0;
    uint64_t cum = zero_;
    for (const auto &bin : bins_) {
        cum += bin.second;
        if (rank < cum) {
            const double rep = representative(bin.first);
            return std::min(std::max(rep, min_), max_);
        }
    }
    return max_;
}

void
PercentileSketch::clear()
{
    bins_.clear();
    count_ = 0;
    zero_ = 0;
    min_ = 0.0;
    max_ = 0.0;
}

void
PercentileSketch::appendTo(std::string &out) const
{
    putU32(out, kSerialVersion);
    putU64(out, count_);
    putU64(out, zero_);
    putF64(out, min());
    putF64(out, max());
    putU32(out, static_cast<uint32_t>(bins_.size()));
    for (const auto &bin : bins_) {
        putI32(out, bin.first);
        putU64(out, bin.second);
    }
}

bool
PercentileSketch::readFrom(ByteReader &r, PercentileSketch &out)
{
    out.clear();
    uint32_t version = 0;
    if (!r.getU32(version) || version != kSerialVersion)
        return false;
    uint32_t nbins = 0;
    if (!r.getU64(out.count_) || !r.getU64(out.zero_) ||
        !r.getF64(out.min_) || !r.getF64(out.max_) || !r.getU32(nbins))
        return false;
    uint64_t tallied = out.zero_;
    bool first = true;
    int32_t prev = 0;
    for (uint32_t i = 0; i < nbins; ++i) {
        int32_t index = 0;
        uint64_t bin_count = 0;
        if (!r.getI32(index) || !r.getU64(bin_count))
            return false;
        // Canonical form only: ascending bins, no empty bins — the
        // serialize-equal-iff-equal property depends on it.
        if (bin_count == 0 || (!first && index <= prev))
            return false;
        out.bins_.emplace_hint(out.bins_.end(), index, bin_count);
        tallied += bin_count;
        prev = index;
        first = false;
    }
    return tallied == out.count_;
}

bool
PercentileSketch::operator==(const PercentileSketch &other) const
{
    return count_ == other.count_ && zero_ == other.zero_ &&
        min() == other.min() && max() == other.max() &&
        bins_ == other.bins_;
}

} // namespace pes
