/**
 * @file
 * Deterministic, mergeable percentile sketch for streaming latency
 * aggregation.
 *
 * A fleet cell may span millions of sessions; holding per-session
 * samples (SampleSet) to answer "p99 latency" does not scale. A
 * PercentileSketch is a bounded-memory histogram over logarithmic
 * buckets: values within one bucket differ by at most ~0.8% (64
 * sub-buckets per octave), so any quantile is answered to that relative
 * accuracy from a few hundred counters regardless of stream length.
 *
 * Determinism contract — the property that lets sketches flow through
 * `.psum` parts, shard merges and coordinator-leased reductions without
 * breaking the byte-identical-reports guarantee:
 *
 *  - the sketch state is a pure function of the inserted MULTISET:
 *    insertion order never matters (bucketing is exact integer
 *    arithmetic on the IEEE-754 exponent/mantissa via frexp — no libm
 *    log call whose last ulp could differ across platforms);
 *  - merge() is bin-wise counter addition: associative, commutative,
 *    and idempotent-free, so any merge tree over any partitioning of
 *    the stream yields bit-identical state (no running float sum is
 *    kept — that would be merge-order dependent);
 *  - serialization writes bins in ascending index order: equal sketches
 *    serialize to equal bytes.
 *
 * Unlike a t-digest (whose centroids depend on insertion and merge
 * order), this trades a fixed relative-error bound for perfect
 * mergeability — the right trade under a byte-exact diff gate.
 */

#ifndef PES_UTIL_PSKETCH_HH
#define PES_UTIL_PSKETCH_HH

#include <cstdint>
#include <map>
#include <string>

#include "util/binary_io.hh"

namespace pes {

/** Bounded-memory log-bucketed quantile sketch (see file comment). */
class PercentileSketch
{
  public:
    /** Serialization format version (appendTo/readFrom). */
    static constexpr uint32_t kSerialVersion = 1;
    /** Sub-buckets per power-of-two octave: relative quantile error is
     *  at most 1/(2*kSubBuckets) ~ 0.78%. */
    static constexpr int32_t kSubBuckets = 64;

    /** Insert one value. Non-finite values are ignored; values <= 0
     *  land in a dedicated zero bucket (latencies are never negative,
     *  but a defensive clamp beats silent UB). */
    void add(double value);

    /** Fold @p other in (bin-wise counter addition). */
    void merge(const PercentileSketch &other);

    /** Values inserted (finite ones). */
    uint64_t count() const { return count_; }
    /** Inserted values that were <= 0. */
    uint64_t zeroCount() const { return zero_; }
    /** Smallest / largest inserted value (0 when empty). */
    double min() const;
    double max() const;
    /** Occupied log buckets (memory footprint proxy). */
    size_t binCount() const { return bins_.size(); }
    bool empty() const { return count_ == 0; }

    /**
     * The value at quantile @p q in [0, 1] (nearest-rank over bucket
     * representatives, clamped into [min, max]); 0 when empty.
     * Deterministic in (state, q).
     */
    double quantile(double q) const;

    /** Reset to the empty sketch. */
    void clear();

    /** Append the canonical serialization (bins ascending). Equal
     *  sketches always produce equal bytes. */
    void appendTo(std::string &out) const;

    /** Parse a sketch serialized by appendTo() at @p r's cursor. False
     *  on truncation, version mismatch, or non-canonical bin order —
     *  @p out is unspecified then. */
    static bool readFrom(ByteReader &r, PercentileSketch &out);

    bool operator==(const PercentileSketch &other) const;
    bool operator!=(const PercentileSketch &other) const
    {
        return !(*this == other);
    }

  private:
    static int32_t indexOf(double value);
    static double representative(int32_t index);

    /** Occupied buckets: log-bucket index -> count. Ordered map so
     *  iteration (quantile walk, serialization) is canonical. */
    std::map<int32_t, uint64_t> bins_;
    uint64_t count_ = 0;
    uint64_t zero_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace pes

#endif // PES_UTIL_PSKETCH_HH
