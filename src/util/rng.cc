#include "util/rng.hh"

#include <cmath>

namespace pes {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    return splitmix64(state);
}

uint64_t
hashString(const char *s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (; *s; ++s) {
        h ^= static_cast<uint64_t>(static_cast<unsigned char>(*s));
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
hashBytes(const void *data, size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < len; ++i) {
        h ^= static_cast<uint64_t>(p[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    const auto span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
}

double
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double median, double sigma)
{
    return median * std::exp(sigma * normal());
}

double
Rng::exponential(double mean)
{
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

int
Rng::categorical(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += (w > 0.0) ? w : 0.0;
    if (total <= 0.0)
        return uniformInt(0, static_cast<int>(weights.size()) - 1);
    double r = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        const double w = (weights[i] > 0.0) ? weights[i] : 0.0;
        if (r < w)
            return static_cast<int>(i);
        r -= w;
    }
    return static_cast<int>(weights.size()) - 1;
}

Rng
Rng::fork(uint64_t salt)
{
    return Rng(hashCombine(next(), salt));
}

} // namespace pes
