/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the reproduction (trace generation, workload
 * noise, user behaviour) draw from this generator so that every experiment is
 * reproducible bit-for-bit from its seed. The core generator is
 * xoshiro256**, seeded through splitmix64 as recommended by its authors.
 */

#ifndef PES_UTIL_RNG_HH
#define PES_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pes {

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Cheap to copy; copies continue the sequence independently. Never uses
 * global state, so concurrent simulations with distinct Rng instances are
 * reproducible.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    int uniformInt(int lo, int hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal such that the *median* of the distribution is @p median and
     * the log-space standard deviation is @p sigma. Median parameterization
     * keeps workload scales intuitive (sigma=0 returns exactly the median).
     */
    double lognormal(double median, double sigma);

    /** Exponential with the given mean. */
    double exponential(double mean);

    /** True with probability @p p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized weight vector.
     * Zero or negative weights are treated as zero. If all weights are
     * zero the result is uniform over all indices.
     */
    int categorical(const std::vector<double> &weights);

    /** Derive an independent child generator (stable: depends only on state+salt). */
    Rng fork(uint64_t salt);

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/** splitmix64 step; exposed for hashing/seeding helpers. */
uint64_t splitmix64(uint64_t &state);

/** Stateless 64-bit mix of two values (for stable derived seeds). */
uint64_t hashCombine(uint64_t a, uint64_t b);

/** Stable 64-bit hash of a string (FNV-1a). */
uint64_t hashString(const char *s);

/** Stable 64-bit hash of a byte buffer (FNV-1a; embedded NULs allowed). */
uint64_t hashBytes(const void *data, size_t len);

} // namespace pes

#endif // PES_UTIL_RNG_HH
