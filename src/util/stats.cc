#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pes {

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    const double new_mean =
        mean_ + delta * static_cast<double>(other.n_) / total;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
        static_cast<double>(other.n_) / total;
    mean_ = new_mean;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
SampleSet::mean() const
{
    if (xs_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs_)
        s += x;
    return s / static_cast<double>(xs_.size());
}

double
SampleSet::percentile(double p) const
{
    if (xs_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(xs_.begin(), xs_.end());
        sorted_ = true;
    }
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double rank =
        clamped / 100.0 * static_cast<double>(xs_.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    panic_if(!(lo < hi), "Histogram range must satisfy lo < hi");
    panic_if(bins == 0, "Histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<long>(std::floor((x - lo_) / width));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(idx)];
    ++total_;
}

double
Histogram::binLo(size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace pes
