/**
 * @file
 * Lightweight statistics helpers used by metrics aggregation and benches.
 */

#ifndef PES_UTIL_STATS_HH
#define PES_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace pes {

/**
 * Streaming mean/variance/min/max (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Number of observations so far. */
    size_t count() const { return n_; }
    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    /** Minimum (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }
    /** Maximum (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }
    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Collects raw samples for exact percentile queries. Intended for the modest
 * sample counts of this project (thousands, not billions).
 */
class SampleSet
{
  public:
    /** Add one observation. */
    void add(double x) { xs_.push_back(x); sorted_ = false; }

    /** Number of samples. */
    size_t count() const { return xs_.size(); }
    /** Mean of samples (0 when empty). */
    double mean() const;
    /**
     * Linear-interpolated percentile, @p p in [0, 100].
     * Returns 0 when empty.
     */
    double percentile(double p) const;
    /** Shorthand for percentile(50). */
    double median() const { return percentile(50.0); }
    /** All samples in insertion order. */
    const std::vector<double> &samples() const { return xs_; }

  private:
    mutable std::vector<double> xs_;
    mutable bool sorted_ = false;
};

/**
 * Fixed-bin histogram over [lo, hi). Out-of-range samples clamp into the
 * first/last bin so no sample is silently dropped.
 */
class Histogram
{
  public:
    /** Create @p bins equal-width bins spanning [lo, hi). Requires lo < hi. */
    Histogram(double lo, double hi, size_t bins);

    /** Add one observation. */
    void add(double x);

    /** Count in bin @p i. */
    size_t binCount(size_t i) const { return counts_[i]; }
    /** Inclusive lower edge of bin @p i. */
    double binLo(size_t i) const;
    /** Number of bins. */
    size_t bins() const { return counts_.size(); }
    /** Total number of samples. */
    size_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<size_t> counts_;
    size_t total_ = 0;
};

/** Geometric mean of a vector of positive values (0 if empty). */
double geomean(const std::vector<double> &xs);

} // namespace pes

#endif // PES_UTIL_STATS_HH
