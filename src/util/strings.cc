#include "util/strings.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace pes {

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
        s.substr(0, prefix.size()) == prefix;
}


std::string
toLower(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

bool
parseInt64(const std::string &s, long long &out, int base)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, base);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseUint64(const std::string &s, uint64_t &out, int base)
{
    if (s.empty() || s.find('-') != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, base);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = static_cast<uint64_t>(v);
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE ||
        !std::isfinite(v))
        return false;
    out = v;
    return true;
}

} // namespace pes
