/**
 * @file
 * Small string helpers used by trace serialization and bench output.
 */

#ifndef PES_UTIL_STRINGS_HH
#define PES_UTIL_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace pes {

/** Split @p s on @p sep (single char); keeps empty fields. */
std::vector<std::string> split(std::string_view s, char sep);

/** Strip leading/trailing whitespace. */
std::string trim(std::string_view s);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** True when @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** ASCII-lowercased copy of @p s. */
std::string toLower(std::string_view s);

} // namespace pes

#endif // PES_UTIL_STRINGS_HH
