/**
 * @file
 * Small string helpers used by trace serialization and bench output.
 */

#ifndef PES_UTIL_STRINGS_HH
#define PES_UTIL_STRINGS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pes {

/** Split @p s on @p sep (single char); keeps empty fields. */
std::vector<std::string> split(std::string_view s, char sep);

/** Strip leading/trailing whitespace. */
std::string trim(std::string_view s);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** True when @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** ASCII-lowercased copy of @p s. */
std::string toLower(std::string_view s);

// --------------------- strict numeric parsing (shared by the CLIs) ----
//
// All three parse the ENTIRE string or fail: leading/trailing garbage,
// empty input, and out-of-range values (ERANGE) are rejected, so
// "12abc", "", "1e999", and "--3" never silently truncate to a number.

/**
 * Parse a signed integer (strtoll semantics). @p base follows strtoll:
 * 0 auto-detects "0x"/"0" prefixes.
 */
bool parseInt64(const std::string &s, long long &out, int base = 0);

/**
 * Parse an unsigned 64-bit integer. Rejects any '-' anywhere in the
 * input (strtoull would silently wrap negatives).
 */
bool parseUint64(const std::string &s, uint64_t &out, int base = 0);

/** Parse a finite double (strtod semantics, full-string). */
bool parseDouble(const std::string &s, double &out);

} // namespace pes

#endif // PES_UTIL_STRINGS_HH
