#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/logging.hh"

namespace pes {

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatPercent(double fraction)
{
    return formatDouble(fraction * 100.0, 1) + "%";
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "Table row has %zu cells, expected %zu",
             cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

Table &
Table::beginRow()
{
    flushPending();
    buildingRow_ = true;
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    panic_if(!buildingRow_, "cell() outside beginRow()");
    pending_.push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

Table &
Table::cell(long value)
{
    return cell(std::to_string(value));
}

void
Table::flushPending()
{
    if (buildingRow_ && !pending_.empty()) {
        addRow(std::move(pending_));
        pending_.clear();
    }
    buildingRow_ = false;
}

void
Table::print(std::ostream &os) const
{
    const_cast<Table *>(this)->flushPending();
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << "  " << row[c]
               << std::string(widths[c] - row[c].size(), ' ');
        }
        os << "\n";
    };

    print_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    const_cast<Table *>(this)->flushPending();
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            const bool needs_quote =
                row[c].find_first_of(",\"\n") != std::string::npos;
            if (needs_quote) {
                os << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << row[c];
            }
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

void
Table::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("could not open %s for CSV output", path.c_str());
        return;
    }
    printCsv(out);
}

} // namespace pes
