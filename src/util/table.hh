/**
 * @file
 * Console table and CSV emission for bench binaries.
 *
 * Every figure/table bench prints a human-readable aligned table to stdout
 * and can optionally mirror the same rows into a CSV file for plotting.
 */

#ifndef PES_UTIL_TABLE_HH
#define PES_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace pes {

/**
 * Row-oriented table builder with aligned console output and CSV export.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a full row of pre-formatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Start building a row cell-by-cell. */
    Table &beginRow();
    /** Append a string cell to the row under construction. */
    Table &cell(const std::string &value);
    /** Append a numeric cell with the given precision. */
    Table &cell(double value, int precision = 2);
    /** Append an integer cell. */
    Table &cell(long value);

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

    /** Write the aligned table to @p os. */
    void print(std::ostream &os) const;

    /** Write the table as CSV to @p os. */
    void printCsv(std::ostream &os) const;

    /** Write CSV to the file at @p path (best-effort; warns on failure). */
    void writeCsvFile(const std::string &path) const;

  private:
    void flushPending();

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> pending_;
    bool buildingRow_ = false;
};

/** Format a double with fixed precision into a string. */
std::string formatDouble(double value, int precision = 2);

/** Format a fraction (0..1) as a percentage string with one decimal. */
std::string formatPercent(double fraction);

} // namespace pes

#endif // PES_UTIL_TABLE_HH
