/**
 * @file
 * Fundamental unit aliases shared across the PES code base.
 *
 * All simulation time is kept in milliseconds as double; frequencies in MHz;
 * power in milliwatts; energy in millijoules; compute work in mega-cycles.
 * The combinations used throughout are dimensionally consistent:
 *   latency_ms = tmem_ms + 1000 * ndep_mcycles / freq_mhz
 *   energy_mj  = power_mw * latency_ms / 1000
 */

#ifndef PES_UTIL_TYPES_HH
#define PES_UTIL_TYPES_HH

#include <cstdint>

namespace pes {

/** Simulation time / latency in milliseconds. */
using TimeMs = double;
/** CPU frequency in MHz. */
using FreqMhz = double;
/** Power in milliwatts. */
using PowerMw = double;
/** Energy in millijoules. */
using EnergyMj = double;
/** Compute work in millions of CPU cycles. */
using MegaCycles = double;

/** Latency of executing @p ndep mega-cycles at @p freq MHz, plus memory time. */
inline TimeMs
computeLatencyMs(TimeMs tmem_ms, MegaCycles ndep, FreqMhz freq)
{
    return tmem_ms + 1000.0 * ndep / freq;
}

/** Energy of running at @p power mW for @p duration ms. */
inline EnergyMj
energyOf(PowerMw power, TimeMs duration)
{
    return power * duration / 1000.0;
}

} // namespace pes

#endif // PES_UTIL_TYPES_HH
