#include "web/dom.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pes {

const char *
nodeRoleName(NodeRole role)
{
    switch (role) {
      case NodeRole::Container:
        return "container";
      case NodeRole::Text:
        return "text";
      case NodeRole::Image:
        return "image";
      case NodeRole::Link:
        return "link";
      case NodeRole::Button:
        return "button";
      case NodeRole::MenuToggle:
        return "menutoggle";
      case NodeRole::MenuItem:
        return "menuitem";
      case NodeRole::FormField:
        return "formfield";
      case NodeRole::SubmitButton:
        return "submitbutton";
    }
    panic("nodeRoleName: invalid role");
}

const HandlerSpec *
DomNode::handlerFor(DomEventType type) const
{
    for (const HandlerSpec &spec : handlers) {
        if (spec.type == type)
            return &spec;
    }
    return nullptr;
}

bool
DomNode::isClickable() const
{
    switch (role) {
      case NodeRole::Link:
      case NodeRole::Button:
      case NodeRole::MenuToggle:
      case NodeRole::MenuItem:
      case NodeRole::FormField:
      case NodeRole::SubmitButton:
        return true;
      default:
        return false;
    }
}

DomTree::DomTree()
{
    DomNode root;
    root.id = 0;
    root.parent = kInvalidNode;
    root.role = NodeRole::Container;
    root.rect = {0.0, 0.0, 360.0, 640.0};
    root.displayed = true;
    nodes_.push_back(std::move(root));
}

NodeId
DomTree::createNode(NodeId parent, NodeRole role, const Rect &rect)
{
    panic_if(parent < 0 || parent >= static_cast<NodeId>(nodes_.size()),
             "createNode: invalid parent %d", parent);
    const NodeId id = static_cast<NodeId>(nodes_.size());
    DomNode node;
    node.id = id;
    node.parent = parent;
    node.role = role;
    node.rect = rect;
    nodes_.push_back(std::move(node));
    nodes_[static_cast<size_t>(parent)].children.push_back(id);
    cachedPageHeight_.store(-1.0, std::memory_order_relaxed);
    return id;
}

void
DomTree::addHandler(NodeId id, const HandlerSpec &spec)
{
    node(id).handlers.push_back(spec);
}

void
DomTree::setDisplayed(NodeId id, bool displayed)
{
    node(id).displayed = displayed;
}

bool
DomTree::isDisplayed(NodeId id) const
{
    NodeId cur = id;
    while (cur != kInvalidNode) {
        const DomNode &n = node(cur);
        if (!n.displayed)
            return false;
        cur = n.parent;
    }
    return true;
}

bool
DomTree::isVisible(NodeId id, const Viewport &viewport) const
{
    return isDisplayed(id) && node(id).rect.intersects(viewport.rect());
}

std::vector<NodeId>
DomTree::visibleNodes(const Viewport &viewport) const
{
    // Single DFS so ancestor display state is evaluated once per node.
    std::vector<NodeId> out;
    std::vector<NodeId> stack{root()};
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        const DomNode &n = node(id);
        if (!n.displayed)
            continue;
        if (n.rect.intersects(viewport.rect()))
            out.push_back(id);
        for (NodeId child : n.children)
            stack.push_back(child);
    }
    std::sort(out.begin(), out.end());
    return out;
}

double
DomTree::pageHeight() const
{
    const double cached =
        cachedPageHeight_.load(std::memory_order_relaxed);
    if (cached >= 0.0)
        return cached;
    double bottom = 0.0;
    for (const DomNode &n : nodes_) {
        if (n.displayed)
            bottom = std::max(bottom, n.rect.y + n.rect.h);
    }
    cachedPageHeight_.store(bottom, std::memory_order_relaxed);
    return bottom;
}

void
DomTree::fitRootToContent()
{
    nodes_[0].rect.h = std::max(nodes_[0].rect.h, pageHeight());
    cachedPageHeight_.store(-1.0, std::memory_order_relaxed);
}

} // namespace pes
